//go:build !race

package repro

// raceEnabled reports that the race detector is instrumenting this
// build; see race_on_test.go.
const raceEnabled = false
