// Package collectors is the registry that maps collector names to
// factories, so no caller hard-codes the core/msa/gengc constructors.
// Every layer that needs a collector — the experiment harness, the
// execution engine and the CLI tools — resolves one from a textual spec:
//
//	name[+modifier]...
//
// The base name selects a registered family ("cg", "msa", "gen",
// "none"); modifiers refine its configuration. The contaminated
// collector accepts the modifiers of the thesis's variants:
//
//	cg               the preferred configuration (§3.4 static opt on)
//	cg+noopt         the unoptimized semantics of §2.1
//	cg+recycle       §3.7 recycling
//	cg+typed         Chapter 6 typed recycling (implies recycle)
//	cg+reset         §3.6 resetting during traditional collections
//	cg+packed        §3.5 packed union-find representation
//	cg+checked       §3.1.4 tainted-list assurance checks
//	cg+recycle+reset modifiers compose freely
//
// The generational baseline accepts a parameterised tenuring threshold:
//
//	gen              promote after 2 minor cycles (gengc.PromoteAfter)
//	gen+promote=N    promote after N minor cycles (1-255)
//
// "cg-noopt" and "cg-recycle" are accepted as aliases for the spellings
// the original cgrun flag used. Adding a collector variant is one
// Register call (a parameterised family adds one RegisterNormalizer
// call to keep store identities canonical); nothing else in the tree
// changes. Factories return
// vm.Events descriptors (the event-table collector ABI), not interface
// values: what a collector subscribes to is data the registry's callers
// can decorate before attaching.
package collectors

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/gengc"
	"repro/internal/msa"
	"repro/internal/vm"
)

// Factory builds the event-table descriptor of a fresh, unattached
// collector. Each call must return a new instance (Events.Collector and
// the slot closures must not be shared): the execution engine hands
// every runtime shard its own collector, and sharing one across shards
// would race. Callers may decorate the returned descriptor — the engine
// sets Events.GCEvery per job — before handing it to vm.New/Reset.
type Factory func() vm.Events

// Builder constructs a factory for a base name given its (possibly
// empty) modifier list. It validates the modifiers eagerly so a bad
// spec fails at parse time, not on the first shard.
type Builder func(mods []string) (Factory, error)

// entry is one registered collector family.
type entry struct {
	build Builder
	doc   string
	mods  []string
}

var (
	mu       sync.RWMutex
	registry = make(map[string]entry)
	aliases  = make(map[string]string)
	// normalizers rewrite a base's raw modifier list before
	// canonicalisation (see RegisterNormalizer), so spellings that
	// denote the base's default configuration collapse to the bare
	// base name — the store keys cells by canonical spec, and
	// "gen+promote=2" must be the same identity as "gen".
	normalizers = make(map[string]func(mods []string) []string)
)

// Register adds a collector family under name. doc is a one-line
// description shown by Names-driven usage text; mods declares the
// modifier names the builder accepts (the spec round-trip test, the
// registry-wide gates and usage text enumerate the grammar from them).
// A parameterised modifier is declared as one representative instance
// ("promote=4" stands for promote=N) — the builder validates the full
// value range, the declared instance is what enumeration-driven tests
// exercise, and display paths should label the list as examples. The
// builder must treat
// modifiers as a set — order and multiplicity carry no meaning — so
// canonicalised specs (see Spec) select the same configuration.
// Registering a duplicate name panics: it is a wiring bug, not a
// runtime condition.
func Register(name, doc string, b Builder, mods ...string) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("collectors: duplicate registration of %q", name))
	}
	registry[name] = entry{build: b, doc: doc, mods: canonMods(mods)}
}

// Alias maps an alternate spelling to a canonical spec.
func Alias(name, spec string) {
	mu.Lock()
	defer mu.Unlock()
	aliases[name] = spec
}

// RegisterNormalizer attaches a modifier normaliser to a registered
// base: ParseSpec runs it over the raw modifier list before
// canonicalisation. A parameterised family uses it to collapse
// value respellings ("promote=02" -> "promote=2") and default-valued
// modifiers (the bare base) to one store identity. The normaliser
// must be conservative: rewrite only modifiers it fully understands,
// pass everything else through untouched so the builder still sees —
// and rejects — bad or conflicting input.
func RegisterNormalizer(name string, n func(mods []string) []string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := registry[name]; !ok {
		panic(fmt.Sprintf("collectors: normalizer for unregistered base %q", name))
	}
	if _, dup := normalizers[name]; dup {
		panic(fmt.Sprintf("collectors: duplicate normalizer for %q", name))
	}
	normalizers[name] = n
}

// Parse resolves spec to a validated factory. The factory may be called
// any number of times, from any goroutine.
func Parse(spec string) (Factory, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Factory()
}

// New resolves spec and builds one collector's event table.
func New(spec string) (vm.Events, error) {
	f, err := Parse(spec)
	if err != nil {
		return vm.Events{}, err
	}
	return f(), nil
}

// Names lists the registered base names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Doc returns the one-line description of a registered base name.
func Doc(name string) string {
	mu.RLock()
	defer mu.RUnlock()
	return registry[name].doc
}

// noMods wraps a modifier-free factory into a Builder.
func noMods(name string, f Factory) Builder {
	return func(mods []string) (Factory, error) {
		if len(mods) > 0 {
			return nil, fmt.Errorf("%s takes no modifiers, got %q", name, mods)
		}
		return f, nil
	}
}

// buildCG maps modifier names onto core.Config.
func buildCG(mods []string) (Factory, error) {
	cfg := core.DefaultConfig()
	for _, m := range mods {
		switch m {
		case "noopt":
			cfg.StaticOpt = false
		case "recycle":
			cfg.Recycle = true
		case "typed":
			cfg.TypedRecycle = true
		case "reset":
			cfg.ResetOnGC = true
		case "packed":
			cfg.Packed = true
		case "checked":
			cfg.Checked = true
		default:
			return nil, fmt.Errorf("unknown cg modifier %q (want noopt, recycle, typed, reset, packed or checked)", m)
		}
	}
	return func() vm.Events { return core.New(cfg).Events() }, nil
}

// buildGen accepts the promote=N tenuring-threshold modifier (N minor
// cycles before promotion; the default is gengc.PromoteAfter).
func buildGen(mods []string) (Factory, error) {
	promote := gengc.PromoteAfter
	seen := false
	for _, m := range mods {
		val, ok := strings.CutPrefix(m, "promote=")
		if !ok {
			return nil, fmt.Errorf("unknown gen modifier %q (want promote=N)", m)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 || n > 255 {
			return nil, fmt.Errorf("bad gen tenuring threshold %q (want promote=N, 1 <= N <= 255)", m)
		}
		if seen && n != promote {
			return nil, fmt.Errorf("conflicting gen tenuring thresholds %d and %d", promote, n)
		}
		promote, seen = n, true
	}
	return func() vm.Events { return gengc.NewTuned(promote).Events() }, nil
}

func init() {
	Register("cg", "the contaminated collector (§2-§3)", buildCG,
		"noopt", "recycle", "typed", "reset", "packed", "checked")
	Register("msa", "the traditional mark-sweep system (§4.5 base)",
		noMods("msa", func() vm.Events { return msa.NewSystem().Events() }))
	// "promote=4" is the declared representative of the promote=N
	// grammar (see Register's doc); buildGen accepts any N in 1-255.
	Register("gen", "the two-generation related-work baseline (§1.1); promote=N tunes the tenuring threshold",
		buildGen, "promote=4")
	// Normalise promote=N modifiers by parsed value, not spelling:
	// numeric respellings ("promote=02") collapse to one canonical
	// form, and a lone threshold equal to the default collapses to the
	// bare base, so both spellings share one store identity (and the
	// collector's own Name(), which spells the default as "gen").
	// Distinct thresholds are deliberately kept — buildGen must still
	// see and reject the conflict — and unparseable modifiers pass
	// through untouched for buildGen to reject.
	RegisterNormalizer("gen", func(mods []string) []string {
		out := mods[:0:0]
		seen := make(map[int]bool)
		for _, m := range mods {
			if v, ok := strings.CutPrefix(m, "promote="); ok {
				if n, err := strconv.Atoi(v); err == nil && n >= 1 && n <= 255 {
					if seen[n] {
						continue
					}
					seen[n] = true
					out = append(out, fmt.Sprintf("promote=%d", n))
					continue
				}
			}
			out = append(out, m)
		}
		if len(seen) == 1 && seen[gengc.PromoteAfter] {
			kept := out[:0]
			def := fmt.Sprintf("promote=%d", gengc.PromoteAfter)
			for _, m := range out {
				if m != def {
					kept = append(kept, m)
				}
			}
			out = kept
		}
		return out
	})
	Register("none", "no collection: plenty-of-storage configuration (§4.5)",
		noMods("none", vm.None))
	Alias("cg-noopt", "cg+noopt")
	Alias("cg-recycle", "cg+recycle")
}
