// Package collectors is the registry that maps collector names to
// factories, so no caller hard-codes the core/msa/gengc constructors.
// Every layer that needs a collector — the experiment harness, the
// execution engine and the CLI tools — resolves one from a textual spec:
//
//	name[+modifier]...
//
// The base name selects a registered family ("cg", "msa", "gen",
// "none"); modifiers refine its configuration. The contaminated
// collector accepts the modifiers of the thesis's variants:
//
//	cg               the preferred configuration (§3.4 static opt on)
//	cg+noopt         the unoptimized semantics of §2.1
//	cg+recycle       §3.7 recycling
//	cg+typed         Chapter 6 typed recycling (implies recycle)
//	cg+reset         §3.6 resetting during traditional collections
//	cg+packed        §3.5 packed union-find representation
//	cg+checked       §3.1.4 tainted-list assurance checks
//	cg+recycle+reset modifiers compose freely
//
// "cg-noopt" and "cg-recycle" are accepted as aliases for the spellings
// the original cgrun flag used. Adding a collector variant is one
// Register call; nothing else in the tree changes.
package collectors

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/gengc"
	"repro/internal/msa"
	"repro/internal/vm"
)

// Factory builds a fresh, unattached collector. Each call must return a
// new instance: the execution engine hands every runtime shard its own
// collector, and sharing one across shards would race.
type Factory func() vm.Collector

// Builder constructs a factory for a base name given its (possibly
// empty) modifier list. It validates the modifiers eagerly so a bad
// spec fails at parse time, not on the first shard.
type Builder func(mods []string) (Factory, error)

// entry is one registered collector family.
type entry struct {
	build Builder
	doc   string
	mods  []string
}

var (
	mu       sync.RWMutex
	registry = make(map[string]entry)
	aliases  = make(map[string]string)
)

// Register adds a collector family under name. doc is a one-line
// description shown by Names-driven usage text; mods declares the
// modifier names the builder accepts (the spec round-trip test and
// usage text enumerate the grammar from them). The builder must treat
// modifiers as a set — order and multiplicity carry no meaning — so
// canonicalised specs (see Spec) select the same configuration.
// Registering a duplicate name panics: it is a wiring bug, not a
// runtime condition.
func Register(name, doc string, b Builder, mods ...string) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("collectors: duplicate registration of %q", name))
	}
	registry[name] = entry{build: b, doc: doc, mods: canonMods(mods)}
}

// Alias maps an alternate spelling to a canonical spec.
func Alias(name, spec string) {
	mu.Lock()
	defer mu.Unlock()
	aliases[name] = spec
}

// Parse resolves spec to a validated factory. The factory may be called
// any number of times, from any goroutine.
func Parse(spec string) (Factory, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Factory()
}

// New resolves spec and builds one collector instance.
func New(spec string) (vm.Collector, error) {
	f, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// Names lists the registered base names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Doc returns the one-line description of a registered base name.
func Doc(name string) string {
	mu.RLock()
	defer mu.RUnlock()
	return registry[name].doc
}

// noMods wraps a modifier-free factory into a Builder.
func noMods(name string, f Factory) Builder {
	return func(mods []string) (Factory, error) {
		if len(mods) > 0 {
			return nil, fmt.Errorf("%s takes no modifiers, got %q", name, mods)
		}
		return f, nil
	}
}

// buildCG maps modifier names onto core.Config.
func buildCG(mods []string) (Factory, error) {
	cfg := core.DefaultConfig()
	for _, m := range mods {
		switch m {
		case "noopt":
			cfg.StaticOpt = false
		case "recycle":
			cfg.Recycle = true
		case "typed":
			cfg.TypedRecycle = true
		case "reset":
			cfg.ResetOnGC = true
		case "packed":
			cfg.Packed = true
		case "checked":
			cfg.Checked = true
		default:
			return nil, fmt.Errorf("unknown cg modifier %q (want noopt, recycle, typed, reset, packed or checked)", m)
		}
	}
	return func() vm.Collector { return core.New(cfg) }, nil
}

func init() {
	Register("cg", "the contaminated collector (§2-§3)", buildCG,
		"noopt", "recycle", "typed", "reset", "packed", "checked")
	Register("msa", "the traditional mark-sweep system (§4.5 base)",
		noMods("msa", func() vm.Collector { return msa.NewSystem() }))
	Register("gen", "the two-generation related-work baseline (§1.1)",
		noMods("gen", func() vm.Collector { return gengc.New() }))
	Register("none", "no collection: plenty-of-storage configuration (§4.5)",
		noMods("none", func() vm.Collector { return vm.BaseCollector{} }))
	Alias("cg-noopt", "cg+noopt")
	Alias("cg-recycle", "cg+recycle")
}
