// Spec is the parsed, canonical form of the registry's spec grammar.
// The results codec and the on-disk cell store key cells by collector
// spec, so two spellings of the same configuration ("cg-recycle",
// "cg+recycle") must collapse to one identity: Spec canonicalises by
// resolving aliases and sorting/deduplicating the modifier set, and
// Spec.String() is guaranteed to re-parse to an equal Spec
// (TestSpecRoundTrip exercises every registered base and modifier).
//
// Builders must therefore treat the modifier list as a *set*: order and
// multiplicity carry no meaning. Every current family satisfies this
// (cg's modifiers toggle independent Config bits).

package collectors

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is a validated collector spec: a registered base name plus its
// modifiers in canonical (sorted, deduplicated) order.
type Spec struct {
	Base string
	Mods []string
}

// ParseSpec resolves a textual spec to its canonical Spec: aliases
// rewrite the base position, modifiers are sorted and deduplicated, and
// the registered builder validates the result so a bad spec fails here,
// not on the first shard.
func ParseSpec(spec string) (Spec, error) {
	mu.RLock()
	parts := strings.Split(spec, "+")
	// Aliases resolve at the base position, so an alias composes with
	// further modifiers: "cg-recycle+reset" ≡ "cg+recycle+reset".
	if canon, ok := aliases[parts[0]]; ok {
		parts = append(strings.Split(canon, "+"), parts[1:]...)
	}
	e, ok := registry[parts[0]]
	norm := normalizers[parts[0]]
	mu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("collectors: unknown collector %q (have %s)",
			parts[0], strings.Join(Names(), ", "))
	}
	mods := parts[1:]
	if norm != nil {
		mods = norm(mods)
	}
	s := Spec{Base: parts[0], Mods: canonMods(mods)}
	if _, err := e.build(s.Mods); err != nil {
		return Spec{}, fmt.Errorf("collectors: bad spec %q: %w", spec, err)
	}
	return s, nil
}

// canonMods sorts and deduplicates a modifier list (nil for none).
func canonMods(mods []string) []string {
	if len(mods) == 0 {
		return nil
	}
	out := append([]string(nil), mods...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// String renders the canonical spelling: base name plus "+"-joined
// modifiers. The output re-parses (ParseSpec) to an equal Spec.
func (s Spec) String() string {
	if len(s.Mods) == 0 {
		return s.Base
	}
	return s.Base + "+" + strings.Join(s.Mods, "+")
}

// Equal reports whether two specs denote the same configuration.
func (s Spec) Equal(o Spec) bool {
	if s.Base != o.Base || len(s.Mods) != len(o.Mods) {
		return false
	}
	for i := range s.Mods {
		if s.Mods[i] != o.Mods[i] {
			return false
		}
	}
	return true
}

// Factory builds the spec's validated factory.
func (s Spec) Factory() (Factory, error) {
	mu.RLock()
	e, ok := registry[s.Base]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("collectors: unknown collector %q", s.Base)
	}
	f, err := e.build(s.Mods)
	if err != nil {
		return nil, fmt.Errorf("collectors: bad spec %q: %w", s, err)
	}
	return f, nil
}

// Canonical resolves spec and returns its canonical spelling, the cell
// identity the results store keys on.
func Canonical(spec string) (string, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return "", err
	}
	return s.String(), nil
}

// Modifiers lists the modifier names a registered base accepts, sorted.
// A parameterised modifier appears as its declared representative
// instance (gen's "promote=4" stands for promote=N). The round-trip
// property test and the registry-wide gates enumerate the grammar from
// this.
func Modifiers(name string) []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), registry[name].mods...)
}

// AllSpecs enumerates the registry grammar as concrete specs: every
// base name, plus every base combined with each single declared
// modifier (parameterised modifiers contribute their representative
// instance). This is the one enumeration the registry-wide gates — the
// steady-state allocation gate and the elision equivalence property —
// share, so both always cover the same grammar.
func AllSpecs() []string {
	var specs []string
	for _, base := range Names() {
		specs = append(specs, base)
		for _, mod := range Modifiers(base) {
			specs = append(specs, base+"+"+mod)
		}
	}
	return specs
}
