package collectors

import (
	"fmt"
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

// traceEvents wraps a descriptor so every dispatched event is appended
// to out. Slots the descriptor leaves nil are replaced by pure
// recorders only when fill is set — with fill, the wrapped table
// subscribes everything, which is exactly the dispatch behavior of the
// old interface ABI (every collector had every method; elision opt-outs
// were the ForceAccessEvents/ForceFramePopEvents flags the AllAccess/
// AllPops fields replaced).
func traceEvents(ev vm.Events, fill bool, out *[]string) vm.Events {
	w := ev
	add := func(s string) { *out = append(*out, s) }
	if ev.Alloc != nil || fill {
		inner := ev.Alloc
		w.Alloc = func(id heap.HandleID, f *vm.Frame) {
			add(fmt.Sprintf("alloc %d f%d", id, f.ID))
			if inner != nil {
				inner(id, f)
			}
		}
	}
	if ev.Ref != nil || fill {
		inner := ev.Ref
		w.Ref = func(src, dst heap.HandleID) {
			add(fmt.Sprintf("ref %d %d", src, dst))
			if inner != nil {
				inner(src, dst)
			}
		}
	}
	if ev.StaticRef != nil || fill {
		inner := ev.StaticRef
		w.StaticRef = func(dst heap.HandleID) {
			add(fmt.Sprintf("static %d", dst))
			if inner != nil {
				inner(dst)
			}
		}
	}
	if ev.Return != nil || fill {
		inner := ev.Return
		w.Return = func(val heap.HandleID, caller *vm.Frame) {
			add(fmt.Sprintf("return %d f%d", val, caller.ID))
			if inner != nil {
				inner(val, caller)
			}
		}
	}
	if ev.FramePop != nil || fill {
		inner := ev.FramePop
		w.FramePop = func(f *vm.Frame) int {
			add(fmt.Sprintf("pop f%d", f.ID))
			if inner != nil {
				return inner(f)
			}
			return 0
		}
	}
	if ev.Access != nil || fill {
		inner := ev.Access
		w.Access = func(id heap.HandleID, t *vm.Thread) {
			tid := 0
			if t != nil {
				tid = t.ID
			}
			add(fmt.Sprintf("access %d t%d", id, tid))
			if inner != nil {
				inner(id, t)
			}
		}
	}
	return w
}

// driveElisionScript runs a fixed program covering every elision
// decision point: the single-thread access-elision phase, the
// static-frame-allocation flip, the second-thread flip, cross-thread
// touches, statics, interning, returns, pops of frames with and
// without collector-armed GCHead, Forget, and periodic forced
// collections.
func driveElisionScript(rt *vm.Runtime) {
	h := rt.Heap
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	slot := rt.StaticSlot("root")
	t1 := rt.NewThread(2)

	// Phase 1: single thread — access dispatch provably no-op.
	var shared heap.HandleID
	t1.CallVoid(2, func(f *vm.Frame) {
		a := f.MustNew(node)
		b := f.MustNew(node)
		f.SetLocal(0, a)
		f.PutField(a, 0, b)
		_ = f.GetField(a, 0)
		f.PutField(a, 0, heap.Nil)
		f.PutStatic(slot, b)
		_ = f.GetStatic(slot)
		if _, err := f.Intern("hello", node); err != nil {
			panic(err)
		}
		ret := t1.Call(1, func(g *vm.Frame) heap.HandleID { return g.MustNew(node) })
		f.Forget(ret)
		shared = b
	})

	// Phase 2: a static pseudo-frame allocation breaks the
	// single-thread proof.
	if _, err := rt.StaticFrame().New(node); err != nil {
		panic(err)
	}
	t1.CallVoid(1, func(f *vm.Frame) { f.SetLocal(0, f.MustNew(node)) })

	// Phase 3: a second thread touches the first thread's object.
	t2 := rt.NewThread(1)
	t2.CallVoid(1, func(f *vm.Frame) {
		f.SetLocal(0, shared)
		c := f.MustNew(node)
		f.PutField(c, 1, shared)
	})

	// Phase 4: forced collections interleaved with churn.
	rt.SetGCEvery(13)
	t1.CallVoid(1, func(f *vm.Frame) {
		for i := 0; i < 40; i++ {
			f.SetLocal(0, f.MustNew(node))
		}
	})
	rt.ForceCollect()
}

// TestElisionMatchesInterfaceDispatch is the ABI-equivalence property:
// for every registered collector spec, the events the runtime delivers
// through the spec's declared slots are exactly the events the old
// interface ABI would have delivered to the same collector — the
// subscribed-slot streams of a partially subscribed table equal the
// streams of the same collector under full subscription (which is the
// old five-method dispatch, AllAccess/AllPops standing in for the
// ForceAccessEvents/ForceFramePopEvents opt-outs). Events the new ABI
// elides are exactly the calls the old ABI spent on no-op methods.
func TestElisionMatchesInterfaceDispatch(t *testing.T) {
	for _, spec := range AllSpecs() {
		t.Run(spec, func(t *testing.T) {
			factory, err := Parse(spec)
			if err != nil {
				t.Fatal(err)
			}

			// Run 1: the spec's real event table, tracing what the
			// runtime actually dispatches to its declared slots.
			declared := factory()
			var got []string
			rt := vm.New(heap.New(1<<20), traceEvents(declared, false, &got))
			driveElisionScript(rt)

			// Run 2: a fresh instance of the same collector under full
			// subscription — the old ABI's dispatch surface.
			full := factory()
			var ref []string
			rt2 := vm.New(heap.New(1<<20), traceEvents(full, true, &ref))
			driveElisionScript(rt2)

			// Keep only the reference events for slots the spec
			// declares; the remainder were no-op dispatches by
			// construction.
			want := ref[:0:0]
			for _, e := range ref {
				switch {
				case declared.Alloc == nil && len(e) > 5 && e[:5] == "alloc":
				case declared.Ref == nil && len(e) > 3 && e[:3] == "ref":
				case declared.StaticRef == nil && len(e) > 6 && e[:6] == "static":
				case declared.Return == nil && len(e) > 6 && e[:6] == "return":
				case declared.FramePop == nil && len(e) > 3 && e[:3] == "pop":
				case declared.Access == nil && len(e) > 6 && e[:6] == "access":
				default:
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("dispatch diverged: %d events via declared slots, %d via full subscription\ngot:  %v\nwant: %v",
					len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("event %d diverged: got %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}
