package collectors

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSpecRoundTrip is the property the results codec depends on: for
// every registered base and every combination of its declared
// modifiers — in any order, with duplicates, spelled via aliases —
// ParseSpec(s.String()) yields an equal Spec.
func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, base := range Names() {
		mods := Modifiers(base)
		// Every subset of the declared modifiers (the grammars are small:
		// cg has 6, the rest none).
		for mask := 0; mask < 1<<len(mods); mask++ {
			var pick []string
			for i, m := range mods {
				if mask&(1<<i) != 0 {
					pick = append(pick, m)
				}
			}
			// Shuffle and duplicate a random pick: order and multiplicity
			// must not matter.
			rng.Shuffle(len(pick), func(i, j int) { pick[i], pick[j] = pick[j], pick[i] })
			if len(pick) > 0 {
				pick = append(pick, pick[rng.Intn(len(pick))])
			}
			raw := strings.Join(append([]string{base}, pick...), "+")

			s, err := ParseSpec(raw)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", raw, err)
			}
			back, err := ParseSpec(s.String())
			if err != nil {
				t.Fatalf("ParseSpec(%q.String() = %q): %v", raw, s, err)
			}
			if !back.Equal(s) {
				t.Fatalf("round trip diverged: %q -> %+v -> %q -> %+v", raw, s, s, back)
			}
			if _, err := s.Factory(); err != nil {
				t.Fatalf("canonical spec %q lost its factory: %v", s, err)
			}
		}
	}
}

// TestSpecAliasesCanonicalise checks the alias spellings collapse to the
// identity the store keys on.
func TestSpecAliasesCanonicalise(t *testing.T) {
	for raw, want := range map[string]string{
		"cg-noopt":           "cg+noopt",
		"cg-recycle":         "cg+recycle",
		"cg-recycle+reset":   "cg+recycle+reset",
		"cg+reset+recycle":   "cg+recycle+reset",
		"cg+recycle+recycle": "cg+recycle",
		"msa":                "msa",
		// The default tenuring threshold is the plain base, whatever
		// its numeric spelling: all must share one store identity.
		"gen+promote=2":  "gen",
		"gen+promote=02": "gen",
		"gen+promote=8":  "gen+promote=8",
		"gen+promote=08": "gen+promote=8",
	} {
		got, err := Canonical(raw)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", raw, err)
		}
		if got != want {
			t.Fatalf("Canonical(%q) = %q, want %q", raw, got, want)
		}
	}
}

// TestSpecRejectsBadGrammar mirrors TestErrors at the Spec layer.
func TestSpecRejectsBadGrammar(t *testing.T) {
	for _, bad := range []string{
		"quantum", "cg+warp", "msa+recycle", "",
		// Conflicting tenuring thresholds must be rejected, including
		// conflicts involving the default spelling.
		"gen+promote=2+promote=3", "gen+promote=4+promote=8",
		"gen+promote=0", "gen+promote=abc",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) must error", bad)
		}
	}
}

// TestModifiersDeclared keeps the declared grammar in sync with buildCG.
func TestModifiersDeclared(t *testing.T) {
	for _, m := range []string{"noopt", "recycle", "typed", "reset", "packed", "checked"} {
		found := false
		for _, d := range Modifiers("cg") {
			if d == m {
				found = true
			}
		}
		if !found {
			t.Fatalf("cg modifier %q not declared in Register", m)
		}
		if _, err := ParseSpec("cg+" + m); err != nil {
			t.Fatalf("declared modifier %q does not build: %v", m, err)
		}
	}
	if mods := Modifiers("msa"); len(mods) != 0 {
		t.Fatalf("msa declares modifiers %v but accepts none", mods)
	}
}
