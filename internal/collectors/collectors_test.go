package collectors

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gengc"
	"repro/internal/msa"
)

func TestNewBaseNames(t *testing.T) {
	for _, spec := range []string{"cg", "msa", "gen", "none"} {
		ev, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		switch spec {
		case "cg":
			if _, ok := ev.Collector.(*core.CG); !ok {
				t.Fatalf("New(%q).Collector = %T", spec, ev.Collector)
			}
		case "msa":
			if _, ok := ev.Collector.(*msa.System); !ok {
				t.Fatalf("New(%q).Collector = %T", spec, ev.Collector)
			}
		case "gen":
			if _, ok := ev.Collector.(*gengc.System); !ok {
				t.Fatalf("New(%q).Collector = %T", spec, ev.Collector)
			}
		case "none":
			// The empty event table has no collector behind it.
			if ev.Collector != nil || ev.Alloc != nil || ev.Collect != nil {
				t.Fatalf("New(%q) must be the empty table, got %+v", spec, ev)
			}
		}
		if ev.Name != spec {
			t.Fatalf("New(%q).Name = %q", spec, ev.Name)
		}
	}
}

func TestCGModifiersCompose(t *testing.T) {
	col, err := New("cg+recycle+reset")
	if err != nil {
		t.Fatal(err)
	}
	// Name encodes the active variants (core.CG.Name's convention).
	n := col.Name
	if !strings.Contains(n, "recycle") || !strings.Contains(n, "reset") {
		t.Fatalf("cg+recycle+reset built %q", n)
	}
}

func TestLegacyAliases(t *testing.T) {
	for alias, wantName := range map[string]string{
		"cg-noopt":   "cg-noopt",   // core's Name() spelling for StaticOpt off
		"cg-recycle": "cg+recycle", // core's Name() spelling for Recycle on
	} {
		col, err := New(alias)
		if err != nil {
			t.Fatalf("New(%q): %v", alias, err)
		}
		if col.Name != wantName {
			t.Fatalf("New(%q).Name = %q, want %q", alias, col.Name, wantName)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := New("quantum"); err == nil {
		t.Fatal("unknown collector must error")
	}
	if _, err := New("cg+warp"); err == nil {
		t.Fatal("unknown cg modifier must error")
	}
	if _, err := New("msa+recycle"); err == nil {
		t.Fatal("msa must reject modifiers")
	}
}

func TestFactoryReturnsFreshInstances(t *testing.T) {
	f, err := Parse("cg")
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	if a.Collector == b.Collector {
		t.Fatal("factory must build a new collector per call")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{"cg", "gen", "msa", "none"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if Doc("cg") == "" {
		t.Fatal("cg must have a doc line")
	}
}

func TestAliasComposesWithModifiers(t *testing.T) {
	col, err := New("cg-recycle+reset")
	if err != nil {
		t.Fatal(err)
	}
	n := col.Name
	if !strings.Contains(n, "recycle") || !strings.Contains(n, "reset") {
		t.Fatalf("cg-recycle+reset built %q", n)
	}
	if _, err := New("cg-noopt+checked"); err != nil {
		t.Fatalf("alias + modifier must parse: %v", err)
	}
}
