package workload

import (
	"math"
	"sort"

	"repro/internal/heap"
	"repro/internal/vm"
)

// DB models SPEC _209_db, an in-memory database manager: a static,
// index-organised table of records queried repeatedly. Query machinery
// (cursors, result sets, result items) is frame-local and collectable;
// result items reference the static records they select, so the §3.4
// optimization roughly doubles db's collectable fraction (Fig 4.1:
// 18% -> 36%). Query volume grows super-linearly with size while the
// table stays fixed, which is why db goes from 36% collectable in the
// small run to 99% in the large one (Fig 4.9).
func DB() Spec {
	return Spec{
		Name:    "db",
		Desc:    "Database Manager",
		Threads: single,
		HeapBytes: func(size int) int {
			return 48 << 10
		},
		Run: runDB,
	}
}

const dbRecords = 360

func runDB(rt *vm.Runtime, size int) {
	h := rt.Heap
	record := h.DefineClass(heap.Class{Name: "db.Record", Refs: 1, Data: 24})
	node := h.DefineClass(heap.Class{Name: "db.IndexNode", Refs: 3, Data: 8})
	cursor := h.DefineClass(heap.Class{Name: "db.Cursor", Refs: 1, Data: 16})
	result := h.DefineClass(heap.Class{Name: "db.ResultSet", Refs: 2, Data: 8})
	item := h.DefineClass(heap.Class{Name: "db.ResultItem", Refs: 2, Data: 8})
	arr := h.DefineClass(heap.Class{Name: "db.Object[]", IsArray: true})
	rng := newRNG("db", size)

	th := rt.NewThread(2)
	main := th.Top()

	// The database: records in a static array plus a binary index tree
	// built over them — all immortal.
	keys := make([]int, dbRecords)
	for i := range keys {
		keys[i] = rng.Intn(1 << 20)
	}
	sort.Ints(keys)
	tableSlot := rt.StaticSlot("db.table")
	table := main.MustNewArray(arr, dbRecords)
	main.PutStatic(tableSlot, table)
	recs := make([]heap.HandleID, dbRecords)
	for i := 0; i < dbRecords; i++ {
		r := main.MustNew(record)
		recs[i] = r
		main.PutField(table, i, r)
		if i > 0 {
			main.PutField(r, 0, recs[i-1]) // intrusive chain, as SPEC's Vector
		}
	}
	// Index: balanced tree of IndexNode objects over the key range.
	indexSlot := rt.StaticSlot("db.index")
	var build func(f *vm.Frame, lo, hi int) heap.HandleID
	build = func(f *vm.Frame, lo, hi int) heap.HandleID {
		if lo > hi {
			return heap.Nil
		}
		mid := (lo + hi) / 2
		n := f.MustNew(node)
		f.PutField(n, 0, recs[mid])
		if l := build(f, lo, mid-1); l != heap.Nil {
			f.PutField(n, 1, l)
		}
		if r := build(f, mid+1, hi); r != heap.Nil {
			f.PutField(n, 2, r)
		}
		return n
	}
	root := build(main, 0, dbRecords-1)
	main.PutStatic(indexSlot, root)

	// Query mix: point lookups and range scans. Volume ~ size^1.4,
	// matching the paper's small->medium->large growth of db's popped
	// population (A.2-A.4): the table is fixed, queries multiply.
	queries := int(80 * math.Pow(float64(size), 1.4))
	cacheSlot := rt.StaticSlot("db.cache")
	sessSlot := rt.StaticSlot("db.session")
	var found int
	sessionEvery := 10 * size // immortal snapshots stay a sliver of the heap
	for q := 0; q < queries; q++ {
		if q%sessionEvery == 0 {
			// A session snapshot: registered with the (static) session
			// table during setup, then deregistered, but retained in
			// the connection's root frame. Plain CG leaves it static
			// forever; the §3.6 resetting pass finds it "less live"
			// (Fig 4.11's second column).
			snap := main.MustNew(cursor)
			main.SetLocal(1, snap)
			main.PutStatic(sessSlot, snap)
			main.PutStatic(sessSlot, heap.Nil)
		}
		th.CallVoid(2, func(f *vm.Frame) {
			// Per-query transients.
			cur := f.MustNew(cursor)
			rs := f.MustNew(result)
			f.PutField(cur, 0, rs) // cursor+resultset: one block
			f.SetLocal(0, cur)
			pinned := q%8 == 0
			if pinned {
				// The statement cache pins the result set during the
				// index lookup, then releases it before the scan — the
				// transient static finger §4.7's resetting pass undoes
				// (the set stays live via this frame's local).
				f.PutStatic(cacheSlot, rs)
			}

			key := rng.Intn(1 << 20)
			// Point lookup via the index tree (real binary search over
			// the handle graph).
			n := f.GetStatic(indexSlot)
			lo, hi := 0, dbRecords-1
			for n != heap.Nil && lo <= hi {
				mid := (lo + hi) / 2
				switch {
				case keys[mid] == key:
					lo = hi + 1
				case keys[mid] < key:
					n = f.GetField(n, 2)
					lo = mid + 1
				default:
					n = f.GetField(n, 1)
					hi = mid - 1
				}
			}
			if pinned {
				f.PutStatic(cacheSlot, heap.Nil) // cache invalidation
			}
			// Range scan: materialise a few result items, each holding
			// a reference to its (static) record — the contamination
			// the §3.4 optimization neutralises.
			start := sort.SearchInts(keys, key)
			width := 1 + rng.Intn(4)
			if q%2 == 1 {
				// Aggregate query: scan the key range and fold values
				// into per-query accumulators without materialising
				// record references. These stay collectable in both
				// optimizer configurations — the reason db is ~18%
				// collectable even without §3.4 (Fig 4.1).
				sum := 0
				for i := start; i < start+width && i < dbRecords; i++ {
					sum += keys[i]
				}
				for k := 0; k < 2+width; k++ {
					f.SetLocal(1, f.MustNew(item))
				}
				f.PutField(rs, 1, f.Local(1))
				found += sum & 1
				return
			}
			var prev heap.HandleID
			for i := start; i < start+width && i < dbRecords; i++ {
				// Result items come from a helper (distance-1 deaths,
				// matching db's Fig 4.6 spread across 0-3 frames).
				rec := recs[i]
				it := th.Call(1, func(g *vm.Frame) heap.HandleID {
					x := g.MustNew(item)
					g.PutField(x, 0, rec) // reference *to* a static record
					return x
				})
				if prev != heap.Nil {
					f.PutField(it, 1, prev) // chain items into the set
				}
				prev = it
				found++
			}
			if prev != heap.Nil {
				f.PutField(rs, 0, prev)
			}
		})
	}
	_ = found
}
