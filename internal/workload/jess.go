package workload

import (
	"repro/internal/heap"
	"repro/internal/vm"
)

// Jess models SPEC _202_jess, a RETE-style expert system: a static rule
// network, a working memory of facts that accumulates for the program's
// duration, and per-cycle match tokens that die with the inference
// cycle's frame. Tokens hold references to the (static) facts they
// matched, so without the §3.4 optimization they are dragged into the
// static set — the biggest optimizer delta in Fig 4.1 (35% -> 61%).
func Jess() Spec {
	return Spec{
		Name:    "jess",
		Desc:    "Expert System",
		Threads: single,
		HeapBytes: func(size int) int {
			return (24 + 13*size) << 10 // working memory accumulates with size
		},
		Run: runJess,
	}
}

const (
	jessRules         = 16
	jessSlotsPerFact  = 4
	jessFactsPerCycle = 30
	jessValueRange    = 9 // match probability 1/9 per (rule, fact) pair
)

func runJess(rt *vm.Runtime, size int) {
	h := rt.Heap
	ruleNode := h.DefineClass(heap.Class{Name: "jess.RuleNode", Refs: 2, Data: 8})
	fact := h.DefineClass(heap.Class{Name: "jess.Fact", Refs: 1, Data: 16})
	token := h.DefineClass(heap.Class{Name: "jess.Token", Refs: 2, Data: 8})
	activation := h.DefineClass(heap.Class{Name: "jess.Activation", Refs: 2, Data: 8})
	arr := h.DefineClass(heap.Class{Name: "jess.Object[]", IsArray: true})
	rng := newRNG("jess", size)

	th := rt.NewThread(2)
	main := th.Top()

	// Static rule network: chains of alpha/beta nodes.
	netSlot := rt.StaticSlot("jess.network")
	net := main.MustNewArray(arr, jessRules)
	main.PutStatic(netSlot, net)
	// Each rule tests a (slot, value) pattern — primitive rule data.
	type pattern struct{ slot, value int }
	patterns := make([]pattern, jessRules)
	for r := 0; r < jessRules; r++ {
		n1 := main.MustNew(ruleNode)
		n2 := main.MustNew(ruleNode)
		main.PutField(n1, 0, n2)
		main.PutField(net, r, n1)
		patterns[r] = pattern{slot: rng.Intn(jessSlotsPerFact), value: rng.Intn(jessValueRange)}
	}

	// Working memory: a static, growing list of facts.
	wmSlot := rt.StaticSlot("jess.wm")
	var wmHead heap.HandleID
	// factVals mirrors each fact's primitive slot values.
	var factVals [][jessSlotsPerFact]int

	snapSlot := rt.StaticSlot("jess.snapshot")
	cycles := 12 * size
	for cy := 0; cy < cycles; cy++ {
		if cy%3 == 0 {
			// An engine-state snapshot: published to a static slot for
			// the duration of checkpointing, then withdrawn, but kept
			// in the driver's root frame — the "less live" pattern the
			// §3.6 resetting pass recovers (Fig 4.11).
			snap := main.MustNew(activation)
			main.SetLocal(0, snap)
			main.PutStatic(snapSlot, snap)
			main.PutStatic(snapSlot, heap.Nil)
		}
		th.CallVoid(2, func(f *vm.Frame) {
			// Assert new facts into working memory (immortal).
			base := len(factVals)
			for i := 0; i < jessFactsPerCycle; i++ {
				ft := f.MustNew(fact)
				if wmHead != heap.Nil {
					f.PutField(ft, 0, wmHead)
				}
				wmHead = ft
				f.PutStatic(wmSlot, wmHead)
				var vals [jessSlotsPerFact]int
				for s := range vals {
					vals[s] = rng.Intn(jessValueRange)
				}
				factVals = append(factVals, vals)
			}

			// Match: run every rule against the newly asserted facts
			// (the genuine RETE-ish join), emitting a Token per match.
			// Tokens reference their matched fact — static — and chain
			// to the previous token of the same rule (block size 2,
			// the dominant bucket of Fig 4.5 for jess).
			var agendaHead heap.HandleID
			matches := 0
			for r := 0; r < jessRules; r++ {
				var prevTok heap.HandleID
				for i := 0; i < jessFactsPerCycle; i++ {
					if factVals[base+i][patterns[r].slot] != patterns[r].value {
						continue
					}
					matches++
					// Half the tokens are built by a join helper and
					// returned (distance 1-2 deaths, the Fig 4.6
					// spread jess shows across frames 0-2).
					var tok heap.HandleID
					if matches%2 == 0 {
						tok = th.Call(1, func(g *vm.Frame) heap.HandleID {
							t := g.MustNew(token)
							g.SetLocal(0, t)
							return t
						})
					} else {
						tok = f.MustNew(token)
					}
					// About half the tokens hold a reference *to* the
					// (static) fact they matched — §3.4's target
					// pattern; the rest carry primitive bindings only.
					// This split is what leaves jess ~35% collectable
					// even without the optimization (Fig 4.1).
					if rng.Intn(5) < 2 {
						// Walk the WM list to the matched fact, as
						// RETE alpha memories do.
						wf := f.GetStatic(wmSlot)
						for k := 0; k < jessFactsPerCycle-1-i && wf != heap.Nil; k++ {
							wf = f.GetField(wf, 0)
						}
						if wf != heap.Nil {
							f.PutField(tok, 0, wf)
						}
					}
					if prevTok != heap.Nil && rng.Intn(3) == 0 {
						f.PutField(tok, 1, prevTok)
					}
					prevTok = tok
					f.SetLocal(0, tok)
				}
				// Fire at most one activation per rule per cycle; a
				// fraction are retained on the (static) agenda.
				if prevTok != heap.Nil && rng.Intn(4) == 0 {
					act := f.MustNew(activation)
					f.PutField(act, 0, prevTok)
					if agendaHead != heap.Nil {
						f.PutField(act, 1, agendaHead)
					}
					agendaHead = act
				}
			}
			if agendaHead != heap.Nil && rng.Intn(3) == 0 {
				// Occasionally the agenda escapes to working memory.
				f.PutStatic(rt.StaticSlot("jess.agenda"), agendaHead)
			}
			// Periodically, the conflict-resolution slot holds the
			// cycle's agenda only transiently: "a static object touches
			// another object and then points away" — the pattern §4.7's
			// resetting pass recovers (the agenda stays live via this
			// frame's local).
			if agendaHead != heap.Nil && cy%4 == 0 {
				slot := rt.StaticSlot("jess.conflictSet")
				f.PutStatic(slot, agendaHead)
				f.PutStatic(slot, heap.Nil)
			}
			f.SetLocal(1, agendaHead)
			_ = matches
		})
	}
}
