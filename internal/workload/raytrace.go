package workload

import (
	"math"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Raytrace models SPEC _205_raytrace: a recursive ray tracer whose
// per-pixel temporaries (rays, intersection records, colour vectors) are
// almost all frame-local — the thesis's best case at 98% collectable.
// Intersection records are allocated at the leaves of a recursive
// spatial-partition walk and travel up the whole frame chain via
// areturn, which is why raytrace dominates the ">5 frames" bucket of
// Fig 4.6; the records that merge into the winning ray's block form the
// 6-10-object equilive blocks of Fig 4.5.
func Raytrace() Spec {
	return Spec{
		Name:      "raytrace",
		Desc:      "Ray Tracer",
		Threads:   single,
		HeapBytes: raytraceHeap,
		Run: func(rt *vm.Runtime, size int) {
			runRaytrace(rt, size, 1)
		},
	}
}

// MTRT models SPEC _227_mtrt, the multithreaded variant of raytrace. As
// in SPEC, "multiple threads are required for computation only for the
// larger problem sizes" (thesis footnote 1); the two renderers share a
// small band of row buffers, producing the ~1% thread-shared population
// of Fig A.1.
func MTRT() Spec {
	return Spec{
		Name:      "mtrt",
		Desc:      "Ray Tracer, threaded",
		Threads:   func(size int) int { return map[bool]int{true: 2, false: 1}[size >= 10] },
		HeapBytes: raytraceHeap,
		Run: func(rt *vm.Runtime, size int) {
			threads := 1
			if size >= 10 {
				threads = 2
			}
			runRaytrace(rt, size, threads)
		},
	}
}

func raytraceHeap(size int) int {
	// The live set is tiny (scene + one row's temporaries); garbage is
	// torrential. A tight budget forces the MSA-only baseline to cycle.
	return 32 << 10
}

// nspheres is a power of two so the bisection walk is balanced: 64
// spheres, leaf width 4 -> four internal levels plus the leaf frame.
const nspheres = 64

// sphere is interpreter-side scene geometry (primitive data: no heap
// references, so no handles — like SPEC's float fields).
type sphere struct {
	cx, cy, cz, r float64
	reflect       bool
}

type tracerWorld struct {
	spheres []sphere
	ray     heap.ClassID
	hit     heap.ClassID
	color   heap.ClassID
	arr     heap.ClassID
}

func runRaytrace(rt *vm.Runtime, size, threads int) {
	h := rt.Heap
	w := &tracerWorld{
		ray:   h.DefineClass(heap.Class{Name: "rt.Ray", Refs: 1, Data: 48}),
		hit:   h.DefineClass(heap.Class{Name: "rt.Hit", Refs: 1, Data: 32}),
		color: h.DefineClass(heap.Class{Name: "rt.Color", Refs: 1, Data: 24}),
		arr:   h.DefineClass(heap.Class{Name: "rt.Object[]", IsArray: true}),
	}
	sceneCls := h.DefineClass(heap.Class{Name: "rt.Sphere", Refs: 0, Data: 40})
	rng := newRNG("raytrace", size)

	main := rt.NewThread(1)
	mf := main.Top()

	// Static scene: sphere objects published via a static array. They
	// are data-only — pixel temporaries never hold references to them,
	// which is what keeps raytrace ~98% collectable in both optimizer
	// configurations (Fig 4.1).
	sceneSlot := rt.StaticSlot("rt.scene")
	sceneArr := mf.MustNewArray(w.arr, nspheres)
	mf.PutStatic(sceneSlot, sceneArr)
	for i := 0; i < nspheres; i++ {
		mf.PutField(sceneArr, i, mf.MustNew(sceneCls))
		w.spheres = append(w.spheres, sphere{
			cx: rng.Float64()*8 - 4, cy: rng.Float64()*8 - 4, cz: 4 + rng.Float64()*8,
			r: 0.3 + rng.Float64(), reflect: i%3 == 0,
		})
	}

	width := 12
	height := 16 * size
	if threads == 1 {
		renderBand(main, w, width, 0, height, heap.Nil)
		return
	}

	// Multithreaded: two renderers split the image into bands and share
	// per-band row buffers (allocated by thread 1, touched by thread 2)
	// — the Fig 3.1 sharing pattern.
	second := rt.NewThread(1)
	shared := mf.MustNewArray(w.arr, 8)
	mf.SetLocal(0, shared)
	for i := 0; i < 8; i++ {
		mf.PutField(shared, i, mf.MustNew(w.color))
	}
	second.Top().SetLocal(0, shared) // thread 2 adopts the row buffers
	half := height / 2
	renderBand(main, w, width, 0, half, shared)
	renderBand(second, w, width, half, height, shared)
}

// renderBand traces rows [y0, y1).
func renderBand(th *vm.Thread, w *tracerWorld, width, y0, y1 int, shared heap.HandleID) {
	for y := y0; y < y1; y++ {
		th.CallVoid(2, func(row *vm.Frame) {
			for x := 0; x < width; x++ {
				px := tracePixel(th, w, x, y)
				row.SetLocal(0, px) // accumulate, then overwrite: garbage
				if shared != heap.Nil && x == 0 {
					// Both threads read the shared row buffers.
					row.GetField(shared, y%8)
				}
			}
		})
	}
}

// tracePixel casts the primary ray for (x, y); the returned colour (and
// the intersection block contaminated into it) depends on the row frame
// after the areturn.
func tracePixel(th *vm.Thread, w *tracerWorld, x, y int) heap.HandleID {
	return th.Call(2, func(f *vm.Frame) heap.HandleID {
		dx := float64(x)/6 - 1
		dy := float64(y%16)/8 - 1
		return shade(th, w, f, 0, 0, 0, 0, dx, dy, 1)
	})
}

// shade allocates the Ray, runs the recursive intersection walk, links
// the winning intersection block into the ray and the resulting colour
// (so the whole block survives exactly until the row frame pops), and
// recurses on reflective hits up to depth 6.
func shade(th *vm.Thread, w *tracerWorld, f *vm.Frame, depth int, ox, oy, oz, dx, dy, dz float64) heap.HandleID {
	r := f.MustNew(w.ray)
	f.SetLocal(0, r)

	hit, best, bestIdx := intersect(th, w, f, 0, nspheres, ox, oy, oz, dx, dy, dz)
	if hit != heap.Nil {
		f.PutField(r, 0, hit) // ray joins the intersection block
	}
	var c heap.HandleID
	if bestIdx >= 0 {
		s := w.spheres[bestIdx]
		if s.reflect && depth < 6 {
			// Reflect: recurse in a fresh frame; the child colour is
			// promoted into this frame and then returned again.
			c = th.Call(2, func(g *vm.Frame) heap.HandleID {
				hx := ox + best*dx
				hy := oy + best*dy
				hz := oz + best*dz
				nx, ny, nz := (hx-s.cx)/s.r, (hy-s.cy)/s.r, (hz-s.cz)/s.r
				dot := dx*nx + dy*ny + dz*nz
				return shade(th, w, g, depth+1, hx, hy, hz, dx-2*dot*nx, dy-2*dot*ny, dz-2*dot*nz)
			})
		} else {
			c = f.MustNew(w.color)
		}
	} else {
		c = f.MustNew(w.color) // background
	}
	if hit != heap.Nil {
		f.PutField(c, 0, hit) // the colour carries its intersection data
	}
	return c
}

// mergeAbove: internal bisection levels wider than this merge the losing
// child's intersection block into the winner's (SPEC stores per-node
// IntersectPt data into the ray); narrower levels let losers die with
// their frame. The split keeps collected blocks in the 6-10 bucket of
// Fig 4.5 while sending the merged records to the ">5 frames" bucket of
// Fig 4.6.
const mergeAbove = 8

// intersect finds the closest hit among spheres [lo, hi) by recursive
// bisection. Every leaf allocates an intersection record and returns it
// up the frame chain regardless of outcome.
func intersect(th *vm.Thread, w *tracerWorld, f *vm.Frame, lo, hi int, ox, oy, oz, dx, dy, dz float64) (heap.HandleID, float64, int) {
	if hi-lo <= 4 {
		best, bestIdx := math.Inf(1), -1
		for i := lo; i < hi; i++ {
			s := w.spheres[i]
			// Ray-sphere intersection: solve |o + t d - c|^2 = r^2.
			lx, ly, lz := s.cx-ox, s.cy-oy, s.cz-oz
			dd := dx*dx + dy*dy + dz*dz
			b := lx*dx + ly*dy + lz*dz
			c := lx*lx + ly*ly + lz*lz - s.r*s.r
			disc := b*b - dd*c
			if disc < 0 {
				continue
			}
			t := (b - math.Sqrt(disc)) / dd
			if t > 1e-4 && t < best {
				best, bestIdx = t, i
			}
		}
		h := th.Call(1, func(g *vm.Frame) heap.HandleID {
			return g.MustNew(w.hit) // born 6+ frames below the row
		})
		return h, best, bestIdx
	}
	mid := (lo + hi) / 2
	var lt, rtt float64
	var li, ri int
	var lh, rh heap.HandleID
	lh = th.Call(1, func(g *vm.Frame) heap.HandleID {
		h, t, i := intersect(th, w, g, lo, mid, ox, oy, oz, dx, dy, dz)
		lt, li = t, i
		return h
	})
	rh = th.Call(1, func(g *vm.Frame) heap.HandleID {
		h, t, i := intersect(th, w, g, mid, hi, ox, oy, oz, dx, dy, dz)
		rtt, ri = t, i
		return h
	})
	win, lose := lh, rh
	wt, wi := lt, li
	if rtt < lt {
		win, lose = rh, lh
		wt, wi = rtt, ri
	}
	if hi-lo > mergeAbove && win != heap.Nil && lose != heap.Nil {
		f.PutField(win, 0, lose) // the winner's block absorbs the loser
	}
	return win, wt, wi
}
