package workload

import (
	"strconv"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Jack models SPEC _228_jack, a PCCTS parser generator: a token storm.
// The scanner allocates a Token per lexeme (often with an attached
// lexeme string — the block-size-2 bulge of Fig 4.5), returns it to the
// parser (one areturn hop: the Fig 4.6 age-1 spike), and the parser's
// per-production frames build small node trees that die on reduction.
// Identifier names are interned on first occurrence (§3.2), so jack's
// static share grows with the input's vocabulary — ~10% at every size
// (A.2-A.4).
func Jack() Spec {
	return Spec{
		Name:    "jack",
		Desc:    "PCCTS tool",
		Threads: single,
		HeapBytes: func(size int) int {
			return (32 + 2*size) << 10 // the interned vocabulary grows with size
		},
		Run: runJack,
	}
}

func runJack(rt *vm.Runtime, size int) {
	h := rt.Heap
	tokenCls := h.DefineClass(heap.Class{Name: "jack.Token", Refs: 1, Data: 16})
	lexeme := h.DefineClass(heap.Class{Name: "jack.Lexeme", Refs: 0, Data: 24})
	nodeCls := h.DefineClass(heap.Class{Name: "jack.Node", Refs: 2, Data: 8})
	symCls := h.DefineClass(heap.Class{Name: "jack.SymbolName", Refs: 0, Data: 16})
	ruleCls := h.DefineClass(heap.Class{Name: "jack.Rule", Refs: 2, Data: 8})
	rng := newRNG("jack", size)

	th := rt.NewThread(2)
	mf := th.Top()

	// Static grammar rules, chained off a static head.
	ruleSlot := rt.StaticSlot("jack.rules")
	var ruleHead heap.HandleID
	for i := 0; i < 60; i++ {
		r := mf.MustNew(ruleCls)
		if ruleHead != heap.Nil {
			mf.PutField(r, 0, ruleHead)
		}
		ruleHead = r
		mf.PutStatic(ruleSlot, ruleHead)
	}

	// The identifier vocabulary grows with the input; each name is
	// interned on first sight inside the scanner.
	vocab := 130 * size
	if vocab > 6000 {
		vocab = 6000
	}

	tokens := 1200 * size
	scanned := 0
	// idNames caches the identifier lexemes: the intern keys must be
	// the exact strings the scanner always produced, but formatting
	// one per sighting cost more than the rest of the scan.
	idNames := make([]string, vocab)
	idName := func(k int) string {
		if idNames[k] == "" {
			idNames[k] = "id" + strconv.Itoa(k)
		}
		return idNames[k]
	}
	// nextToken: allocated in the scanner's frame, returned to the
	// production frame — dying exactly one frame from birth.
	nextToken := func() heap.HandleID {
		return th.Call(1, func(f *vm.Frame) heap.HandleID {
			scanned++
			t := f.MustNew(tokenCls)
			// Real scanning work: hash the synthetic lexeme bytes.
			var hash uint32
			n := 3 + rng.Intn(12)
			for i := 0; i < n; i++ {
				hash = hash*16777619 ^ uint32(rng.Intn(96)+32)
			}
			switch {
			case hash%8 < 2:
				// Identifiers intern their name (static on first use)
				// and hold a reference to it — without §3.4 this drags
				// the token (and any node that adopts it) into the
				// static set: jack's 69% -> 89% optimizer delta in
				// Fig 4.1.
				sym, err := f.Intern(idName(rng.Intn(vocab)), symCls)
				if err != nil {
					panic(err)
				}
				f.PutField(t, 0, sym)
			case hash%8 < 5:
				// String-ish tokens carry a lexeme object: Token+Lexeme
				// form the size-2 equilive blocks jack is known for.
				lx := f.MustNew(lexeme)
				f.PutField(t, 0, lx)
			}
			f.SetLocal(0, t)
			return t
		})
	}

	// parseProduction consumes a handful of tokens; roughly a third are
	// adopted into tree nodes (blocks of 3), the rest die free-standing
	// (the size-1 "exact" population). Some productions recurse,
	// spreading deaths over 2-3 frames.
	var parseProduction func(depth int)
	parseProduction = func(depth int) {
		th.CallVoid(2, func(f *vm.Frame) {
			var prevNode heap.HandleID
			consume := 3 + rng.Intn(4)
			for i := 0; i < consume && scanned < tokens; i++ {
				tok := nextToken()
				f.SetLocal(0, tok)
				if rng.Intn(3) == 0 {
					n := f.MustNew(nodeCls)
					f.PutField(n, 0, tok) // node adopts its token
					if prevNode != heap.Nil && rng.Intn(3) == 0 {
						f.PutField(n, 1, prevNode)
					}
					prevNode = n
					f.SetLocal(1, n)
				}
			}
			if depth < 3 && rng.Intn(3) == 0 && scanned < tokens {
				parseProduction(depth + 1)
			}
		})
	}

	for scanned < tokens {
		parseProduction(0)
	}
}
