package workload

import (
	"fmt"

	"repro/internal/tape"
	"repro/internal/vm"
)

// RegisterTape registers a recorded event tape as a first-class
// workload under name: the full matrix machinery — engine cells, sweep
// servers, the results store — runs it like any built-in analog, with
// the spec's thread count and arena budget carried over from the
// recording. The replayed spec accepts any size (a tape is one fixed
// stream; Size is echoed from the recording for cell identity), and a
// malformed tape panics at run time like a workload bug would — the
// engine converts that to a cell error.
func RegisterTape(name string, t *tape.Tape) {
	Register(Spec{
		Name: name,
		Desc: fmt.Sprintf("tape replay (%s/size %d)", t.Meta.Workload, t.Meta.Size),
		Threads: func(int) int {
			if t.Meta.Threads < 1 {
				return 1
			}
			return t.Meta.Threads
		},
		HeapBytes: func(int) int { return t.Meta.HeapBytes },
		Run: func(rt *vm.Runtime, _ int) {
			if err := tape.NewReplayer(t).Run(rt); err != nil {
				panic(err)
			}
		},
	})
}
