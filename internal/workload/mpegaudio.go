package workload

import (
	"repro/internal/heap"
	"repro/internal/vm"
)

// Mpegaudio models SPEC _222_mpegaudio, an MPEG-3 decoder: almost pure
// fixed-point computation over static filterbank and Huffman tables. The
// thesis classifies it with compress — "allocate only a few objects and
// do mostly computation" — with a static set of ~7 000 objects and a
// collectable fraction of 7–9%.
func Mpegaudio() Spec {
	return Spec{
		Name:    "mpegaudio",
		Desc:    "MPEG-3 decompressor",
		Threads: single,
		HeapBytes: func(size int) int {
			return 64 << 10
		},
		Run: runMpegaudio,
	}
}

const (
	subbands     = 32
	filterTaps   = 16
	huffGroups   = 12
	huffPerGroup = 24
)

func runMpegaudio(rt *vm.Runtime, size int) {
	h := rt.Heap
	tap := h.DefineClass(heap.Class{Name: "mpeg.Tap", Refs: 0, Data: 8})
	huff := h.DefineClass(heap.Class{Name: "mpeg.HuffEntry", Refs: 1, Data: 8})
	frameBuf := h.DefineClass(heap.Class{Name: "mpeg.FrameBuf", Refs: 0, Data: 48})
	granule := h.DefineClass(heap.Class{Name: "mpeg.Granule", Refs: 1, Data: 24})
	arr := h.DefineClass(heap.Class{Name: "mpeg.Object[]", IsArray: true})
	rng := newRNG("mpegaudio", size)

	th := rt.NewThread(2)
	main := th.Top()

	// Static synthesis filterbank: subbands x taps coefficient objects,
	// published through a static table — the immortal bulk.
	fbSlot := rt.StaticSlot("mpeg.filterbank")
	fb := main.MustNewArray(arr, subbands*filterTaps)
	main.PutStatic(fbSlot, fb)
	for i := 0; i < subbands*filterTaps; i++ {
		main.PutField(fb, i, main.MustNew(tap))
	}
	// Static Huffman tables: chained entries per group.
	huffSlot := rt.StaticSlot("mpeg.huffman")
	ht := main.MustNewArray(arr, huffGroups)
	main.PutStatic(huffSlot, ht)
	for g := 0; g < huffGroups; g++ {
		var prev heap.HandleID
		for i := 0; i < huffPerGroup; i++ {
			e := main.MustNew(huff)
			if prev != heap.Nil {
				main.PutField(e, 0, prev)
			}
			prev = e
		}
		main.PutField(ht, g, prev)
	}

	// Decode loop: frames of fixed-point subband synthesis. Frame count
	// grows sub-linearly (SPEC decodes the same stream repeatedly at
	// larger sizes, dominated by arithmetic, not allocation).
	frames := 12 + size/3
	samplesPerFrame := 4096 * size
	if samplesPerFrame > 1<<21 {
		samplesPerFrame = 1 << 21
	}
	coeffs := make([]int32, subbands)
	for i := range coeffs {
		coeffs[i] = int32(rng.Intn(1 << 14))
	}
	var acc int64
	for fr := 0; fr < frames; fr++ {
		th.CallVoid(2, func(f *vm.Frame) {
			// Transients: frame buffers and a granule record per
			// decoded frame — the only collectable storage. One buffer
			// comes from a helper call (distance-1 death, Fig 4.6).
			buf := f.MustNew(frameBuf)
			gr := f.MustNew(granule)
			f.PutField(gr, 0, buf)
			side := th.Call(1, func(g *vm.Frame) heap.HandleID {
				g.SetLocal(0, g.MustNew(frameBuf)) // scratch
				return g.MustNew(frameBuf)
			})
			f.SetLocal(0, side)
			f.SetLocal(1, gr)
			f.SetLocal(0, f.MustNew(frameBuf)) // overlap buffer

			// Polyphase synthesis: the genuine DSP inner loop
			// (fixed-point multiply-accumulate across subbands).
			state := int32(rng.Intn(1 << 10))
			for s := 0; s < samplesPerFrame; s++ {
				sb := s & (subbands - 1)
				state = state*25173 + 13849
				acc += int64(state>>4) * int64(coeffs[sb])
				coeffs[sb] = (coeffs[sb]*31 + state>>8) & 0x3fff
			}
		})
	}
	_ = acc
}
