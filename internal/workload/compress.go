package workload

import (
	"repro/internal/heap"
	"repro/internal/vm"
)

// Compress models SPEC _201_compress, a modified Lempel-Ziv (LZW) coder.
// The demographic signature (Fig 4.2, A.2): few objects, dominated by a
// static dictionary built once and kept for the program's duration;
// per-block coding buffers are the only collectable storage. Larger
// sizes compress more data through the *same* dictionary, so the object
// population barely grows (paper: 5 123 objects small, 6 959 large).
func Compress() Spec {
	return Spec{
		Name:    "compress",
		Desc:    "Modified Lempel-Ziv",
		Threads: single,
		HeapBytes: func(size int) int {
			return 24 << 10 // dictionary-bound; transients are small
		},
		Run: runCompress,
	}
}

// lzwDictCap bounds the code dictionary, as LZW implementations reset at
// a fixed code width (12 bits in SPEC's; scaled down here).
const lzwDictCap = 448

func runCompress(rt *vm.Runtime, size int) {
	h := rt.Heap
	entry := h.DefineClass(heap.Class{Name: "compress.Entry", Refs: 1, Data: 8})
	buffer := h.DefineClass(heap.Class{Name: "compress.Buffer", Refs: 0, Data: 56})
	window := h.DefineClass(heap.Class{Name: "compress.Window", Refs: 2, Data: 24})
	arr := h.DefineClass(heap.Class{Name: "compress.Entry[]", IsArray: true})
	rng := newRNG("compress", size)

	th := rt.NewThread(2)
	main := th.Top()
	dictSlot := rt.StaticSlot("compress.dict")

	// Build the dictionary: a static array of Entry objects, each
	// referencing its prefix entry — the immortal core of the workload.
	dict := main.MustNewArray(arr, lzwDictCap)
	main.PutStatic(dictSlot, dict)
	for i := 0; i < 256; i++ {
		e := main.MustNew(entry)
		main.PutField(dict, i, e)
	}
	nextCode := 256

	// codes is the interpreter-side (prefixCode, byte) -> code table; it
	// models primitive dictionary state, which carries no handles. The
	// key space is dense and bounded (prefix < lzwDictCap, byte < 256),
	// so a flat table replaces the hash map the inner loop used to spend
	// most of its cycles probing; 0 means absent (codes 0-255 are never
	// stored — only fresh codes >= 256 enter the table).
	codes := make([]int32, lzwDictCap<<8)

	// Compress blocks. Block count grows slowly with size (the SPEC
	// input is recompressed repeatedly); block length carries the real
	// computational scaling.
	blocks := 8 + size/2
	blockLen := 2048 * size
	if blockLen > 1<<20 {
		blockLen = 1 << 20
	}
	var checksum uint32
	for b := 0; b < blocks; b++ {
		th.CallVoid(2, func(f *vm.Frame) {
			// Per-block transients: I/O buffers and a sliding window
			// record, all dead when this frame pops. The input buffer
			// comes from a helper call, so it dies one frame from its
			// birth (the distance-1 population of Fig 4.6).
			out := f.MustNew(buffer)
			win := f.MustNew(window)
			f.PutField(win, 0, out)
			in := th.Call(1, func(g *vm.Frame) heap.HandleID {
				b := g.MustNew(buffer)
				g.SetLocal(0, g.MustNew(buffer)) // scratch, dies at depth 0
				return b
			})
			f.PutField(win, 1, in)
			f.SetLocal(0, out)
			f.SetLocal(1, win)

			// The LZW inner loop over synthetic data.
			prev := int(rng.Intn(256))
			for i := 0; i < blockLen; i++ {
				c := byte(rng.Intn(256) & 0x3f) // skewed alphabet: real matches
				key := uint32(prev)<<8 | uint32(c)
				if code := codes[key]; code != 0 {
					prev = int(code)
					continue
				}
				checksum = checksum*31 + key
				if nextCode < lzwDictCap {
					// A genuinely new phrase: one dictionary Entry,
					// chained to its prefix and published in the
					// static table.
					e := f.MustNew(entry)
					prefix := f.GetField(dict, prev%256)
					if prefix != heap.Nil {
						f.PutField(e, 0, prefix)
					}
					f.PutField(dict, nextCode, e)
					codes[key] = int32(nextCode)
					nextCode++
				}
				prev = int(c)
			}
		})
	}
	_ = checksum
}
