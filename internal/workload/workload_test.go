package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/stats"
	"repro/internal/vm"
)

// measure runs one analog under CG with an idle traditional collector
// (the demographics configuration of §4.5) and returns the breakdown.
func measure(t *testing.T, name string, size int, opt bool) (core.Breakdown, core.Stats) {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cg := core.New(core.Config{StaticOpt: opt, Checked: true})
	rt := vm.New(heap.New(512<<20), cg)
	s.Run(rt, size)
	return cg.Snapshot(), cg.Stats()
}

func pct(part, whole uint64) float64 { return stats.PctF(part, whole) }

// TestRegistry sanity-checks the benchmark table.
func TestRegistry(t *testing.T) {
	specs := All()
	if len(specs) != 8 {
		t.Fatalf("expected the 8 SPEC analogs, got %d", len(specs))
	}
	want := []string{"compress", "jess", "raytrace", "db", "javac", "mpegaudio", "mtrt", "jack"}
	for i, name := range want {
		if specs[i].Name != name {
			t.Fatalf("order: got %s at %d, want %s", specs[i].Name, i, name)
		}
		if specs[i].HeapBytes(1) <= 0 || specs[i].Threads(1) < 1 {
			t.Fatalf("%s: degenerate spec", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted a bogus name")
	}
}

// TestCollectablePercentages pins each analog's size-1 collectable
// fraction to a band around the thesis's Fig 4.1 values (with opt).
func TestCollectablePercentages(t *testing.T) {
	cases := []struct {
		name     string
		lo, hi   float64 // acceptable collectable % band
		paperPct float64 // Fig 4.1, for the record
	}{
		{"compress", 3, 18, 11},
		{"jess", 50, 72, 61},
		{"raytrace", 90, 100, 98},
		{"db", 25, 48, 36},
		{"javac", 15, 35, 24},
		{"mpegaudio", 3, 15, 7},
		{"mtrt", 90, 100, 98},
		{"jack", 80, 97, 89},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, _ := measure(t, tc.name, 1, true)
			got := pct(b.Popped, b.Created)
			if got < tc.lo || got > tc.hi {
				t.Fatalf("collectable = %.0f%%, want within [%.0f, %.0f] (paper: %.0f%%)",
					got, tc.lo, tc.hi, tc.paperPct)
			}
			if b.Live != 0 {
				t.Fatalf("%d objects neither popped, static, thread nor swept", b.Live)
			}
		})
	}
}

// TestOptimizationDeltas: the §3.4 optimization must matter for the
// benchmarks whose temporaries reference static data (jess, db, jack)
// and be neutral for raytrace (Fig 4.1's two columns).
func TestOptimizationDeltas(t *testing.T) {
	gains := []struct {
		name    string
		minGain float64 // percentage points of collectable gained by opt
	}{
		{"jess", 15},
		{"db", 6},
		{"jack", 10},
	}
	for _, tc := range gains {
		t.Run(tc.name, func(t *testing.T) {
			with, _ := measure(t, tc.name, 1, true)
			without, _ := measure(t, tc.name, 1, false)
			gain := pct(with.Popped, with.Created) - pct(without.Popped, without.Created)
			if gain < tc.minGain {
				t.Fatalf("optimization gain = %.1f points, want >= %.0f", gain, tc.minGain)
			}
		})
	}
	t.Run("raytrace-neutral", func(t *testing.T) {
		with, _ := measure(t, "raytrace", 1, true)
		without, _ := measure(t, "raytrace", 1, false)
		d := pct(with.Popped, with.Created) - pct(without.Popped, without.Created)
		if d < -2 || d > 2 {
			t.Fatalf("raytrace should be optimizer-neutral, delta = %.1f", d)
		}
	})
}

// TestJavacThreadSharing: javac's signature demographic is a dominant
// thread-shared population at size 1 (Fig 4.2: >50% of objects).
func TestJavacThreadSharing(t *testing.T) {
	b, _ := measure(t, "javac", 1, true)
	share := pct(b.Thread, b.Created)
	if share < 35 || share > 70 {
		t.Fatalf("thread-shared = %.0f%%, want 35-70 (paper: ~55)", share)
	}
	// Everything else in the suite shares at most a sliver.
	for _, name := range []string{"compress", "jess", "raytrace", "db", "mpegaudio", "jack"} {
		o, _ := measure(t, name, 1, true)
		if s := pct(o.Thread, o.Created); s > 2 {
			t.Fatalf("%s: unexpected thread sharing %.1f%%", name, s)
		}
	}
}

// TestMTRTSharesAtLargerSizes: mtrt is single-threaded at size 1 (like
// SPEC) and shows a small shared population at size 10.
func TestMTRTSharesAtLargerSizes(t *testing.T) {
	small, _ := measure(t, "mtrt", 1, true)
	if small.Thread != 0 {
		t.Fatalf("mtrt size 1 must be single-threaded, shared = %d", small.Thread)
	}
	big, _ := measure(t, "mtrt", 10, true)
	if big.Thread == 0 {
		t.Fatal("mtrt size 10 must share objects across its two threads")
	}
	if s := pct(big.Thread, big.Created); s > 5 {
		t.Fatalf("mtrt sharing should stay small (paper ~1%%), got %.1f%%", s)
	}
}

// TestSizeScalingShapes: growing the problem size must reproduce the
// paper's small->large trends (Fig 4.9): db and javac become
// overwhelmingly collectable while compress/mpegaudio stay static-bound.
func TestSizeScalingShapes(t *testing.T) {
	dbSmall, _ := measure(t, "db", 1, true)
	dbBig, _ := measure(t, "db", 10, true)
	if !(pct(dbBig.Popped, dbBig.Created) > pct(dbSmall.Popped, dbSmall.Created)+30) {
		t.Fatal("db's collectable share must surge with size")
	}
	for _, name := range []string{"compress", "mpegaudio"} {
		small, _ := measure(t, name, 1, true)
		big, _ := measure(t, name, 10, true)
		growth := float64(big.Created) / float64(small.Created)
		if growth > 2 {
			t.Fatalf("%s: population grew %.1fx; should be computation-bound", name, growth)
		}
	}
	jkSmall, _ := measure(t, "jack", 1, true)
	jkBig, _ := measure(t, "jack", 10, true)
	if jkBig.Created < 5*jkSmall.Created {
		t.Fatal("jack's token storm must scale with input size")
	}
}

// TestAgeProfiles pins the distinctive Fig 4.6 signatures: raytrace's
// mass beyond 5 frames, jack's spike at distance 1.
func TestAgeProfiles(t *testing.T) {
	_, rtStats := measure(t, "raytrace", 1, true)
	var total uint64
	for _, n := range rtStats.AgeAtDeath {
		total += n
	}
	if over5 := pct(rtStats.AgeAtDeath[6], total); over5 < 25 {
		t.Fatalf("raytrace >5-frame deaths = %.0f%%, want a dominant share (paper: 55%%)", over5)
	}
	_, jkStats := measure(t, "jack", 1, true)
	total = 0
	for _, n := range jkStats.AgeAtDeath {
		total += n
	}
	if at1 := pct(jkStats.AgeAtDeath[1], total); at1 < 50 {
		t.Fatalf("jack distance-1 deaths = %.0f%%, want the majority (paper: ~75%%)", at1)
	}
}

// TestBlockProfiles: jess and jack must be dominated by blocks of three
// or fewer objects ("the majority of blocks do contain three or fewer
// objects", §4.4), and jack must show a large singleton (exact) share.
func TestBlockProfiles(t *testing.T) {
	for _, name := range []string{"jess", "jack", "db", "javac"} {
		_, st := measure(t, name, 1, true)
		var small, all uint64
		for i, n := range st.BlockSize {
			all += n
			if i <= 2 {
				small += n
			}
		}
		if all == 0 {
			t.Fatalf("%s: no collected blocks", name)
		}
		if pct(small, all) < 60 {
			t.Fatalf("%s: blocks of <=3 are only %.0f%%", name, pct(small, all))
		}
	}
	_, jk := measure(t, "jack", 1, true)
	if jk.Singleton == 0 {
		t.Fatal("jack must collect singleton blocks (its 'exact' share)")
	}
}

// TestDeterminism: identical (workload, size) runs produce identical
// collector statistics — the experiments depend on replayability.
func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a, sa := measure(t, name, 1, true)
		b, sb := measure(t, name, 1, true)
		if a != b || sa != sb {
			t.Fatalf("%s: two identical runs diverged", name)
		}
	}
}

// TestRunsUnderTightHeap: every analog must complete inside its own
// suggested heap budget when the full collector cascade is available.
func TestRunsUnderTightHeap(t *testing.T) {
	for _, s := range All() {
		t.Run(s.Name, func(t *testing.T) {
			cg := core.New(core.Config{StaticOpt: true})
			rt := vm.New(heap.New(s.HeapBytes(1)), cg)
			s.Run(rt, 1) // panics (MustNew) on hard OOM
		})
	}
}

// TestRunsUnderMSAOnly: the analogs also complete under the baseline
// collector alone — required for the timing comparisons.
func TestRunsUnderMSAOnly(t *testing.T) {
	for _, s := range All() {
		t.Run(s.Name, func(t *testing.T) {
			rt := vm.New(heap.New(s.HeapBytes(1)), msa.NewSystem())
			s.Run(rt, 1)
			if rt.GCCycles() == 0 && s.Name != "compress" && s.Name != "mpegaudio" {
				t.Logf("note: %s never triggered the traditional collector", s.Name)
			}
		})
	}
}
