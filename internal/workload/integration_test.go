package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gengc"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/vm"
)

// TestEveryWorkloadUnderEveryCollector is the cross-product integration
// suite: all eight analogs complete under every collector configuration,
// with CG's tainted-object checking armed, and the heap's accounting
// identity (allocated extents == live bytes) holds at the end.
func TestEveryWorkloadUnderEveryCollector(t *testing.T) {
	collectors := []struct {
		name string
		mk   func() vm.Collector
	}{
		{"cg", func() vm.Collector { return core.New(core.Config{StaticOpt: true, Checked: true}) }},
		{"cg-noopt", func() vm.Collector { return core.New(core.Config{Checked: true}) }},
		{"cg-recycle", func() vm.Collector {
			return core.New(core.Config{StaticOpt: true, Recycle: true, Checked: true})
		}},
		{"cg-typed", func() vm.Collector {
			return core.New(core.Config{StaticOpt: true, TypedRecycle: true, Checked: true})
		}},
		{"cg-reset", func() vm.Collector {
			return core.New(core.Config{StaticOpt: true, ResetOnGC: true, Checked: true})
		}},
		{"cg-packed", func() vm.Collector {
			return core.New(core.Config{StaticOpt: true, Packed: true, Checked: true})
		}},
		{"msa", func() vm.Collector { return msa.NewSystem() }},
		{"gen", func() vm.Collector { return gengc.New() }},
	}
	for _, spec := range All() {
		for _, col := range collectors {
			t.Run(spec.Name+"/"+col.name, func(t *testing.T) {
				c := col.mk()
				// Generous headroom over the calibrated budget: the
				// no-opt and gen configurations retain more.
				rt := vm.New(heap.New(4*spec.HeapBytes(1)+1<<20), c)
				spec.Run(rt, 1)
				if cg, ok := c.(*core.CG); ok {
					cg.FlushRecycle()
					b := cg.Snapshot()
					if got := b.Popped + b.Static + b.Thread + b.MSA + b.Live; got != b.Created {
						t.Fatalf("breakdown does not sum: %+v", b)
					}
				}
				// Heap identity: every live object's extent is
				// accounted, nothing more.
				bytes := 0
				rt.Heap.ForEachLive(func(id heap.HandleID) { bytes += rt.Heap.SizeOf(id) })
				if bytes != rt.Heap.Arena().InUse() {
					t.Fatalf("arena accounting: live extents %d != inUse %d",
						bytes, rt.Heap.Arena().InUse())
				}
			})
		}
	}
}

// TestForcedGCDuringEveryWorkload arms periodic full collections (the
// §4.7 instrumentation) under checked CG: any use of an object either
// collector wrongly freed panics.
func TestForcedGCDuringEveryWorkload(t *testing.T) {
	for _, spec := range All() {
		for _, reset := range []bool{false, true} {
			name := spec.Name + "/rebuild"
			if reset {
				name = spec.Name + "/reset"
			}
			t.Run(name, func(t *testing.T) {
				cg := core.New(core.Config{StaticOpt: true, ResetOnGC: reset, Checked: true})
				rt := vm.New(heap.New(64<<20), cg)
				rt.SetGCEvery(700) // aggressive: several cycles per run
				spec.Run(rt, 1)
				if rt.GCCycles() == 0 {
					t.Fatal("instrumentation did not fire")
				}
			})
		}
	}
}

// TestCGvsMSAAgreeOnSurvivors: after a full collection under the CG
// system, exactly the reachable objects survive — CG's conservatism can
// delay frees but never resurrect garbage past an MSA cycle.
func TestCGvsMSAAgreeOnSurvivors(t *testing.T) {
	for _, name := range []string{"jess", "db", "jack"} {
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cg := core.New(core.Config{StaticOpt: true, Checked: true})
			rt := vm.New(heap.New(64<<20), cg)
			spec.Run(rt, 1)
			rt.ForceCollect()
			// Oracle reachability over the final state.
			reach := make(map[heap.HandleID]bool)
			var queue []heap.HandleID
			push := func(id heap.HandleID) {
				if id != heap.Nil && !reach[id] {
					reach[id] = true
					queue = append(queue, id)
				}
			}
			rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
				for _, r := range roots {
					push(r)
				}
			})
			for len(queue) > 0 {
				id := queue[0]
				queue = queue[1:]
				rt.Heap.Refs(id, push)
			}
			if rt.Heap.NumLive() != len(reach) {
				t.Fatalf("live %d != reachable %d after full collection",
					rt.Heap.NumLive(), len(reach))
			}
		})
	}
}
