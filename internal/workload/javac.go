package workload

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Javac models SPEC _213_javac, the JDK 1.1 Java compiler. Its
// demographic signature is unique in the suite: the thesis found over
// 72% of javac's objects demoted for *thread sharing* in the small run
// (Fig 4.2, A.1 — the compiler shares its AST and symbol table with a
// background worker). Per-method code-generation temporaries die with
// their frames and dominate the larger runs, where javac reaches 91%
// collectable (Fig 4.9).
func Javac() Spec {
	return Spec{
		Name:    "javac",
		Desc:    "Java Compiler",
		Threads: func(int) int { return 2 },
		HeapBytes: func(size int) int {
			return (64 + 78*size) << 10 // the shared AST is immortal and grows
		},
		Run: runJavac,
	}
}

func runJavac(rt *vm.Runtime, size int) {
	h := rt.Heap
	astNode := h.DefineClass(heap.Class{Name: "javac.ASTNode", Refs: 3, Data: 8})
	symbol := h.DefineClass(heap.Class{Name: "javac.Symbol", Refs: 1, Data: 16})
	strCls := h.DefineClass(heap.Class{Name: "javac.String", Refs: 0, Data: 16})
	temp := h.DefineClass(heap.Class{Name: "javac.CodeTemp", Refs: 1, Data: 8})
	insn := h.DefineClass(heap.Class{Name: "javac.Instr", Refs: 1, Data: 8})
	arr := h.DefineClass(heap.Class{Name: "javac.Object[]", IsArray: true})
	rng := newRNG("javac", size)

	parser := rt.NewThread(2)  // front end
	checker := rt.NewThread(2) // background semantic analysis
	mf := parser.Top()

	// Interned well-known names (§3.2: the intern table is an
	// interpreter-internal static structure).
	for i := 0; i < 60; i++ {
		if _, err := mf.Intern(fmt.Sprintf("java.lang.Builtin%d", i), strCls); err != nil {
			panic(err)
		}
	}

	// A static class-path table, as the compiler's resident state.
	cpSlot := rt.StaticSlot("javac.classpath")
	cp := mf.MustNewArray(arr, 48)
	mf.PutStatic(cpSlot, cp)
	for i := 0; i < 48; i++ {
		mf.PutField(cp, i, mf.MustNew(symbol))
	}

	units := 2 + 2*size
	methodsPerUnit := 6
	// Per-method codegen volume grows with size (larger inputs have
	// bigger method bodies), driving the popped population past the
	// shared one in medium/large runs (A.3, A.4).
	tempsPerMethod := 3 + 2*size
	if tempsPerMethod > 200 {
		tempsPerMethod = 200
	}
	// AST size per unit also grows with input size, keeping the
	// thread-shared share substantial even in the large run (A.4:
	// javac's thread bucket is still ~35% at size 100).
	astPerUnit := 40 + 8*size
	if astPerUnit > 840 {
		astPerUnit = 840
	}

	for u := 0; u < units; u++ {
		// Parse: the front end builds the unit's AST and symbol list
		// and hands the root to the checker thread.
		root := parser.Call(2, func(f *vm.Frame) heap.HandleID {
			return parseUnit(f, astNode, symbol, astPerUnit, rng)
		})
		mf.SetLocal(0, root)

		// Background semantic analysis: the checker thread walks the
		// same AST. Every touched node is detected as thread-shared
		// and conservatively demoted (§3.3).
		checker.CallVoid(1, func(f *vm.Frame) {
			f.SetLocal(0, root)
			var walk func(n heap.HandleID, depth int)
			walk = func(n heap.HandleID, depth int) {
				if n == heap.Nil || depth > 12 {
					return
				}
				walk(f.GetField(n, 0), depth+1)
				walk(f.GetField(n, 1), depth+1)
			}
			walk(root, 0)
		})

		// Code generation: per-method frames full of short-lived
		// register temps and instruction records.
		for m := 0; m < methodsPerUnit; m++ {
			parser.CallVoid(2, func(f *vm.Frame) {
				var prev heap.HandleID
				for i := 0; i < tempsPerMethod; i++ {
					var o heap.HandleID
					if i%3 == 0 {
						o = f.MustNew(insn)
					} else {
						o = f.MustNew(temp)
					}
					if prev != heap.Nil && rng.Intn(3) == 0 {
						f.PutField(o, 0, prev) // small def-use chains
					}
					prev = o
					f.SetLocal(0, o)
				}
			})
		}
		mf.SetLocal(0, heap.Nil) // drop the unit's AST
	}
}

// parseUnit builds one compilation unit's AST: a binary tree of nodes
// with an attached symbol chain, allocated in the parser's frame and
// returned to the driver (areturn promotion).
func parseUnit(f *vm.Frame, astNode, symbol heap.ClassID, astPerUnit int, rng interface{ Intn(int) int }) heap.HandleID {
	nodes := astPerUnit + rng.Intn(astPerUnit/4+1)
	root := f.MustNew(astNode)
	f.SetLocal(0, root)
	for i := 1; i < nodes; i++ {
		n := f.MustNew(astNode)
		// Insert at a random position: descend left/right until a free
		// child slot appears (a real tree insertion over the handle
		// graph).
		cur := root
		for {
			slot := rng.Intn(2)
			child := f.GetField(cur, slot)
			if child == heap.Nil {
				f.PutField(cur, slot, n)
				break
			}
			cur = child
		}
		if i%5 == 0 {
			s := f.MustNew(symbol)
			f.PutField(n, 2, s) // declaration nodes carry a symbol
		}
	}
	return root
}
