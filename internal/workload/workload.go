// Package workload implements size-parameterised analogs of the eight
// SPECjvm98 benchmarks the thesis evaluates (Fig 4.1): compress, jess,
// raytrace, db, javac, mpegaudio, mtrt and jack.
//
// SPECjvm98 itself is licensed and unavailable, so each analog is a
// synthetic program that (a) performs genuine work of the same kind —
// LZW coding, RETE-style matching, ray–sphere intersection, index
// queries, recursive-descent compilation, filterbank DSP, tokenisation —
// and (b) reproduces the *object demographics* the thesis reports:
// the static / collectable / thread-shared proportions (Fig 4.2–4.4,
// A.1–A.4), the equilive block-size mix (Fig 4.5) and the age-at-death
// profile (Fig 4.6). CG's results depend only on those demographics, so
// matching them preserves the experiments' shape; see DESIGN.md §2.
//
// Sizes follow SPEC's 1/10/100 convention. Object counts are scaled down
// ~20× from the originals to keep the full experiment suite runnable in
// seconds; the *ratios* are what the figures compare.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/vm"
)

// Spec describes one benchmark analog.
type Spec struct {
	// Name matches the SPEC benchmark it models.
	Name string
	// Desc is the Fig 4.1 "description" column.
	Desc string
	// Threads reports how many threads the analog uses at the given
	// size (mtrt is multithreaded only for larger sizes, like SPEC's).
	Threads func(size int) int
	// HeapBytes suggests an arena budget that admits the run's live set
	// with slack but forces collection pressure on allocation-heavy
	// sizes (the §4.5 configuration).
	HeapBytes func(size int) int
	// Run executes the analog to completion on rt. All frames pop
	// before Run returns, so end-of-run snapshots classify every
	// object.
	Run func(rt *vm.Runtime, size int)
}

// registry holds the registered analogs in registration order (the
// thesis's table order for the built-in eight). It is populated from
// init and read-only afterwards, so the execution engine's workers may
// resolve workloads concurrently without locking.
var registry []Spec

// Register adds an analog to the matrix. Every layer — the engine, the
// experiment harness and the CLI tools — iterates the registry, so a
// new benchmark is one Register call, not edits in five places.
// Duplicate names panic: they are a wiring bug.
func Register(s Spec) {
	for _, r := range registry {
		if r.Name == s.Name {
			panic(fmt.Sprintf("workload: duplicate registration of %q", s.Name))
		}
	}
	registry = append(registry, s)
}

func init() {
	for _, s := range []Spec{
		Compress(),
		Jess(),
		Raytrace(),
		DB(),
		Javac(),
		Mpegaudio(),
		MTRT(),
		Jack(),
	} {
		Register(s)
	}
}

// All returns the registered analogs, the built-in eight first in the
// thesis's table order. The returned slice is a copy.
func All() []Spec {
	return append([]Spec(nil), registry...)
}

// ByName finds an analog by its SPEC name.
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the benchmark names in order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Seed is the deterministic RNG seed of a (workload, size) pair: every
// run replays the identical event stream. It is part of a cell's
// identity — the results store keys on it, so a change to the seeding
// scheme invalidates stored cells instead of silently mixing streams.
func Seed(name string, size int) int64 {
	seed := int64(size)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	return seed
}

// newRNG returns the deterministic per-workload generator.
func newRNG(name string, size int) *rand.Rand {
	return rand.New(rand.NewSource(Seed(name, size)))
}

// single returns a Threads function for single-threaded analogs.
func single(int) int { return 1 }
