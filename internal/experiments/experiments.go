// Package experiments regenerates every table and figure of the thesis's
// evaluation (Chapter 4 and Appendix A). Each Fig* function describes
// the relevant (workload × size × collector) cells as engine jobs,
// submits them to the caller's sharded execution engine, and renders
// the same rows the paper reports from the merged results.
//
// Determinism: every demographics cell runs on an isolated vm.Runtime
// shard with a deterministic workload RNG, and results land in
// submission-order slots, so the rendered tables are byte-identical
// for any worker count (see TestEngineDeterminism). Only the wall-clock
// figures (4.7, 4.8, 4.10, 4.12, A.5–A.7) vary run to run, as they did
// on the thesis's hardware.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

// Cell is the small extract a demographics consumer needs from one
// shard: the end-of-run classification, the CG counters, the forced
// traditional-collection count (Fig 4.11), the shard's arena occupancy
// (cgstats -arena-stats) and its cycle-phase extract (cgstats -pauses).
type Cell struct {
	B    core.Breakdown
	St   core.Stats
	GC   int
	Info heap.Info
	Obs  obs.CycleStats
}

// RunDemographics executes demographics jobs on the engine and returns
// one Cell per job in submission order. Shards are released as their
// cells complete (a size-100 shard holds millions of live objects;
// retaining the whole matrix until render would multiply peak memory by
// the job count). Every job must resolve to a contaminated-collector
// variant. cmd/cgstats shares this path with the Fig* regenerators.
func RunDemographics(eng *engine.Engine, jobs []engine.Job) ([]Cell, error) {
	cells := make([]Cell, len(jobs))
	errs := make([]error, len(jobs))
	eng.RunEach(jobs, func(i int, r engine.Result) {
		if r.Err != nil {
			errs[i] = r.Err
			return
		}
		cg, ok := r.Col.(*core.CG)
		if !ok {
			errs[i] = fmt.Errorf("experiments: %q is not the contaminated collector", jobs[i].Collector)
			return
		}
		cells[i] = Cell{B: cg.Snapshot(), St: cg.Stats(), GC: r.RT.GCCycles(),
			Info: r.RT.Heap.Arena().Info(), Obs: r.RT.Timeline().Stats()}
	})
	// Fail on the caller's goroutine, not a worker's.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// Fig41 reproduces Figure 4.1: per benchmark, objects created and the
// percentage collectable without and with the §3.4 optimization (size 1).
func Fig41(eng *engine.Engine) *table.Table {
	return renderFig(eng, fig41Data(workload.All()))
}

// Fig42_44 reproduces Figures 4.2 (size 1), 4.3 (size 10) and 4.4
// (size 100): the static and thread-shared percentages per benchmark.
func Fig42_44(eng *engine.Engine, size int) *table.Table {
	return renderFig(eng, fig42_44Data(workload.All(), size))
}

func figFromSize(size int) int {
	switch size {
	case 1:
		return 2
	case 10:
		return 3
	default:
		return 4
	}
}

// Fig45 reproduces Figure 4.5: the distribution of equilive block sizes
// at collection time, plus the percentage of objects that were collected
// exactly (singleton blocks).
func Fig45(eng *engine.Engine) *table.Table {
	return renderFig(eng, fig45Data(workload.All()))
}

// Fig46 reproduces Figure 4.6: the age at death (frame distance from
// birth to collection) of CG-collected objects.
func Fig46(eng *engine.Engine) *table.Table {
	return renderFig(eng, fig46Data(workload.All()))
}

// Fig49 reproduces Figure 4.9: the large (size 100) runs — objects
// created, percentage collectable with the optimization, and percentage
// exactly collectable.
func Fig49(eng *engine.Engine) *table.Table {
	return renderFig(eng, fig49Data(workload.All()))
}

// FigA1 reproduces Figure A.1: of the objects treated as static, the
// percentage demoted because of sharing among threads.
func FigA1(eng *engine.Engine) *table.Table {
	return renderFig(eng, figA1Data(workload.All()))
}

// FigA2_4 reproduces Figures A.2 (small), A.3 (medium) and A.4 (large):
// the absolute object breakdown into popped / static / thread.
func FigA2_4(eng *engine.Engine, size int) *table.Table {
	return renderFig(eng, figA2_4Data(workload.All(), size))
}

// resetGCEvery is the forced-collection period for the §4.7 resetting
// experiment. The thesis ran MSA every 100 000 JVM instructions; our
// analogs execute far fewer runtime operations than the JVM executed
// bytecodes, so the period is scaled to keep a comparable number of
// cycles per run.
const resetGCEvery = 1200

// Fig411 reproduces Figure 4.11: resetting CG structures during forced
// traditional collections — objects collected by MSA, objects found less
// live than CG believed, and the number of GC cycles.
func Fig411(eng *engine.Engine) *table.Table {
	return renderFig(eng, fig411Data(workload.All()))
}

// Fig413 reproduces Figure 4.13: the number of objects recycled (§3.7)
// versus the total allocated, small runs. Recycling only engages under
// allocation pressure, so each benchmark shard calibrates its own arena
// from a probe run and retries with more slack if the budget undershoots
// the collector's peak holdings — per-benchmark control flow the
// engine's generic Do distributes across the pool.
func Fig413(eng *engine.Engine) *table.Table {
	t := table.New("Fig 4.13: number of objects recycled, small runs",
		"benchmark", "objects recycled", "percent of total")
	specs := workload.All()
	results := make([]core.Stats, len(specs))
	errs := make([]error, len(specs))
	eng.Do(len(specs), func(i int) {
		// Calibrate the arena from a probe run: final live bytes plus
		// half the garbage bytes (the thesis sized its runs so the heap
		// filled).
		probe := engine.Exec(engine.Job{Workload: specs[i].Name, Size: 1, Collector: "cg"})
		if probe.Err != nil {
			// Fail on the caller's goroutine, not the worker's: a panic
			// here would kill the process instead of unwinding.
			errs[i] = probe.Err
			return
		}
		live := probe.RT.Heap.Arena().InUse()
		garbage := int(probe.RT.Heap.Stats().BytesAlloc) - live
		budget := live + garbage/2

		// An undershot budget surfaces as a hard-OOM job error; widen
		// the slack and retry. The attempt cap turns a budget-independent
		// failure (anything but OOM) into a report instead of an
		// unbounded arena-growth loop.
		const maxAttempts = 24
		var lastErr error
		for attempt := 0; attempt < maxAttempts; attempt++ {
			r := engine.Exec(engine.Job{Workload: specs[i].Name, Size: 1,
				Collector: "cg+recycle", HeapBytes: budget})
			if r.Err == nil {
				results[i] = r.Col.(*core.CG).Stats()
				return
			}
			lastErr = r.Err
			budget += garbage/4 + 1<<10
		}
		errs[i] = lastErr
	})
	for i, s := range specs {
		if errs[i] != nil {
			panic(errs[i])
		}
		st := results[i]
		t.Rowf(s.Name, st.Reused, stats.Pct(st.Reused, st.Created))
	}
	return t
}
