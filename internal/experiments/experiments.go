// Package experiments regenerates every table and figure of the thesis's
// evaluation (Chapter 4 and Appendix A). Each Fig* function runs the
// relevant workloads under the relevant collector configurations and
// renders the same rows the paper reports; EXPERIMENTS.md records the
// measured output next to the paper's numbers.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/vm"
	"repro/internal/workload"
)

// demographicsArena is the big-heap configuration used for object
// accounting ("asynchronous GC disabled as well as giving it plenty of
// storage", §4.5): the traditional collector never runs, so every object
// is classified purely by CG.
const demographicsArena = 512 << 20

// run executes one analog at size under cfg with an effectively
// unbounded heap and returns the collector.
func run(name string, size int, cfg core.Config) *core.CG {
	spec, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	cg := core.New(cfg)
	rt := vm.New(heap.New(demographicsArena), cg)
	spec.Run(rt, size)
	return cg
}

// Fig41 reproduces Figure 4.1: per benchmark, objects created and the
// percentage collectable without and with the §3.4 optimization (size 1).
func Fig41() *table.Table {
	t := table.New("Fig 4.1: percentage of objects collectable, without and with the static optimization (size 1)",
		"benchmark", "description", "objects created", "no opt", "with opt")
	for _, s := range workload.All() {
		noOpt := run(s.Name, 1, core.Config{StaticOpt: false})
		withOpt := run(s.Name, 1, core.Config{StaticOpt: true})
		bn, bw := noOpt.Snapshot(), withOpt.Snapshot()
		t.Rowf(s.Name, s.Desc, bw.Created,
			stats.Pct(bn.Popped, bn.Created), stats.Pct(bw.Popped, bw.Created))
	}
	return t
}

// Fig42_44 reproduces Figures 4.2 (size 1), 4.3 (size 10) and 4.4
// (size 100): the static and thread-shared percentages per benchmark.
func Fig42_44(size int) *table.Table {
	t := table.New(fmt.Sprintf("Fig 4.%d: objects treated as static and as thread-shared (size %d)", figFromSize(size),
		size),
		"benchmark", "created", "collectable", "static", "thread-shared")
	for _, s := range workload.All() {
		cg := run(s.Name, size, core.DefaultConfig())
		b := cg.Snapshot()
		t.Rowf(s.Name, b.Created, stats.Pct(b.Popped, b.Created),
			stats.Pct(b.Static, b.Created), stats.Pct(b.Thread, b.Created))
	}
	return t
}

func figFromSize(size int) int {
	switch size {
	case 1:
		return 2
	case 10:
		return 3
	default:
		return 4
	}
}

// Fig45 reproduces Figure 4.5: the distribution of equilive block sizes
// at collection time, plus the percentage of objects that were collected
// exactly (singleton blocks).
func Fig45() *table.Table {
	t := table.New("Fig 4.5: distribution of collected block sizes (size 1)",
		"benchmark", "total collectable", "1", "2", "3", "4", "5", "6-10", ">10", "percent exact")
	for _, s := range workload.All() {
		cg := run(s.Name, 1, core.DefaultConfig())
		st := cg.Stats()
		b := cg.Snapshot()
		t.Rowf(s.Name, b.Popped,
			st.BlockSize[0], st.BlockSize[1], st.BlockSize[2], st.BlockSize[3],
			st.BlockSize[4], st.BlockSize[5], st.BlockSize[6],
			stats.Pct(st.Singleton, b.Created))
	}
	return t
}

// Fig46 reproduces Figure 4.6: the age at death (frame distance from
// birth to collection) of CG-collected objects.
func Fig46() *table.Table {
	t := table.New("Fig 4.6: age at death of collected objects, in frame distance (size 1)",
		"benchmark", "0", "1", "2", "3", "4", "5", ">5")
	for _, s := range workload.All() {
		cg := run(s.Name, 1, core.DefaultConfig())
		st := cg.Stats()
		t.Rowf(s.Name,
			st.AgeAtDeath[0], st.AgeAtDeath[1], st.AgeAtDeath[2], st.AgeAtDeath[3],
			st.AgeAtDeath[4], st.AgeAtDeath[5], st.AgeAtDeath[6])
	}
	return t
}

// Fig49 reproduces Figure 4.9: the large (size 100) runs — objects
// created, percentage collectable with the optimization, and percentage
// exactly collectable.
func Fig49() *table.Table {
	t := table.New("Fig 4.9: SPEC benchmarks, large runs (size 100)",
		"benchmark", "objects created", "collectable (with opt)", "exactly collectable")
	for _, s := range workload.All() {
		cg := run(s.Name, 100, core.DefaultConfig())
		b := cg.Snapshot()
		st := cg.Stats()
		t.Rowf(s.Name, b.Created, stats.Pct(b.Popped, b.Created), stats.Pct(st.Singleton, b.Created))
	}
	return t
}

// FigA1 reproduces Figure A.1: of the objects treated as static, the
// percentage demoted because of sharing among threads.
func FigA1() *table.Table {
	t := table.New("Fig A.1: static objects due to sharing among threads (size 1)",
		"benchmark", "total static+thread", "percent due to threads")
	for _, s := range workload.All() {
		cg := run(s.Name, 1, core.DefaultConfig())
		b := cg.Snapshot()
		immortal := b.Static + b.Thread
		t.Rowf(s.Name, immortal, stats.Pct(b.Thread, immortal))
	}
	return t
}

// FigA2_4 reproduces Figures A.2 (small), A.3 (medium) and A.4 (large):
// the absolute object breakdown into popped / static / thread.
func FigA2_4(size int) *table.Table {
	t := table.New(fmt.Sprintf("Fig A.%d: object breakdown (size %d)", figFromSize(size), size),
		"benchmark", "popped", "static", "thread")
	for _, s := range workload.All() {
		cg := run(s.Name, size, core.DefaultConfig())
		b := cg.Snapshot()
		t.Rowf(s.Name, b.Popped, b.Static, b.Thread)
	}
	return t
}

// resetGCEvery is the forced-collection period for the §4.7 resetting
// experiment. The thesis ran MSA every 100 000 JVM instructions; our
// analogs execute far fewer runtime operations than the JVM executed
// bytecodes, so the period is scaled to keep a comparable number of
// cycles per run.
const resetGCEvery = 1200

// Fig411 reproduces Figure 4.11: resetting CG structures during forced
// traditional collections — objects collected by MSA, objects found less
// live than CG believed, and the number of GC cycles.
func Fig411() *table.Table {
	t := table.New(fmt.Sprintf("Fig 4.11: resetting results, small runs (MSA forced every %d operations)", resetGCEvery),
		"benchmark", "collected by MSA", "less live", "moved from static", "GC cycles")
	for _, s := range workload.All() {
		cg := core.New(core.Config{StaticOpt: true, ResetOnGC: true})
		rt := vm.New(heap.New(demographicsArena), cg)
		rt.GCEvery = resetGCEvery
		spec, err := workload.ByName(s.Name)
		if err != nil {
			panic(err)
		}
		spec.Run(rt, 1)
		st := cg.Stats()
		t.Rowf(s.Name, st.MSAFreed, st.LessLive, st.FromStatic, rt.GCCycles())
	}
	return t
}

// Fig413 reproduces Figure 4.13: the number of objects recycled (§3.7)
// versus the total allocated, small runs.
func Fig413() *table.Table {
	t := table.New("Fig 4.13: number of objects recycled, small runs",
		"benchmark", "objects recycled", "percent of total")
	for _, s := range workload.All() {
		spec, err := workload.ByName(s.Name)
		if err != nil {
			panic(err)
		}
		// Recycling only engages under allocation pressure. Calibrate
		// the arena from a probe run: final live bytes plus half the
		// garbage bytes (the thesis sized its runs so the heap filled).
		probe := core.New(core.DefaultConfig())
		prt := vm.New(heap.New(demographicsArena), probe)
		spec.Run(prt, 1)
		live := prt.Heap.Arena().InUse()
		garbage := int(prt.Heap.Stats().BytesAlloc) - live
		budget := live + garbage/2

		// If the budget undershoots the collector's peak holdings the
		// run aborts with a hard OOM; widen the slack and retry.
		var st core.Stats
		for {
			ok := func() (ok bool) {
				defer func() { ok = recover() == nil }()
				cg := core.New(core.Config{StaticOpt: true, Recycle: true})
				rt := vm.New(heap.New(budget), cg)
				spec.Run(rt, 1)
				st = cg.Stats()
				return true
			}()
			if ok {
				break
			}
			budget += garbage/4 + 1<<10
		}
		t.Rowf(s.Name, st.Reused, stats.Pct(st.Reused, st.Created))
	}
	return t
}
