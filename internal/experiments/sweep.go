package experiments

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/results"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

// SweepFig describes one cell-based (demographics) figure as data: the
// jobs of its matrix slice, grouped CellsPerRow cells per table row,
// and the pure function mapping a row's cells to its rendered values.
// One description drives both execution paths — the batch Fig*
// functions (cgbench: measure-then-render tables) and Sweep (cgsweep:
// streamed rows over any results.Backend) — so the figure's semantics
// cannot drift between the in-process and distributed pipelines.
// Wall-clock figures are not SweepFigs: their cells are re-run
// repeatedly with per-benchmark control flow, which is exactly what a
// serialisable cell is not.
type SweepFig struct {
	ID          string
	Title       string
	Headers     []string
	Jobs        []engine.Job
	CellsPerRow int
	Row         func(row int, cells []Cell) []any
}

// Rows reports the figure's data-row count.
func (f SweepFig) Rows() int { return len(f.Jobs) / f.CellsPerRow }

// DemographicFigs returns the sweepable figures — every id for no
// arguments, else the named subset — in the thesis's presentation
// order.
func DemographicFigs(ids ...string) ([]SweepFig, error) {
	specs := workload.All()
	all := []SweepFig{
		fig41Data(specs),
		fig42_44Data(specs, 1),
		fig42_44Data(specs, 10),
		fig42_44Data(specs, 100),
		fig45Data(specs),
		fig46Data(specs),
		fig49Data(specs),
		fig411Data(specs),
		figA1Data(specs),
		figA2_4Data(specs, 1),
		figA2_4Data(specs, 10),
		figA2_4Data(specs, 100),
	}
	if len(ids) == 0 {
		return all, nil
	}
	byID := make(map[string]SweepFig, len(all))
	for _, f := range all {
		byID[f.ID] = f
	}
	out := make([]SweepFig, 0, len(ids))
	for _, id := range ids {
		f, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("experiments: no sweepable figure %q (have %s)", id, figIDs(all))
		}
		out = append(out, f)
	}
	return out, nil
}

func figIDs(figs []SweepFig) string {
	s := ""
	for i, f := range figs {
		if i > 0 {
			s += ", "
		}
		s += f.ID
	}
	return s
}

// CellFromOutcome converts a serialised cell back to the demographics
// extract the figure renderers consume.
func CellFromOutcome(o results.Outcome) (Cell, error) {
	if err := o.Failed(); err != nil {
		return Cell{}, err
	}
	if o.Payload.CG == nil {
		return Cell{}, fmt.Errorf("experiments: %q is not the contaminated collector", o.Job.Collector)
	}
	c := Cell{B: o.Payload.CG.Breakdown, St: o.Payload.CG.Stats, GC: o.GCCycles}
	if o.Obs != nil {
		c.Obs = *o.Obs
	}
	return c, nil
}

// Sweep renders figs through b, streaming each figure's rows to w the
// moment their cells complete instead of barriering on the full
// matrix. Output is deterministic for any backend configuration —
// b emits outcomes in submission order (the Backend contract), row
// values are pure functions of cells, and the sink's columns are sized
// from the headers alone — so `-procs 4` against worker processes and
// an in-process `-workers 1` run render byte-identical bytes, and a
// resumed sweep renders the same bytes it would have cold.
func Sweep(b results.Backend, figs []SweepFig, w io.Writer) error {
	return SweepProgress(b, figs, w, nil)
}

// SweepProgress is Sweep with a per-figure completion hook: report, when
// non-nil, runs after each figure's rows have flushed — cgsweep prints
// its elapsed-time/cells-per-second stderr line from it. The hook is
// outside the deterministic output path (it never writes to w), so a
// reporting sweep renders the same bytes as a silent one.
func SweepProgress(b results.Backend, figs []SweepFig, w io.Writer, report func(f SweepFig)) error {
	for fi, f := range figs {
		if fi > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		sink := results.NewSink(w, f.Title, f.Rows(), f.Headers...)
		cells := make([]Cell, len(f.Jobs))
		got := make([]int, f.Rows())
		var cellErr error
		err := b.Run(f.Jobs, func(i int, o results.Outcome) {
			if cellErr != nil {
				return
			}
			c, err := CellFromOutcome(o)
			if err != nil {
				cellErr = err
				return
			}
			cells[i] = c
			row := i / f.CellsPerRow
			got[row]++
			if got[row] == f.CellsPerRow {
				sink.Row(row, f.Row(row, cells[row*f.CellsPerRow:(row+1)*f.CellsPerRow])...)
			}
		})
		if err == nil {
			err = cellErr
		}
		if err == nil {
			err = sink.Flush()
		}
		if err != nil {
			return fmt.Errorf("sweep %s: %w", f.ID, err)
		}
		if report != nil {
			report(f)
		}
	}
	return nil
}

// renderFig is the batch path behind the Fig* functions: run the
// figure's cells on eng, then render the classic measured-width table.
// The figure matrix has no legitimate failure mode, so an error is a
// harness bug and panics (as the Fig* API always has).
func renderFig(eng *engine.Engine, f SweepFig) *table.Table {
	cells, err := RunDemographics(eng, f.Jobs)
	if err != nil {
		panic(err)
	}
	t := table.New(f.Title, f.Headers...)
	for row := 0; row < f.Rows(); row++ {
		t.Rowf(f.Row(row, cells[row*f.CellsPerRow:(row+1)*f.CellsPerRow])...)
	}
	return t
}

// perBenchmark builds the one-plenty-of-storage-cell-per-benchmark job
// list shared by most demographics figures.
func perBenchmark(specs []workload.Spec, size int, collector string, gcEvery uint64) []engine.Job {
	jobs := make([]engine.Job, len(specs))
	for i, s := range specs {
		jobs[i] = engine.Job{Workload: s.Name, Size: size, Collector: collector, GCEvery: gcEvery}
	}
	return jobs
}

func fig41Data(specs []workload.Spec) SweepFig {
	// One interleaved 2N-cell matrix, not two N-cell barriers: both
	// collector sweeps share whatever pool runs them.
	jobs := make([]engine.Job, 0, 2*len(specs))
	for _, s := range specs {
		jobs = append(jobs,
			engine.Job{Workload: s.Name, Size: 1, Collector: "cg+noopt"},
			engine.Job{Workload: s.Name, Size: 1, Collector: "cg"})
	}
	return SweepFig{
		ID:          "4.1",
		Title:       "Fig 4.1: percentage of objects collectable, without and with the static optimization (size 1)",
		Headers:     []string{"benchmark", "description", "objects created", "no opt", "with opt"},
		Jobs:        jobs,
		CellsPerRow: 2,
		Row: func(row int, cells []Cell) []any {
			s := specs[row]
			bn, bw := cells[0].B, cells[1].B
			return []any{s.Name, s.Desc, bw.Created,
				stats.Pct(bn.Popped, bn.Created), stats.Pct(bw.Popped, bw.Created)}
		},
	}
}

func fig42_44Data(specs []workload.Spec, size int) SweepFig {
	return SweepFig{
		ID: fmt.Sprintf("4.%d", figFromSize(size)),
		Title: fmt.Sprintf("Fig 4.%d: objects treated as static and as thread-shared (size %d)",
			figFromSize(size), size),
		Headers:     []string{"benchmark", "created", "collectable", "static", "thread-shared"},
		Jobs:        perBenchmark(specs, size, "cg", 0),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			b := cells[0].B
			return []any{specs[row].Name, b.Created, stats.Pct(b.Popped, b.Created),
				stats.Pct(b.Static, b.Created), stats.Pct(b.Thread, b.Created)}
		},
	}
}

func fig45Data(specs []workload.Spec) SweepFig {
	return SweepFig{
		ID:    "4.5",
		Title: "Fig 4.5: distribution of collected block sizes (size 1)",
		Headers: []string{"benchmark", "total collectable",
			"1", "2", "3", "4", "5", "6-10", ">10", "percent exact"},
		Jobs:        perBenchmark(specs, 1, "cg", 0),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			st, b := cells[0].St, cells[0].B
			return []any{specs[row].Name, b.Popped,
				st.BlockSize[0], st.BlockSize[1], st.BlockSize[2], st.BlockSize[3],
				st.BlockSize[4], st.BlockSize[5], st.BlockSize[6],
				stats.Pct(st.Singleton, b.Created)}
		},
	}
}

func fig46Data(specs []workload.Spec) SweepFig {
	return SweepFig{
		ID:          "4.6",
		Title:       "Fig 4.6: age at death of collected objects, in frame distance (size 1)",
		Headers:     []string{"benchmark", "0", "1", "2", "3", "4", "5", ">5"},
		Jobs:        perBenchmark(specs, 1, "cg", 0),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			st := cells[0].St
			return []any{specs[row].Name,
				st.AgeAtDeath[0], st.AgeAtDeath[1], st.AgeAtDeath[2], st.AgeAtDeath[3],
				st.AgeAtDeath[4], st.AgeAtDeath[5], st.AgeAtDeath[6]}
		},
	}
}

func fig49Data(specs []workload.Spec) SweepFig {
	return SweepFig{
		ID:          "4.9",
		Title:       "Fig 4.9: SPEC benchmarks, large runs (size 100)",
		Headers:     []string{"benchmark", "objects created", "collectable (with opt)", "exactly collectable"},
		Jobs:        perBenchmark(specs, 100, "cg", 0),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			b, st := cells[0].B, cells[0].St
			return []any{specs[row].Name, b.Created,
				stats.Pct(b.Popped, b.Created), stats.Pct(st.Singleton, b.Created)}
		},
	}
}

func fig411Data(specs []workload.Spec) SweepFig {
	return SweepFig{
		ID: "4.11",
		Title: fmt.Sprintf("Fig 4.11: resetting results, small runs (MSA forced every %d operations)",
			resetGCEvery),
		Headers:     []string{"benchmark", "collected by MSA", "less live", "moved from static", "GC cycles"},
		Jobs:        perBenchmark(specs, 1, "cg+reset", resetGCEvery),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			st := cells[0].St
			return []any{specs[row].Name, st.MSAFreed, st.LessLive, st.FromStatic, cells[0].GC}
		},
	}
}

func figA1Data(specs []workload.Spec) SweepFig {
	return SweepFig{
		ID:          "A.1",
		Title:       "Fig A.1: static objects due to sharing among threads (size 1)",
		Headers:     []string{"benchmark", "total static+thread", "percent due to threads"},
		Jobs:        perBenchmark(specs, 1, "cg", 0),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			b := cells[0].B
			immortal := b.Static + b.Thread
			return []any{specs[row].Name, immortal, stats.Pct(b.Thread, immortal)}
		},
	}
}

func figA2_4Data(specs []workload.Spec, size int) SweepFig {
	return SweepFig{
		ID:          fmt.Sprintf("A.%d", figFromSize(size)),
		Title:       fmt.Sprintf("Fig A.%d: object breakdown (size %d)", figFromSize(size), size),
		Headers:     []string{"benchmark", "popped", "static", "thread"},
		Jobs:        perBenchmark(specs, size, "cg", 0),
		CellsPerRow: 1,
		Row: func(row int, cells []Cell) []any {
			b := cells[0].B
			return []any{specs[row].Name, b.Popped, b.Static, b.Thread}
		},
	}
}
