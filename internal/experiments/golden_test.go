package experiments

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/engine"
	"repro/internal/results"
)

// The testdata goldens were captured from the seed tree (the interface-
// dispatch collector ABI, pre event table) with:
//
//	cgbench -workers 1 -fig 4.1|4.5|4.11 > fig4*.golden
//	cgsweep -workers 1 -figs 4.1,4.5,4.11 > sweep_4_1_4_5_4_11.golden
//
// These tests are the ABI-swap equivalence suite: the event-table
// runtime must reproduce every figure and the streamed sweep byte for
// byte. They intentionally pin real output bytes, not shapes — a
// collector that sees one extra or one fewer event moves a counter
// somewhere in these tables.

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFigGoldenBytes pins the Fig 4.1/4.5/4.11 tables (the three
// figures covering allocation, block-size and resetting event streams)
// to the seed capture. The trailing newline matches cgbench's
// per-figure println.
func TestFigGoldenBytes(t *testing.T) {
	eng := engine.New(4)
	for _, c := range []struct {
		fig, file string
		render    func(*engine.Engine) string
	}{
		{"4.1", "fig41.golden", func(e *engine.Engine) string { return Fig41(e).String() }},
		{"4.5", "fig45.golden", func(e *engine.Engine) string { return Fig45(e).String() }},
		{"4.11", "fig411.golden", func(e *engine.Engine) string { return Fig411(e).String() }},
	} {
		want := golden(t, c.file)
		if got := c.render(eng) + "\n"; got != want {
			t.Errorf("Fig %s diverged from the seed capture:\n--- got\n%s--- want\n%s", c.fig, got, want)
		}
	}
}

// TestSweepGoldenBytes pins the streamed cgsweep rendering of the same
// figures — the store/sink path, whose cells flow through
// results.Extract and the typed payload codec — to the seed capture.
func TestSweepGoldenBytes(t *testing.T) {
	figs, err := DemographicFigs("4.1", "4.5", "4.11")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Sweep(results.Local{Eng: engine.New(4)}, figs, &buf); err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "sweep_4_1_4_5_4_11.golden"); buf.String() != want {
		t.Errorf("sweep output diverged from the seed capture:\n--- got\n%s--- want\n%s", buf.String(), want)
	}
}
