package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/results"
)

// sweepFigs is the acceptance trio: 4.1 (two cells per row), 4.5
// (histograms) and 4.11 (forced-GC cells with the GC-cycle column).
func sweepFigs(t *testing.T) []experiments.SweepFig {
	t.Helper()
	figs, err := experiments.DemographicFigs("4.1", "4.5", "4.11")
	if err != nil {
		t.Fatal(err)
	}
	return figs
}

func runSweep(t *testing.T, b results.Backend) string {
	t.Helper()
	var buf bytes.Buffer
	if err := experiments.Sweep(b, sweepFigs(t), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSweepDeterminismAcrossBackends is the acceptance criterion: the
// multi-process coordinator path (4 workers over the real NDJSON
// protocol) renders byte-identical output to the in-process
// single-worker path for Figs 4.1/4.5/4.11.
func TestSweepDeterminismAcrossBackends(t *testing.T) {
	sequential := runSweep(t, results.Local{Eng: engine.New(1)})
	parallel := runSweep(t, results.Local{Eng: engine.New(8)})
	procs := runSweep(t, &dist.Coordinator{Spawn: dist.InProcess(2), Procs: 4})

	if sequential != parallel {
		t.Fatal("-workers 8 output diverged from -workers 1")
	}
	if sequential != procs {
		t.Fatalf("-procs 4 output diverged from -workers 1:\n--- in-process\n%s\n--- distributed\n%s",
			sequential, procs)
	}
	for _, want := range []string{"Fig 4.1", "Fig 4.5", "Fig 4.11", "compress", "jack"} {
		if !strings.Contains(sequential, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, sequential)
		}
	}
}

// TestSweepResume is the other acceptance criterion: a sweep over a
// populated store recomputes zero cells and renders the same bytes.
func TestSweepResume(t *testing.T) {
	st, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := &results.Resuming{Store: st, Next: results.Local{Eng: engine.New(4)}}
	coldOut := runSweep(t, cold)
	// 4.1 computes 16 cells (cg+noopt and cg per benchmark); 4.5 reuses
	// 4.1's eight cg cells straight from the store; 4.11 computes its
	// eight cg+reset cells. Cross-figure dedup is part of the contract.
	if s, c := cold.Stats(); s != 8 || c != 24 {
		t.Fatalf("cold sweep: stored=%d computed=%d, want 8/24", s, c)
	}

	warm := &results.Resuming{Store: st, Next: results.Local{Eng: engine.New(4)}}
	warmOut := runSweep(t, warm)
	if _, c := warm.Stats(); c != 0 {
		t.Fatalf("resumed sweep recomputed %d already-stored cells, want 0", c)
	}
	if coldOut != warmOut {
		t.Fatal("resumed sweep output diverged from the cold run")
	}

	// The store also carries across backends: a distributed resume over
	// the same store computes nothing either.
	procs := &results.Resuming{Store: st, Next: &dist.Coordinator{Spawn: dist.InProcess(2), Procs: 2}}
	procsOut := runSweep(t, procs)
	if _, c := procs.Stats(); c != 0 {
		t.Fatalf("distributed resume recomputed %d cells, want 0", c)
	}
	if procsOut != coldOut {
		t.Fatal("distributed resume output diverged")
	}
}

// TestSweepStreamsRowsBeforeCompletion pins the streaming property: the
// first benchmark's row is on the writer before the last cell's
// outcome has been emitted.
func TestSweepStreamsRowsBeforeCompletion(t *testing.T) {
	figs, err := experiments.DemographicFigs("4.5")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sawFirstRowEarly := false
	probe := probeBackend{inner: results.Local{Eng: engine.New(2)}, beforeLast: func() {
		sawFirstRowEarly = strings.Contains(buf.String(), "compress")
	}}
	if err := experiments.Sweep(probe, figs, &buf); err != nil {
		t.Fatal(err)
	}
	if !sawFirstRowEarly {
		t.Fatal("no row had been rendered by the time the last cell was emitted")
	}
}

// probeBackend relays to inner but calls beforeLast just before
// emitting the final outcome.
type probeBackend struct {
	inner      results.Backend
	beforeLast func()
}

func (p probeBackend) Run(jobs []engine.Job, emit func(int, results.Outcome)) error {
	return p.inner.Run(jobs, func(i int, o results.Outcome) {
		if i == len(jobs)-1 {
			p.beforeLast()
		}
		emit(i, o)
	})
}

// TestSweepRejectsNonCGFig guards the error path end to end: a figure
// whose jobs resolve to a non-CG collector fails the sweep instead of
// rendering garbage.
func TestSweepRejectsNonCGFig(t *testing.T) {
	bad := experiments.SweepFig{
		ID:          "x",
		Title:       "bogus",
		Headers:     []string{"benchmark"},
		Jobs:        []engine.Job{{Workload: "compress", Size: 1, Collector: "msa", HeapBytes: engine.TightHeap}},
		CellsPerRow: 1,
		Row:         func(int, []experiments.Cell) []any { return []any{"compress"} },
	}
	var buf bytes.Buffer
	err := experiments.Sweep(results.Local{Eng: engine.New(1)}, []experiments.SweepFig{bad}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not the contaminated collector") {
		t.Fatalf("sweep over msa cells must fail, got: %v", err)
	}
}

func TestDemographicFigsSelection(t *testing.T) {
	all, err := experiments.DemographicFigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("have %d sweepable figures, want 12", len(all))
	}
	if _, err := experiments.DemographicFigs("4.13"); err == nil {
		t.Fatal("4.13 (adaptive budgets) must not be sweepable")
	}
	subset, err := experiments.DemographicFigs("4.11", "4.1")
	if err != nil {
		t.Fatal(err)
	}
	if subset[0].ID != "4.11" || subset[1].ID != "4.1" {
		t.Fatalf("subset order not preserved: %s, %s", subset[0].ID, subset[1].ID)
	}
}
