package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

// Repeats is the number of timing runs per configuration; the thesis
// reports five (Appendix A.5-A.7).
const Repeats = 5

// averagingReps is the number of back-to-back executions one timing job
// averages over. Small sizes finish in well under a millisecond, so a
// single execution would be dominated by scheduler jitter.
func averagingReps(size int) int {
	switch size {
	case 1:
		return 20
	case 10:
		return 3
	}
	return 1
}

// timings runs every benchmark Repeats times under two collector specs
// on the engine and returns the per-benchmark duration series. Jobs for
// the two systems are interleaved (a, b, a, b, ...) so that with more
// than one worker both systems face the same mix of concurrent
// neighbours: absolute numbers still include scheduling contention, but
// it cancels in the speedup columns. For paper-grade absolute timings
// run -workers 1.
func timings(eng *engine.Engine, specs []workload.Spec, size int, a, b string) (as, bs [][]time.Duration) {
	reps := averagingReps(size)
	jobs := make([]engine.Job, 0, 2*len(specs)*Repeats)
	for _, s := range specs {
		for r := 0; r < Repeats; r++ {
			for _, col := range []string{a, b} {
				jobs = append(jobs, engine.Job{Workload: s.Name, Size: size,
					Collector: col, HeapBytes: engine.TightHeap, Repeats: reps})
			}
		}
	}
	els := make([]time.Duration, len(jobs))
	errs := make([]error, len(jobs))
	eng.RunEach(jobs, func(i int, r engine.Result) {
		els[i], errs[i] = r.Elapsed, r.Err
	})
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
	for i := range specs {
		sa := make([]time.Duration, Repeats)
		sb := make([]time.Duration, Repeats)
		for r := 0; r < Repeats; r++ {
			sa[r], sb[r] = els[(i*Repeats+r)*2], els[(i*Repeats+r)*2+1]
		}
		as = append(as, sa)
		bs = append(bs, sb)
	}
	return as, bs
}

// Fig47_48 reproduces Figures 4.7 (size 1) and 4.8 (size 10): mean wall
// time of the CG system versus the base (traditional-collector-only)
// system, with the speedup of CG over the base in the rightmost column.
func Fig47_48(eng *engine.Engine, size int) *table.Table {
	fig := "4.7"
	if size == 10 {
		fig = "4.8"
	}
	t := table.New(fmt.Sprintf("Fig %s: timing results, size %d (mean of %d runs, seconds)", fig, size, Repeats),
		"benchmark", "CG", "base", "speedup")
	specs := workload.All()
	cg, base := timings(eng, specs, size, "cg", "msa")
	for i, s := range specs {
		cs, bs := stats.SummarizeDurations(cg[i]), stats.SummarizeDurations(base[i])
		t.Rowf(s.Name, fmt.Sprintf("%.4f", cs.Mean), fmt.Sprintf("%.4f", bs.Mean),
			fmt.Sprintf("%.2f", stats.Speedup(bs.Mean, cs.Mean)))
	}
	return t
}

// Fig410 reproduces Figure 4.10: the speedup of the CG system over the
// base system across all three problem sizes.
func Fig410(eng *engine.Engine, sizes []int) *table.Table {
	headers := []string{"benchmark"}
	for _, sz := range sizes {
		headers = append(headers, fmt.Sprintf("size %d", sz))
	}
	t := table.New("Fig 4.10: speedup of the CG system over the base system", headers...)
	specs := workload.All()
	rows := make([][]any, len(specs))
	for i, s := range specs {
		rows[i] = []any{s.Name}
	}
	for _, sz := range sizes {
		cg, base := timings(eng, specs, sz, "cg", "msa")
		for i := range specs {
			rows[i] = append(rows[i], fmt.Sprintf("%.2f",
				stats.Speedup(stats.SummarizeDurations(base[i]).Mean, stats.SummarizeDurations(cg[i]).Mean)))
		}
	}
	for _, row := range rows {
		t.Rowf(row...)
	}
	return t
}

// Fig412 reproduces Figure 4.12: CG with and without §3.7 recycling,
// small runs.
func Fig412(eng *engine.Engine) *table.Table {
	t := table.New(fmt.Sprintf("Fig 4.12: recycle timing, small runs (mean of %d runs, seconds)", Repeats),
		"benchmark", "CG", "CG with recycling", "speedup using recycling")
	specs := workload.All()
	plain, rec := timings(eng, specs, 1, "cg", "cg+recycle")
	for i, s := range specs {
		ps, rs := stats.SummarizeDurations(plain[i]), stats.SummarizeDurations(rec[i])
		t.Rowf(s.Name, fmt.Sprintf("%.4f", ps.Mean), fmt.Sprintf("%.4f", rs.Mean),
			fmt.Sprintf("%.2f", stats.Speedup(ps.Mean, rs.Mean)))
	}
	return t
}

// FigA5_7 reproduces Appendix Figures A.5 (small), A.6 (medium) and A.7
// (large): the raw per-run timings behind the means.
func FigA5_7(eng *engine.Engine, size int) *table.Table {
	fig := map[int]string{1: "A.5", 10: "A.6", 100: "A.7"}[size]
	t := table.New(fmt.Sprintf("Fig %s: raw timings, size %d (seconds)", fig, size),
		"benchmark", "CG", "base")
	specs := workload.All()
	cg, base := timings(eng, specs, size, "cg", "msa")
	for i, s := range specs {
		for r := range cg[i] {
			t.Rowf(s.Name, fmt.Sprintf("%.4f", cg[i][r].Seconds()), fmt.Sprintf("%.4f", base[i][r].Seconds()))
		}
	}
	return t
}
