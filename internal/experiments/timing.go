package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Repeats is the number of timing runs per configuration; the thesis
// reports five (Appendix A.5-A.7).
const Repeats = 5

// timeRun measures the wall-clock execution of a workload at size under
// a freshly attached collector built by mk, with the workload's tight
// heap budget (so the traditional collector actually has to work in the
// baseline configuration, §4.5). Small sizes finish in well under a
// millisecond, so the measurement repeats the run and reports the mean —
// otherwise scheduler jitter dominates the comparison.
func timeRun(spec workload.Spec, size int, mk func() vm.Collector) time.Duration {
	reps := 1
	switch size {
	case 1:
		reps = 20
	case 10:
		reps = 3
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		rt := vm.New(heap.New(spec.HeapBytes(size)), mk())
		spec.Run(rt, size)
	}
	return time.Since(start) / time.Duration(reps)
}

// timings runs a workload Repeats times under both systems and returns
// the per-run durations (CG system first, base system second).
func timings(spec workload.Spec, size int, cgCfg core.Config) (cg, base []time.Duration) {
	for i := 0; i < Repeats; i++ {
		cg = append(cg, timeRun(spec, size, func() vm.Collector { return core.New(cgCfg) }))
		base = append(base, timeRun(spec, size, func() vm.Collector { return msa.NewSystem() }))
	}
	return cg, base
}

// Fig47_48 reproduces Figures 4.7 (size 1) and 4.8 (size 10): mean wall
// time of the CG system versus the base (traditional-collector-only)
// system, with the speedup of CG over the base in the rightmost column.
func Fig47_48(size int) *table.Table {
	fig := "4.7"
	if size == 10 {
		fig = "4.8"
	}
	t := table.New(fmt.Sprintf("Fig %s: timing results, size %d (mean of %d runs, seconds)", fig, size, Repeats),
		"benchmark", "CG", "base", "speedup")
	for _, s := range workload.All() {
		cg, base := timings(s, size, core.DefaultConfig())
		cs, bs := stats.SummarizeDurations(cg), stats.SummarizeDurations(base)
		t.Rowf(s.Name, fmt.Sprintf("%.4f", cs.Mean), fmt.Sprintf("%.4f", bs.Mean),
			fmt.Sprintf("%.2f", stats.Speedup(bs.Mean, cs.Mean)))
	}
	return t
}

// Fig410 reproduces Figure 4.10: the speedup of the CG system over the
// base system across all three problem sizes.
func Fig410(sizes []int) *table.Table {
	headers := []string{"benchmark"}
	for _, sz := range sizes {
		headers = append(headers, fmt.Sprintf("size %d", sz))
	}
	t := table.New("Fig 4.10: speedup of the CG system over the base system", headers...)
	for _, s := range workload.All() {
		row := []any{s.Name}
		for _, sz := range sizes {
			cg, base := timings(s, sz, core.DefaultConfig())
			row = append(row, fmt.Sprintf("%.2f",
				stats.Speedup(stats.SummarizeDurations(base).Mean, stats.SummarizeDurations(cg).Mean)))
		}
		t.Rowf(row...)
	}
	return t
}

// Fig412 reproduces Figure 4.12: CG with and without §3.7 recycling,
// small runs.
func Fig412() *table.Table {
	t := table.New(fmt.Sprintf("Fig 4.12: recycle timing, small runs (mean of %d runs, seconds)", Repeats),
		"benchmark", "CG", "CG with recycling", "speedup using recycling")
	for _, s := range workload.All() {
		plain, _ := timings(s, 1, core.DefaultConfig())
		rec, _ := timings(s, 1, core.Config{StaticOpt: true, Recycle: true})
		ps, rs := stats.SummarizeDurations(plain), stats.SummarizeDurations(rec)
		t.Rowf(s.Name, fmt.Sprintf("%.4f", ps.Mean), fmt.Sprintf("%.4f", rs.Mean),
			fmt.Sprintf("%.2f", stats.Speedup(ps.Mean, rs.Mean)))
	}
	return t
}

// FigA5_7 reproduces Appendix Figures A.5 (small), A.6 (medium) and A.7
// (large): the raw per-run timings behind the means.
func FigA5_7(size int) *table.Table {
	fig := map[int]string{1: "A.5", 10: "A.6", 100: "A.7"}[size]
	t := table.New(fmt.Sprintf("Fig %s: raw timings, size %d (seconds)", fig, size),
		"benchmark", "CG", "base")
	for _, s := range workload.All() {
		cg, base := timings(s, size, core.DefaultConfig())
		for i := range cg {
			t.Rowf(s.Name, fmt.Sprintf("%.4f", cg[i].Seconds()), fmt.Sprintf("%.4f", base[i].Seconds()))
		}
	}
	return t
}
