package experiments

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

// testEng saturates the host: every figure regenerates through the
// sharded engine exactly as cgbench does by default.
var testEng = engine.New(0)

// parse pulls the data rows out of a rendered table (skips title,
// header, rule and notes).
func rows(s string) [][]string {
	var out [][]string
	for i, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if i < 3 || strings.HasPrefix(line, " ") {
			continue
		}
		out = append(out, strings.Fields(line))
	}
	return out
}

func TestFig41Shape(t *testing.T) {
	tb := Fig41(testEng).String()
	rs := rows(tb)
	if len(rs) != 8 {
		t.Fatalf("Fig 4.1 must have 8 rows, got %d:\n%s", len(rs), tb)
	}
	// The optimization must never reduce the collectable percentage.
	for _, r := range rs {
		no := r[len(r)-2]
		with := r[len(r)-1]
		if pctVal(t, with) < pctVal(t, no) {
			t.Fatalf("optimization reduced collectable on %s: %s -> %s", r[0], no, with)
		}
	}
}

func pctVal(t *testing.T, s string) int {
	t.Helper()
	v := 0
	if _, err := sscanPct(s, &v); err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func sscanPct(s string, v *int) (int, error) {
	n := 0
	for _, c := range s {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	*v = n
	return 1, nil
}

func TestFig42HasJavacThreadShare(t *testing.T) {
	tb := Fig42_44(testEng, 1).String()
	for _, r := range rows(tb) {
		if r[0] == "javac" {
			var share int
			sscanPct(r[len(r)-1], &share)
			if share < 30 {
				t.Fatalf("javac thread share = %d%%, want the dominant bucket:\n%s", share, tb)
			}
			return
		}
	}
	t.Fatalf("javac row missing:\n%s", tb)
}

func TestFig45RowsSumToCollectable(t *testing.T) {
	tb := Fig45(testEng).String()
	if len(rows(tb)) != 8 {
		t.Fatalf("Fig 4.5 must have 8 rows:\n%s", tb)
	}
}

func TestFig46RaytraceDeepDeaths(t *testing.T) {
	tb := Fig46(testEng).String()
	for _, r := range rows(tb) {
		if r[0] == "raytrace" {
			var over5 int
			sscanPct(r[len(r)-1], &over5)
			if over5 == 0 {
				t.Fatalf("raytrace must populate the >5 bucket:\n%s", tb)
			}
			return
		}
	}
	t.Fatal("raytrace row missing")
}

func TestFig49LargeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("large runs in -short mode")
	}
	tb := Fig49(testEng).String()
	if len(rows(tb)) != 8 {
		t.Fatalf("Fig 4.9 must have 8 rows:\n%s", tb)
	}
}

func TestFig411ResettingRuns(t *testing.T) {
	tb := Fig411(testEng).String()
	rs := rows(tb)
	if len(rs) != 8 {
		t.Fatalf("Fig 4.11 must have 8 rows:\n%s", tb)
	}
	// At least one benchmark must actually have triggered forced cycles.
	cycles := 0
	for _, r := range rs {
		var c int
		sscanPct(r[len(r)-1], &c)
		cycles += c
	}
	if cycles == 0 {
		t.Fatalf("no forced GC cycles ran:\n%s", tb)
	}
}

func TestFig413RecyclingCountsSomething(t *testing.T) {
	tb := Fig413(testEng).String()
	rs := rows(tb)
	if len(rs) != 8 {
		t.Fatalf("Fig 4.13 must have 8 rows:\n%s", tb)
	}
	total := 0
	for _, r := range rs {
		var c int
		sscanPct(r[1], &c)
		total += c
	}
	if total == 0 {
		t.Fatalf("no benchmark recycled any object:\n%s", tb)
	}
}

func TestFigA1(t *testing.T) {
	tb := FigA1(testEng).String()
	if len(rows(tb)) != 8 {
		t.Fatalf("Fig A.1 must have 8 rows:\n%s", tb)
	}
}

func TestFigA2Breakdown(t *testing.T) {
	tb := FigA2_4(testEng, 1).String()
	if len(rows(tb)) != 8 {
		t.Fatalf("Fig A.2 must have 8 rows:\n%s", tb)
	}
}

func TestExample21Narrative(t *testing.T) {
	out := Example21()
	for _, want := range []string{
		"(1) B.f=A", "(4) E.f=D", "A->frame 0",
		"contamination cannot be undone",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("example trace missing %q:\n%s", want, out)
		}
	}
	// After step 1, A depends on frame 2.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "(1) B.f=A") && !strings.Contains(line, "A->frame 2") {
			t.Fatalf("step 1 must move A to frame 2: %s", line)
		}
		if strings.Contains(line, "(2) C.f=B") && !strings.Contains(line, "A->frame 1") {
			t.Fatalf("step 2 must move A to frame 1: %s", line)
		}
	}
}

func TestExample31Narrative(t *testing.T) {
	out := Example31()
	if !strings.Contains(out, "static forever") || !strings.Contains(out, "sharing: 1") {
		t.Fatalf("sharing example wrong:\n%s", out)
	}
}

func TestTimingSmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("timing in -short mode")
	}
	tb := Fig47_48(testEng, 1).String()
	if len(rows(tb)) != 8 {
		t.Fatalf("Fig 4.7 must have 8 rows:\n%s", tb)
	}
	tb = Fig412(testEng).String()
	if len(rows(tb)) != 8 {
		t.Fatalf("Fig 4.12 must have 8 rows:\n%s", tb)
	}
}

// TestEngineDeterminism is the merge soundness check: a multi-worker
// regeneration of the demographics figures must render byte-identical
// tables to a -workers 1 run — results land in submission-order slots,
// so completion order must not be observable.
func TestEngineDeterminism(t *testing.T) {
	seq := engine.New(1)
	par := engine.New(8)
	for _, c := range []struct {
		fig string
		gen func(*engine.Engine) string
	}{
		{"4.1", func(e *engine.Engine) string { return Fig41(e).String() }},
		{"4.5", func(e *engine.Engine) string { return Fig45(e).String() }},
		{"4.11", func(e *engine.Engine) string { return Fig411(e).String() }},
	} {
		a, b := c.gen(seq), c.gen(par)
		if a != b {
			t.Fatalf("Fig %s diverges between 1 and 8 workers:\n--- workers=1\n%s\n--- workers=8\n%s", c.fig, a, b)
		}
	}
}

// TestPooledFigureIdentity renders the same figures twice on one
// engine: the first pass fills the shard pool, the second runs on
// recycled (Reset) runtimes. The rendered bytes must not differ — the
// figure-level form of the pooled-shard determinism contract.
func TestPooledFigureIdentity(t *testing.T) {
	eng := engine.New(4)
	first := Fig41(eng).String() + Fig45(eng).String()
	second := Fig41(eng).String() + Fig45(eng).String()
	if first != second {
		t.Fatalf("pooled re-render differs:\n%s\nvs\n%s", second, first)
	}
}
