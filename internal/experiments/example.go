package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/vm"
)

// exampleCG resolves a contaminated collector from the registry; the
// worked examples inspect CG-specific observables (DependentFrame), so
// they assert the concrete type.
func exampleCG(spec string) *core.CG {
	ev, err := collectors.New(spec)
	if err != nil {
		panic(err)
	}
	return ev.Collector.(*core.CG)
}

// Example21 replays the worked example of Figures 2.1 and 2.2: five
// stack frames, objects A-E, and the five instructions that rearrange
// their dependent frames. It returns a trace of each object's dependent
// frame after every step — the exact narrative of §2.1.
func Example21() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 2.1/2.2: the worked example (dependent frame per object after each step)")

	h := heap.New(1 << 16)
	node := h.DefineClass(heap.Class{Name: "Object", Refs: 2, Data: 8})
	cg := exampleCG("cg+noopt") // the unoptimized semantics of §2.1
	rt := vm.New(h, cg)
	th := rt.NewThread(1)
	slot := rt.StaticSlot("E")

	names := map[heap.HandleID]string{}
	frameNo := map[uint64]int{0: 0}
	report := func(step string, objs []heap.HandleID) {
		fmt.Fprintf(&b, "  %-12s", step)
		for _, o := range objs {
			fmt.Fprintf(&b, "  %s->frame %d", names[o], frameNo[cg.DependentFrame(o).ID])
		}
		fmt.Fprintln(&b)
	}

	f1 := th.Top()
	frameNo[f1.ID] = 1
	c := f1.MustNew(node)
	names[c] = "C"
	f1.SetLocal(0, c)
	th.CallVoid(1, func(f2 *vm.Frame) {
		frameNo[f2.ID] = 2
		bb := f2.MustNew(node)
		names[bb] = "B"
		f2.SetLocal(0, bb)
		th.CallVoid(1, func(f3 *vm.Frame) {
			frameNo[f3.ID] = 3
			a := f3.MustNew(node)
			names[a] = "A"
			f3.SetLocal(0, a)
			th.CallVoid(1, func(f4 *vm.Frame) {
				frameNo[f4.ID] = 4
				d := f4.MustNew(node)
				names[d] = "D"
				f4.SetLocal(0, d)
				th.CallVoid(0, func(f5 *vm.Frame) {
					frameNo[f5.ID] = 5
					e := f5.MustNew(node)
					names[e] = "E"
					f5.PutStatic(slot, e)
					all := []heap.HandleID{a, bb, c, d, e}
					report("initial", all)
					f5.PutField(bb, 0, a)
					report("(1) B.f=A", all)
					f5.PutField(c, 0, bb)
					report("(2) C.f=B", all)
					f5.PutField(d, 0, c)
					report("(3) D.f=C", all)
					f5.PutField(e, 0, d)
					report("(4) E.f=D", all)
					f5.PutField(e, 0, heap.Nil)
					report("(5) E.f=null", all)
					fmt.Fprintln(&b, "  contamination cannot be undone: A-D remain dependent on frame 0")
				})
			})
		})
	})
	return b.String()
}

// Example31 replays Figure 3.1: an object allocated by one thread and
// touched by a second becomes dependent on frame 0 (static) for the rest
// of the program.
func Example31() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig 3.1: two threads sharing an object")

	h := heap.New(1 << 16)
	node := h.DefineClass(heap.Class{Name: "Object", Refs: 1, Data: 8})
	cg := exampleCG("cg")
	rt := vm.New(h, cg)
	t1 := rt.NewThread(1)
	t2 := rt.NewThread(1)

	a := t1.Top().MustNew(node)
	t1.Top().SetLocal(0, a)
	fmt.Fprintf(&b, "  thread 1 allocates A: dependent frame ID %d (thread 1's root)\n",
		cg.DependentFrame(a).ID)
	t2.Top().SetLocal(0, a)
	fmt.Fprintf(&b, "  thread 2 touches A:   dependent frame ID %d (frame 0 - static forever)\n",
		cg.DependentFrame(a).ID)
	fmt.Fprintf(&b, "  objects demoted for sharing: %d\n", cg.Stats().Shared)
	return b.String()
}
