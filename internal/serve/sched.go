package serve

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

// ErrDraining is returned by OpenSession once Drain has been called:
// the server finishes what it accepted but admits nothing new.
var ErrDraining = errors.New("serve: draining, not accepting new sweeps")

// Scheduler runs cells for many concurrent client sessions over one
// shared engine and one shared store, with three properties the batch
// backends don't need:
//
//   - exactly-once execution: a cell wanted by several sessions at once
//     is computed once (results.Flight dedups in-flight work; the store
//     dedups completed work — the leader Puts before it Resolves, so
//     any later request for the key is a disk hit);
//   - fairness: each session owns a FIFO queue and executors take the
//     next cell round-robin across sessions, so a 10k-cell sweep and a
//     3-cell sweep make progress side by side;
//   - bounded admission: at most maxInFlight executors run cells, and
//     each execution passes through the engine's heap.Reserve byte
//     reservation, so aggregate arena bytes stay under the cap no
//     matter how many clients are connected.
type Scheduler struct {
	eng    *engine.Engine
	store  *results.Store
	prog   *obs.Progress
	flight results.Flight

	mu       sync.Mutex
	cond     *sync.Cond
	ring     []*Session // sessions with non-empty pending queues, round-robin order
	rr       int        // next ring slot to serve
	queued   int        // total pending tasks across the ring
	running  int        // tasks currently executing
	draining bool       // no new sessions
	closed   bool       // executors may exit once the ring drains

	sessions sync.WaitGroup // open sessions
	execs    sync.WaitGroup // executor goroutines
}

// task is one queued leader computation: the in-flight call and the
// session whose queue carried it (fairness and accounting credit the
// leader; other sessions attached to the call ride along for free).
type task struct {
	fc   *results.FlightCall
	sess *Session
}

// NewScheduler returns a running scheduler over eng and store with
// maxInFlight executors (<= 0 selects the engine's worker count).
// store is mandatory: it is the shared cache that makes the server a
// cache rather than a proxy. prog may be nil.
func NewScheduler(eng *engine.Engine, store *results.Store, prog *obs.Progress, maxInFlight int) *Scheduler {
	s := newScheduler(eng, store, prog)
	if maxInFlight <= 0 {
		maxInFlight = eng.Workers()
	}
	for i := 0; i < maxInFlight; i++ {
		s.execs.Add(1)
		go s.executor()
	}
	return s
}

// newScheduler builds the scheduler state without starting executors
// (the fairness unit tests drive popLocked directly).
func newScheduler(eng *engine.Engine, store *results.Store, prog *obs.Progress) *Scheduler {
	s := &Scheduler{eng: eng, store: store, prog: prog}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// OpenSession admits one client sweep. Every Run on the session shares
// the server's cache and dedup but emits in its own strict index order;
// Close releases the session (idempotent). Fails once draining — but a
// session opened before Drain keeps submitting until it completes, so
// accepted streams are never truncated.
func (s *Scheduler) OpenSession(client string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.sessions.Add(1)
	return &Session{s: s, client: client}, nil
}

// Drain stops admitting sessions. In-flight sessions run to completion.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight reports queued plus executing cells (the drain gauge).
func (s *Scheduler) InFlight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.queued + s.running)
}

// Wait blocks until every open session has closed, then stops the
// executors. Call after Drain; the pair is the graceful-shutdown
// sequence (a session's Run returns only after all its cells were
// delivered, so closed sessions imply an empty ring).
func (s *Scheduler) Wait() {
	s.sessions.Wait()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.execs.Wait()
}

// Session is one client sweep's handle on the scheduler: a fair queue
// identity, an accounting scope, and a results.Backend whose emissions
// are index-ordered per the backend contract.
type Session struct {
	s      *Scheduler
	client string
	closed bool // guarded by s.mu

	pending []*task
	inRing  bool // guarded by s.mu

	// Delivery accounting for the stream's terminal done event:
	// submitted = computed + stored + deduped once every batch returns.
	submitted, computed, stored, deduped atomic.Int64
}

// Client reports the session's client name ("" = anonymous).
func (sess *Session) Client() string { return sess.client }

// Stats snapshots the session's delivery accounting.
func (sess *Session) Stats() DoneStats {
	return DoneStats{
		Cells:    sess.submitted.Load(),
		Computed: sess.computed.Load(),
		Stored:   sess.stored.Load(),
		Deduped:  sess.deduped.Load(),
	}
}

// Close releases the session. Idempotent; safe after Run returned.
func (sess *Session) Close() {
	sess.s.mu.Lock()
	wasClosed := sess.closed
	sess.closed = true
	sess.s.mu.Unlock()
	if !wasClosed {
		sess.s.sessions.Done()
	}
}

// Run implements results.Backend: emit(i, o) fires exactly once per
// job, sequentially, in strictly increasing i — regardless of which
// executor, store hit or other client's in-flight cell produced o. It
// blocks until the batch is fully delivered.
func (sess *Session) Run(jobs []engine.Job, emit func(i int, o results.Outcome)) error {
	s := sess.s
	sess.submitted.Add(int64(len(jobs)))
	s.prog.LaneSubmitted(sess.client, len(jobs))
	ord := results.NewReorder(len(jobs), emit)
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i, job := range jobs {
		job.Client = sess.client
		key, err := results.Key(job)
		if err != nil {
			// A malformed cell is a job-level failure, like the batch
			// backends' error outcomes — it must not wedge the batch.
			ord.Add(i, results.Outcome{Job: job, Err: err.Error()})
			wg.Done()
			continue
		}
		s.submit(sess, key, job, func(o results.Outcome) {
			ord.Add(i, o)
			wg.Done()
		})
	}
	wg.Wait()
	return ord.Finish()
}

// submit routes one cell: attach to an existing in-flight call (dedup)
// or become its leader and queue it on this session's fair queue.
func (s *Scheduler) submit(sess *Session, key string, job engine.Job, deliver func(results.Outcome)) {
	fc, leader := s.flight.Join(key, job, deliver)
	if !leader {
		sess.deduped.Add(1)
		s.prog.AddDeduped(1)
		s.prog.LaneDeduped(sess.client)
		return
	}
	s.mu.Lock()
	sess.pending = append(sess.pending, &task{fc: fc, sess: sess})
	if !sess.inRing {
		sess.inRing = true
		s.ring = append(s.ring, sess)
	}
	s.queued++
	s.syncGauges()
	s.mu.Unlock()
	s.cond.Signal()
}

// popLocked takes the next task round-robin across session queues.
// Callers hold s.mu. The ring holds only sessions with pending tasks;
// a session leaves the ring the moment its queue empties and rejoins
// on its next submit (at the tail — fresh work waits its turn).
func (s *Scheduler) popLocked() *task {
	if len(s.ring) == 0 {
		return nil
	}
	if s.rr >= len(s.ring) {
		s.rr = 0
	}
	sess := s.ring[s.rr]
	t := sess.pending[0]
	sess.pending = sess.pending[1:]
	if len(sess.pending) == 0 {
		sess.inRing = false
		s.ring = append(s.ring[:s.rr], s.ring[s.rr+1:]...)
		// rr now indexes the next session already; leave it.
	} else {
		s.rr++
	}
	s.queued--
	return t
}

// syncGauges mirrors queue depth and in-flight count into the progress
// surface. Callers hold s.mu.
func (s *Scheduler) syncGauges() {
	s.prog.SetQueued(s.queued)
	s.prog.SetInFlight(s.running)
}

// executor is one admission slot: it loops taking the fairest next
// cell and computing it. The store check happens here, on the
// executor, so cells completed by another client between submit and
// execution are disk hits, never recomputes.
func (s *Scheduler) executor() {
	defer s.execs.Done()
	for {
		t := s.next()
		if t == nil {
			return
		}
		s.compute(t)
	}
}

// next blocks for the next task; nil means the scheduler has closed.
func (s *Scheduler) next() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.popLocked(); t != nil {
			s.running++
			s.syncGauges()
			return t
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// compute satisfies one leader task: from the shared store when the
// cell is already on disk, else by executing it on the shared engine
// (which throttles through its heap.Reserve) and persisting the result
// before resolving — the Put-before-Resolve order is what guarantees a
// late joiner's fresh call store-hits instead of recomputing.
func (s *Scheduler) compute(t *task) {
	fc, sess := t.fc, t.sess
	if o, ok, err := s.store.Get(fc.Job); err == nil && ok {
		sess.stored.Add(1)
		s.prog.AddStored(1)
		s.prog.LaneStored(sess.client)
		s.finish(fc, o)
		return
	}
	var out results.Outcome
	s.eng.ExecRelease(fc.Job, func(r engine.Result) { out = results.Extract(r) })
	sess.computed.Add(1)
	s.prog.AddComputed(1)
	if err := s.store.Put(out); err != nil {
		// A failed Put degrades the cache, not the stream: the waiters
		// still get the outcome, the cell just recomputes next time.
		fmt.Fprintf(os.Stderr, "serve: store put %s: %v\n", fc.Key, err)
	}
	s.finish(fc, out)
}

// finish resolves the call (delivering to every waiter) and returns
// the execution slot.
func (s *Scheduler) finish(fc *results.FlightCall, o results.Outcome) {
	fc.Resolve(o)
	s.mu.Lock()
	s.running--
	s.syncGauges()
	s.mu.Unlock()
}
