// Package serve is the sweep server: the long-lived, multi-client
// counterpart of the batch cgsweep pipeline. Clients POST a sweep Spec
// and rows stream back as NDJSON events the moment cells complete —
// in the same index order, and byte for byte the same rendered bytes,
// as a local batch run of the same figures. One shared engine and one
// shared content-addressed store sit behind every client:
//
//   - the store is the shared cache (a cell any client ever computed is
//     a disk hit for every later client, and its key doubles as an
//     HTTP ETag on GET /cell/{key});
//   - an in-flight table (results.Flight) dedups cells that are
//     *currently* being computed, so two concurrent clients asking for
//     overlapping grids execute each overlapping cell exactly once
//     while both streams receive it;
//   - admission is the engine's existing heap.Reserve byte reservation
//     plus a max-in-flight executor cap;
//   - a per-session round-robin scheduler provides fairness: one huge
//     sweep cannot starve small ones, because executors take the next
//     cell from each client's queue in turn.
//
// Determinism survives the sharing: a cell's outcome is a pure function
// of its key, emission per client is index-ordered (the results.Backend
// contract), and rendering is the same experiments.Sweep the batch CLI
// uses — so a streamed sweep is byte-identical to a local one no matter
// how many other clients the server is juggling.
package serve

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/msa"
	"repro/internal/results"
)

// Spec is the POST /sweep request body: which cells the client wants
// and how the stream should be attributed. Figs and Cells may be
// combined; both empty means every demographic figure, matching batch
// cgsweep's default.
type Spec struct {
	// Client names the submitting client for the /progress fairness
	// lanes and the engine's per-client accounting. Empty is anonymous:
	// the sweep still gets its own fair scheduling queue (queues are
	// per-session), it just doesn't appear as a named lane.
	Client string `json:"client,omitempty"`
	// Figs lists demographic figure ids ("4.1", "A.2", ...) to render
	// as streamed table rows.
	Figs []string `json:"figs,omitempty"`
	// Cells lists explicit raw cells; each streams back as one NDJSON
	// outcome event (the results.Encode line) in submission order.
	Cells []CellSpec `json:"cells,omitempty"`
	// Trace carries the client's trace configuration (-trace-workers,
	// -overlap, ...) as an advisory hint. The server's shared engine
	// keeps its own configuration — trace settings are scheduling
	// knobs whose output is byte-identical by construction (the PR 8
	// property tests pin this), so honoring the server's choice cannot
	// change any byte a client receives.
	Trace *msa.TraceConfig `json:"trace,omitempty"`
}

// CellSpec is one explicit cell of a Cells sweep, mirroring engine.Job
// field for field (sizes, collector specs, gc-every, heap budget).
type CellSpec struct {
	Workload  string `json:"workload"`
	Size      int    `json:"size"`
	Collector string `json:"collector"`
	GCEvery   uint64 `json:"gc_every,omitempty"`
	HeapBytes int    `json:"heap_bytes,omitempty"`
	Repeats   int    `json:"repeats,omitempty"`
}

// Job converts the cell spec to its engine job.
func (c CellSpec) Job() engine.Job {
	return engine.Job{
		Workload: c.Workload, Size: c.Size, Collector: c.Collector,
		GCEvery: c.GCEvery, HeapBytes: c.HeapBytes, Repeats: c.Repeats,
	}
}

// Jobs validates every explicit cell against the registries (a bad
// workload or collector spec is a 400 at admission, not a mid-stream
// error event) and returns the job list.
func (s Spec) Jobs() ([]engine.Job, error) {
	if len(s.Cells) == 0 {
		return nil, nil
	}
	jobs := make([]engine.Job, len(s.Cells))
	for i, c := range s.Cells {
		job := c.Job()
		if _, err := results.Key(job); err != nil {
			return nil, fmt.Errorf("serve: cell %d: %w", i, err)
		}
		jobs[i] = job
	}
	return jobs, nil
}
