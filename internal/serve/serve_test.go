package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/workload"
)

// The acceptance trio: figs 4.1 (16 cells: cg+noopt and cg per
// benchmark), 4.5 (8 cg cells — the same keys as 4.1's cg half) and
// 4.11 (8 cg+reset cells). 32 cells per client, 24 unique — the 8-cell
// gap is what the shared cache and the in-flight dedup are measured by.
var trioFigs = []string{"4.1", "4.5", "4.11"}

const (
	trioCells  = 32
	trioUnique = 24
)

func trioGolden(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../experiments/testdata/sweep_4_1_4_5_4_11.golden")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newTestServer boots a full server — shared engine, shared store,
// progress lanes — on an httptest listener and returns a client for it.
func newTestServer(t *testing.T) (*Server, *Client, *obs.Progress) {
	t.Helper()
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := &obs.Progress{}
	srv := New(Config{Engine: engine.New(4).SetProgress(prog), Store: store, Progress: prog})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		srv.Wait()
		ts.Close()
	})
	return srv, &Client{Base: ts.URL}, prog
}

// TestServerSweepGolden is the satellite acceptance test: a sweep
// streamed through the server — spec encoding, scheduler, NDJSON
// events, client reassembly — is byte-identical to the seed capture of
// the batch cgsweep over the same figures.
func TestServerSweepGolden(t *testing.T) {
	_, cl, _ := newTestServer(t)
	var buf bytes.Buffer
	stats, err := cl.Sweep(Spec{Client: "golden", Figs: trioFigs}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := trioGolden(t); buf.String() != want {
		t.Errorf("server sweep diverged from the batch golden:\n--- got\n%s--- want\n%s", buf.String(), want)
	}
	// Figures run sequentially within one session, so 4.5's cells are
	// store hits against 4.1's cg half: the same 8/24 split the batch
	// resume test pins.
	want := DoneStats{Cells: trioCells, Computed: trioUnique, Stored: trioCells - trioUnique}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}
}

// TestConcurrentSweepsDedupInFlight is the exactly-once acceptance
// test: two clients run the identical sweep concurrently against one
// server. Both streams must be complete and byte-identical to the
// batch golden, and the server-wide computed counter must equal the
// number of *unique* cells — every overlapping cell executed once, no
// matter how the two sweeps interleaved (in-flight joins and store
// hits split the remainder between them, timing-dependently).
func TestConcurrentSweepsDedupInFlight(t *testing.T) {
	_, cl, prog := newTestServer(t)
	clients := []string{"alice", "bob"}
	outs := make([]bytes.Buffer, len(clients))
	stats := make([]DoneStats, len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, name := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = cl.Sweep(Spec{Client: name, Figs: trioFigs}, &outs[i])
		}()
	}
	wg.Wait()

	golden := trioGolden(t)
	for i, name := range clients {
		if errs[i] != nil {
			t.Fatalf("%s: %v", name, errs[i])
		}
		if outs[i].String() != golden {
			t.Errorf("%s's stream diverged from the batch golden:\n--- got\n%s", name, outs[i].String())
		}
		if got := stats[i]; got.Cells != trioCells || got.Computed+got.Stored+got.Deduped != trioCells {
			t.Errorf("%s stats do not partition: %+v", name, got)
		}
	}

	s := prog.Snapshot()
	if s.CellsComputed != trioUnique {
		t.Errorf("CellsComputed = %d, want %d (each unique cell computed exactly once)",
			s.CellsComputed, trioUnique)
	}
	if got := stats[0].Computed + stats[1].Computed; got != trioUnique {
		t.Errorf("session computed counts sum to %d, want %d", got, trioUnique)
	}
	if got := s.CellsStored + s.CellsDeduped; got != 2*trioCells-trioUnique {
		t.Errorf("stored+deduped = %d, want %d", got, 2*trioCells-trioUnique)
	}
	if len(s.Lanes) != len(clients) {
		t.Fatalf("lanes = %+v, want one per client", s.Lanes)
	}
	for i, lane := range s.Lanes {
		if lane.Client != clients[i] {
			t.Errorf("lane %d is %q, want %q (sorted)", i, lane.Client, clients[i])
		}
		if lane.Submitted != trioCells || lane.Computed+lane.Stored+lane.Deduped != trioCells {
			t.Errorf("lane %s does not partition: %+v", lane.Client, lane)
		}
	}
}

// TestSchedulerInFlightDedup drives the dedup path deterministically:
// with no executors running, two sessions submit the same cell — the
// second must attach to the first's in-flight call (one queued task,
// dedup accounted), and resolving the task must deliver to both
// exactly once, in attach order.
func TestSchedulerInFlightDedup(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(engine.New(1), store, nil)
	a, _ := s.OpenSession("a")
	b, _ := s.OpenSession("b")
	var order []string
	s.submit(a, "cell-k", engine.Job{}, func(results.Outcome) { order = append(order, "a") })
	s.submit(b, "cell-k", engine.Job{}, func(results.Outcome) { order = append(order, "b") })
	if s.queued != 1 {
		t.Fatalf("queued = %d, want 1 (second submit attached, not queued)", s.queued)
	}
	if got := b.Stats().Deduped; got != 1 {
		t.Fatalf("b deduped = %d, want 1", got)
	}
	s.mu.Lock()
	task := s.popLocked()
	s.mu.Unlock()
	if task == nil || task.sess != a {
		t.Fatal("queued task must belong to the leader session")
	}
	task.fc.Resolve(results.Outcome{})
	if strings.Join(order, ",") != "a,b" {
		t.Fatalf("deliveries = %v, want both, in attach order", order)
	}
	if s.flight.InFlight() != 0 {
		t.Fatal("resolved call still in the flight table")
	}
}

// TestSchedulerRoundRobin pins the fairness discipline white-box: with
// session a holding three queued cells and session b one, executors
// alternate a, b, a, a — b's small sweep is served on the second pop,
// not after a's queue drains. A session that empties leaves the ring
// and rejoins at the tail on its next submit.
func TestSchedulerRoundRobin(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newScheduler(engine.New(1), store, nil)
	a, _ := s.OpenSession("a")
	b, _ := s.OpenSession("b")
	submit := func(sess *Session, key string) {
		s.submit(sess, key, engine.Job{}, func(results.Outcome) {})
	}
	pop := func() string {
		s.mu.Lock()
		defer s.mu.Unlock()
		task := s.popLocked()
		if task == nil {
			return ""
		}
		return task.fc.Key
	}

	submit(a, "a1")
	submit(a, "a2")
	submit(a, "a3")
	submit(b, "b1")
	for i, want := range []string{"a1", "b1", "a2", "a3", ""} {
		if got := pop(); got != want {
			t.Fatalf("pop %d = %q, want %q", i, got, want)
		}
	}

	// Rejoin at the tail: b empties, submits again, and waits its turn
	// behind a's existing queue position.
	submit(a, "a4")
	submit(b, "b2")
	if got := pop(); got != "a4" {
		t.Fatalf("after rejoin, first pop = %q, want a4", got)
	}
	if got := pop(); got != "b2" {
		t.Fatalf("after rejoin, second pop = %q, want b2", got)
	}
}

// TestCellEndpointETag pins the cache semantics of GET /cell/{key}: the
// key's hash is a permanently valid strong ETag (If-None-Match answers
// 304 even for cells never computed — the key alone determines the
// bytes), a stored cell serves its immutable JSON, and an unknown cell
// without a conditional is a 404.
func TestCellEndpointETag(t *testing.T) {
	_, cl, _ := newTestServer(t)
	bench := workload.All()[0].Name
	cell := CellSpec{Workload: bench, Size: 1, Collector: "cg"}

	var buf bytes.Buffer
	if _, err := cl.Sweep(Spec{Cells: []CellSpec{cell}}, &buf); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	o, err := results.Decode([]byte(line))
	if err != nil {
		t.Fatalf("streamed outcome line does not decode: %v\n%s", err, line)
	}
	if o.Job.Workload != bench {
		t.Fatalf("streamed outcome is for %q, want %q", o.Job.Workload, bench)
	}

	key, err := results.Key(cell.Job())
	if err != nil {
		t.Fatal(err)
	}
	cellURL := cl.Base + "/cell/" + url.PathEscape(key)
	etag := `"` + results.KeyHash(key) + `"`

	resp, err := http.Get(cellURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cell: %s", resp.Status)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("ETag = %s, want %s", got, etag)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Errorf("Cache-Control = %q, want immutable", cc)
	}

	req, _ := http.NewRequest(http.MethodGet, cellURL, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %s, want 304", resp2.Status)
	}

	// The 304 needs only the key, not the store: a valid key that was
	// never computed still revalidates, while a plain GET of it is 404.
	otherKey, err := results.Key(engine.Job{Workload: bench, Size: 2, Collector: "cg"})
	if err != nil {
		t.Fatal(err)
	}
	otherURL := cl.Base + "/cell/" + url.PathEscape(otherKey)
	req, _ = http.NewRequest(http.MethodGet, otherURL, nil)
	req.Header.Set("If-None-Match", `"`+results.KeyHash(otherKey)+`"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET of uncomputed cell = %s, want 304", resp3.Status)
	}
	resp4, err := http.Get(otherURL)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("GET of uncomputed cell = %s, want 404", resp4.Status)
	}
}

// TestBadSpecIsRejectedAtAdmission pins the 400 path: an unknown
// figure and an unknown collector both fail before any cell runs, with
// no stream started.
func TestBadSpecIsRejectedAtAdmission(t *testing.T) {
	_, cl, prog := newTestServer(t)
	for _, spec := range []Spec{
		{Figs: []string{"4.99"}},
		{Cells: []CellSpec{{Workload: workload.All()[0].Name, Size: 1, Collector: "not-a-collector"}}},
	} {
		if _, err := cl.Sweep(spec, &bytes.Buffer{}); err == nil ||
			!strings.Contains(err.Error(), "400") {
			t.Errorf("spec %+v: err = %v, want 400", spec, err)
		}
	}
	if s := prog.Snapshot(); s.CellsTotal != 0 {
		t.Errorf("rejected specs submitted cells: %+v", s)
	}
}

// TestDrainFinishesStreamsAndRefusesNew pins the graceful-shutdown
// contract: after Drain, new sweeps get 503 and health reports
// draining, but a session admitted before the drain runs to completion
// — every cell delivered, Wait returning only after it closed.
func TestDrainFinishesStreamsAndRefusesNew(t *testing.T) {
	store, err := results.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog := &obs.Progress{}
	srv := New(Config{Engine: engine.New(2).SetProgress(prog), Store: store, Progress: prog})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sess, err := srv.sched.OpenSession("early")
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain()

	if h := srv.Health(); !h.Draining || h.Status != "draining" {
		t.Fatalf("health after drain = %+v", h)
	}
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(`{"figs":["4.1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /sweep while draining = %s, want 503", resp.Status)
	}
	if _, err := srv.sched.OpenSession("late"); err != ErrDraining {
		t.Fatalf("OpenSession while draining = %v, want ErrDraining", err)
	}

	// The pre-drain session still completes its sweep in full.
	jobs := []engine.Job{{Workload: workload.All()[0].Name, Size: 1, Collector: "cg"}}
	delivered := 0
	if err := sess.Run(jobs, func(i int, o results.Outcome) {
		if err := o.Failed(); err != nil {
			t.Errorf("cell %d failed during drain: %v", i, err)
		}
		delivered++
	}); err != nil {
		t.Fatal(err)
	}
	if delivered != len(jobs) {
		t.Fatalf("delivered %d of %d cells during drain", delivered, len(jobs))
	}
	sess.Close()

	done := make(chan struct{})
	go func() {
		srv.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Wait did not return after the last session closed")
	}
	if h := srv.Health(); h.InFlight != 0 {
		t.Fatalf("in-flight after drain completed = %d", h.InFlight)
	}
}

// TestSweepMethodAndBodyErrors pins the non-stream error statuses.
func TestSweepMethodAndBodyErrors(t *testing.T) {
	_, cl, _ := newTestServer(t)
	resp, err := http.Get(cl.Base + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep = %s, want 405", resp.Status)
	}
	resp, err = http.Post(cl.Base+"/sweep", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST bad body = %s, want 400", resp.Status)
	}
}

// TestClientTruncationDetected pins the client's drain observability: a
// stream that ends without a done event is an error, never a silently
// short table.
func TestClientTruncationDetected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{\"data\":\"partial row\"}\n")
	}))
	defer ts.Close()
	var buf bytes.Buffer
	_, err := (&Client{Base: ts.URL}).Sweep(Spec{Figs: []string{"4.1"}}, &buf)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation error", err)
	}
	if buf.String() != "partial row" {
		t.Fatalf("partial data not delivered before the error: %q", buf.String())
	}
}
