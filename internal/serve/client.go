package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the sweep server's NDJSON protocol: POST the spec,
// decode events, reassemble the deterministic byte stream. It is what
// cgsweep -server runs instead of a local backend — everything
// downstream of it (stdout, diffs, goldens) cannot tell the
// difference.
type Client struct {
	// Base is the server URL, e.g. "http://localhost:8080".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient). Sweeps
	// are long-lived streams; leave timeouts to contexts, not the
	// transport.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Sweep posts spec and streams the sweep to w: data events append their
// bytes verbatim (so w receives exactly the batch cgsweep output for
// the same figures), outcome events append one results.Encode line
// each. It returns the server's terminal stats. A connection that drops
// before the done event — a truncated stream — is an error, never a
// silently short table.
func (c *Client) Sweep(spec Spec, w io.Writer) (DoneStats, error) {
	var stats DoneStats
	body, err := json.Marshal(spec)
	if err != nil {
		return stats, fmt.Errorf("serve: encode spec: %w", err)
	}
	resp, err := c.http().Post(strings.TrimRight(c.Base, "/")+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return stats, fmt.Errorf("serve: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return stats, fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			var ev Event
			if jerr := json.Unmarshal(line, &ev); jerr != nil {
				return stats, fmt.Errorf("serve: bad event line: %w", jerr)
			}
			switch {
			case ev.Error != "":
				return stats, fmt.Errorf("serve: %s", ev.Error)
			case ev.Done != nil:
				return *ev.Done, nil
			case len(ev.Outcome) > 0:
				if _, werr := w.Write(append(ev.Outcome, '\n')); werr != nil {
					return stats, werr
				}
			case ev.Data != "":
				if _, werr := io.WriteString(w, ev.Data); werr != nil {
					return stats, werr
				}
			}
		}
		if err == io.EOF {
			return stats, fmt.Errorf("serve: stream truncated before done event")
		}
		if err != nil {
			return stats, fmt.Errorf("serve: %w", err)
		}
	}
}
