package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/results"
)

// Event is one NDJSON line of a /sweep response stream. Exactly one
// field is set per line:
//
//	{"data":"..."}     a chunk of rendered table bytes (figs mode);
//	                   concatenating every data field reproduces the
//	                   batch cgsweep stdout byte for byte
//	{"outcome":{...}}  one serialised cell (cells mode), in submission
//	                   order — the results.Encode line verbatim
//	{"done":{...}}     terminal success, with the sweep's cache stats
//	{"error":"..."}    terminal failure
//
// A stream that ends without a done or error event was truncated (the
// client treats that as an error, which is how drain correctness is
// observable from outside).
type Event struct {
	Data    string          `json:"data,omitempty"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
	Done    *DoneStats      `json:"done,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// DoneStats is the terminal accounting of one sweep: how many cells the
// client asked for and how each was satisfied. Cells = Computed +
// Stored + Deduped on a completed stream.
type DoneStats struct {
	Cells    int64 `json:"cells"`
	Computed int64 `json:"computed"`
	Stored   int64 `json:"stored"`
	Deduped  int64 `json:"deduped"`
}

// Config assembles a Server. Engine and Store are required and shared
// by every client; Progress feeds the /progress debug surface and the
// fairness lanes (nil disables both).
type Config struct {
	Engine      *engine.Engine
	Store       *results.Store
	Progress    *obs.Progress
	MaxInFlight int // concurrent cell executions (<= 0: engine worker count)
}

// Server is the sweep server's HTTP surface: POST /sweep (streamed
// sweeps) and GET /cell/{key} (the shared cache, content-addressed).
// Mount it on an obs.Server's mux so /progress, /healthz and pprof
// share the listener, and wire Drain/Wait/Health into the host's
// signal handling for graceful shutdown.
type Server struct {
	sched *Scheduler
	store *results.Store
	prog  *obs.Progress
}

// New returns a serving Server over cfg.
func New(cfg Config) *Server {
	return &Server{
		sched: NewScheduler(cfg.Engine, cfg.Store, cfg.Progress, cfg.MaxInFlight),
		store: cfg.Store,
		prog:  cfg.Progress,
	}
}

// Register mounts the sweep endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/cell/", s.handleCell)
}

// Handler returns a standalone handler with just the sweep endpoints
// (tests; production hosts Register on the obs mux instead).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// Drain stops admitting sweeps; accepted streams run to completion.
func (s *Server) Drain() { s.sched.Drain() }

// Wait blocks until every accepted sweep has finished and the
// scheduler has stopped. Call after Drain.
func (s *Server) Wait() { s.sched.Wait() }

// Health implements the obs.Server health callback: draining state plus
// the number of cells still queued or executing.
func (s *Server) Health() obs.Health {
	h := obs.Health{Status: "ok", InFlight: s.sched.InFlight()}
	if s.sched.Draining() {
		h.Status, h.Draining = "draining", true
	}
	return h
}

// handleSweep admits one client sweep and streams its events.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a sweep spec", http.StatusMethodNotAllowed)
		return
	}
	var spec Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad sweep spec: %v", err), http.StatusBadRequest)
		return
	}
	// Resolve everything the spec names before admission: a typo'd
	// figure or collector is a 400, never a half-streamed sweep.
	var figs []experiments.SweepFig
	if len(spec.Figs) > 0 || len(spec.Cells) == 0 {
		var err error
		if figs, err = experiments.DemographicFigs(spec.Figs...); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	jobs, err := spec.Jobs()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := s.sched.OpenSession(spec.Client)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer sess.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	ew := newEventWriter(w)
	backend := results.Observed{Next: sess, Obs: s.prog}

	var runErr error
	if len(figs) > 0 {
		runErr = experiments.Sweep(backend, figs, dataWriter{ew})
	}
	if runErr == nil && len(jobs) > 0 {
		runErr = backend.Run(jobs, func(i int, o results.Outcome) {
			line, err := results.Encode(o)
			if err != nil {
				ew.fail(err)
				return
			}
			// Encode appends the NDJSON newline; the raw JSON value is
			// the line without it.
			ew.event(Event{Outcome: json.RawMessage(line[:len(line)-1])})
		})
	}
	if runErr == nil {
		runErr = ew.sticky()
	}
	if runErr != nil {
		// Best effort: if the stream already broke, the write fails
		// silently and the missing done event tells the client.
		ew.terminalError(runErr)
		return
	}
	st := sess.Stats()
	ew.event(Event{Done: &st})
}

// handleCell serves one stored cell from the shared cache. The cell key
// is URL-escaped into the path; because cells are deterministic
// functions of their key, the key's content hash is a permanently valid
// strong ETag — an If-None-Match hit answers 304 from the key alone,
// without touching the store, and served cells are immutable.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "GET a cell key", http.StatusMethodNotAllowed)
		return
	}
	key, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/cell/"))
	if err != nil || key == "" {
		http.Error(w, "bad cell key", http.StatusBadRequest)
		return
	}
	etag := `"` + results.KeyHash(key) + `"`
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, ok, err := s.store.GetKey(key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		http.Error(w, "cell not computed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	_, _ = w.Write(data)
}

// eventWriter serialises Event lines onto the response, flushing per
// event so rows reach the client as cells complete. Write errors stick:
// once the client is gone, the sweep finishes its accepted work
// (deliveries still resolve) but nothing more is written.
type eventWriter struct {
	mu  sync.Mutex
	w   io.Writer
	fl  http.Flusher
	err error
}

func newEventWriter(w io.Writer) *eventWriter {
	ew := &eventWriter{w: w}
	if fl, ok := w.(http.Flusher); ok {
		ew.fl = fl
	}
	return ew
}

func (e *eventWriter) event(ev Event) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	b, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return err
	}
	b = append(b, '\n')
	if _, err := e.w.Write(b); err != nil {
		e.err = err
		return err
	}
	if e.fl != nil {
		e.fl.Flush()
	}
	return nil
}

// fail records an encoding-side error without touching the stream.
func (e *eventWriter) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
}

// sticky reports the first error, if any.
func (e *eventWriter) sticky() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// terminalError emits the error event, bypassing a sticky error so a
// server-side failure still reaches a healthy client.
func (e *eventWriter) terminalError(err error) {
	e.mu.Lock()
	e.err = nil
	e.mu.Unlock()
	e.event(Event{Error: err.Error()})
}

// dataWriter adapts the rendered row stream onto events: every Write —
// one table row, title or separator — becomes one data event, so the
// client reassembles the batch output byte for byte.
type dataWriter struct{ e *eventWriter }

func (d dataWriter) Write(p []byte) (int, error) {
	if err := d.e.event(Event{Data: string(p)}); err != nil {
		return 0, err
	}
	return len(p), nil
}
