// Package stats provides the small numeric helpers the experiment
// harness shares: summary statistics over repeated timing runs and the
// histogram bucket labelling used by Figures 4.5 and 4.6.
package stats

import (
	"fmt"
	"math"
	"time"
)

// Summary condenses repeated measurements (the thesis reports five runs
// per configuration, Appendix A.5–A.7).
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Std  float64
}

// Summarize computes a Summary over xs. An empty slice yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Merge combines two summaries as if Summarize had seen both sample
// sets at once (pooled mean and variance, Chan et al.'s parallel
// update), so per-shard summaries aggregate without revisiting the raw
// measurements. Merging is exact for N, Mean, Min and Max and
// numerically stable for Std.
func (s Summary) Merge(o Summary) Summary {
	if s.N == 0 {
		return o
	}
	if o.N == 0 {
		return s
	}
	n1, n2 := float64(s.N), float64(o.N)
	out := Summary{N: s.N + o.N, Min: s.Min, Max: s.Max}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	delta := o.Mean - s.Mean
	out.Mean = (n1*s.Mean + n2*o.Mean) / (n1 + n2)
	// Reassemble the centered sums of squares; single-sample summaries
	// carry Std 0, which is exactly their contribution.
	m2 := s.Std*s.Std*(n1-1) + o.Std*o.Std*(n2-1) + delta*delta*n1*n2/(n1+n2)
	if out.N > 1 {
		out.Std = math.Sqrt(m2 / float64(out.N-1))
	}
	return out
}

// SummarizeDurations is Summarize over time.Durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// Speedup reports base/other — the thesis's convention, where a value
// above 1 means the CG system is faster than the base system (Fig 4.7:
// "speedup of our approach over JDK").
func Speedup(base, other float64) float64 {
	if other == 0 {
		return math.Inf(1)
	}
	return base / other
}

// Pct formats part/whole as a percentage string; whole 0 yields "0%".
func Pct(part, whole uint64) string {
	if whole == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(part)/float64(whole))
}

// PctF is Pct's numeric form.
func PctF(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// BlockSizeLabels are the Fig 4.5 histogram buckets.
var BlockSizeLabels = [7]string{"1", "2", "3", "4", "5", "6-10", ">10"}

// AgeLabels are the Fig 4.6 histogram buckets (frame distance from birth
// to death).
var AgeLabels = [7]string{"0", "1", "2", "3", "4", "5", ">5"}
