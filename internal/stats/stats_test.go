package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty: %+v", s)
	}
	if s := Summarize([]float64{7}); s.N != 1 || s.Std != 0 || s.Mean != 7 {
		t.Fatalf("single: %+v", s)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

// TestSummaryBounds property: Min <= Mean <= Max for any input.
func TestSummaryBounds(t *testing.T) {
	check := func(xs []float64) bool {
		for _, x := range xs {
			// Skip pathological inputs whose sum overflows float64.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10, 5); got != 2 {
		t.Fatalf("Speedup(10,5) = %v", got)
	}
	if got := Speedup(5, 10); got != 0.5 {
		t.Fatalf("Speedup(5,10) = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("division by zero not handled")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 4); got != "25%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(3, 0); got != "0%" {
		t.Fatalf("Pct zero whole = %q", got)
	}
	if got := PctF(1, 2); got != 50 {
		t.Fatalf("PctF = %v", got)
	}
}

func TestSummaryMergeMatchesPooledSummarize(t *testing.T) {
	a := []float64{1.5, 2.25, 9, 4}
	b := []float64{0.5, 7, 3}
	all := append(append([]float64{}, a...), b...)
	want := Summarize(all)
	got := Summarize(a).Merge(Summarize(b))
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("Merge = %+v, want %+v", got, want)
	}
	if math.Abs(got.Mean-want.Mean) > 1e-12 || math.Abs(got.Std-want.Std) > 1e-12 {
		t.Fatalf("Merge mean/std = %v/%v, want %v/%v", got.Mean, got.Std, want.Mean, want.Std)
	}
	// Commutative, and the zero Summary is the identity.
	rev := Summarize(b).Merge(Summarize(a))
	if math.Abs(rev.Std-got.Std) > 1e-12 || rev.N != got.N {
		t.Fatal("Merge must be commutative")
	}
	if got := want.Merge(Summary{}); got != want {
		t.Fatal("zero Summary must be the Merge identity")
	}
	if got := (Summary{}).Merge(want); got != want {
		t.Fatal("zero Summary must be the Merge identity on the left")
	}
}

func TestSummaryMergeSingletons(t *testing.T) {
	want := Summarize([]float64{2, 8})
	got := Summarize([]float64{2}).Merge(Summarize([]float64{8}))
	if math.Abs(got.Std-want.Std) > 1e-12 || got.Mean != want.Mean {
		t.Fatalf("singleton Merge = %+v, want %+v", got, want)
	}
}
