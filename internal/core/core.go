// Package core implements the paper's contribution: the contaminated
// garbage (CG) collector.
//
// Every heap object is dynamically associated with a stack frame — its
// dependent frame — such that the object is provably dead when that frame
// pops (§2). Objects are partitioned into equilive sets maintained with
// Tarjan union–find (union by rank, path compression); contamination
// (one object referencing another) unions their sets, and the merged set
// depends on the older of the two frames. Returning an object promotes
// its set to the caller's frame; static references pin a set to the
// immortal frame 0. When a frame pops, every set on its dependent list is
// dead and is freed — or, under §3.7 recycling, spliced onto a recycle
// list that feeds later allocations.
//
// CG is conservative: the symmetric treatment of contamination and the
// never-younger rule can over-estimate lifetimes, so it runs in concert
// with the traditional mark–sweep collector (internal/msa). During a full
// collection CG rebuilds its structures from the mark traversal; with
// Config.ResetOnGC it additionally *improves* dependent frames to the
// youngest sound choice (§3.6).
package core

import (
	"fmt"
	"sync"

	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/unionfind"
	"repro/internal/vm"
)

// Config selects the collector variants evaluated in the thesis.
type Config struct {
	// StaticOpt enables the §3.4 optimization: referencing an
	// already-static object does not contaminate the referrer.
	StaticOpt bool
	// Recycle enables §3.7: popped equilive sets are kept as recycled
	// storage that feeds allocation before the traditional collector
	// runs.
	Recycle bool
	// TypedRecycle additionally maintains popped *singleton* sets by
	// class, so an allocation of the same class is satisfied in O(1)
	// instead of through the size-class index — the Chapter 6 future-work
	// extension ("the equilive singleton sets could be maintained 'by
	// type' ... such object recycling could have a big payoff").
	// Implies Recycle.
	TypedRecycle bool
	// ResetOnGC enables §3.6: a traditional collection re-derives each
	// live object's dependent frame from actual reachability, undoing
	// accumulated conservativeness.
	ResetOnGC bool
	// Packed selects the §3.5 packed union-find representation (rank in
	// the low bits of the parent word) instead of the wide one.
	Packed bool
	// Checked makes CG verify, on every event, that the touched objects
	// are not on the tainted (known-dead) list (§3.1.4). A violation is
	// a collector or runtime bug and panics.
	Checked bool
	// FreeHook, if non-nil, observes every object CG declares dead at a
	// frame pop, before storage is released. Tests use it to check
	// CG-dead objects against an exact reachability oracle.
	FreeHook func(id heap.HandleID)
}

// DefaultConfig is the preferred configuration of the thesis: the static
// optimization on, everything else off.
func DefaultConfig() Config { return Config{StaticOpt: true} }

// Stats aggregates CG activity. Counter semantics follow the thesis's
// experiment chapter; see the per-field comments.
type Stats struct {
	Created    uint64    // objects allocated (incl. recycled reuses)
	Popped     uint64    // objects collected by CG at frame pops (Fig 4.1 "collectable")
	Singleton  uint64    // of Popped, objects in size-1 blocks (Fig 4.5/4.9 "exact")
	Reused     uint64    // recycled objects handed back to the allocator (Fig 4.13)
	MSAFreed   uint64    // objects the traditional collector swept (Fig 4.11 "collected by MSA")
	Shared     uint64    // objects demoted to static due to thread sharing (Fig 4.2, A.1)
	LessLive   uint64    // objects whose frame improved (aged down) during resetting (Fig 4.11)
	FromStatic uint64    // of LessLive, objects that left the static set
	BlockSize  [7]uint64 // collected-block sizes: 1,2,3,4,5,6–10,>10 (Fig 4.5)
	AgeAtDeath [7]uint64 // birth-to-death frame distance: 0..5, >5 (Fig 4.6)
	Unions     uint64    // contamination unions performed
	OptSkips   uint64    // unions skipped by the §3.4 optimization
}

// Merge accumulates o into s. Every field is a sum, so merging shard
// results is commutative and associative: the engine's workers may
// finish in any order and the aggregate is identical.
func (s *Stats) Merge(o Stats) {
	s.Created += o.Created
	s.Popped += o.Popped
	s.Singleton += o.Singleton
	s.Reused += o.Reused
	s.MSAFreed += o.MSAFreed
	s.Shared += o.Shared
	s.LessLive += o.LessLive
	s.FromStatic += o.FromStatic
	for i := range s.BlockSize {
		s.BlockSize[i] += o.BlockSize[i]
	}
	for i := range s.AgeAtDeath {
		s.AgeAtDeath[i] += o.AgeAtDeath[i]
	}
	s.Unions += o.Unions
	s.OptSkips += o.OptSkips
}

// objMeta is CG's per-handle metadata — the fields §3.1.1 adds to the JDK
// handle (parent/rank live in the union-find forest; these are the rest).
// The struct is deliberately pointer-free: OnAlloc rewrites a whole
// entry per allocation, and a pointer field would drag a Go write
// barrier into that hot path (the reset pass's per-object frame stamp
// lives in the separate oldFrames scratch table, allocated only when a
// traditional collection actually runs).
type objMeta struct {
	birthFrame uint64        // frame ID of the allocating method
	birthDepth int32         // stack depth at allocation ("birth depth")
	owner      int32         // allocating thread ID; -1 once shared
	flags      uint8         // taint / shared bits
	next       heap.HandleID // next object in the equilive set's list
}

const (
	fTainted uint8 = 1 << iota // known dead (§3.1.4 tainted list)
	fShared                    // demoted for thread sharing (§3.3), sticky
)

// setMeta describes one equilive set; it is valid only at the set's
// union-find representative. Sets are chained into a doubly linked list
// per dependent frame (§3.1.2: "each frame is equipped with a reference
// to a list of its dependent equilive blocks").
type setMeta struct {
	head, tail heap.HandleID // object membership list (O(1) concat)
	size       int32
	frame      *vm.Frame     // dependent frame; the static frame pins forever
	prev, next heap.HandleID // neighbours on the frame's set list (roots)
}

// CG is the contaminated collector. It implements vm.Collector (its
// Events table subscribes every slot) and observes the collection
// cycle through an msa.Cycle descriptor (which drives structure
// rebuilding during traditional collections).
type CG struct {
	cfg  Config
	rt   *vm.Runtime
	heap *heap.Heap
	msa  *msa.Collector
	// Exactly one of dsu/packed is non-nil, selected at construction
	// (§3.5). Holding the concrete types instead of a unionfind.Forest
	// keeps the per-event Find/Union direct calls — the interface
	// dispatch this replaced cost an indirect call per runtime event,
	// against the thesis's few-machine-ops budget (§3.5).
	dsu    *unionfind.DSU
	packed *unionfind.Packed

	meta []objMeta
	sets []setMeta
	// oldFrames is reset-pass scratch, indexed like meta: each live
	// object's dependent frame stamped at BeginCycle, consumed by
	// Reached/EndCycle. Kept out of objMeta so demographics runs (no
	// forced collections) never allocate it and the per-alloc meta
	// write stays barrier-free.
	oldFrames []*vm.Frame

	// Recycled storage (§3.7), indexed by the arena's size-class ladder:
	// extents are align8, so heap.SizeClass maps a freed object's extent
	// size to its rung exactly, and recycleClasses[class] is a LIFO of
	// dead objects of that extent size — a freed object's class is known
	// at pop time, so the insert is a direct index, no search at all.
	// recycleNonEmpty mirrors which classes hold objects; AllocFallback's
	// best fit is one NextSet scan over that bitset (O(ladder words),
	// independent of object count — the seed's sorted-bucket binary
	// search, and before it the first-fit walk that made cg+recycle
	// *slower* than cg on allocation storms, both collapse into the
	// ladder the arena already defines). Extents wider than the ladder
	// (huge arrays) spill into the sorted bucket list, searched only
	// after the ladder misses. Drained classes keep their capacity in
	// place, so steady-state churn costs 0 Go allocations per op; spare
	// feeds first-touch class creation with recycled scratch slices (see
	// tables.spare).
	recycleClasses  [][]heap.HandleID
	recycleNonEmpty heap.Bitset
	recycleSpill    []sizeClassBucket
	spare           [][]heap.HandleID
	// byType holds recycled singleton objects keyed by class (Chapter 6
	// typed recycling): a LIFO per class, each entry still heap-live.
	byType map[heap.ClassID][]heap.HandleID
	// tab is the pooled carrier the side tables above were drawn from
	// at Attach; detach hands them back (see tablePool).
	tab *tables
	// cycle is CG's subscription to the collection cycle, built once at
	// Attach: the §3.6 rebuild slots always, the End accounting slot
	// only under ResetOnGC — an unsubscribed slot costs the mark loop
	// nothing (see msa.Cycle).
	cycle msa.Cycle
	stats Stats
}

// tables is the recyclable allocation footprint of one CG instance:
// every side table whose construction and growth would otherwise be
// paid per matrix cell. The engine runs each cell on a fresh collector
// (shards must not share mutable state), but the *capacity* behind the
// tables is content-free once truncated — grown regions are re-zeroed
// by the append-of-make growth paths, and MakeSet re-derives union-find
// entries from indices — so recycling it through a pool is observably
// identical to fresh construction (TestPooledFigureIdentity pins this
// at the figure level). The pool fills only via Events.Detach, i.e. on
// the engine's Reset path; a dropped runtime donates nothing.
type tables struct {
	meta      []objMeta
	sets      []setMeta
	oldFrames []*vm.Frame
	dsu       *unionfind.DSU
	packed    *unionfind.Packed
	msa       *msa.Collector
	// recycleClasses is the ladder-indexed class array (entries nilled
	// at detach, the array itself reused) and recycleSpill the sorted
	// overflow list for extents wider than the ladder.
	recycleClasses  [][]heap.HandleID
	recycleNonEmpty heap.Bitset
	recycleSpill    []sizeClassBucket
	// spare holds the recycle classes' scratch slices between cells.
	// The class entries themselves are nilled at detach — one workload's
	// population means nothing to the next — and the capacity behind the
	// drained classes is pooled here *shared across classes* (capped at
	// maxSpare) instead of staying pinned per class at each class's own
	// high-water mark.
	spare  [][]heap.HandleID
	byType map[heap.ClassID][]heap.HandleID
}

// maxSpare bounds the recycle-scratch slices a pooled table retains: a
// long sweep's worst cell stops dictating every later cell's idle
// footprint, while typical cells (a handful of size classes) still
// recycle every slice they need.
const maxSpare = 32

var tablePool = sync.Pool{New: func() any { return new(tables) }}

// New returns an unattached CG collector; pass it to vm.New. Side
// tables are drawn from the pool at Attach, not here: construction is
// cheap and a collector that never attaches owns nothing.
func New(cfg Config) *CG {
	if cfg.TypedRecycle {
		cfg.Recycle = true
	}
	return &CG{cfg: cfg}
}

// Name spells out the active variant configuration (the registry's
// canonical naming convention).
func (c *CG) Name() string {
	n := "cg"
	if c.cfg.Recycle {
		n += "+recycle"
	}
	if c.cfg.ResetOnGC {
		n += "+reset"
	}
	if !c.cfg.StaticOpt {
		n += "-noopt"
	}
	return n
}

// Events implements vm.Collector: CG subscribes every slot, declares
// the recycling fallback capability only when §3.7 recycling is
// configured, and demands unelided access events only when the
// cfg.Checked taint assurance needs to see every touch.
func (c *CG) Events() vm.Events {
	ev := vm.Events{
		Name:      c.Name(),
		Attach:    c.Attach,
		Detach:    c.detach,
		Alloc:     c.OnAlloc,
		Ref:       c.OnRef,
		StaticRef: c.OnStaticRef,
		Return:    c.OnReturn,
		FramePop:  c.OnFramePop,
		Access:    c.OnAccess,
		Collect:   c.Collect,
		// Taint checking reads every access event; the runtime must
		// not elide dispatch even while single-threaded.
		AllAccess: c.cfg.Checked,
		Collector: c,
	}
	if c.cfg.Recycle {
		ev.AllocFallback = c.AllocFallback
	}
	return ev
}

// Attach binds CG to rt (the descriptor's Attach hook), drawing side
// tables from the pool.
func (c *CG) Attach(rt *vm.Runtime) {
	c.rt = rt
	c.heap = rt.Heap
	t := tablePool.Get().(*tables)
	c.tab = t
	if t.msa == nil {
		t.msa = msa.New(rt)
	} else {
		t.msa.Reattach(rt)
	}
	c.msa = t.msa
	c.meta = t.meta[:0]
	c.sets = t.sets[:0]
	c.oldFrames = t.oldFrames[:0]
	if c.cfg.Packed {
		if t.packed == nil {
			t.packed = unionfind.NewPacked(0)
		}
		t.packed.Truncate()
		c.packed = t.packed
	} else {
		if t.dsu == nil {
			t.dsu = unionfind.NewDSU(0)
		}
		t.dsu.Truncate()
		c.dsu = t.dsu
	}
	if c.cfg.Recycle {
		if t.recycleClasses == nil {
			t.recycleClasses = make([][]heap.HandleID, heap.NumSizeClasses)
		}
		t.recycleNonEmpty.Reset(heap.NumSizeClasses)
		c.recycleClasses = t.recycleClasses
		c.recycleNonEmpty = t.recycleNonEmpty
		c.recycleSpill = t.recycleSpill
		c.spare = t.spare
	}
	if c.cfg.TypedRecycle {
		if t.byType == nil {
			t.byType = make(map[heap.ClassID][]heap.HandleID)
		}
		c.byType = t.byType
	}
	c.cycle = msa.Cycle{
		Begin:    c.beginCycle,
		Reached:  c.reached,
		Edge:     c.edge,
		WillFree: c.willFree,
	}
	if c.cfg.ResetOnGC {
		c.cycle.End = c.endCycle
	}
}

// detach implements the event table's Detach capability: the runtime is
// replacing this collector, so its side tables go back to the pool. The
// pointer-bearing tables are cleared through their full capacity first —
// a pooled table must not pin a dead shard's frames against the Go GC.
// The collector must not be queried (Stats, Snapshot, events) after
// detach; its table fields are nilled so a violation fails loudly.
func (c *CG) detach() {
	t := c.tab
	if t == nil {
		return
	}
	c.tab = nil
	t.meta = c.meta[:0]
	sets := c.sets[:cap(c.sets)]
	clear(sets)
	t.sets = sets[:0]
	of := c.oldFrames[:cap(c.oldFrames)]
	clear(of)
	t.oldFrames = of[:0]
	// Recycle index: nil out the populated class entries (one cell's
	// population means nothing to the next) and move each scratch slice
	// to the shared spare pool, so a peak-size cell's scratch is
	// redistributed rather than pinned per class forever. The spill list
	// is truncated the same way the seed's bucket list was.
	if c.recycleClasses != nil {
		spare := c.spare
		for cl, objs := range c.recycleClasses {
			if objs == nil {
				continue
			}
			if cap(objs) > 0 && len(spare) < maxSpare {
				spare = append(spare, objs[:0])
			}
			c.recycleClasses[cl] = nil
		}
		for i := range c.recycleSpill {
			if objs := c.recycleSpill[i].objs; cap(objs) > 0 && len(spare) < maxSpare {
				spare = append(spare, objs[:0])
			}
			c.recycleSpill[i] = sizeClassBucket{}
		}
		t.recycleClasses = c.recycleClasses
		t.recycleSpill = c.recycleSpill[:0]
		t.spare = spare
	}
	if c.byType != nil {
		clear(c.byType)
	}
	// Unbind the pooled mark-sweep engine from the runtime too: a
	// pooled table must not pin a dead shard's heap and arena either.
	t.msa.Reattach(nil)
	c.meta, c.sets, c.oldFrames = nil, nil, nil
	c.recycleClasses, c.recycleNonEmpty, c.recycleSpill = nil, nil, nil
	c.spare, c.byType = nil, nil
	c.dsu, c.packed = nil, nil
	c.msa = nil
	tablePool.Put(t)
}

// Stats returns a copy of the counters.
func (c *CG) Stats() Stats { return c.stats }

// MSAStats exposes the embedded traditional collector's counters.
func (c *CG) MSAStats() msa.Stats { return c.msa.Stats() }

// ensure grows the side tables to cover handle id. Handle slots are
// recycled, so in steady state the tables are already big enough and
// this is one compare; growth is the cold path.
func (c *CG) ensure(id heap.HandleID) {
	n := int(id)
	if c.packed != nil {
		c.packed.MakeSet(n)
	} else {
		c.dsu.MakeSet(n)
	}
	if n >= len(c.meta) {
		c.grow(n)
	}
}

//go:noinline
func (c *CG) grow(n int) {
	c.meta = append(c.meta, make([]objMeta, n+1-len(c.meta))...)
	c.sets = append(c.sets, make([]setMeta, n+1-len(c.sets))...)
}

// find returns the representative handle of id's equilive set.
func (c *CG) find(id heap.HandleID) heap.HandleID {
	if c.packed != nil {
		return heap.HandleID(c.packed.Find(int(id)))
	}
	return heap.HandleID(c.dsu.Find(int(id)))
}

// quickSame is the one-pass putfield fast path: conclusively true when
// a single parent load per endpoint proves x and y equilive, false
// (meaning "unknown") otherwise.
func (c *CG) quickSame(x, y heap.HandleID) bool {
	if c.packed != nil {
		return c.packed.QuickSame(int(x), int(y))
	}
	return c.dsu.QuickSame(int(x), int(y))
}

// union merges the sets holding rx and ry and returns the merged root.
func (c *CG) union(rx, ry heap.HandleID) heap.HandleID {
	if c.packed != nil {
		return heap.HandleID(c.packed.Union(int(rx), int(ry)))
	}
	return heap.HandleID(c.dsu.Union(int(rx), int(ry)))
}

// resetElem makes id a singleton in the forest (rebuild paths).
func (c *CG) resetElem(id heap.HandleID) {
	if c.packed != nil {
		c.packed.Reset(int(id))
	} else {
		c.dsu.Reset(int(id))
	}
}

// linkSet pushes set root onto its dependent frame's list (the frame's
// GCHead word, §3.1.2).
func (c *CG) linkSet(root heap.HandleID) {
	s := &c.sets[int(root)]
	f := s.frame
	s.prev, s.next = heap.Nil, f.GCHead
	if f.GCHead != heap.Nil {
		c.sets[int(f.GCHead)].prev = root
	}
	f.GCHead = root
}

// unlinkSet removes set root from its dependent frame's list.
func (c *CG) unlinkSet(root heap.HandleID) {
	s := &c.sets[int(root)]
	if s.prev != heap.Nil {
		c.sets[int(s.prev)].next = s.next
	} else {
		s.frame.GCHead = s.next
	}
	if s.next != heap.Nil {
		c.sets[int(s.next)].prev = s.prev
	}
	s.prev, s.next = heap.Nil, heap.Nil
}

// retarget moves set root to depend on frame nf, relinking frame lists.
func (c *CG) retarget(root heap.HandleID, nf *vm.Frame) {
	c.unlinkSet(root)
	c.sets[int(root)].frame = nf
	c.linkSet(root)
}

// older returns the older (smaller-ID, longer-lived) of two frames.
// Frame 0 — the static pseudo-frame — is oldest of all.
func older(a, b *vm.Frame) *vm.Frame {
	if a.ID <= b.ID {
		return a
	}
	return b
}

// checkNotTainted enforces the §3.1.4 assurance in Checked mode: a dead
// object flowing through a runtime event is a collector bug.
func (c *CG) checkNotTainted(id heap.HandleID, op string) {
	if c.cfg.Checked && int(id) < len(c.meta) && c.meta[int(id)].flags&fTainted != 0 {
		panic(fmt.Sprintf("core: tainted object %d touched by %s", id, op))
	}
}

// OnAlloc is the Alloc slot: a fresh object forms a singleton
// equilive set dependent on the allocating frame.
func (c *CG) OnAlloc(id heap.HandleID, f *vm.Frame) {
	c.ensure(id)
	c.resetElem(id)
	owner := int32(0)
	if f.Thread != nil {
		owner = int32(f.Thread.ID)
	}
	c.meta[int(id)] = objMeta{
		birthFrame: f.ID,
		birthDepth: int32(f.Depth),
		owner:      owner,
	}
	c.sets[int(id)] = setMeta{head: id, tail: id, size: 1, frame: f}
	c.linkSet(id)
	c.stats.Created++
}

// isStatic reports whether set root is pinned to the static frame.
func (c *CG) isStatic(root heap.HandleID) bool {
	return c.sets[int(root)].frame.ID == 0
}

// OnRef is the Ref slot: src now references dst, so the two
// contaminate each other (§2.1): their sets union, and the merged set
// depends on the older frame.
func (c *CG) OnRef(src, dst heap.HandleID) {
	c.checkNotTainted(src, "putfield(src)")
	c.checkNotTainted(dst, "putfield(dst)")
	c.contaminate(src, dst)
}

// contaminate unions the sets of x and y. y is the *referenced* object;
// under the §3.4 optimization, a reference *to* an already-static object
// contaminates nothing (the static object cannot become more live, and it
// holds no reference back to x).
func (c *CG) contaminate(x, y heap.HandleID) {
	// Fast path: a raytrace-style loop stores between the same pair of
	// already-equilive objects thousands of times; one parent load per
	// endpoint settles those without two full Finds (§3.5's few-ops
	// budget). Inconclusive answers fall through to the exact check.
	if c.quickSame(x, y) {
		return
	}
	rx, ry := c.find(x), c.find(y)
	if rx == ry {
		return
	}
	if c.cfg.StaticOpt && c.isStatic(ry) && !c.isStatic(rx) {
		c.stats.OptSkips++
		return
	}
	sx, sy := c.sets[int(rx)], c.sets[int(ry)]
	c.unlinkSet(rx)
	c.unlinkSet(ry)
	root := c.union(rx, ry)
	// Concatenate membership lists (O(1) via tail pointers).
	c.meta[int(sx.tail)].next = sy.head
	c.sets[int(root)] = setMeta{
		head:  sx.head,
		tail:  sy.tail,
		size:  sx.size + sy.size,
		frame: older(sx.frame, sy.frame),
	}
	c.linkSet(root)
	c.stats.Unions++
}

// OnStaticRef is the StaticRef slot: dst's set becomes dependent on
// frame 0 ("the referenced object's equilive block is added to the list
// of frame-0 dependent blocks").
func (c *CG) OnStaticRef(dst heap.HandleID) {
	c.checkNotTainted(dst, "putstatic")
	r := c.find(dst)
	if c.isStatic(r) {
		return
	}
	c.retarget(r, c.rt.StaticFrame())
}

// OnReturn is the Return slot: an object returned to its caller must
// survive at least until the caller's frame pops ("the object's equilive
// block is adjusted to depend on the caller's frame, unless the object is
// already dependent on an older frame").
func (c *CG) OnReturn(val heap.HandleID, caller *vm.Frame) {
	c.checkNotTainted(val, "areturn")
	r := c.find(val)
	if c.sets[int(r)].frame.ID > caller.ID {
		c.retarget(r, caller)
	}
}

// OnAccess is the Access slot: thread-share detection (§3.3). The
// first time an object is touched by a thread other than its allocator,
// its whole equilive block is demoted to the static set, permanently.
func (c *CG) OnAccess(id heap.HandleID, t *vm.Thread) {
	c.checkNotTainted(id, "access")
	if t == nil {
		return
	}
	m := &c.meta[int(id)]
	if m.flags&fShared != 0 || m.owner == int32(t.ID) {
		return
	}
	r := c.find(id)
	if c.isStatic(r) {
		// The block is already immortal; just record this object as
		// shared. (Avoids re-walking large static sets on every
		// cross-thread touch.)
		m.flags |= fShared
		m.owner = -1
		c.stats.Shared++
		return
	}
	// Demote the entire block to the static set (§3.3).
	for o := c.sets[int(r)].head; o != heap.Nil; o = c.meta[int(o)].next {
		om := &c.meta[int(o)]
		if om.flags&fShared == 0 {
			om.flags |= fShared
			om.owner = -1
			c.stats.Shared++
		}
	}
	c.retarget(r, c.rt.StaticFrame())
}

// OnFramePop is the FramePop slot: every equilive set dependent on the
// popping frame is dead. Under recycling the sets are spliced onto the
// recycle list in O(1); otherwise each object is freed to the heap.
func (c *CG) OnFramePop(f *vm.Frame) int {
	n := 0
	for root := f.GCHead; root != heap.Nil; {
		s := &c.sets[int(root)]
		next := s.next
		n += int(s.size)
		c.collectSet(root, f)
		root = next
	}
	f.GCHead = heap.Nil
	return n
}

// collectSet records statistics for a dead set and releases (or recycles)
// its objects.
func (c *CG) collectSet(root heap.HandleID, f *vm.Frame) {
	s := &c.sets[int(root)]
	c.stats.BlockSize[sizeBucket(int(s.size))]++
	singleton := s.size == 1
	typed := c.cfg.TypedRecycle && singleton
	if typed {
		// Chapter 6 typed recycling: singleton sets go to a per-class
		// LIFO; "when a frame is popped, there would be a collection of
		// free objects of a given type".
		cls := c.heap.ClassOf(s.head)
		c.byType[cls] = append(c.byType[cls], s.head)
	}
	for o := s.head; o != heap.Nil; {
		m := &c.meta[int(o)]
		next := m.next
		dist := int(m.birthDepth) - f.Depth
		if dist < 0 {
			dist = 0
		}
		c.stats.AgeAtDeath[ageBucket(dist)]++
		c.stats.Popped++
		if singleton {
			c.stats.Singleton++
		}
		m.flags |= fTainted
		if c.cfg.FreeHook != nil {
			c.cfg.FreeHook(o)
		}
		switch {
		case !c.cfg.Recycle:
			c.heap.Free(o)
		case !typed:
			// The dead object joins its ladder class; the walk
			// already visits every member for the histograms, so the
			// per-object insert costs one indexed push on top.
			c.recycleAdd(o)
		}
		o = next
	}
	s.prev, s.next = heap.Nil, heap.Nil
}

// sizeClassBucket is one spill size class of recycled storage: every
// object on objs is dead-but-heap-live with a slab extent of exactly
// size bytes, and size exceeds the arena ladder (heap.MaxSmallSize).
type sizeClassBucket struct {
	size int
	objs []heap.HandleID
}

// bucketLowerBound returns the index of the first spill bucket whose
// size is at least size (len(bs) if none) — the search behind both the
// spill insert and the fallback's over-ladder best fit.
func bucketLowerBound(bs []sizeClassBucket, size int) int {
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bs[mid].size < size {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// takeSpare pops a pooled scratch slice for a first-touch class (nil if
// the pool is dry; the append then allocates once, the cold path).
func (c *CG) takeSpare() []heap.HandleID {
	n := len(c.spare)
	if n == 0 {
		return nil
	}
	s := c.spare[n-1]
	c.spare[n-1] = nil
	c.spare = c.spare[:n-1]
	return s
}

// spillBucket returns the index of size's bucket in the sorted spill
// list, creating it if absent.
func (c *CG) spillBucket(size int) int {
	bs := c.recycleSpill
	lo := bucketLowerBound(bs, size)
	if lo < len(bs) && bs[lo].size == size {
		return lo
	}
	objs := c.takeSpare()
	c.recycleSpill = append(c.recycleSpill, sizeClassBucket{})
	copy(c.recycleSpill[lo+1:], c.recycleSpill[lo:])
	c.recycleSpill[lo] = sizeClassBucket{size: size, objs: objs}
	return lo
}

// recycleAdd pushes a dead-but-heap-live object onto its ladder class —
// the extent size is align8, so the class is a direct index, no search —
// or, for extents wider than the ladder, onto its spill bucket.
func (c *CG) recycleAdd(o heap.HandleID) {
	size := c.heap.SizeOf(o)
	if size <= heap.MaxSmallSize {
		cl := heap.SizeClass(size)
		objs := c.recycleClasses[cl]
		if len(objs) == 0 {
			if objs == nil {
				objs = c.takeSpare()
			}
			c.recycleNonEmpty.Set(cl)
		}
		c.recycleClasses[cl] = append(objs, o)
		return
	}
	i := c.spillBucket(size)
	b := &c.recycleSpill[i]
	b.objs = append(b.objs, o)
}

// sizeBucket maps a block size to Fig 4.5's histogram buckets.
func sizeBucket(n int) int {
	switch {
	case n <= 5:
		return n - 1
	case n <= 10:
		return 5
	default:
		return 6
	}
}

// ageBucket maps a frame distance to Fig 4.6's histogram buckets.
func ageBucket(d int) int {
	if d > 5 {
		return 6
	}
	return d
}

// AllocFallback is the recycling capability (declared in the event
// table only under cfg.Recycle): the §3.7 recycling allocator.
func (c *CG) AllocFallback(cls heap.ClassID, extra int) (heap.HandleID, bool) {
	if !c.cfg.Recycle {
		return heap.Nil, false
	}
	if c.cfg.TypedRecycle && extra == 0 {
		// O(1) exact-class reuse: same class means same size, so no
		// fit check is needed ("objects of a given type always take the
		// same size (except for arrays)", Chapter 6).
		if bucket := c.byType[cls]; len(bucket) > 0 {
			o := bucket[len(bucket)-1]
			c.byType[cls] = bucket[:len(bucket)-1]
			if err := c.heap.Reinit(o, cls, 0); err != nil {
				panic(err) // same class, same size: a failure is a bug
			}
			c.stats.Reused++
			return o, true
		}
	}
	// Best fit over the ladder index: the smallest recycled extent that
	// can hold the request is the first set bit of recycleNonEmpty at or
	// after the request's own class — one word-wise bitset scan, O(ladder
	// words), independent of both object count and populated-class
	// count. Extents wider than the ladder live in the sorted spill
	// list; every spill size exceeds every ladder size, so scanning the
	// ladder first preserves the seed's ascending-size best-fit order.
	need := heap.InstanceSize(c.heap.ClassDef(cls), extra)
	if need <= heap.MaxSmallSize {
		if cl := c.recycleNonEmpty.NextSet(heap.SizeClass(need)); cl >= 0 {
			objs := c.recycleClasses[cl]
			n := len(objs)
			o := objs[n-1]
			c.recycleClasses[cl] = objs[:n-1]
			if n == 1 {
				c.recycleNonEmpty.Clear(cl)
			}
			if err := c.heap.Reinit(o, cls, extra); err != nil {
				panic(err) // ladder class >= need; a failure is a bug
			}
			c.stats.Reused++
			return o, true
		}
	}
	bs := c.recycleSpill
	for i := bucketLowerBound(bs, need); i < len(bs); i++ {
		b := &bs[i]
		if n := len(b.objs); n > 0 {
			o := b.objs[n-1]
			b.objs = b.objs[:n-1]
			if err := c.heap.Reinit(o, cls, extra); err != nil {
				panic(err) // size was checked; a failure is a bug
			}
			c.stats.Reused++
			return o, true
		}
	}
	return heap.Nil, false
}

// Collect is the collection capability: run the traditional collector
// with CG's cycle subscription attached.
func (c *CG) Collect() int { return c.msa.Collect(c.cycle) }

// --- msa.Cycle slots: structure rebuilding during traditional collection ---
//
// Whether or not ResetOnGC is enabled, CG must rebuild its side
// structures during a full collection: the sweep frees objects CG still
// thought live, and union-find does not support deletion. The mark
// traversal visits frames oldest-first (internal/msa), so the first frame
// to reach an object is the oldest frame referencing it. With ResetOnGC
// the object adopts that frame (the §3.6 improvement); without it the
// object keeps its previous dependent frame, preserving plain-CG
// conservativeness while still purging dead entries. Because the Edge
// slot is order-sensitive under the §3.4 static optimization, a cycle
// carrying these slots always runs msa's sequential mark.

// beginCycle is the Begin slot.
func (c *CG) beginCycle() {
	// Recycled storage is definitively dead: release it to the heap so
	// the sweep's accounting sees only MSA-discovered garbage.
	c.FlushRecycle()
	// Stamp every live object's current dependent frame, then detach all
	// sets from all frames: the mark phase rebuilds them. EachFrame
	// visits every frame exactly once, so no per-cycle scratch set is
	// needed (the map this replaced allocated on every forced GC of the
	// resetting experiment).
	if len(c.oldFrames) < len(c.meta) {
		c.oldFrames = append(c.oldFrames, make([]*vm.Frame, len(c.meta)-len(c.oldFrames))...)
	}
	c.rt.EachFrame(func(f *vm.Frame) {
		for root := f.GCHead; root != heap.Nil; root = c.sets[int(root)].next {
			s := &c.sets[int(root)]
			for o := s.head; o != heap.Nil; o = c.meta[int(o)].next {
				c.oldFrames[int(o)] = s.frame
			}
		}
		f.GCHead = heap.Nil
	})
}

// reached is the Reached slot: a live object becomes a fresh singleton
// set on its (possibly improved) dependent frame.
func (c *CG) reached(id heap.HandleID, f *vm.Frame) {
	c.resetElem(id)
	m := &c.meta[int(id)]
	m.next = heap.Nil
	nf := f
	switch {
	case m.flags&fShared != 0:
		nf = c.rt.StaticFrame() // sharing demotion is sticky (§3.3)
	case !c.cfg.ResetOnGC && int(id) < len(c.oldFrames) && c.oldFrames[int(id)] != nil:
		nf = c.oldFrames[int(id)] // preserve plain-CG conservativeness
	}
	c.sets[int(id)] = setMeta{head: id, tail: id, size: 1, frame: nf}
	c.linkSet(id)
}

// edge is the Edge slot: connected live objects re-contaminate, so
// the rebuilt partition obeys the same older-frame rule.
func (c *CG) edge(src, dst heap.HandleID) {
	c.contaminate(src, dst)
}

// willFree is the WillFree slot: the object dropped out of CG's
// structures and is collected by the sweep (Fig 4.11 "collected by MSA").
func (c *CG) willFree(id heap.HandleID) {
	c.meta[int(id)].flags |= fTainted
	c.stats.MSAFreed++
}

// endCycle is the End slot, subscribed only under ResetOnGC: measure
// how many objects became "less live" than CG believed (Fig 4.11).
func (c *CG) endCycle(int) {
	c.heap.ForEachLive(func(id heap.HandleID) {
		if int(id) >= len(c.oldFrames) {
			return
		}
		old := c.oldFrames[int(id)]
		if old == nil {
			return
		}
		nf := c.sets[int(c.find(id))].frame
		if nf.ID > old.ID {
			c.stats.LessLive++
			if old.ID == 0 {
				c.stats.FromStatic++
			}
		}
		c.oldFrames[int(id)] = nil
	})
}

// FlushRecycle releases all recycled-but-unused storage back to the heap.
// The runtime calls Collect (which flushes) on exhaustion; experiments
// call this at end-of-run so heap accounting balances.
func (c *CG) FlushRecycle() {
	// Ascending ladder classes, then ascending spill sizes — the same
	// ascending-extent-size free order the seed's sorted bucket list
	// produced, so the arena sees an identical release sequence.
	for cl := c.recycleNonEmpty.NextSet(0); cl >= 0; cl = c.recycleNonEmpty.NextSet(cl + 1) {
		objs := c.recycleClasses[cl]
		for _, o := range objs {
			c.heap.Free(o)
		}
		// Keep the drained class (and its capacity) in place: the next
		// churn cycle refills it without touching the Go heap.
		c.recycleClasses[cl] = objs[:0]
		c.recycleNonEmpty.Clear(cl)
	}
	for i := range c.recycleSpill {
		b := &c.recycleSpill[i]
		for _, o := range b.objs {
			c.heap.Free(o)
		}
		b.objs = b.objs[:0]
	}
	for cls, bucket := range c.byType {
		for _, o := range bucket {
			c.heap.Free(o)
		}
		// Keep the drained bucket (and its capacity), as with the ladder
		// classes above: the next churn cycle refills it without touching
		// the Go heap.
		c.byType[cls] = bucket[:0]
	}
}

// RecycledObjects counts objects currently waiting as recycled storage
// (ladder classes, spill buckets, plus the typed per-class buckets).
func (c *CG) RecycledObjects() int {
	n := 0
	for cl := c.recycleNonEmpty.NextSet(0); cl >= 0; cl = c.recycleNonEmpty.NextSet(cl + 1) {
		n += len(c.recycleClasses[cl])
	}
	for _, b := range c.recycleSpill {
		n += len(b.objs)
	}
	for _, bucket := range c.byType {
		n += len(bucket)
	}
	return n
}

// DependentFrame reports the current dependent frame of a live object —
// the observable the worked example (Fig 2.1/2.2) and the tests inspect.
func (c *CG) DependentFrame(id heap.HandleID) *vm.Frame {
	return c.sets[int(c.find(id))].frame
}

// SetSize reports the size of id's equilive set.
func (c *CG) SetSize(id heap.HandleID) int {
	return int(c.sets[int(c.find(id))].size)
}

// SameSet reports whether two objects are equilive.
func (c *CG) SameSet(a, b heap.HandleID) bool { return c.find(a) == c.find(b) }

// IsTainted reports whether CG has declared id dead.
func (c *CG) IsTainted(id heap.HandleID) bool {
	return int(id) < len(c.meta) && c.meta[int(id)].flags&fTainted != 0
}

// Breakdown is the Fig A.2–A.4 object classification at end of run:
// every created object is popped (CG-collected), static (live in the
// frame-0 set), thread (demoted for sharing), or msa (swept by the
// traditional collector).
type Breakdown struct {
	Created uint64
	Popped  uint64
	Static  uint64
	Thread  uint64
	MSA     uint64
	Live    uint64 // live objects not on the static frame (mid-run snapshots)
}

// Merge accumulates o into b (order-independent shard aggregation).
func (b *Breakdown) Merge(o Breakdown) {
	b.Created += o.Created
	b.Popped += o.Popped
	b.Static += o.Static
	b.Thread += o.Thread
	b.MSA += o.MSA
	b.Live += o.Live
}

// Snapshot classifies all objects created so far. Call after the
// workload's frames have all popped for end-of-run semantics.
func (c *CG) Snapshot() Breakdown {
	b := Breakdown{
		Created: c.stats.Created,
		Popped:  c.stats.Popped,
		MSA:     c.stats.MSAFreed,
		Thread:  c.stats.Shared,
	}
	c.heap.ForEachLive(func(id heap.HandleID) {
		m := &c.meta[int(id)]
		if m.flags&fTainted != 0 || m.flags&fShared != 0 {
			return // recycled-awaiting-reuse or already counted as thread
		}
		if c.isStatic(c.find(id)) {
			b.Static++
		} else {
			b.Live++
		}
	})
	return b
}

var _ vm.Collector = (*CG)(nil)
