package core

import (
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

func newRT(t testing.TB, cfg Config, arena int) (*vm.Runtime, *CG, heap.ClassID) {
	t.Helper()
	h := heap.New(arena)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	cg := New(cfg)
	rt := vm.New(h, cg)
	return rt, cg, node
}

func checkedCfg() Config {
	return Config{StaticOpt: true, Checked: true}
}

// TestWorkedExample reproduces the paper's Figure 2.1/2.2 walk-through:
// frames 0..5 (0 = statics), objects A..E, and the five instructions that
// rearrange their dependent frames. Expected dependent frames after each
// step are taken directly from §2.1.
func TestWorkedExample(t *testing.T) {
	for _, opt := range []bool{false, true} {
		rt, cg, node := newRT(t, Config{StaticOpt: opt, Checked: true}, 1<<16)
		th := rt.NewThread(1) // frame 1
		staticSlot := rt.StaticSlot("E")

		// Build the stack of Figure 2.1. Objects are allocated in the
		// frame whose number the figure gives as their "earliest frame":
		// C in frame 1, B in frame 2, A in frame 3, D in frame 4; E is
		// static. Frame 5 executes the instruction sequence with access
		// to all of them.
		var a, b, cObj, d, e heap.HandleID
		f1 := th.Top()
		cObj = f1.MustNew(node)
		f1.SetLocal(0, cObj)
		th.CallVoid(1, func(f2 *vm.Frame) {
			b = f2.MustNew(node)
			f2.SetLocal(0, b)
			th.CallVoid(1, func(f3 *vm.Frame) {
				a = f3.MustNew(node)
				f3.SetLocal(0, a)
				th.CallVoid(1, func(f4 *vm.Frame) {
					d = f4.MustNew(node)
					f4.SetLocal(0, d)
					th.CallVoid(0, func(f5 *vm.Frame) {
						e = f5.MustNew(node)
						f5.PutStatic(staticSlot, e)

						dep := func(x heap.HandleID) uint64 { return cg.DependentFrame(x).ID }
						if dep(a) != f3.ID || dep(b) != f2.ID || dep(cObj) != f1.ID || dep(d) != f4.ID || dep(e) != 0 {
							t.Fatalf("initial dependent frames wrong: A=%d B=%d C=%d D=%d E=%d",
								dep(a), dep(b), dep(cObj), dep(d), dep(e))
						}

						// (1) B.f = A: A's dependent frame moves from 3 to 2.
						f5.PutField(b, 0, a)
						if dep(a) != f2.ID {
							t.Fatalf("step 1: A depends on %d, want frame 2 (%d)", dep(a), f2.ID)
						}
						// (2) C.f = B: A and B now depend on frame 1.
						f5.PutField(cObj, 0, b)
						if dep(a) != f1.ID || dep(b) != f1.ID {
							t.Fatalf("step 2: A=%d B=%d, want frame 1 (%d)", dep(a), dep(b), f1.ID)
						}
						// (3) D.f = C: A, B, C unchanged; D conservatively
						// joins them on frame 1 (the symmetric property).
						f5.PutField(d, 0, cObj)
						if dep(a) != f1.ID || dep(b) != f1.ID || dep(cObj) != f1.ID {
							t.Fatal("step 3 changed the survivors' frames")
						}
						if dep(d) != f1.ID {
							t.Fatalf("step 3: D depends on %d, want frame 1 (symmetry)", dep(d))
						}
						if !cg.SameSet(a, d) {
							t.Fatal("step 3: D must be equilive with A–C")
						}
						// (4) E.f = D: everything becomes static (frame 0).
						f5.PutField(e, 0, d)
						for _, x := range []heap.HandleID{a, b, cObj, d} {
							if dep(x) != 0 {
								t.Fatalf("step 4: object %d depends on %d, want static", x, dep(x))
							}
						}
						// (5) E.f = null: contamination cannot be undone.
						f5.PutField(e, 0, heap.Nil)
						for _, x := range []heap.HandleID{a, b, cObj, d} {
							if dep(x) != 0 {
								t.Fatal("step 5 must not undo contamination")
							}
						}
					})
				})
			})
		})
		_ = opt
	}
}

// TestStaticOptimization reproduces §3.4: with the optimization, x.f = s
// (s static) leaves x collectable; without it, x is dragged into the
// static set.
func TestStaticOptimization(t *testing.T) {
	run := func(opt bool) (collectable bool) {
		rt, cg, node := newRT(t, Config{StaticOpt: opt, Checked: true}, 1<<16)
		th := rt.NewThread(1)
		f := th.Top()
		slot := rt.StaticSlot("s")
		s := f.MustNew(node)
		f.PutStatic(slot, s)
		var x heap.HandleID
		th.CallVoid(1, func(g *vm.Frame) {
			x = g.MustNew(node)
			g.SetLocal(0, x)
			g.PutField(x, 0, s) // reference *to* a static object
		})
		return cg.IsTainted(x)
	}
	if !run(true) {
		t.Fatal("with optimization, x must be collected when its frame pops")
	}
	if run(false) {
		t.Fatal("without optimization, x must be (conservatively) static")
	}
}

// TestStaticFingerOfLiveness: a static object referencing x (s.f = x)
// must make x static in both configurations — the optimization only
// covers references *to* statics, never *from* them.
func TestStaticFingerOfLiveness(t *testing.T) {
	for _, opt := range []bool{false, true} {
		rt, cg, node := newRT(t, Config{StaticOpt: opt, Checked: true}, 1<<16)
		th := rt.NewThread(1)
		f := th.Top()
		slot := rt.StaticSlot("s")
		s := f.MustNew(node)
		f.PutStatic(slot, s)
		var x heap.HandleID
		th.CallVoid(1, func(g *vm.Frame) {
			x = g.MustNew(node)
			g.SetLocal(0, x)
			g.PutField(s, 0, x) // the static finger
		})
		if cg.IsTainted(x) {
			t.Fatalf("opt=%v: statically reachable object was collected", opt)
		}
		if cg.DependentFrame(x).ID != 0 {
			t.Fatalf("opt=%v: x not static", opt)
		}
	}
}

// TestFramePopCollects: objects die exactly when their dependent frame
// pops, not earlier, not later.
func TestFramePopCollects(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(0)
	var inner heap.HandleID
	th.CallVoid(1, func(f *vm.Frame) {
		inner = f.MustNew(node)
		f.SetLocal(0, inner)
		if cg.IsTainted(inner) {
			t.Fatal("collected while its frame is live")
		}
	})
	if !cg.IsTainted(inner) {
		t.Fatal("not collected when its frame popped")
	}
	if rt.Heap.Live(inner) {
		t.Fatal("storage not released")
	}
	if cg.Stats().Popped != 1 || cg.Stats().Singleton != 1 {
		t.Fatalf("stats: %+v", cg.Stats())
	}
}

// TestAReturnPromotes: a returned object survives its birth frame and
// dies with the caller.
func TestAReturnPromotes(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(1)
	var obj heap.HandleID
	th.CallVoid(1, func(caller *vm.Frame) {
		obj = th.Call(0, func(callee *vm.Frame) heap.HandleID {
			return callee.MustNew(node)
		})
		if cg.IsTainted(obj) {
			t.Fatal("returned object died with its birth frame")
		}
		if cg.DependentFrame(obj) != caller {
			t.Fatal("returned object not promoted to the caller")
		}
		caller.SetLocal(0, obj)
	})
	if !cg.IsTainted(obj) {
		t.Fatal("object outlived the caller it depended on")
	}
	// Age-at-death distance: born at depth 3, died at depth 2 -> 1.
	if cg.Stats().AgeAtDeath[1] != 1 {
		t.Fatalf("age histogram: %v", cg.Stats().AgeAtDeath)
	}
}

// TestAReturnNeverDemotes: returning an already-older object must not
// move it to a younger frame.
func TestAReturnNeverDemotes(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(1)
	f1 := th.Top()
	obj := f1.MustNew(node)
	f1.SetLocal(0, obj)
	th.CallVoid(1, func(f2 *vm.Frame) {
		got := th.Call(0, func(f3 *vm.Frame) heap.HandleID {
			return obj // return an object born in frame 1
		})
		if got != obj || cg.DependentFrame(obj) != f1 {
			t.Fatal("areturn demoted an older object")
		}
		_ = f2
	})
}

// TestThreadSharing reproduces Figure 3.1: an object touched by a second
// thread becomes static, along with its whole block.
func TestThreadSharing(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	t1 := rt.NewThread(1)
	t2 := rt.NewThread(1)
	f1 := t1.Top()
	a := f1.MustNew(node)
	buddy := f1.MustNew(node)
	f1.PutField(a, 0, buddy) // same equilive block
	f1.SetLocal(0, a)
	if cg.DependentFrame(a).ID == 0 {
		t.Fatal("static too early")
	}
	t2.Top().SetLocal(0, a) // thread 2 touches A
	if cg.DependentFrame(a).ID != 0 {
		t.Fatal("shared object not demoted to static")
	}
	if cg.DependentFrame(buddy).ID != 0 {
		t.Fatal("block-mate of shared object not demoted")
	}
	if cg.Stats().Shared != 2 {
		t.Fatalf("Shared = %d, want 2 (whole block)", cg.Stats().Shared)
	}
	// Same-thread re-access must not inflate the counter.
	t2.Top().SetLocal(0, a)
	f1.SetLocal(0, a)
	if cg.Stats().Shared != 2 {
		t.Fatal("repeated access re-counted sharing")
	}
}

// TestInternIsStatic reproduces §3.2: interned objects live forever.
func TestInternIsStatic(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(0)
	var s heap.HandleID
	th.CallVoid(0, func(f *vm.Frame) {
		var err error
		s, err = f.Intern("canonical", node)
		if err != nil {
			t.Fatal(err)
		}
	})
	if cg.IsTainted(s) || !rt.Heap.Live(s) {
		t.Fatal("interned object collected")
	}
	if cg.DependentFrame(s).ID != 0 {
		t.Fatal("interned object not static")
	}
}

// TestMonotoneAgeing property: across a random workload, a live object's
// dependent-frame ID never increases (the never-younger rule), except via
// the explicitly-enabled reset pass.
func TestMonotoneAgeing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rt, cg, node := newRT(t, checkedCfg(), 1<<20)
	th := rt.NewThread(4)
	// Handle IDs are reused after frees, so identify objects by
	// (handle, birth sequence number): a changed birth means a new
	// object occupies the slot and the history resets.
	type ident struct {
		dep   uint64
		birth uint64
	}
	lastDep := make(map[heap.HandleID]ident)
	var objs []heap.HandleID
	checkAll := func() {
		seen := make(map[heap.HandleID]bool)
		out := objs[:0]
		for _, o := range objs {
			if cg.IsTainted(o) || seen[o] {
				delete(lastDep, o)
				continue
			}
			seen[o] = true
			out = append(out, o)
			id := cg.DependentFrame(o).ID
			birth := rt.Heap.Birth(o)
			if prev, ok := lastDep[o]; ok && prev.birth == birth && id > prev.dep {
				t.Fatalf("object %d aged from frame %d to younger frame %d", o, prev.dep, id)
			}
			lastDep[o] = ident{dep: id, birth: birth}
		}
		objs = out
	}
	budget := 400 // total frames per run: bounds the random recursion
	var step func(depth int)
	step = func(depth int) {
		f := th.Top()
		for i := 0; i < 20; i++ {
			switch rng.Intn(6) {
			case 0, 1:
				o := f.MustNew(node)
				objs = append(objs, o)
				f.SetLocal(rng.Intn(4), o)
			case 2:
				if len(objs) >= 2 {
					a, b := objs[rng.Intn(len(objs))], objs[rng.Intn(len(objs))]
					if !cg.IsTainted(a) && !cg.IsTainted(b) {
						f.PutField(a, rng.Intn(2), b)
					}
				}
			case 3:
				if len(objs) > 0 {
					o := objs[rng.Intn(len(objs))]
					if !cg.IsTainted(o) {
						f.PutStatic(rt.StaticSlot("s"), o)
					}
				}
			case 4:
				if depth < 6 && budget > 0 {
					budget--
					th.CallVoid(4, func(*vm.Frame) { step(depth + 1) })
				}
			case 5:
				checkAll()
			}
		}
		checkAll()
	}
	step(0)
}

// TestSafetyOracle is the headline conservativeness property: every
// object CG declares dead is unreachable from all roots at that moment,
// across randomized programs (DESIGN.md §5.1).
func TestSafetyOracle(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		var rt *vm.Runtime
		cfg := Config{StaticOpt: trial%2 == 0, Checked: true}
		cfg.FreeHook = func(id heap.HandleID) {
			if reachable(rt, id) {
				t.Fatalf("trial %d: CG freed reachable object %d", trial, id)
			}
		}
		h := heap.New(1 << 20)
		node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
		cg := New(cfg)
		rt = vm.New(h, cg)
		th := rt.NewThread(4)

		var live []heap.HandleID
		budget := 120 // total frames per trial: bounds the random recursion
		prune := func() {
			out := live[:0]
			for _, o := range live {
				if !cg.IsTainted(o) {
					out = append(out, o)
				}
			}
			live = out
		}
		var run func(depth int)
		run = func(depth int) {
			f := th.Top()
			steps := 5 + rng.Intn(20)
			for i := 0; i < steps; i++ {
				prune()
				switch rng.Intn(10) {
				case 0, 1, 2:
					o := f.MustNew(node)
					live = append(live, o)
					if rng.Intn(2) == 0 {
						f.SetLocal(rng.Intn(4), o)
					}
				case 3, 4:
					if len(live) >= 2 {
						f.PutField(live[rng.Intn(len(live))], rng.Intn(2), live[rng.Intn(len(live))])
					}
				case 5:
					if len(live) > 0 {
						f.PutStatic(rt.StaticSlot("x"), live[rng.Intn(len(live))])
					}
				case 6, 7:
					if depth < 8 && budget > 0 {
						budget--
						th.CallVoid(4, func(*vm.Frame) { run(depth + 1) })
					}
				case 8:
					if len(live) > 0 && depth < 8 && budget > 0 {
						budget--
						ret := th.Call(4, func(g *vm.Frame) heap.HandleID {
							run(depth + 1)
							prune()
							if len(live) == 0 {
								return heap.Nil
							}
							return live[rng.Intn(len(live))]
						})
						if ret != heap.Nil {
							f.SetLocal(rng.Intn(4), ret)
						}
					}
				case 9:
					if len(live) > 0 {
						f.PutField(live[rng.Intn(len(live))], rng.Intn(2), heap.Nil)
					}
				}
			}
		}
		run(0)
	}
}

// reachable is the exact oracle: BFS from every root.
func reachable(rt *vm.Runtime, target heap.HandleID) bool {
	seen := make(map[heap.HandleID]bool)
	var queue []heap.HandleID
	push := func(id heap.HandleID) {
		if id != heap.Nil && !seen[id] {
			seen[id] = true
			queue = append(queue, id)
		}
	}
	rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			push(r)
		}
	})
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if id == target {
			return true
		}
		rt.Heap.Refs(id, push)
	}
	return seen[target]
}

// TestBlockSizeHistogram: three mutually-referencing objects form one
// block of size 3.
func TestBlockSizeHistogram(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(0)
	th.CallVoid(3, func(f *vm.Frame) {
		a, b, c := f.MustNew(node), f.MustNew(node), f.MustNew(node)
		f.PutField(a, 0, b)
		f.PutField(b, 0, c)
		if cg.SetSize(a) != 3 {
			t.Fatalf("set size = %d, want 3", cg.SetSize(a))
		}
	})
	st := cg.Stats()
	if st.BlockSize[2] != 1 { // bucket "3"
		t.Fatalf("block histogram: %v", st.BlockSize)
	}
	if st.Popped != 3 || st.Singleton != 0 {
		t.Fatalf("stats: %+v", st)
	}
	_ = rt
}

// TestRecycling: popped sets feed later allocations without touching the
// arena allocator (§3.7).
func TestRecycling(t *testing.T) {
	cfg := Config{StaticOpt: true, Recycle: true, Checked: true}
	rt, cg, node := newRT(t, cfg, 1<<10) // 1 KiB: 42 Nodes max
	th := rt.NewThread(0)
	// Fill most of the heap with frame-local garbage.
	th.CallVoid(1, func(f *vm.Frame) {
		for i := 0; i < 30; i++ {
			f.SetLocal(0, f.MustNew(node))
		}
	})
	if got := cg.RecycledObjects(); got != 30 {
		t.Fatalf("recycle list holds %d, want 30", got)
	}
	// Allocate beyond the arena remainder: must be satisfied by reuse.
	th.CallVoid(1, func(f *vm.Frame) {
		for i := 0; i < 35; i++ {
			f.SetLocal(0, f.MustNew(node))
		}
	})
	if cg.Stats().Reused == 0 {
		t.Fatal("no recycled objects were reused")
	}
	if cg.MSAStats().Cycles != 0 {
		t.Fatal("traditional collector ran although recycling sufficed")
	}
}

// TestRecycleBestFitSkipsSmall: reuse must pick an extent large
// enough — the size-class index must skip recycled extents that are
// too small and serve the smallest class that fits.
func TestRecycleBestFitSkipsSmall(t *testing.T) {
	h := heap.New(1 << 10)
	small := h.DefineClass(heap.Class{Name: "S", Data: 0}) // 8 bytes
	big := h.DefineClass(heap.Class{Name: "B", Data: 56})  // 64 bytes
	cg := New(Config{StaticOpt: true, Recycle: true, Checked: true})
	rt := vm.New(h, cg)
	th := rt.NewThread(0)
	var smallObj, bigObj heap.HandleID
	th.CallVoid(2, func(f *vm.Frame) {
		smallObj = f.MustNew(small)
		bigObj = f.MustNew(big)
		f.SetLocal(0, smallObj)
		f.SetLocal(1, bigObj)
	})
	if cg.RecycledObjects() != 2 {
		t.Fatalf("recycle list holds %d, want 2", cg.RecycledObjects())
	}
	got, ok := cg.AllocFallback(big, 0)
	if !ok {
		t.Fatal("fallback failed although a big extent is recycled")
	}
	if got != bigObj {
		t.Fatalf("fallback returned %d, want the big extent %d", got, bigObj)
	}
	if h.SizeOf(got) < heap.InstanceSize(h.ClassDef(big), 0) {
		t.Fatal("fallback returned an undersized extent")
	}
	// Only the small extent remains; another big request must fail, a
	// small one must succeed.
	if _, ok := cg.AllocFallback(big, 0); ok {
		t.Fatal("fallback fabricated a second big extent")
	}
	got2, ok := cg.AllocFallback(small, 0)
	if !ok || got2 != smallObj {
		t.Fatalf("small fallback = (%d,%v), want (%d,true)", got2, ok, smallObj)
	}
	if cg.RecycledObjects() != 0 {
		t.Fatal("recycle list not emptied")
	}
}

// TestMSARebuildPurgesStructures: after a traditional collection frees
// objects CG thought live, CG's structures must not reference them, and
// subsequent frame pops must not double-free.
func TestMSARebuildPurgesStructures(t *testing.T) {
	for _, reset := range []bool{false, true} {
		rt, cg, node := newRT(t, Config{StaticOpt: true, ResetOnGC: reset, Checked: true}, 1<<16)
		th := rt.NewThread(2)
		f := th.Top()
		keep := f.MustNew(node)
		f.SetLocal(0, keep)
		garbage := f.MustNew(node)
		f.PutField(keep, 0, garbage) // same block as keep
		f.PutField(keep, 0, heap.Nil)
		f.Forget(garbage) // drop the JNI-style local reference
		// garbage is now unreachable but CG still thinks it equilive
		// with keep (contamination cannot be undone).
		if cg.IsTainted(garbage) {
			t.Fatal("premature")
		}
		freed := rt.ForceCollect()
		if freed != 1 {
			t.Fatalf("reset=%v: MSA freed %d, want 1", reset, freed)
		}
		if cg.Stats().MSAFreed != 1 {
			t.Fatalf("reset=%v: MSAFreed stat = %d", reset, cg.Stats().MSAFreed)
		}
		if rt.Heap.Live(garbage) {
			t.Fatal("swept object still live")
		}
		// keep survives and still has a sane dependent frame; popping the
		// root frame later must free exactly keep, not the swept object.
		if cg.DependentFrame(keep).ID != f.ID {
			t.Fatalf("reset=%v: keep's frame = %d, want %d", reset, cg.DependentFrame(keep).ID, f.ID)
		}
	}
}

// TestResetImprovesFrames reproduces the §3.6 effect: an object dragged
// into the static set by a transient static reference is restored to its
// true (younger) frame by a resetting collection.
func TestResetImprovesFrames(t *testing.T) {
	rt, cg, node := newRT(t, Config{StaticOpt: true, ResetOnGC: true, Checked: true}, 1<<16)
	th := rt.NewThread(2)
	f := th.Top()
	slot := rt.StaticSlot("finger")
	x := f.MustNew(node)
	f.SetLocal(0, x)
	f.PutStatic(slot, x) // static finger touches x ...
	if cg.DependentFrame(x).ID != 0 {
		t.Fatal("x not static after putstatic")
	}
	f.PutStatic(slot, heap.Nil) // ... and points away
	rt.ForceCollect()
	if cg.DependentFrame(x).ID != f.ID {
		t.Fatalf("reset left x on frame %d, want %d", cg.DependentFrame(x).ID, f.ID)
	}
	st := cg.Stats()
	if st.LessLive != 1 || st.FromStatic != 1 {
		t.Fatalf("reset stats: %+v", st)
	}
	// Without ResetOnGC the same program must keep x static.
	rt2, cg2, node2 := newRT(t, Config{StaticOpt: true, Checked: true}, 1<<16)
	th2 := rt2.NewThread(2)
	g := th2.Top()
	slot2 := rt2.StaticSlot("finger")
	y := g.MustNew(node2)
	g.SetLocal(0, y)
	g.PutStatic(slot2, y)
	g.PutStatic(slot2, heap.Nil)
	rt2.ForceCollect()
	if cg2.DependentFrame(y).ID != 0 {
		t.Fatal("non-reset collection improved a dependent frame")
	}
}

// TestResetKeepsSharingSticky: thread-shared objects stay static across
// resetting collections (§3.3 conservatism survives §3.6).
func TestResetKeepsSharingSticky(t *testing.T) {
	rt, cg, node := newRT(t, Config{StaticOpt: true, ResetOnGC: true, Checked: true}, 1<<16)
	t1 := rt.NewThread(1)
	t2 := rt.NewThread(1)
	a := t1.Top().MustNew(node)
	t1.Top().SetLocal(0, a)
	t2.Top().SetLocal(0, a)
	if cg.DependentFrame(a).ID != 0 {
		t.Fatal("not demoted")
	}
	t2.Top().SetLocal(0, heap.Nil) // second thread lets go
	rt.ForceCollect()
	if cg.DependentFrame(a).ID != 0 {
		t.Fatal("reset un-demoted a shared object")
	}
}

// TestSnapshotBuckets: end-of-run classification sums to Created.
func TestSnapshotBuckets(t *testing.T) {
	rt, cg, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(1)
	f := th.Top()
	slot := rt.StaticSlot("s")
	f.PutStatic(slot, f.MustNew(node)) // 1 static
	th.CallVoid(1, func(g *vm.Frame) {
		g.SetLocal(0, g.MustNew(node)) // 1 popped
		g.MustNew(node)                // another popped
	})
	t2 := rt.NewThread(1)
	shared := f.MustNew(node)
	f.SetLocal(0, shared)
	t2.Top().SetLocal(0, shared) // 1 thread-shared
	b := cg.Snapshot()
	if b.Created != 4 || b.Popped != 2 || b.Static != 1 || b.Thread != 1 || b.MSA != 0 {
		t.Fatalf("breakdown: %+v", b)
	}
	if b.Popped+b.Static+b.Thread+b.MSA+b.Live != b.Created {
		t.Fatalf("buckets do not sum: %+v", b)
	}
}

// TestPackedVariantAgrees: the §3.5 packed representation yields the same
// collection behaviour as the wide one on a deterministic workload.
func TestPackedVariantAgrees(t *testing.T) {
	run := func(packed bool) Stats {
		rt, cg, node := newRT(t, Config{StaticOpt: true, Packed: packed, Checked: true}, 1<<20)
		th := rt.NewThread(2)
		rng := rand.New(rand.NewSource(5))
		var recent []heap.HandleID
		for i := 0; i < 50; i++ {
			th.CallVoid(2, func(f *vm.Frame) {
				for j := 0; j < 40; j++ {
					o := f.MustNew(node)
					recent = append(recent, o)
					if len(recent) > 30 {
						recent = recent[1:]
					}
					if len(recent) >= 2 && rng.Intn(3) == 0 {
						a, b := recent[rng.Intn(len(recent))], recent[rng.Intn(len(recent))]
						if !cg.IsTainted(a) && !cg.IsTainted(b) {
							f.PutField(a, rng.Intn(2), b)
						}
					}
				}
			})
			recent = recent[:0]
		}
		return cg.Stats()
	}
	wide, packed := run(false), run(true)
	if wide != packed {
		t.Fatalf("representations diverge:\nwide:   %+v\npacked: %+v", wide, packed)
	}
	if wide.Popped == 0 {
		t.Fatal("degenerate workload collected nothing")
	}
}

// TestCheckedCatchesTaintedTouch: the §3.1.4 tainted-list assurance.
func TestCheckedCatchesTaintedTouch(t *testing.T) {
	rt, _, node := newRT(t, checkedCfg(), 1<<16)
	th := rt.NewThread(1)
	var dead heap.HandleID
	th.CallVoid(1, func(f *vm.Frame) {
		dead = f.MustNew(node)
		f.SetLocal(0, dead)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("touching a tainted object did not panic in Checked mode")
		}
	}()
	th.Top().SetLocal(0, dead) // use-after-free
}

func TestStatsMergeIsOrderIndependentSum(t *testing.T) {
	a := Stats{Created: 10, Popped: 7, Singleton: 3, Shared: 1, Unions: 5,
		BlockSize: [7]uint64{1, 2, 0, 0, 0, 0, 4}, AgeAtDeath: [7]uint64{9, 0, 0, 0, 0, 0, 1}}
	b := Stats{Created: 2, Popped: 1, Reused: 6, MSAFreed: 2, LessLive: 3, FromStatic: 1, OptSkips: 8,
		BlockSize: [7]uint64{0, 1, 1, 0, 0, 0, 0}, AgeAtDeath: [7]uint64{0, 2, 0, 0, 0, 0, 0}}
	ab, ba := a, b
	ab.Merge(b)
	ba.Merge(a)
	if ab != ba {
		t.Fatalf("Merge not commutative:\n%+v\n%+v", ab, ba)
	}
	if ab.Created != 12 || ab.Popped != 8 || ab.BlockSize[1] != 3 || ab.AgeAtDeath[6] != 1 {
		t.Fatalf("Merge sums wrong: %+v", ab)
	}
}

func TestBreakdownMerge(t *testing.T) {
	a := Breakdown{Created: 5, Popped: 2, Static: 1, Thread: 1, MSA: 1, Live: 0}
	b := Breakdown{Created: 3, Popped: 1, Static: 0, Thread: 1, MSA: 0, Live: 1}
	a.Merge(b)
	if a != (Breakdown{Created: 8, Popped: 3, Static: 1, Thread: 2, MSA: 1, Live: 1}) {
		t.Fatalf("Breakdown.Merge = %+v", a)
	}
}

// TestDetachReturnsRecycleScratch pins the recycle-index detach
// contract: when a pooled shard replaces its collector, the populated
// ladder-class entries are nilled (one cell's population means nothing
// to the next) and each drained class's scratch slice moves to the
// shared spare pool instead of staying pinned to its class; subsequent
// first-touch class creation draws from that pool.
func TestDetachReturnsRecycleScratch(t *testing.T) {
	h := heap.New(1 << 16)
	small := h.DefineClass(heap.Class{Name: "S", Refs: 1, Data: 0})
	big := h.DefineClass(heap.Class{Name: "B", Refs: 2, Data: 64})
	cg := New(Config{StaticOpt: true, Recycle: true})
	rt := vm.New(h, cg)
	th := rt.NewThread(0)
	// Two ladder classes' worth of dead objects.
	th.CallVoid(2, func(f *vm.Frame) {
		for i := 0; i < 16; i++ {
			f.SetLocal(0, f.MustNew(small))
			f.SetLocal(1, f.MustNew(big))
		}
	})
	populated := 0
	for cl := cg.recycleNonEmpty.NextSet(0); cl >= 0; cl = cg.recycleNonEmpty.NextSet(cl + 1) {
		if len(cg.recycleClasses[cl]) == 0 {
			t.Fatalf("class %d flagged non-empty but empty", cl)
		}
		populated++
	}
	if populated != 2 {
		t.Fatalf("populated ladder classes = %d, want 2", populated)
	}
	tab := cg.tab
	rt.Reset(New(Config{StaticOpt: true, Recycle: true})) // fires detach
	if len(tab.recycleClasses) != heap.NumSizeClasses {
		t.Fatalf("pooled class array len %d, want %d", len(tab.recycleClasses), heap.NumSizeClasses)
	}
	for cl, objs := range tab.recycleClasses {
		if objs != nil {
			t.Fatalf("pooled class %d still holds a slice", cl)
		}
	}
	if len(tab.spare) != 2 {
		t.Fatalf("spare scratch slices = %d, want 2", len(tab.spare))
	}
	for i, s := range tab.spare {
		if len(s) != 0 || cap(s) == 0 {
			t.Fatalf("spare[%d]: len %d cap %d, want empty with capacity", i, len(s), cap(s))
		}
	}
	if cg.recycleClasses != nil || cg.spare != nil || cg.recycleNonEmpty != nil {
		t.Fatal("detached collector still holds recycle scratch")
	}
	// A recycled table's spare pool feeds the next cell's first-touch
	// classes: run the same workload again on a fresh collector drawing
	// from the pool and confirm recycling still engages.
	cg2 := New(Config{StaticOpt: true, Recycle: true})
	rt.Reset(cg2)
	small2 := h.DefineClass(heap.Class{Name: "S", Refs: 1, Data: 0})
	big2 := h.DefineClass(heap.Class{Name: "B", Refs: 2, Data: 64})
	th2 := rt.NewThread(0)
	th2.CallVoid(2, func(f *vm.Frame) {
		for i := 0; i < 16; i++ {
			f.SetLocal(0, f.MustNew(small2))
			f.SetLocal(1, f.MustNew(big2))
		}
	})
	if cg2.RecycledObjects() == 0 {
		t.Fatal("recycling inert after table recycling")
	}
}
