package core

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

// TestTypedRecycleExactClass: the Chapter 6 extension reuses a popped
// singleton of the same class in O(1), without consulting the general
// size-class index.
func TestTypedRecycleExactClass(t *testing.T) {
	h := heap.New(1 << 10)
	a := h.DefineClass(heap.Class{Name: "A", Data: 8})
	b := h.DefineClass(heap.Class{Name: "B", Data: 8})
	cg := New(Config{StaticOpt: true, TypedRecycle: true, Checked: true})
	rt := vm.New(h, cg)
	th := rt.NewThread(0)

	var oldA, oldB heap.HandleID
	th.CallVoid(2, func(f *vm.Frame) {
		oldA = f.MustNew(a)
		oldB = f.MustNew(b)
		f.SetLocal(0, oldA)
		f.SetLocal(1, oldB)
	})
	if cg.RecycledObjects() != 2 {
		t.Fatalf("typed buckets hold %d, want 2", cg.RecycledObjects())
	}
	// A request for class B must reuse exactly the B extent, not the A
	// one, even though both fit.
	got, ok := cg.AllocFallback(b, 0)
	if !ok || got != oldB {
		t.Fatalf("typed fallback = (%d,%v), want (%d,true)", got, ok, oldB)
	}
	got, ok = cg.AllocFallback(a, 0)
	if !ok || got != oldA {
		t.Fatalf("typed fallback = (%d,%v), want (%d,true)", got, ok, oldA)
	}
	if _, ok := cg.AllocFallback(a, 0); ok {
		t.Fatal("bucket not drained")
	}
	if cg.Stats().Reused != 2 {
		t.Fatalf("Reused = %d", cg.Stats().Reused)
	}
}

// TestTypedRecycleMultiObjectSetsUseGeneralList: only singleton sets go
// to the typed buckets; larger blocks go to the size-class index.
func TestTypedRecycleMultiObjectSetsUseGeneralList(t *testing.T) {
	h := heap.New(1 << 10)
	a := h.DefineClass(heap.Class{Name: "A", Refs: 1, Data: 8})
	cg := New(Config{StaticOpt: true, TypedRecycle: true, Checked: true})
	rt := vm.New(h, cg)
	th := rt.NewThread(0)
	th.CallVoid(2, func(f *vm.Frame) {
		x := f.MustNew(a)
		y := f.MustNew(a)
		f.PutField(x, 0, y) // block of 2
		f.SetLocal(0, x)
	})
	if cg.RecycledObjects() != 2 {
		t.Fatalf("recycled %d, want 2", cg.RecycledObjects())
	}
	// Both objects are reusable via the general path.
	if _, ok := cg.AllocFallback(a, 0); !ok {
		t.Fatal("general list did not serve the block members")
	}
}

// TestTypedRecycleFlushBalances: FlushRecycle returns typed buckets to
// the heap so accounting balances.
func TestTypedRecycleFlushBalances(t *testing.T) {
	h := heap.New(1 << 12)
	a := h.DefineClass(heap.Class{Name: "A", Data: 8})
	cg := New(Config{StaticOpt: true, TypedRecycle: true})
	rt := vm.New(h, cg)
	th := rt.NewThread(0)
	th.CallVoid(1, func(f *vm.Frame) {
		for i := 0; i < 10; i++ {
			f.SetLocal(0, f.MustNew(a))
		}
	})
	if h.NumLive() != 10 {
		t.Fatalf("recycled objects should still be heap-live, got %d", h.NumLive())
	}
	cg.FlushRecycle()
	if h.NumLive() != 0 || h.Arena().InUse() != 0 {
		t.Fatalf("flush left live=%d inUse=%d", h.NumLive(), h.Arena().InUse())
	}
	if cg.RecycledObjects() != 0 {
		t.Fatal("buckets not cleared")
	}
}

// TestTypedRecycleEndToEnd: under allocation pressure the typed path
// satisfies same-class churn without any traditional collection.
func TestTypedRecycleEndToEnd(t *testing.T) {
	h := heap.New(1 << 10) // ~64 objects of 16 bytes
	a := h.DefineClass(heap.Class{Name: "A", Data: 8})
	cg := New(Config{StaticOpt: true, TypedRecycle: true, Checked: true})
	rt := vm.New(h, cg)
	th := rt.NewThread(0)
	for round := 0; round < 50; round++ {
		th.CallVoid(1, func(f *vm.Frame) {
			for i := 0; i < 20; i++ {
				f.SetLocal(0, f.MustNew(a))
			}
		})
	}
	if cg.MSAStats().Cycles != 0 {
		t.Fatal("typed recycling should have avoided the traditional collector")
	}
	if cg.Stats().Reused == 0 {
		t.Fatal("nothing reused")
	}
}
