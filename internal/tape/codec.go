package tape

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"

	"repro/internal/heap"
)

// magic opens every serialized tape; the final byte is the format
// version, so a version bump is indistinguishable from a foreign file
// — both are simply "not a tape we read".
var magic = [8]byte{'c', 'g', 't', 'a', 'p', 'e', 0, Version}

// Encode serializes t. The encoding is deterministic — the same tape
// always produces the same bytes, so Hash doubles as a content
// address — and ends with a sha256 of everything before it.
func Encode(t *Tape) []byte {
	b := make([]byte, 0, len(t.ops)+len(t.args)+256)
	b = append(b, magic[:]...)
	b = putStr(b, t.Meta.Workload)
	b = binary.AppendUvarint(b, uint64(t.Meta.Size))
	b = binary.AppendUvarint(b, uint64(t.Meta.Threads))
	b = binary.AppendUvarint(b, uint64(t.Meta.HeapBytes))
	b = binary.AppendUvarint(b, uint64(len(t.classes)))
	for _, c := range t.classes {
		b = putStr(b, c.Name)
		b = binary.AppendUvarint(b, uint64(c.Refs))
		b = binary.AppendUvarint(b, uint64(c.Data))
		if c.IsArray {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(t.strings)))
	for _, s := range t.strings {
		b = putStr(b, s)
	}
	b = binary.AppendUvarint(b, uint64(t.allocs))
	b = binary.AppendUvarint(b, uint64(len(t.ops)))
	b = append(b, t.ops...)
	b = binary.AppendUvarint(b, uint64(len(t.args)))
	b = append(b, t.args...)
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

// Hash returns the tape's content address: the hex sha256 trailer its
// encoding carries.
func Hash(t *Tape) string {
	enc := Encode(t)
	return hex.EncodeToString(enc[len(enc)-sha256.Size:])
}

// Decode parses an encoded tape, verifying magic, version, integrity
// hash, opcode validity and exact length. Tapes are regenerable, so
// every failure is terminal — there is no partial decode.
func Decode(b []byte) (*Tape, error) {
	if len(b) < len(magic)+sha256.Size {
		return nil, errors.New("tape: encoding too short")
	}
	if [8]byte(b[:8]) != magic {
		return nil, fmt.Errorf("tape: bad magic or version (want v%d)", Version)
	}
	body, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	if sum := sha256.Sum256(body); [sha256.Size]byte(trailer) != sum {
		return nil, errors.New("tape: integrity hash mismatch")
	}
	r := reader{b: body, pos: len(magic)}
	t := &Tape{}
	t.Meta.Workload = r.str()
	t.Meta.Size = int(r.uvarint())
	t.Meta.Threads = int(r.uvarint())
	t.Meta.HeapBytes = int(r.uvarint())
	t.classes = make([]heap.Class, r.uvarint())
	for i := range t.classes {
		t.classes[i] = heap.Class{
			Name:    r.str(),
			Refs:    int(r.uvarint()),
			Data:    int(r.uvarint()),
			IsArray: r.byte() != 0,
		}
	}
	t.strings = make([]string, r.uvarint())
	for i := range t.strings {
		t.strings[i] = r.str()
	}
	t.allocs = int(r.uvarint())
	t.ops = r.bytes(int(r.uvarint()))
	t.args = r.bytes(int(r.uvarint()))
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("tape: %d trailing bytes", len(body)-r.pos)
	}
	for i, op := range t.ops {
		if op >= numOps {
			return nil, fmt.Errorf("tape: bad opcode %d at op %d", op, i)
		}
	}
	return t, nil
}

// WriteFile encodes t to path (0644).
func WriteFile(path string, t *Tape) error {
	return os.WriteFile(path, Encode(t), 0o644)
}

// ReadFile reads and decodes the tape at path.
func ReadFile(path string) (*Tape, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

func putStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// reader is a cursor over an encoded body that latches its first
// error; once err is set every accessor returns zero values, so decode
// code reads straight through and checks err once.
type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = errors.New("tape: " + msg)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.fail("truncated")
		return 0
	}
	c := r.b[r.pos]
	r.pos++
	return c
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.b) {
		r.fail("truncated byte run")
		return nil
	}
	s := r.b[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return s
}

func (r *reader) str() string { return string(r.bytes(int(r.uvarint()))) }
