// Package tape records and replays the driver-facing operation stream
// of a vm.Runtime as a compact, versioned binary "event tape".
//
// The thesis's whole methodology is "same program trace, different
// collectors": a cell's event stream is a pure function of (workload,
// size) — driver control flow depends only on its own deterministic
// RNG and on graph reads whose Nil-ness is identical under every
// collector — while handle IDs, frees and cycle behavior all fall out
// of re-driving that stream under whichever collector a cell selects.
// A tape therefore captures exactly the driver's *inputs* to the
// runtime (allocate, put/get field, call, return, intern, ...) and
// none of the collector's activity, so one recording replays
// bit-identically under any registered collector spec, any heap
// budget and any gc-every setting.
//
// Encoding. Ops and operands live in separate streams (SoA): one
// opcode byte per operation in Tape.ops, varint operands in
// Tape.args. Object operands are dense 1-based allocation-sequence
// indices — the Nth value-producing operation (New, NewArray, or a
// first-occurrence Intern) is index N, and 0 is the null reference —
// so tapes are independent of handle-ID assignment (which differs
// across collectors as frees recycle handles) and stay small: a hot
// loop's operands are recent indices, one or two varint bytes.
// Frames are addressed positionally: ops apply to the recorder's
// current frame, with an explicit opSetFrame(thread, depth) emitted
// only when the target changes outside the call structure (Call and
// NewThread update the current frame implicitly on both sides of the
// seam).
//
// The serialized form (Encode/Decode, WriteFile/ReadFile) is a
// versioned header + class table + string table + the two streams,
// trailed by a sha256 of everything before it — the results store's
// content-address idiom — so a tape file's hash is its identity and
// corruption is always detected.
package tape

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/heap"
)

// Version is the serialized tape format version. Decode rejects any
// other: tapes are regenerable artifacts, so there is no migration
// path, only re-recording.
const Version = 1

// Opcodes of the operation stream. The comment after each lists its
// varint operands in order. "ref" operands are allocation-sequence
// indices (0 = Nil); "str" and "class" operands index the tape's
// string and class tables.
const (
	opSetFrame   byte = iota // thread (0 = static pseudo-frame), depth
	opNewThread              // nlocals
	opCall                   // thread, nlocals
	opReturn                 // ref (the body's result)
	opAlloc                  // class, extra (0 = New, else NewArray)
	opPutField               // ref obj, slot, ref val
	opGetField               // ref obj, slot
	opSetLocal               // slot, ref val
	opPutStatic              // slot, ref val
	opGetStatic              // slot
	opStaticSlot             // str name (slot creation only)
	opIntern                 // str content, class
	opNativePin              // ref
	opForget                 // ref
	opForceCollect
	numOps
)

// Meta identifies what a tape is a recording of. Workload/Size name
// the cell; Threads and HeapBytes carry the workload spec's answers so
// a replayed tape can stand in as a first-class workload registry
// entry without its origin being registered.
type Meta struct {
	Workload  string
	Size      int
	Threads   int
	HeapBytes int
}

// Tape is one recorded operation stream plus everything a fresh
// runtime needs to replay it: the class table (snapshot of the
// recording heap, in ClassID order) and the interned string/static
// name table. Tapes are immutable once recorded and safe for
// concurrent replay (each Replayer carries its own cursor state).
type Tape struct {
	Meta Meta

	classes []heap.Class
	strings []string
	ops     []byte
	args    []byte
	// allocs counts the value-producing operations, i.e. the highest
	// allocation-sequence index any ref operand can carry. Replayers
	// pre-size their index→handle table from it.
	allocs int

	// vals is args decoded into whole operands, materialized once on
	// first replay and shared read-only by every Replayer: the varint
	// stream is the wire/storage form, the flat array is the replay
	// form (a bounds-checked index beats a varint decode in the inner
	// loop, and the decode cost is paid once per tape, not per run).
	valsOnce sync.Once
	vals     []uint64
	valsErr  error
}

// operands returns the decoded operand array, materializing it on
// first use.
func (t *Tape) operands() ([]uint64, error) {
	t.valsOnce.Do(func() {
		vals := make([]uint64, 0, len(t.args))
		for p := 0; p < len(t.args); {
			v, n := binary.Uvarint(t.args[p:])
			if n <= 0 {
				t.valsErr = fmt.Errorf("tape: truncated operand stream at byte %d", p)
				return
			}
			vals = append(vals, v)
			p += n
		}
		t.vals = vals
	})
	return t.vals, t.valsErr
}

// Ops reports the number of recorded operations.
func (t *Tape) Ops() int { return len(t.ops) }

// Allocs reports the number of value-producing operations (the replay
// handle table's size).
func (t *Tape) Allocs() int { return t.allocs }

// MemBytes estimates the tape's resident footprint for cache
// admission: the two streams, the tables, and the decoded operand
// array replays materialize (bounded by 8 bytes per operand byte).
// Deliberately an over-count — admission charges are conservative.
func (t *Tape) MemBytes() int {
	n := len(t.ops) + 9*len(t.args) + 128
	for _, s := range t.strings {
		n += len(s) + 16
	}
	for _, c := range t.classes {
		n += len(c.Name) + 32
	}
	return n
}
