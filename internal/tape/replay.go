package tape

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/vm"
)

// tapeErr marks errors raised by malformed or truncated tapes. Replay
// panics with a *tapeErr internally (the decode loop runs inside
// nested Thread.Call bodies, where an error return has no channel) and
// Run recovers it into a plain error. Any other panic — notably a
// heap-exhaustion error from a replayed allocation, which must surface
// exactly like the driven run's MustNew panic — is re-raised.
type tapeErr struct{ msg string }

func (e *tapeErr) Error() string { return "tape: " + e.msg }

func fail(format string, a ...any) {
	panic(&tapeErr{msg: fmt.Sprintf(format, a...)})
}

// Replayer re-drives one tape through a runtime. Its inner loop is
// decode-op → switch → direct Runtime call: no driver logic, no RNG,
// and zero steady-state allocations — the handle table, seen-strings
// bitmap and the single Call body closure are all allocated up front
// in NewReplayer and reused across Run calls.
//
// A Replayer is single-goroutine state (cursors, current frame); to
// replay one tape concurrently, give each goroutine its own Replayer
// over the shared immutable Tape.
type Replayer struct {
	t *Tape

	rt       *vm.Runtime
	classIDs []heap.ClassID
	// table maps allocation-sequence index → handle; table[0] = Nil.
	table []heap.HandleID
	// seen[i] reports whether string-table entry i has been interned,
	// i.e. already owns a table slot.
	seen []bool

	// vals is the tape's decoded operand array (shared, read-only);
	// bad is the decode error, reported by Run. A flat index into vals
	// is the whole per-operand cost of the inner loop.
	vals []uint64
	bad  error
	pos  int // next opcode in t.ops
	apos int // next operand in vals
	cur  *vm.Frame

	// bodyFn is the one Call body, stored so nested opCall decoding
	// does not allocate a closure per call.
	bodyFn func(f *vm.Frame) heap.HandleID
}

// NewReplayer prepares a replayer for t, pre-sizing all per-run state.
func NewReplayer(t *Tape) *Replayer {
	r := &Replayer{
		t:        t,
		classIDs: make([]heap.ClassID, len(t.classes)),
		table:    make([]heap.HandleID, 1, t.allocs+1),
		seen:     make([]bool, len(t.strings)),
	}
	r.vals, r.bad = t.operands()
	r.bodyFn = r.body
	return r
}

// Run replays the tape through rt, which must be freshly constructed
// or Reset. The recorded class table is defined first (ClassIDs come
// out identical to the recording run's because definition order is the
// id); then the op stream is decoded and fed through the same Runtime
// entry points the original driver used. A malformed tape returns an
// error; a runtime failure the original driver would have panicked on
// (heap exhaustion under MustNew semantics) panics identically.
func (r *Replayer) Run(rt *vm.Runtime) (err error) {
	if r.bad != nil {
		return r.bad
	}
	defer func() {
		if p := recover(); p != nil {
			te, ok := p.(*tapeErr)
			if !ok {
				panic(p)
			}
			err = te
		}
	}()

	r.rt = rt
	for i, c := range r.t.classes {
		r.classIDs[i] = rt.Heap.DefineClass(c)
	}
	r.table = r.table[:1]
	r.table[0] = heap.Nil
	for i := range r.seen {
		r.seen[i] = false
	}
	r.pos, r.apos = 0, 0
	r.cur = rt.StaticFrame()

	r.exec(false)
	if r.pos != len(r.t.ops) {
		fail("stopped at op %d of %d", r.pos, len(r.t.ops))
	}
	return nil
}

// exec decodes and executes ops until the stream ends (top level) or
// an opReturn closes the current Call body (inBody). It returns the
// body's result; the top level returns Nil.
func (r *Replayer) exec(inBody bool) heap.HandleID {
	for r.pos < len(r.t.ops) {
		op := r.t.ops[r.pos]
		r.pos++
		switch op {
		case opSetFrame:
			tid := int(r.arg())
			depth := int(r.arg())
			r.cur = r.frameAt(tid, depth)
		case opNewThread:
			t := r.rt.NewThread(int(r.arg()))
			r.cur = t.Top()
		case opCall:
			th := r.thread(int(r.arg()))
			nlocals := int(r.arg())
			th.Call(nlocals, r.bodyFn)
			r.cur = th.Top()
		case opReturn:
			if !inBody {
				fail("return outside a call at op %d", r.pos-1)
			}
			return r.ref()
		case opAlloc:
			c := r.class(int(r.arg()))
			extra := int(r.arg())
			var id heap.HandleID
			var err error
			if extra == 0 {
				id, err = r.cur.New(c)
			} else {
				id, err = r.cur.NewArray(c, extra)
			}
			if err != nil {
				panic(err)
			}
			r.table = append(r.table, id)
		case opPutField:
			r.cur.PutField(r.ref(), int(r.arg()), r.ref())
		case opGetField:
			r.cur.GetField(r.ref(), int(r.arg()))
		case opSetLocal:
			r.cur.SetLocal(int(r.arg()), r.ref())
		case opPutStatic:
			r.cur.PutStatic(int(r.arg()), r.ref())
		case opGetStatic:
			r.cur.GetStatic(int(r.arg()))
		case opStaticSlot:
			r.rt.StaticSlot(r.str())
		case opIntern:
			si := int(r.arg())
			c := r.class(int(r.arg()))
			id, err := r.cur.Intern(r.t.strings[si], c)
			if err != nil {
				panic(err)
			}
			if !r.seen[si] {
				r.seen[si] = true
				r.table = append(r.table, id)
			}
		case opNativePin:
			r.cur.NativePin(r.ref())
		case opForget:
			r.cur.Forget(r.ref())
		case opForceCollect:
			r.rt.ForceCollect()
		default:
			fail("bad opcode %d at op %d", op, r.pos-1)
		}
	}
	if inBody {
		fail("truncated: stream ended inside a call body")
	}
	return heap.Nil
}

// body is the shared Thread.Call body: it executes ops until the
// matching opReturn. The frame handed in by Call is the new current
// frame, exactly as CallBegin re-pointed the recorder's.
func (r *Replayer) body(f *vm.Frame) heap.HandleID {
	r.cur = f
	return r.exec(true)
}

// errUnderflow and errRefRange are pre-built so arg and ref stay
// within the inlining budget (panic on a prebuilt value costs the
// inliner almost nothing; a fail(...) call would not).
var (
	errUnderflow = &tapeErr{msg: "operand stream underflow"}
	errRefRange  = &tapeErr{msg: "ref beyond recorded allocations"}
)

// arg reads the next operand. Inlined into exec's switch.
func (r *Replayer) arg() uint64 {
	p := r.apos
	if p >= len(r.vals) {
		panic(errUnderflow)
	}
	r.apos = p + 1
	return r.vals[p]
}

// ref reads an operand as an allocation-sequence index and resolves it
// to the handle that allocation produced in this run.
func (r *Replayer) ref() heap.HandleID {
	i := r.arg()
	if i >= uint64(len(r.table)) {
		panic(errRefRange)
	}
	return r.table[i]
}

func (r *Replayer) thread(tid int) *vm.Thread {
	ts := r.rt.Threads()
	if tid < 1 || tid > len(ts) {
		fail("thread %d out of range (have %d)", tid, len(ts))
	}
	return ts[tid-1]
}

func (r *Replayer) frameAt(tid, depth int) *vm.Frame {
	if tid == 0 {
		return r.rt.StaticFrame()
	}
	t := r.thread(tid)
	if depth < 1 || depth > t.Depth() {
		fail("frame depth %d out of range on thread %d", depth, tid)
	}
	return t.FrameAt(depth)
}

func (r *Replayer) class(ci int) heap.ClassID {
	if ci < 0 || ci >= len(r.classIDs) {
		fail("class %d out of range (have %d)", ci, len(r.classIDs))
	}
	return r.classIDs[ci]
}

func (r *Replayer) str() string {
	si := r.arg()
	if si >= uint64(len(r.t.strings)) {
		fail("string %d out of range (have %d)", si, len(r.t.strings))
	}
	return r.t.strings[si]
}
