package tape

import (
	"encoding/binary"
	"fmt"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Recorder captures a runtime's driver-facing operation stream into a
// Tape. It implements vm.OpRecorder; NewRecorder attaches it, Finish
// detaches it and seals the tape.
//
// Recording assumes the driver observes handle discipline (it never
// passes a freed handle back into the runtime): operand encoding maps
// live handles to allocation-sequence indices, and a freed handle's
// mapping is only overwritten when the handle is reused.
type Recorder struct {
	rt   *vm.Runtime
	meta Meta

	ops  []byte
	args []byte
	// idx maps HandleID → 1-based allocation-sequence index. Freed
	// handles leave stale entries behind, which is safe exactly
	// because drivers never reference freed objects; the entry is
	// rewritten when the handle slot is reused by a later allocation.
	idx    []int32
	allocs int

	strIdx  map[string]int
	strings []string
	// interned tracks which contents already carry an allocation
	// index, so an Intern hit on a recycled handle id cannot be
	// mistaken for a fresh interning.
	interned map[string]bool

	// cur is the frame the next frame-addressed op applies to; ops on
	// any other frame are preceded by an explicit opSetFrame.
	cur *vm.Frame
}

var _ vm.OpRecorder = (*Recorder)(nil)

// NewRecorder attaches a recorder to rt, which must be freshly
// constructed or Reset: the stream cannot describe pre-existing
// threads or objects. Class definitions and static-slot interning that
// happen after attachment (jasm's Bind, a workload's prologue) are
// captured — classes via the Finish snapshot, slots via the stream.
func NewRecorder(rt *vm.Runtime, meta Meta) *Recorder {
	if rt.Instr() != 0 || len(rt.Threads()) != 0 {
		panic("tape: recorder attached to a runtime that already ran")
	}
	r := &Recorder{
		rt:       rt,
		meta:     meta,
		strIdx:   make(map[string]int),
		interned: make(map[string]bool),
		cur:      rt.StaticFrame(),
	}
	rt.SetRecorder(r)
	return r
}

// Finish detaches the recorder and returns the sealed tape: the
// recorded streams plus a snapshot of the runtime's class table (in
// ClassID order, so a replay's DefineClass calls reproduce the ids).
// Meta.Threads defaults to the observed thread count when the caller
// left it zero.
func (r *Recorder) Finish() *Tape {
	r.rt.SetRecorder(nil)
	h := r.rt.Heap
	classes := make([]heap.Class, h.NumClasses())
	for i := range classes {
		classes[i] = h.ClassDef(heap.ClassID(i))
	}
	meta := r.meta
	if meta.Threads == 0 {
		meta.Threads = len(r.rt.Threads())
	}
	return &Tape{
		Meta:    meta,
		classes: classes,
		strings: r.strings,
		ops:     r.ops,
		args:    r.args,
		allocs:  r.allocs,
	}
}

func (r *Recorder) emit(op byte) { r.ops = append(r.ops, op) }
func (r *Recorder) arg(v uint64) { r.args = binary.AppendUvarint(r.args, v) }
func (r *Recorder) argI(v int)   { r.arg(uint64(v)) }

// ref encodes a handle operand as its allocation-sequence index.
func (r *Recorder) ref(id heap.HandleID) uint64 {
	if id == heap.Nil {
		return 0
	}
	if int(id) >= len(r.idx) || r.idx[id] == 0 {
		panic(fmt.Sprintf("tape: operand handle %d has no recorded allocation", id))
	}
	return uint64(r.idx[id])
}

// noteAlloc assigns the next allocation-sequence index to id.
func (r *Recorder) noteAlloc(id heap.HandleID) {
	r.allocs++
	for int(id) >= len(r.idx) {
		r.idx = append(r.idx, 0)
	}
	r.idx[id] = int32(r.allocs)
}

// str interns s into the tape's string table.
func (r *Recorder) str(s string) uint64 {
	if i, ok := r.strIdx[s]; ok {
		return uint64(i)
	}
	i := len(r.strings)
	r.strIdx[s] = i
	r.strings = append(r.strings, s)
	return uint64(i)
}

// frame makes f the stream's current frame, emitting opSetFrame when
// the target actually changes. Pointer identity is exact here: cur is
// always re-pointed at push/pop boundaries (CallBegin/CallEnd,
// NewThread), so it can never dangle into the frame pool.
func (r *Recorder) frame(f *vm.Frame) {
	if f == r.cur {
		return
	}
	r.cur = f
	r.emit(opSetFrame)
	if f.Thread == nil {
		r.arg(0)
		r.arg(0)
		return
	}
	r.argI(f.Thread.ID)
	r.argI(f.Depth)
}

func (r *Recorder) NewThread(t *vm.Thread, nlocals int) {
	r.emit(opNewThread)
	r.argI(nlocals)
	r.cur = t.Top()
}

func (r *Recorder) CallBegin(t *vm.Thread, callee *vm.Frame, nlocals int) {
	r.emit(opCall)
	r.argI(t.ID)
	r.argI(nlocals)
	r.cur = callee
}

func (r *Recorder) CallEnd(t *vm.Thread, ret heap.HandleID) {
	r.emit(opReturn)
	r.arg(r.ref(ret))
	r.cur = t.Top()
}

func (r *Recorder) Alloc(f *vm.Frame, c heap.ClassID, extra int, id heap.HandleID) {
	r.frame(f)
	r.emit(opAlloc)
	r.argI(int(c))
	r.argI(extra)
	r.noteAlloc(id)
}

func (r *Recorder) PutField(f *vm.Frame, obj heap.HandleID, slot int, val heap.HandleID) {
	r.frame(f)
	r.emit(opPutField)
	r.arg(r.ref(obj))
	r.argI(slot)
	r.arg(r.ref(val))
}

func (r *Recorder) GetField(f *vm.Frame, obj heap.HandleID, slot int) {
	r.frame(f)
	r.emit(opGetField)
	r.arg(r.ref(obj))
	r.argI(slot)
}

func (r *Recorder) SetLocal(f *vm.Frame, slot int, val heap.HandleID) {
	r.frame(f)
	r.emit(opSetLocal)
	r.argI(slot)
	r.arg(r.ref(val))
}

func (r *Recorder) PutStatic(f *vm.Frame, slot int, val heap.HandleID) {
	r.frame(f)
	r.emit(opPutStatic)
	r.argI(slot)
	r.arg(r.ref(val))
}

func (r *Recorder) GetStatic(f *vm.Frame, slot int) {
	r.frame(f)
	r.emit(opGetStatic)
	r.argI(slot)
}

func (r *Recorder) StaticSlot(name string) {
	r.emit(opStaticSlot)
	r.arg(r.str(name))
}

func (r *Recorder) Intern(f *vm.Frame, content string, c heap.ClassID, id heap.HandleID) {
	r.frame(f)
	r.emit(opIntern)
	r.arg(r.str(content))
	r.argI(int(c))
	if !r.interned[content] {
		r.interned[content] = true
		r.noteAlloc(id)
	}
}

func (r *Recorder) NativePin(f *vm.Frame, id heap.HandleID) {
	r.frame(f)
	r.emit(opNativePin)
	r.arg(r.ref(id))
}

func (r *Recorder) Forget(f *vm.Frame, id heap.HandleID) {
	r.frame(f)
	r.emit(opForget)
	r.arg(r.ref(id))
}

func (r *Recorder) ForceCollect() {
	r.emit(opForceCollect)
}
