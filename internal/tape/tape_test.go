package tape_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/collectors"
	"repro/internal/heap"
	"repro/internal/tape"
	"repro/internal/vm"
	"repro/internal/workload"
)

// recordTape drives (workload, size) under colSpec on a hb-byte arena
// with a Recorder attached and returns the sealed tape.
func recordTape(t *testing.T, name string, size int, colSpec string, hb int) *tape.Tape {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := collectors.Parse(colSpec)
	if err != nil {
		t.Fatal(err)
	}
	rt := vm.New(heap.New(hb), mk())
	rec := tape.NewRecorder(rt, tape.Meta{
		Workload: name, Size: size,
		Threads: spec.Threads(size), HeapBytes: spec.HeapBytes(size),
	})
	spec.Run(rt, size)
	rt.Quiesce()
	return rec.Finish()
}

// TestCodecRoundTrip pins the serialized form: Encode→Decode is the
// identity (checked by re-encoding), the encoding is deterministic,
// files round-trip, and corruption — bit flips anywhere, truncation,
// trailing garbage — is always detected.
func TestCodecRoundTrip(t *testing.T) {
	tp := recordTape(t, "compress", 1, "none", 1<<24)
	enc := tape.Encode(tp)
	dec, err := tape.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tape.Encode(dec), enc) {
		t.Fatal("decode→re-encode changed the bytes")
	}
	if dec.Meta != tp.Meta || dec.Ops() != tp.Ops() || dec.Allocs() != tp.Allocs() {
		t.Fatalf("decoded header differs: %+v vs %+v", dec.Meta, tp.Meta)
	}
	if tape.Hash(dec) != tape.Hash(tp) {
		t.Fatal("content hash changed across a round trip")
	}

	path := filepath.Join(t.TempDir(), "t.cgt")
	if err := tape.WriteFile(path, tp); err != nil {
		t.Fatal(err)
	}
	if _, err := tape.ReadFile(path); err != nil {
		t.Fatal(err)
	}

	// Every single-byte flip must fail to decode: either the sha256
	// trailer catches it, or (flips inside the trailer itself) the
	// re-hash does.
	for _, i := range []int{0, 7, len(enc) / 2, len(enc) - 40, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := tape.Decode(bad); err == nil {
			t.Errorf("flip at byte %d decoded successfully", i)
		}
	}
	if _, err := tape.Decode(enc[:len(enc)-5]); err == nil {
		t.Error("truncated encoding decoded successfully")
	}
	if _, err := tape.Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("encoding with trailing garbage decoded successfully")
	}
}

// TestTapeConfigIndependence is the methodology pin: a tape is a pure
// function of (workload, size). Recording the same cell under disjoint
// collectors — no collection, eager CG pops, handle-recycling CG, a
// tracing collector, a generational one — must produce byte-identical
// encodings even though frees, handle recycling and cycle counts all
// differ across those runs.
func TestTapeConfigIndependence(t *testing.T) {
	for _, cell := range []struct {
		wl   string
		size int
	}{{"compress", 1}, {"jess", 1}, {"mtrt", 1}} {
		var want []byte
		var wantSpec string
		for _, colSpec := range []string{"none", "cg", "cg+recycle", "msa", "gen"} {
			// A roomy arena keeps "none" from exhausting the heap; the
			// tape contents do not depend on the arena size either.
			enc := tape.Encode(recordTape(t, cell.wl, cell.size, colSpec, 1<<26))
			if want == nil {
				want, wantSpec = enc, colSpec
				continue
			}
			if !bytes.Equal(enc, want) {
				t.Errorf("%s/%d: tape under %s differs from tape under %s",
					cell.wl, cell.size, colSpec, wantSpec)
			}
		}
	}
}

// runSnap is everything observable about a finished run that the
// equivalence property compares.
type runSnap struct {
	instr    uint64
	gcCycles int
	stats    heap.Stats
	numLive  int
	live     []heap.HandleID
	info     heap.Info
	panicked string
}

// runCell executes one (workload, size, collector, gcEvery) cell on a
// fresh shard, either driven by the workload's own driver (rp == nil)
// or replayed from a tape, and snapshots the outcome. Workload panics
// (heap exhaustion under a tight arena) are part of the outcome: a
// replayed run must fail exactly where the driven one does.
func runCell(t *testing.T, name string, size int, colSpec string, gcEvery uint64,
	hb int, rp *tape.Replayer) (snap runSnap) {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := collectors.Parse(colSpec)
	if err != nil {
		t.Fatal(err)
	}
	ev := mk()
	ev.GCEvery = gcEvery
	rt := vm.New(heap.New(hb), ev)
	func() {
		defer func() {
			if r := recover(); r != nil {
				snap.panicked = fmt.Sprint(r)
			}
		}()
		if rp != nil {
			if err := rp.Run(rt); err != nil {
				t.Fatalf("%s/%d under %s: replay: %v", name, size, colSpec, err)
			}
		} else {
			spec.Run(rt, size)
		}
	}()
	rt.Quiesce()
	snap.instr = rt.Instr()
	snap.gcCycles = rt.GCCycles()
	snap.stats = rt.Heap.Stats()
	snap.numLive = rt.Heap.NumLive()
	rt.Heap.ForEachLive(func(id heap.HandleID) { snap.live = append(snap.live, id) })
	snap.info = rt.Heap.Arena().Info()
	return snap
}

// TestReplayEquivalence is the bit-identity gate: for every collector
// spec the registry can produce, a cell replayed from a tape (recorded
// once, under "none") is indistinguishable from the driven cell —
// instruction count, cycle count, allocation statistics, the exact
// live handle set, arena occupancy, and even the panic message when
// the tight arena exhausts. This is what licenses the engine to
// substitute replay for driving.
func TestReplayEquivalence(t *testing.T) {
	cells := []struct {
		wl   string
		size int
	}{{"compress", 1}, {"jess", 1}, {"raytrace", 1}, {"mtrt", 1}}
	for _, cell := range cells {
		spec, err := workload.ByName(cell.wl)
		if err != nil {
			t.Fatal(err)
		}
		hb := spec.HeapBytes(cell.size)
		tp := recordTape(t, cell.wl, cell.size, "none", 1<<26)
		for _, colSpec := range collectors.AllSpecs() {
			for _, gcEvery := range []uint64{0, 700} {
				driven := runCell(t, cell.wl, cell.size, colSpec, gcEvery, hb, nil)
				replayed := runCell(t, cell.wl, cell.size, colSpec, gcEvery, hb, tape.NewReplayer(tp))
				if !reflect.DeepEqual(driven, replayed) {
					t.Errorf("%s/%d under %s gc-every %d: replayed run differs\ndriven:   %+v\nreplayed: %+v",
						cell.wl, cell.size, colSpec, gcEvery, driven, replayed)
				}
			}
		}
	}
}

// TestReplayerReuse pins that one Replayer replays repeatedly (the
// engine shares one across a job's repeats) with identical results.
func TestReplayerReuse(t *testing.T) {
	tp := recordTape(t, "jess", 1, "none", 1<<26)
	mk, err := collectors.Parse("cg")
	if err != nil {
		t.Fatal(err)
	}
	rp := tape.NewReplayer(tp)
	var want runSnap
	for i := 0; i < 3; i++ {
		rt := vm.New(heap.New(1<<24), mk())
		if err := rp.Run(rt); err != nil {
			t.Fatal(err)
		}
		rt.Quiesce()
		got := runSnap{instr: rt.Instr(), stats: rt.Heap.Stats(), numLive: rt.Heap.NumLive()}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replay %d differs: %+v vs %+v", i, got, want)
		}
	}
}

// TestRegisterTape runs a replayed spec through the workload registry
// surface the engine uses.
func TestRegisterTape(t *testing.T) {
	tp := recordTape(t, "compress", 1, "none", 1<<24)
	name := "compress-taped"
	if _, err := workload.ByName(name); err == nil {
		t.Skip("replayed spec already registered by another test")
	}
	workload.RegisterTape(name, tp)
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mk, _ := collectors.Parse("cg")
	rt := vm.New(heap.New(spec.HeapBytes(1)), mk())
	spec.Run(rt, 1)
	rt.Quiesce()
	driven := runCell(t, "compress", 1, "cg", 0, spec.HeapBytes(1), nil)
	if rt.Instr() != driven.instr || rt.Heap.Stats() != driven.stats {
		t.Fatalf("registered replay differs from driven run: instr %d vs %d",
			rt.Instr(), driven.instr)
	}
}

func BenchmarkReplay(b *testing.B) {
	for _, wl := range []string{"compress", "jack", "db"} {
		spec, err := workload.ByName(wl)
		if err != nil {
			b.Fatal(err)
		}
		mk, _ := collectors.Parse("cg")
		hb := spec.HeapBytes(10)
		rt := vm.New(heap.New(hb), mk())
		rec := tape.NewRecorder(rt, tape.Meta{Workload: wl, Size: 10})
		spec.Run(rt, 10)
		rt.Quiesce()
		tp := rec.Finish()
		rp := tape.NewReplayer(tp)
		b.Run(wl, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt.Reset(mk())
				if err := rp.Run(rt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(wl+"-drive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt.Reset(mk())
				spec.Run(rt, 10)
			}
		})
	}
}
