// Package benchfmt defines the machine-readable benchmark report that
// anchors the repo's performance claims: cmd/cgbench -bench emits it,
// BENCH_seed.json at the repo root is the committed baseline, and the
// CI bench-smoke job diffs a fresh run against that baseline with
// Compare. The format is deliberately tiny — one entry per benchmark
// with the three numbers testing.Benchmark reports — so any tool (jq,
// benchstat after a trivial transform, a spreadsheet) can consume it.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// Entry is one benchmark measurement.
type Entry struct {
	// Name is the benchmark path without the "Benchmark" prefix,
	// e.g. "Workload/compress/cg/size1".
	Name string `json:"name"`
	// Iters is how many iterations the measurement averaged over.
	Iters int `json:"iters"`
	// NsPerOp is the mean wall time per iteration in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the allocation counters.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// P95PauseNS and MaxPauseNS carry the stop-the-world pause
	// distribution of cycle-heavy cells (cgbench's -bench-overlap
	// family, from the cycle-timeline histograms); zero for families
	// that do not measure pauses.
	P95PauseNS int64 `json:"p95_pause_ns,omitempty"`
	MaxPauseNS int64 `json:"max_pause_ns,omitempty"`
}

// Report is a benchmark run with enough provenance to judge whether
// two reports are comparable (same host class, same measurement time).
type Report struct {
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	BenchTime  string  `json:"bench_time"`
	Benchmarks []Entry `json:"benchmarks"`
}

// NewReport returns a report stamped with this process's provenance.
func NewReport(benchTime time.Duration) *Report {
	return &Report{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		BenchTime: benchTime.String(),
	}
}

// Add appends one measurement.
func (r *Report) Add(e Entry) { r.Benchmarks = append(r.Benchmarks, e) }

// Write encodes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path atomically enough for our use
// (single writer).
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a report written by Write.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &r, nil
}

// Delta is one baseline-vs-current comparison.
type Delta struct {
	Name string
	// Base and Cur are ns/op; Pct is (Cur-Base)/Base*100, so positive
	// means a regression (slower than the baseline).
	Base, Cur float64
	Pct       float64
}

// Compare matches benchmarks by name and reports every pair, sorted by
// descending regression percentage. Benchmarks present in only one
// report are skipped: the baseline may predate a new workload, and a
// short CI run may measure a subset of the committed matrix.
func Compare(base, cur *Report) []Delta {
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	var out []Delta
	for _, e := range cur.Benchmarks {
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		out = append(out, Delta{
			Name: e.Name,
			Base: b.NsPerOp,
			Cur:  e.NsPerOp,
			Pct:  (e.NsPerOp - b.NsPerOp) / b.NsPerOp * 100,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pct > out[j].Pct })
	return out
}

// ComparePauses matches benchmarks by name and reports p95-pause
// deltas for every pair where both sides measured pauses. Positive Pct
// means the current run pauses longer than the baseline; a large
// negative Pct on a stop-the-world baseline is the overlap win.
func ComparePauses(base, cur *Report) []Delta {
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	var out []Delta
	for _, e := range cur.Benchmarks {
		b, ok := byName[e.Name]
		if !ok || b.P95PauseNS <= 0 || e.P95PauseNS <= 0 {
			continue
		}
		out = append(out, Delta{
			Name: e.Name,
			Base: float64(b.P95PauseNS),
			Cur:  float64(e.P95PauseNS),
			Pct:  float64(e.P95PauseNS-b.P95PauseNS) / float64(b.P95PauseNS) * 100,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pct > out[j].Pct })
	return out
}

// Regressions filters deltas slower than thresholdPct.
func Regressions(deltas []Delta, thresholdPct float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Pct > thresholdPct {
			out = append(out, d)
		}
	}
	return out
}
