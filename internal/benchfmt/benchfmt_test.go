package benchfmt

import (
	"path/filepath"
	"testing"
	"time"
)

func TestReportRoundTrip(t *testing.T) {
	r := NewReport(300 * time.Millisecond)
	r.Add(Entry{Name: "Workload/jess/cg/size1", Iters: 100, NsPerOp: 400000, BytesPerOp: 1024, AllocsPerOp: 12})
	r.Add(Entry{Name: "Workload/jess/msa/size1", Iters: 150, NsPerOp: 250000})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.BenchTime != "300ms" || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Benchmarks[0] != r.Benchmarks[0] {
		t.Fatalf("entry mismatch: %+v vs %+v", got.Benchmarks[0], r.Benchmarks[0])
	}
}

func TestCompareAndRegressions(t *testing.T) {
	base := &Report{Benchmarks: []Entry{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 200},
		{Name: "gone", NsPerOp: 50},
	}}
	cur := &Report{Benchmarks: []Entry{
		{Name: "a", NsPerOp: 130}, // +30%: regression
		{Name: "b", NsPerOp: 150}, // -25%: improvement
		{Name: "new", NsPerOp: 10},
	}}
	deltas := Compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("Compare matched %d benchmarks, want 2 (unmatched skipped)", len(deltas))
	}
	if deltas[0].Name != "a" || deltas[1].Name != "b" {
		t.Fatalf("deltas not sorted worst-first: %+v", deltas)
	}
	regs := Regressions(deltas, 15)
	if len(regs) != 1 || regs[0].Name != "a" || regs[0].Pct < 29 || regs[0].Pct > 31 {
		t.Fatalf("Regressions(15%%) = %+v, want just a at +30%%", regs)
	}
	if len(Regressions(deltas, 50)) != 0 {
		t.Fatal("50% threshold should clear everything")
	}
}
