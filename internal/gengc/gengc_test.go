package gengc

import (
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

func newRT(arena int) (*vm.Runtime, *System, heap.ClassID) {
	h := heap.New(arena)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	g := New()
	rt := vm.New(h, g)
	return rt, g, node
}

func TestMinorCollectsYoungGarbage(t *testing.T) {
	rt, g, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	keep := f.MustNew(node)
	f.SetLocal(0, keep)
	th.CallVoid(0, func(inner *vm.Frame) {
		for i := 0; i < 20; i++ {
			inner.MustNew(node) // dropped on the floor
		}
	})
	freed := g.Collect()
	if freed != 20 {
		t.Fatalf("freed %d, want 20", freed)
	}
	if !rt.Heap.Live(keep) {
		t.Fatal("rooted young object swept")
	}
	if g.Stats().Minor == 0 {
		t.Fatal("no minor cycle recorded")
	}
}

func TestSurvivorsPromote(t *testing.T) {
	rt, g, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	keep := f.MustNew(node)
	f.SetLocal(0, keep)
	for i := 0; i < PromoteAfter; i++ {
		g.Collect()
	}
	if !g.old[int(keep)] {
		t.Fatalf("object not promoted after %d survivals", PromoteAfter)
	}
	if g.Stats().Promoted == 0 {
		t.Fatal("promotion counter untouched")
	}
	_ = rt
}

// TestRememberedSetKeepsYoungAlive is the classic generational hazard:
// an old object is the only referent of a young one. Without the write
// barrier the minor collection would sweep the young object.
func TestRememberedSetKeepsYoungAlive(t *testing.T) {
	rt, g, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	oldObj := f.MustNew(node)
	f.SetLocal(0, oldObj)
	for i := 0; i < PromoteAfter; i++ {
		g.Collect()
	}
	if !g.old[int(oldObj)] {
		t.Fatal("setup: object not tenured")
	}
	var young heap.HandleID
	th.CallVoid(0, func(inner *vm.Frame) {
		young = inner.MustNew(node)
		inner.PutField(oldObj, 0, young) // old -> young edge, via write barrier
	})
	// The young object has no root other than the old object's field.
	g.minor()
	if !rt.Heap.Live(young) {
		t.Fatal("minor collection swept a remembered-set-reachable object")
	}
	// Cut the edge: now it must die.
	f.PutField(oldObj, 0, heap.Nil)
	g.minor()
	if rt.Heap.Live(young) {
		t.Fatal("unreachable young object survived")
	}
}

func TestMajorCollectsOldGarbage(t *testing.T) {
	rt, g, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	o := f.MustNew(node)
	f.SetLocal(0, o)
	for i := 0; i < PromoteAfter; i++ {
		g.Collect()
	}
	f.SetLocal(0, heap.Nil) // tenured garbage: only a major pass finds it
	f.Forget(o)             // drop the JNI-style local reference too
	if g.minor() != 0 {
		t.Fatal("minor collection touched the old generation")
	}
	if rt.Heap.Live(o) {
		if g.major() == 0 {
			t.Fatal("major collection missed tenured garbage")
		}
	}
	if rt.Heap.Live(o) {
		t.Fatal("tenured garbage survived a major collection")
	}
}

// TestGenerationalExactnessOracle: after a full Collect escalation the
// survivor set equals exact reachability (majors are exact; minors are
// conservative only across generations).
func TestGenerationalExactnessOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rt, g, node := newRT(1 << 18)
	th := rt.NewThread(4)
	f := th.Top()
	var objs []heap.HandleID
	for round := 0; round < 5; round++ {
		// Each round's graph is built in a nested frame so operand
		// roots die with it; survivors hang off the outer locals.
		th.CallVoid(0, func(inner *vm.Frame) {
			for i := 0; i < 100; i++ {
				objs = append(objs, inner.MustNew(node))
			}
			for i := 0; i < 150; i++ {
				live := objs[:0]
				for _, o := range objs {
					if rt.Heap.Live(o) {
						live = append(live, o)
					}
				}
				objs = live
				if len(objs) < 2 {
					break
				}
				inner.PutField(objs[rng.Intn(len(objs))], rng.Intn(2), objs[rng.Intn(len(objs))])
			}
			for i := 0; i < 4; i++ {
				if len(objs) > 0 {
					f.SetLocal(i, objs[rng.Intn(len(objs))])
				}
			}
		})
		g.Collect()
	}
	// Force a major pass, then compare against the oracle.
	g.major()
	reach := make(map[heap.HandleID]bool)
	var queue []heap.HandleID
	push := func(id heap.HandleID) {
		if id != heap.Nil && !reach[id] {
			reach[id] = true
			queue = append(queue, id)
		}
	}
	rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			push(r)
		}
	})
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		rt.Heap.Refs(id, push)
	}
	if rt.Heap.NumLive() != len(reach) {
		t.Fatalf("live %d != reachable %d after major", rt.Heap.NumLive(), len(reach))
	}
}

func TestHandleReuseResetsGeneration(t *testing.T) {
	rt, g, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	o := f.MustNew(node)
	f.SetLocal(0, o)
	for i := 0; i < PromoteAfter; i++ {
		g.Collect()
	}
	f.SetLocal(0, heap.Nil)
	f.Forget(o)
	g.major() // frees the tenured object, handle returns to the pool
	n := f.MustNew(node)
	if n != o {
		t.Skipf("heap did not reuse the handle (got %d, want %d)", n, o)
	}
	if g.old[int(n)] {
		t.Fatal("recycled handle inherited old-generation bit")
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Minor: 2, Major: 1, FreedYoung: 9, FreedOld: 3, Promoted: 4, Remembered: 2}
	b := Stats{Minor: 1, Major: 0, FreedYoung: 1, FreedOld: 0, Promoted: 2, Remembered: 5}
	a.Merge(b)
	if a != (Stats{Minor: 3, Major: 1, FreedYoung: 10, FreedOld: 3, Promoted: 6, Remembered: 7}) {
		t.Fatalf("Stats.Merge = %+v", a)
	}
}

// TestTunedPromotionThreshold pins the gen+promote=N semantics: with a
// threshold of 1 a surviving object tenures on its first minor cycle;
// with a high threshold the same program promotes nothing.
func TestTunedPromotionThreshold(t *testing.T) {
	run := func(promote int) (Stats, *System) {
		h := heap.New(1 << 16)
		node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
		g := NewTuned(promote)
		rt := vm.New(h, g)
		th := rt.NewThread(1)
		th.Top().SetLocal(0, th.Top().MustNew(node))
		g.Collect()
		return g.Stats(), g
	}
	eager, g1 := run(1)
	if eager.Promoted == 0 {
		t.Fatalf("promote=1 tenured nothing after a survived minor cycle: %+v", eager)
	}
	if got := g1.Name(); got != "gen+promote=1" {
		t.Fatalf("Name() = %q, want gen+promote=1", got)
	}
	lazy, g8 := run(100)
	if lazy.Promoted != 0 {
		t.Fatalf("promote=100 tenured %d objects after one minor cycle", lazy.Promoted)
	}
	if got := g8.Name(); got != "gen+promote=100" {
		t.Fatalf("Name() = %q", got)
	}
	def, gd := run(PromoteAfter)
	if def.Promoted != 0 {
		t.Fatalf("default threshold tenured %d objects after a single minor cycle (PromoteAfter = %d)",
			def.Promoted, PromoteAfter)
	}
	if got := gd.Name(); got != "gen" {
		t.Fatalf("default threshold must keep the canonical name, got %q", got)
	}
}
