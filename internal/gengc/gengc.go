// Package gengc implements a two-generation collector, the related-work
// baseline the thesis positions CG against (§1.1: "traditional
// generational collection defines a generation by the longevity of its
// objects"). It exists for the ablation benchmarks: CG clusters objects
// by *expected expiration* (dependent frames), generational collection by
// *age* — the experiments contrast the two on identical workloads.
//
// Design: objects are born young; a minor collection marks the young
// generation from the runtime roots plus a remembered set of old objects
// holding references into the young generation (maintained by the OnRef
// write barrier), sweeps unmarked young objects, and promotes survivors
// after PromoteAfter minor cycles. When a minor collection reclaims
// little, a major (full mark–sweep) collection runs and the remembered
// set is rebuilt by scanning the old generation.
package gengc

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/heap"
	"repro/internal/vm"
)

// PromoteAfter is the default number of minor collections an object
// must survive before promotion to the old generation; NewTuned selects
// other tenuring thresholds (the registry's gen+promote=N grammar).
const PromoteAfter = 2

// minorYieldNum/minorYieldDen: a minor collection that frees fewer than
// num/den of the young population triggers a major collection.
const (
	minorYieldNum = 1
	minorYieldDen = 10
)

// Stats aggregates generational activity.
type Stats struct {
	Minor      int    // minor cycles
	Major      int    // major cycles
	FreedYoung uint64 // objects reclaimed by minor collections
	FreedOld   uint64 // objects reclaimed by major collections (both gens)
	Promoted   uint64 // young objects tenured
	Remembered uint64 // write-barrier insertions
}

// Merge accumulates o into s (order-independent shard aggregation).
func (s *Stats) Merge(o Stats) {
	s.Minor += o.Minor
	s.Major += o.Major
	s.FreedYoung += o.FreedYoung
	s.FreedOld += o.FreedOld
	s.Promoted += o.Promoted
	s.Remembered += o.Remembered
}

// System is the generational collector; it implements vm.Collector.
// Its event table subscribes exactly the two slots generational
// collection needs — Alloc (birth bookkeeping) and Ref (the write
// barrier) — plus the Collect capability; returns, frame pops, static
// stores and object touches cost it nothing under the event-table ABI.
type System struct {
	rt *vm.Runtime

	promoteAfter uint8  // minor-cycle survivals before tenuring
	old          []bool // generation bit per handle
	survivals    []uint8
	mark         heap.Bitset                // word-packed mark scratch
	remembered   map[heap.HandleID]struct{} // old objects that may reference young
	work         []heap.HandleID
	tab          *genTables // pooled carrier the tables came from
	stats        Stats
}

// genTables is the recyclable allocation footprint of one generational
// system — generation bits, survival counters, mark scratch, the
// remembered set and the DFS stack — pooled across matrix cells
// through the event table's Detach path, mirroring core's table pool.
type genTables struct {
	old        []bool
	survivals  []uint8
	mark       heap.Bitset
	remembered map[heap.HandleID]struct{}
	work       []heap.HandleID
}

var genTablePool = sync.Pool{New: func() any {
	return &genTables{remembered: make(map[heap.HandleID]struct{})}
}}

// New returns an unattached generational system with the default
// tenuring threshold; pass it to vm.New.
func New() *System { return NewTuned(PromoteAfter) }

// NewTuned returns a generational system that promotes survivors after
// promoteAfter minor collections — the tunable variant the registry
// exposes as gen+promote=N. promoteAfter is clamped to [1, 255]. The
// side tables are drawn from the pool at Attach, not here.
func NewTuned(promoteAfter int) *System {
	if promoteAfter < 1 {
		promoteAfter = 1
	}
	if promoteAfter > 255 {
		promoteAfter = 255
	}
	return &System{promoteAfter: uint8(promoteAfter)}
}

// Name identifies the configuration in experiment output (the
// registry's canonical spelling: "gen", or "gen+promote=N" when tuned
// away from the default threshold).
func (g *System) Name() string {
	if g.promoteAfter == PromoteAfter {
		return "gen"
	}
	return fmt.Sprintf("gen+promote=%d", g.promoteAfter)
}

// Events implements vm.Collector.
func (g *System) Events() vm.Events {
	return vm.Events{
		Name:      g.Name(),
		Attach:    g.Attach,
		Detach:    g.detach,
		Alloc:     g.OnAlloc,
		Ref:       g.OnRef,
		Collect:   g.Collect,
		Collector: g,
	}
}

// Attach binds the system to rt (the descriptor's Attach hook),
// drawing side tables from the pool. Truncated tables are observably
// fresh: ensure regrows old/survivals with explicit zero values and
// the remembered map was cleared at detach.
func (g *System) Attach(rt *vm.Runtime) {
	g.rt = rt
	t := genTablePool.Get().(*genTables)
	g.tab = t
	g.old = t.old[:0]
	g.survivals = t.survivals[:0]
	g.mark = t.mark
	g.remembered = t.remembered
	g.work = t.work
}

// detach implements the event table's Detach capability: the runtime
// is replacing this collector, so its side tables go back to the pool.
// The system must not be queried afterwards; fields are nilled so a
// violation fails loudly. None of the tables carries pointers into the
// shard (handle IDs are indices), so pooling pins nothing.
func (g *System) detach() {
	t := g.tab
	if t == nil {
		return
	}
	g.tab = nil
	t.old = g.old[:0]
	t.survivals = g.survivals[:0]
	t.mark = g.mark
	t.work = g.work[:0]
	clear(g.remembered)
	t.remembered = g.remembered
	g.rt = nil
	g.old, g.survivals, g.mark = nil, nil, nil
	g.remembered, g.work = nil, nil
	genTablePool.Put(t)
}

// Stats returns a copy of the counters.
func (g *System) Stats() Stats { return g.stats }

func (g *System) ensure(id heap.HandleID) {
	for len(g.old) <= int(id) {
		g.old = append(g.old, false)
		g.survivals = append(g.survivals, 0)
	}
}

// OnAlloc is the Alloc slot: objects are born young.
func (g *System) OnAlloc(id heap.HandleID, _ *vm.Frame) {
	g.ensure(id)
	g.old[int(id)] = false
	g.survivals[int(id)] = 0
	delete(g.remembered, id) // handle reuse
}

// OnRef is the Ref slot: the write barrier. An old object
// acquiring a reference to a young one joins the remembered set.
func (g *System) OnRef(src, dst heap.HandleID) {
	if g.old[int(src)] && !g.old[int(dst)] {
		if _, ok := g.remembered[src]; !ok {
			g.remembered[src] = struct{}{}
			g.stats.Remembered++
		}
	}
}

// Collect is the collection capability: minor first, escalating to major when
// the minor yield is poor.
func (g *System) Collect() int {
	young := 0
	g.rt.Heap.ForEachLive(func(id heap.HandleID) {
		if !g.old[int(id)] {
			young++
		}
	})
	freed := g.minor()
	if freed*minorYieldDen < young*minorYieldNum {
		freed += g.major()
	}
	return freed
}

func (g *System) resetMarks() {
	g.mark.Reset(g.rt.Heap.HandleCap())
}

// minor collects the young generation only.
func (g *System) minor() int {
	g.stats.Minor++
	h := g.rt.Heap
	g.resetMarks()
	// Roots: stacks and statics, traversing young objects only.
	g.rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r != heap.Nil {
				g.markYoung(r)
			}
		}
	})
	// Remembered set: old objects whose fields may reach young objects.
	for src := range g.remembered {
		if h.Live(src) && g.old[int(src)] {
			h.Refs(src, g.markYoung)
		}
	}
	// Mark/sweep boundary for the cycle timeline (last pass wins, so an
	// escalated minor+major cycle reports the major's boundary).
	g.rt.Timeline().CycleMarkDone(1, 0)
	// Sweep unmarked young; age and possibly promote survivors.
	freed := 0
	h.ForEachLive(func(id heap.HandleID) {
		i := int(id)
		if g.old[i] {
			return
		}
		if !g.mark.Has(i) {
			h.Free(id)
			freed++
			return
		}
		if g.survivals[i]++; g.survivals[i] >= g.promoteAfter {
			g.promote(id)
		}
	})
	g.stats.FreedYoung += uint64(freed)
	return freed
}

// markYoung marks young objects reachable from id without crossing into
// the old generation (old→young edges are covered by the remembered set).
func (g *System) markYoung(id heap.HandleID) {
	if g.old[int(id)] || g.mark.Has(int(id)) {
		return
	}
	h := g.rt.Heap
	g.mark.Set(int(id))
	g.work = append(g.work[:0], id)
	for len(g.work) > 0 {
		src := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		for _, dst := range h.RefSlots(src) {
			if dst != heap.Nil && !g.old[int(dst)] && !g.mark.Has(int(dst)) {
				g.mark.Set(int(dst))
				g.work = append(g.work, dst)
			}
		}
	}
}

// promote tenures id, adding it to the remembered set if it still holds
// references into the young generation.
func (g *System) promote(id heap.HandleID) {
	g.old[int(id)] = true
	g.stats.Promoted++
	pointsYoung := false
	g.rt.Heap.Refs(id, func(dst heap.HandleID) {
		if !g.old[int(dst)] {
			pointsYoung = true
		}
	})
	if pointsYoung {
		if _, ok := g.remembered[id]; !ok {
			g.remembered[id] = struct{}{}
			g.stats.Remembered++
		}
	}
}

// major is a full mark–sweep over both generations, after which the
// remembered set is rebuilt from the surviving old generation.
func (g *System) major() int {
	g.stats.Major++
	h := g.rt.Heap
	g.resetMarks()
	g.rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r != heap.Nil {
				g.markAll(r)
			}
		}
	})
	g.rt.Timeline().CycleMarkDone(1, 0)
	// Word-at-a-time sweep: garbage in a 64-handle window is one
	// live&^mark (the same find-next-zero walk the msa sweep performs).
	freed := 0
	live := h.LiveWords()
	for k, lw := range live {
		garbage := lw &^ g.mark[k]
		base := k << 6
		// No per-object remembered-set delete here: the rebuild below
		// clears the whole map before repopulating it.
		for garbage != 0 {
			id := heap.HandleID(base + bits.TrailingZeros64(garbage))
			garbage &= garbage - 1
			h.Free(id)
			freed++
		}
	}
	g.stats.FreedOld += uint64(freed)
	// Rebuild the remembered set exactly.
	for k := range g.remembered {
		delete(g.remembered, k)
	}
	h.ForEachLive(func(id heap.HandleID) {
		if !g.old[int(id)] {
			return
		}
		pointsYoung := false
		h.Refs(id, func(dst heap.HandleID) {
			if !g.old[int(dst)] {
				pointsYoung = true
			}
		})
		if pointsYoung {
			g.remembered[id] = struct{}{}
		}
	})
	return freed
}

// markAll marks everything reachable from id across both generations.
func (g *System) markAll(id heap.HandleID) {
	if g.mark.Has(int(id)) {
		return
	}
	h := g.rt.Heap
	g.mark.Set(int(id))
	g.work = append(g.work[:0], id)
	for len(g.work) > 0 {
		src := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		for _, dst := range h.RefSlots(src) {
			if dst != heap.Nil && !g.mark.Has(int(dst)) {
				g.mark.Set(int(dst))
				g.work = append(g.work, dst)
			}
		}
	}
}

var _ vm.Collector = (*System)(nil)
