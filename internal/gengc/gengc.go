// Package gengc implements a two-generation collector, the related-work
// baseline the thesis positions CG against (§1.1: "traditional
// generational collection defines a generation by the longevity of its
// objects"). It exists for the ablation benchmarks: CG clusters objects
// by *expected expiration* (dependent frames), generational collection by
// *age* — the experiments contrast the two on identical workloads.
//
// Design: objects are born young; a minor collection marks the young
// generation from the runtime roots plus a remembered set of old objects
// holding references into the young generation (maintained by the OnRef
// write barrier), sweeps unmarked young objects, and promotes survivors
// after PromoteAfter minor cycles. When a minor collection reclaims
// little, a major (full mark–sweep) collection runs and the remembered
// set is rebuilt by scanning the old generation.
package gengc

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/vm"
)

// PromoteAfter is the default number of minor collections an object
// must survive before promotion to the old generation; NewTuned selects
// other tenuring thresholds (the registry's gen+promote=N grammar).
const PromoteAfter = 2

// minorYieldNum/minorYieldDen: a minor collection that frees fewer than
// num/den of the young population triggers a major collection.
const (
	minorYieldNum = 1
	minorYieldDen = 10
)

// Stats aggregates generational activity.
type Stats struct {
	Minor      int    // minor cycles
	Major      int    // major cycles
	FreedYoung uint64 // objects reclaimed by minor collections
	FreedOld   uint64 // objects reclaimed by major collections (both gens)
	Promoted   uint64 // young objects tenured
	Remembered uint64 // write-barrier insertions
}

// Merge accumulates o into s (order-independent shard aggregation).
func (s *Stats) Merge(o Stats) {
	s.Minor += o.Minor
	s.Major += o.Major
	s.FreedYoung += o.FreedYoung
	s.FreedOld += o.FreedOld
	s.Promoted += o.Promoted
	s.Remembered += o.Remembered
}

// System is the generational collector; it implements vm.Collector.
// Its event table subscribes exactly the two slots generational
// collection needs — Alloc (birth bookkeeping) and Ref (the write
// barrier) — plus the Collect capability; returns, frame pops, static
// stores and object touches cost it nothing under the event-table ABI.
type System struct {
	rt *vm.Runtime

	promoteAfter uint8  // minor-cycle survivals before tenuring
	old          []bool // generation bit per handle
	survivals    []uint8
	mark         []bool
	remembered   map[heap.HandleID]struct{} // old objects that may reference young
	work         []heap.HandleID
	stats        Stats
}

// New returns an unattached generational system with the default
// tenuring threshold; pass it to vm.New.
func New() *System { return NewTuned(PromoteAfter) }

// NewTuned returns a generational system that promotes survivors after
// promoteAfter minor collections — the tunable variant the registry
// exposes as gen+promote=N. promoteAfter is clamped to [1, 255].
func NewTuned(promoteAfter int) *System {
	if promoteAfter < 1 {
		promoteAfter = 1
	}
	if promoteAfter > 255 {
		promoteAfter = 255
	}
	return &System{
		promoteAfter: uint8(promoteAfter),
		remembered:   make(map[heap.HandleID]struct{}),
	}
}

// Name identifies the configuration in experiment output (the
// registry's canonical spelling: "gen", or "gen+promote=N" when tuned
// away from the default threshold).
func (g *System) Name() string {
	if g.promoteAfter == PromoteAfter {
		return "gen"
	}
	return fmt.Sprintf("gen+promote=%d", g.promoteAfter)
}

// Events implements vm.Collector.
func (g *System) Events() vm.Events {
	return vm.Events{
		Name:      g.Name(),
		Attach:    g.Attach,
		Alloc:     g.OnAlloc,
		Ref:       g.OnRef,
		Collect:   g.Collect,
		Collector: g,
	}
}

// Attach binds the system to rt (the descriptor's Attach hook).
func (g *System) Attach(rt *vm.Runtime) { g.rt = rt }

// Stats returns a copy of the counters.
func (g *System) Stats() Stats { return g.stats }

func (g *System) ensure(id heap.HandleID) {
	for len(g.old) <= int(id) {
		g.old = append(g.old, false)
		g.survivals = append(g.survivals, 0)
	}
}

// OnAlloc is the Alloc slot: objects are born young.
func (g *System) OnAlloc(id heap.HandleID, _ *vm.Frame) {
	g.ensure(id)
	g.old[int(id)] = false
	g.survivals[int(id)] = 0
	delete(g.remembered, id) // handle reuse
}

// OnRef is the Ref slot: the write barrier. An old object
// acquiring a reference to a young one joins the remembered set.
func (g *System) OnRef(src, dst heap.HandleID) {
	if g.old[int(src)] && !g.old[int(dst)] {
		if _, ok := g.remembered[src]; !ok {
			g.remembered[src] = struct{}{}
			g.stats.Remembered++
		}
	}
}

// Collect is the collection capability: minor first, escalating to major when
// the minor yield is poor.
func (g *System) Collect() int {
	young := 0
	g.rt.Heap.ForEachLive(func(id heap.HandleID) {
		if !g.old[int(id)] {
			young++
		}
	})
	freed := g.minor()
	if freed*minorYieldDen < young*minorYieldNum {
		freed += g.major()
	}
	return freed
}

func (g *System) resetMarks() {
	cap := g.rt.Heap.HandleCap()
	if len(g.mark) < cap {
		g.mark = make([]bool, cap)
		return
	}
	for i := range g.mark {
		g.mark[i] = false
	}
}

// minor collects the young generation only.
func (g *System) minor() int {
	g.stats.Minor++
	h := g.rt.Heap
	g.resetMarks()
	// Roots: stacks and statics, traversing young objects only.
	g.rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r != heap.Nil {
				g.markYoung(r)
			}
		}
	})
	// Remembered set: old objects whose fields may reach young objects.
	for src := range g.remembered {
		if h.Live(src) && g.old[int(src)] {
			h.Refs(src, g.markYoung)
		}
	}
	// Sweep unmarked young; age and possibly promote survivors.
	freed := 0
	h.ForEachLive(func(id heap.HandleID) {
		i := int(id)
		if g.old[i] {
			return
		}
		if !g.mark[i] {
			h.Free(id)
			freed++
			return
		}
		if g.survivals[i]++; g.survivals[i] >= g.promoteAfter {
			g.promote(id)
		}
	})
	g.stats.FreedYoung += uint64(freed)
	return freed
}

// markYoung marks young objects reachable from id without crossing into
// the old generation (old→young edges are covered by the remembered set).
func (g *System) markYoung(id heap.HandleID) {
	if g.old[int(id)] || g.mark[int(id)] {
		return
	}
	h := g.rt.Heap
	g.mark[int(id)] = true
	g.work = append(g.work[:0], id)
	for len(g.work) > 0 {
		src := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		for _, dst := range h.RefSlots(src) {
			if dst != heap.Nil && !g.old[int(dst)] && !g.mark[int(dst)] {
				g.mark[int(dst)] = true
				g.work = append(g.work, dst)
			}
		}
	}
}

// promote tenures id, adding it to the remembered set if it still holds
// references into the young generation.
func (g *System) promote(id heap.HandleID) {
	g.old[int(id)] = true
	g.stats.Promoted++
	pointsYoung := false
	g.rt.Heap.Refs(id, func(dst heap.HandleID) {
		if !g.old[int(dst)] {
			pointsYoung = true
		}
	})
	if pointsYoung {
		if _, ok := g.remembered[id]; !ok {
			g.remembered[id] = struct{}{}
			g.stats.Remembered++
		}
	}
}

// major is a full mark–sweep over both generations, after which the
// remembered set is rebuilt from the surviving old generation.
func (g *System) major() int {
	g.stats.Major++
	h := g.rt.Heap
	g.resetMarks()
	g.rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r != heap.Nil {
				g.markAll(r)
			}
		}
	})
	freed := 0
	h.ForEachLive(func(id heap.HandleID) {
		if !g.mark[int(id)] {
			h.Free(id)
			delete(g.remembered, id)
			freed++
		}
	})
	g.stats.FreedOld += uint64(freed)
	// Rebuild the remembered set exactly.
	for k := range g.remembered {
		delete(g.remembered, k)
	}
	h.ForEachLive(func(id heap.HandleID) {
		if !g.old[int(id)] {
			return
		}
		pointsYoung := false
		h.Refs(id, func(dst heap.HandleID) {
			if !g.old[int(dst)] {
				pointsYoung = true
			}
		})
		if pointsYoung {
			g.remembered[id] = struct{}{}
		}
	})
	return freed
}

// markAll marks everything reachable from id across both generations.
func (g *System) markAll(id heap.HandleID) {
	if g.mark[int(id)] {
		return
	}
	h := g.rt.Heap
	g.mark[int(id)] = true
	g.work = append(g.work[:0], id)
	for len(g.work) > 0 {
		src := g.work[len(g.work)-1]
		g.work = g.work[:len(g.work)-1]
		for _, dst := range h.RefSlots(src) {
			if dst != heap.Nil && !g.mark[int(dst)] {
				g.mark[int(dst)] = true
				g.work = append(g.work, dst)
			}
		}
	}
}

var _ vm.Collector = (*System)(nil)
