package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

// maxAttempts bounds how many distinct workers may try one cell before
// the coordinator gives up and fills the slot with an error outcome.
// Job-level failures (a panicking workload) are *results* and are never
// retried — cells are deterministic; only transport failures (a worker
// process dying mid-cell) requeue work.
const maxAttempts = 3

// Conn is one worker transport: the worker's stdin, its stdout, and a
// close hook that reaps whatever was spawned.
type Conn struct {
	W io.WriteCloser
	R io.Reader
	// Close releases the worker (kill + reap for processes). Must be
	// safe to call after W is closed.
	Close func() error
}

// Spawner starts worker id and returns its connection.
type Spawner func(id int) (*Conn, error)

// Coordinator fans cells out to Procs workers and implements
// results.Backend: outcomes are merged through index-ordered emission,
// so the multi-process path is indistinguishable from the in-process
// one to everything downstream. Cells in flight on a worker that dies
// are retried on the surviving workers.
type Coordinator struct {
	Spawn Spawner
	Procs int
	// Obs, when non-nil, mirrors the batch's live state — queue depth,
	// in-flight count, per-worker utilization labelled by each hello's
	// provenance — for a -debug-addr surface. Updates happen at cell
	// boundaries only.
	Obs *obs.Progress
}

// sched is the shared scheduling state: a queue of ready cell indices,
// per-cell attempt counts, and the index-ordered results.Reorder that
// emits completed outcomes (shared with the in-process backend, so the
// duplicate-drop and prefix-flush rules cannot drift between paths).
type sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    []engine.Job
	queue   []int
	attempt []int
	done    int
	ord     *results.Reorder
	workers int           // live workers
	obs     *obs.Progress // nil when no debug surface is attached
}

// syncObs mirrors the queue/in-flight gauges. Callers hold s.mu.
func (s *sched) syncObs() {
	s.obs.SetQueued(len(s.queue))
	s.obs.SetInFlight(len(s.jobs) - s.done - len(s.queue))
}

// tryNext pops a ready cell without blocking.
func (s *sched) tryNext() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return 0, false
	}
	i := s.queue[0]
	s.queue = s.queue[1:]
	s.syncObs()
	return i, true
}

// waitNext blocks until a cell is ready (a dead worker's cells can
// requeue at any time) or every cell has completed.
func (s *sched) waitNext() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && s.done < len(s.jobs) {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return 0, false
	}
	i := s.queue[0]
	s.queue = s.queue[1:]
	s.syncObs()
	return i, true
}

// complete records cell i's outcome and wakes idle workers when the
// matrix finishes (so they stop waiting for work that will never come).
func (s *sched) complete(i int, o results.Outcome) {
	s.ord.Add(i, o)
	s.obs.AddComputed(1)
	s.mu.Lock()
	s.done++
	s.syncObs()
	fin := s.done == len(s.jobs)
	s.mu.Unlock()
	if fin {
		s.cond.Broadcast()
	}
}

// requeue returns a dead worker's in-flight cells to the queue, or —
// past the attempt cap — fills their slots with an error outcome so the
// matrix still completes deterministically. cause is the transport
// error being charged to the cells.
func (s *sched) requeue(cells []int, cause error) {
	if len(cells) == 0 {
		return
	}
	var exhausted []int
	s.mu.Lock()
	for _, i := range cells {
		s.attempt[i]++
		if s.attempt[i] >= maxAttempts {
			exhausted = append(exhausted, i)
		} else {
			s.queue = append(s.queue, i)
		}
	}
	s.syncObs()
	s.mu.Unlock()
	s.cond.Broadcast()
	for _, i := range exhausted {
		s.complete(i, results.Outcome{
			Job: s.jobs[i],
			Err: fmt.Sprintf("dist: cell failed on %d workers: last transport error: %v", maxAttempts, cause),
		})
	}
}

// Run implements results.Backend.
func (c *Coordinator) Run(jobs []engine.Job, emit func(i int, o results.Outcome)) error {
	procs := c.Procs
	if procs < 1 {
		procs = 1
	}
	s := &sched{
		jobs:    jobs,
		attempt: make([]int, len(jobs)),
		ord:     results.NewReorder(len(jobs), emit),
		workers: procs,
		obs:     c.Obs,
	}
	s.cond = sync.NewCond(&s.mu)
	s.queue = make([]int, len(jobs))
	for i := range jobs {
		s.queue[i] = i
	}
	c.Obs.EnsureWorkers(procs)
	s.mu.Lock()
	s.syncObs()
	s.mu.Unlock()

	errs := make([]error, procs)
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				s.mu.Lock()
				s.workers--
				last := s.workers == 0
				s.mu.Unlock()
				if last {
					// No one is left to serve requeued cells; unblock any
					// sibling still parked in waitNext.
					s.cond.Broadcast()
				}
			}()
			errs[w] = c.runWorker(s, w)
		}(w)
	}
	wg.Wait()

	emitted := s.ord.Emitted()
	if emitted == len(jobs) {
		// Every cell completed (possibly as a capped-retry error
		// outcome); individual worker transports may still have failed,
		// but the batch is whole.
		return nil
	}
	err := fmt.Errorf("dist: %d of %d cells never completed", len(jobs)-emitted, len(jobs))
	for w, werr := range errs {
		if werr != nil {
			err = fmt.Errorf("%w; worker %d: %v", err, w, werr)
		}
	}
	return err
}

// runWorker owns one worker connection for the whole batch: it keeps up
// to the worker's advertised capacity in flight, reads results, and on
// any transport failure requeues its in-flight cells and returns.
func (c *Coordinator) runWorker(s *sched, id int) (err error) {
	conn, err := c.Spawn(id)
	if err != nil {
		// A worker that never started holds no cells; siblings cover the
		// queue. If *every* spawn fails, Run reports the shortfall.
		return fmt.Errorf("dist: spawn worker %d: %w", id, err)
	}
	inflight := make(map[int]bool)
	defer func() {
		conn.W.Close()
		if conn.Close != nil {
			if cerr := conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		s.requeue(keys(inflight), err)
	}()

	bw := bufio.NewWriter(conn.W)
	enc := json.NewEncoder(bw)
	dec := json.NewDecoder(bufio.NewReader(conn.R))

	var hello response
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("dist: worker %d hello: %w", id, err)
	}
	if hello.Type != "hello" || hello.Proto != protoVersion {
		return fmt.Errorf("dist: worker %d spoke %q proto %d, want hello proto %d",
			id, hello.Type, hello.Proto, protoVersion)
	}
	capacity := hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	if p := hello.Prov; p != nil {
		s.obs.SetWorkerLabel(id, fmt.Sprintf("%s/%d", p.Host, p.PID))
	}

	// send charges i to this worker *before* writing, so any failure
	// path — here or a later read error — funnels through the one
	// deferred requeue.
	send := func(i int) error {
		inflight[i] = true
		s.obs.SetWorkerBusy(id, len(inflight))
		if err := enc.Encode(request{Type: "job", ID: i, Job: s.jobs[i]}); err != nil {
			return err
		}
		return bw.Flush()
	}

	for {
		// Fill the window without blocking; the queue may be drained by
		// siblings while cells are still in flight elsewhere.
		for len(inflight) < capacity {
			i, ok := s.tryNext()
			if !ok {
				break
			}
			if err := send(i); err != nil {
				return fmt.Errorf("dist: worker %d send: %w", id, err)
			}
		}
		if len(inflight) == 0 {
			// Nothing in flight here: block for requeued work or batch end.
			i, ok := s.waitNext()
			if !ok {
				return nil
			}
			if err := send(i); err != nil {
				return fmt.Errorf("dist: worker %d send: %w", id, err)
			}
			continue
		}
		var resp response
		if err := dec.Decode(&resp); err != nil {
			return fmt.Errorf("dist: worker %d read: %w", id, err)
		}
		if resp.Type != "result" || resp.Outcome == nil || !inflight[resp.ID] {
			return fmt.Errorf("dist: worker %d sent unexpected %q for cell %d", id, resp.Type, resp.ID)
		}
		delete(inflight, resp.ID)
		s.obs.SetWorkerBusy(id, len(inflight))
		s.obs.AddWorkerDone(id)
		s.complete(resp.ID, *resp.Outcome)
	}
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
