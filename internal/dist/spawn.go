package dist

import (
	"fmt"
	"io"
	"os/exec"

	"repro/internal/engine"
)

// Command returns a Spawner that launches argv as a child process per
// worker, wired to the protocol over its stdin/stdout. The child's
// stderr passes through to stderr so worker diagnostics stay visible.
// This is cgsweep's production spawner; anything that presents the
// two-pipe shape (ssh, a container runtime) slots in the same way.
func Command(argv []string, stderr io.Writer) Spawner {
	return func(id int) (*Conn, error) {
		if len(argv) == 0 {
			return nil, fmt.Errorf("dist: empty worker command")
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stderr = stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("dist: start worker %d (%s): %w", id, argv[0], err)
		}
		return &Conn{
			W: stdin,
			R: stdout,
			Close: func() error {
				// The coordinator is done with this worker — batch finished
				// or its transport failed — and has stopped reading its
				// stdout, so waiting politely risks deadlock: a dying
				// worker draining long in-flight cells could fill the pipe
				// and block forever. Kill, then reap. The exit status
				// carries no extra signal (transport failures were already
				// charged to the cells by the read path).
				cmd.Process.Kill()
				cmd.Wait()
				return nil
			},
		}, nil
	}
}

// InProcess returns a Spawner that serves the protocol from a goroutine
// over in-memory pipes, each worker on its own engine pool of the given
// size. It exercises every byte of the real protocol — encode, decode,
// flow control — without fork/exec, which makes it the test double and
// a zero-dependency fallback where spawning processes is impossible.
func InProcess(workers int) Spawner {
	return func(id int) (*Conn, error) {
		jobR, jobW := io.Pipe()
		resR, resW := io.Pipe()
		go func() {
			err := Serve(jobR, resW, engine.New(workers), nil)
			// Serve returned: no more results will ever flow. Propagate
			// the state through the pipe so the coordinator's reads end
			// instead of blocking forever.
			if err != nil {
				resW.CloseWithError(err)
			} else {
				resW.Close()
			}
		}()
		return &Conn{W: jobW, R: resR}, nil
	}
}
