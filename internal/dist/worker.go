package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

// Serve runs the worker side of the protocol until r reaches EOF (the
// coordinator closing our stdin is the shutdown signal), then drains
// in-flight jobs and returns. Jobs execute on eng's pool via its
// admission-controlled Exec, so a worker honours -max-heap-bytes even
// though its jobs arrive one at a time; outcomes are extracted on the
// worker goroutine so a finished shard is dropped before the next job
// starts. Serve is what cmd/cgworker wraps; tests drive it directly
// over in-memory pipes.
//
// prog, when non-nil, mirrors the worker's live state (per-lane
// utilization, queue depth, cells computed) for a -debug-addr surface;
// updates happen only at job boundaries.
func Serve(r io.Reader, w io.Writer, eng *engine.Engine, prog *obs.Progress) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var wmu sync.Mutex
	send := func(resp response) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(resp); err != nil {
			return err
		}
		return bw.Flush()
	}
	capacity := eng.Workers()
	prov := obs.Capture(obs.Nanotime())
	if err := send(response{Type: "hello", Proto: protoVersion, Capacity: capacity, Prov: &prov}); err != nil {
		return fmt.Errorf("dist: worker hello: %w", err)
	}

	// The window guarantees at most `capacity` unanswered jobs, so a
	// buffered channel of that depth means the decode loop never blocks
	// handing work to the pool.
	jobs := make(chan request, capacity)
	prog.EnsureWorkers(capacity)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var sendErr error
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for req := range jobs {
				prog.SetQueued(len(jobs))
				prog.SetWorkerBusy(lane, 1)
				// ExecRelease recycles the shard as soon as the outcome
				// is extracted, so back-to-back cells of one sweep reuse
				// one runtime instead of rebuilding 512 MiB arenas.
				var o results.Outcome
				eng.ExecRelease(req.Job, func(r engine.Result) { o = results.Extract(r) })
				prog.SetWorkerBusy(lane, 0)
				prog.AddWorkerDone(lane)
				prog.AddComputed(1)
				if err := send(response{Type: "result", ID: req.ID, Outcome: &o}); err != nil {
					errOnce.Do(func() { sendErr = err })
				}
			}
		}(i)
	}

	dec := json.NewDecoder(bufio.NewReader(r))
	var readErr error
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				readErr = fmt.Errorf("dist: worker decode: %w", err)
			}
			break
		}
		if req.Type != "job" {
			readErr = fmt.Errorf("dist: worker got unknown request %q", req.Type)
			break
		}
		jobs <- req
	}
	close(jobs)
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	if sendErr != nil {
		return fmt.Errorf("dist: worker send: %w", sendErr)
	}
	return nil
}
