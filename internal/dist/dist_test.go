package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestMain doubles as the worker executable for the multi-process
// tests: re-exec'd with DIST_WORKER_TEST=1, the test binary serves the
// protocol on its real stdin/stdout exactly like cmd/cgworker.
func TestMain(m *testing.M) {
	if os.Getenv("DIST_WORKER_TEST") == "1" {
		if err := Serve(os.Stdin, os.Stdout, engine.New(2), nil); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const panicWorkload = "panicky-dist"

func init() {
	workload.Register(workload.Spec{
		Name:      panicWorkload,
		Desc:      "panics mid-stream (test fixture)",
		Threads:   func(int) int { return 1 },
		HeapBytes: func(int) int { return 1 << 20 },
		Run: func(rt *vm.Runtime, size int) {
			cls := rt.Heap.DefineClass(heap.Class{Name: "panicky.Obj", Data: 8})
			rt.NewThread(1).CallVoid(1, func(f *vm.Frame) {
				f.MustNew(cls)
				panic("synthetic mid-stream failure")
			})
		},
	})
}

func smallJobs() []engine.Job {
	return []engine.Job{
		{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
		{Workload: "db", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
		{Workload: "jess", Size: 1, Collector: "msa", HeapBytes: engine.TightHeap},
		{Workload: "compress", Size: 1, Collector: "cg+noopt", HeapBytes: engine.TightHeap},
		{Workload: "raytrace", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
		{Workload: "jack", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
	}
}

// collect runs a backend and asserts the emission contract (each index
// once, strictly increasing).
func collect(t *testing.T, b results.Backend, jobs []engine.Job) []results.Outcome {
	t.Helper()
	var got []results.Outcome
	err := b.Run(jobs, func(i int, o results.Outcome) {
		if i != len(got) {
			t.Fatalf("emit index %d out of order (have %d)", i, len(got))
		}
		got = append(got, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("emitted %d of %d outcomes", len(got), len(jobs))
	}
	return got
}

// stripElapsed zeroes the wall-clock and provenance fields — the only
// nondeterminism an Outcome carries. The cycle extract's object counts
// (Cycles/Marked/Freed) are deterministic and stay in the comparison;
// its nanosecond fields, pause histogram and trace fan-out are
// measurements and do not.
func stripElapsed(outs []results.Outcome) []results.Outcome {
	out := append([]results.Outcome(nil), outs...)
	for i := range out {
		out[i].Elapsed = 0
		out[i].Prov = nil
		if o := out[i].Obs; o != nil {
			s := *o
			s.PauseNS, s.MarkNS, s.SweepNS, s.MaxPauseNS = 0, 0, 0, 0
			s.MaxWorkers = 0
			s.Pause = obs.Histogram{}
			out[i].Obs = &s
		}
	}
	return out
}

// TestCoordinatorMatchesLocal is the determinism core: a 3-worker
// multi-connection coordinator run produces the same outcomes, in the
// same order, as the in-process backend.
func TestCoordinatorMatchesLocal(t *testing.T) {
	jobs := smallJobs()
	local := collect(t, results.Local{Eng: engine.New(1)}, jobs)
	coord := collect(t, &Coordinator{Spawn: InProcess(2), Procs: 3}, jobs)
	if !reflect.DeepEqual(stripElapsed(local), stripElapsed(coord)) {
		t.Fatal("coordinator outcomes diverged from the in-process backend")
	}
}

// TestCoordinatorSurvivesPanickingWorkload is the dist half of the
// failure contract: a cell whose workload panics on a worker process
// yields its slot as an error result — not a retry, not a wedge.
func TestCoordinatorSurvivesPanickingWorkload(t *testing.T) {
	jobs := []engine.Job{
		{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
		{Workload: panicWorkload, Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
	}
	done := make(chan []results.Outcome, 1)
	go func() {
		var got []results.Outcome
		c := &Coordinator{Spawn: InProcess(2), Procs: 2}
		if err := c.Run(jobs, func(i int, o results.Outcome) { got = append(got, o) }); err != nil {
			t.Error(err)
		}
		done <- got
	}()
	var got []results.Outcome
	select {
	case got = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator wedged on a panicking workload")
	}
	if len(got) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(got), len(jobs))
	}
	if got[1].Err == "" || !strings.Contains(got[1].Err, "panicked") {
		t.Fatalf("panicking cell yielded %q, want a panic error", got[1].Err)
	}
	if got[0].Err != "" || got[2].Err != "" {
		t.Fatalf("healthy cells errored: %q / %q", got[0].Err, got[2].Err)
	}
}

// flakySpawner wraps InProcess but the first worker's connection dies
// after its first result: the coordinator must requeue that worker's
// in-flight cells onto the survivors.
func flakySpawner(t *testing.T) Spawner {
	inner := InProcess(1)
	var spawned atomic.Int32
	return func(id int) (*Conn, error) {
		conn, err := inner(id)
		if err != nil {
			return nil, err
		}
		if spawned.Add(1) > 1 {
			return conn, nil
		}
		// First worker: relay exactly one result line, then snap both pipes.
		relayR, relayW := io.Pipe()
		go func() {
			br := bufio.NewReader(conn.R)
			for lines := 0; lines < 2; lines++ { // hello + first result
				line, err := br.ReadString('\n')
				if err != nil {
					break
				}
				if _, err := relayW.Write([]byte(line)); err != nil {
					break
				}
			}
			relayW.CloseWithError(fmt.Errorf("synthetic worker death"))
			conn.W.Close()
		}()
		return &Conn{W: conn.W, R: relayR}, nil
	}
}

func TestCoordinatorRetriesCellsOfDeadWorker(t *testing.T) {
	jobs := smallJobs()
	got := collect(t, &Coordinator{Spawn: flakySpawner(t), Procs: 3}, jobs)
	want := collect(t, results.Local{Eng: engine.New(1)}, jobs)
	if !reflect.DeepEqual(stripElapsed(want), stripElapsed(got)) {
		t.Fatal("retried run diverged from the in-process backend")
	}
}

// poisonSpawner's workers speak the protocol correctly but drop dead
// the moment they are handed cell `poison` — on every worker, so the
// cell exhausts its attempts.
func poisonSpawner(poison int) Spawner {
	return func(id int) (*Conn, error) {
		jobR, jobW := io.Pipe()
		resR, resW := io.Pipe()
		go func() {
			enc := json.NewEncoder(resW)
			enc.Encode(response{Type: "hello", Proto: protoVersion, Capacity: 1})
			dec := json.NewDecoder(jobR)
			for {
				var req request
				if err := dec.Decode(&req); err != nil {
					resW.Close()
					return
				}
				if req.ID == poison {
					resW.CloseWithError(fmt.Errorf("synthetic poison death"))
					jobR.Close()
					return
				}
				o := results.Extract(engine.Exec(req.Job))
				enc.Encode(response{Type: "result", ID: req.ID, Outcome: &o})
			}
		}()
		return &Conn{W: jobW, R: resR}, nil
	}
}

func TestCoordinatorCapsRetriesWithErrorOutcome(t *testing.T) {
	jobs := smallJobs()
	const poison = 2
	var got []results.Outcome
	c := &Coordinator{Spawn: poisonSpawner(poison), Procs: 4}
	err := c.Run(jobs, func(i int, o results.Outcome) { got = append(got, o) })
	if err != nil {
		t.Fatalf("run must complete with an error outcome, got: %v", err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(got), len(jobs))
	}
	if got[poison].Err == "" || !strings.Contains(got[poison].Err, "transport") {
		t.Fatalf("poisoned cell yielded %q, want a capped-retry transport error", got[poison].Err)
	}
	for i, o := range got {
		if i != poison && o.Err != "" {
			t.Fatalf("healthy cell %d errored: %q", i, o.Err)
		}
	}
}

// deadSpawner never produces a working worker.
func deadSpawner(id int) (*Conn, error) {
	return nil, fmt.Errorf("synthetic spawn failure")
}

func TestCoordinatorReportsTotalWorkerLoss(t *testing.T) {
	jobs := smallJobs()[:2]
	c := &Coordinator{Spawn: deadSpawner, Procs: 2}
	err := c.Run(jobs, func(int, results.Outcome) {})
	if err == nil || !strings.Contains(err.Error(), "never completed") {
		t.Fatalf("total worker loss must fail the batch, got: %v", err)
	}
}

// TestRealWorkerProcesses exercises the actual fork/exec path: the test
// binary re-execs itself as two protocol-serving worker processes (see
// TestMain) and the coordinator merges their results.
func TestRealWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("fork/exec in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := func(id int) (*Conn, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "DIST_WORKER_TEST=1")
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		return &Conn{W: stdin, R: stdout, Close: cmd.Wait}, nil
	}
	jobs := smallJobs()
	got := collect(t, &Coordinator{Spawn: spawn, Procs: 2}, jobs)
	want := collect(t, results.Local{Eng: engine.New(1)}, jobs)
	if !reflect.DeepEqual(stripElapsed(want), stripElapsed(got)) {
		t.Fatal("multi-process outcomes diverged from the in-process backend")
	}
}
