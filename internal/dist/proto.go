// Package dist distributes the experiment matrix across worker
// processes. The transport is deliberately boring: newline-delimited
// JSON over a worker's stdin/stdout, so a worker is anything that can
// be spawned with two pipes — a local cgworker child today, an
// ssh-wrapped one on another machine tomorrow.
//
// Protocol (one JSON object per line):
//
//	worker -> coordinator   {"type":"hello","proto":2,"capacity":K,"prov":{...}}
//	coordinator -> worker   {"type":"job","id":I,"job":{...}}        (at most K unanswered)
//	worker -> coordinator   {"type":"result","id":I,"outcome":{...}}
//	coordinator closes the worker's stdin; worker drains and exits 0.
//
// The hello carries the worker process's provenance (host, CPU, load),
// so the coordinator can label workers in its debug surface; each
// result's outcome additionally carries the provenance captured when
// that cell was extracted.
//
// The coordinator keeps at most `capacity` jobs in flight per worker (a
// sliding window), which doubles as flow control: a worker always has
// pool capacity for what it has been sent, so neither side can wedge on
// a full pipe. Determinism does not depend on scheduling: results carry
// their cell index and the coordinator merges them through the same
// index-ordered reorder as the in-process path, so a -procs 4 sweep
// renders byte-identical tables to a -workers 1 run.
package dist

import (
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/results"
)

// protoVersion guards against coordinator/worker skew: a hello with a
// different version aborts the worker connection before any job is
// lost to a silent schema mismatch.
// v2: hello grew the worker's provenance; outcomes grew obs/prov.
const protoVersion = 2

// request is a coordinator→worker message.
type request struct {
	Type string     `json:"type"` // "job"
	ID   int        `json:"id"`
	Job  engine.Job `json:"job"`
}

// response is a worker→coordinator message.
type response struct {
	Type     string           `json:"type"`            // "hello" | "result"
	Proto    int              `json:"proto,omitempty"` // hello
	Capacity int              `json:"capacity,omitempty"`
	Prov     *obs.Provenance  `json:"prov,omitempty"` // hello: the worker process
	ID       int              `json:"id"`             // result
	Outcome  *results.Outcome `json:"outcome,omitempty"`
}
