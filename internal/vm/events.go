package vm

import "repro/internal/heap"

// Events is the event-table collector ABI: a descriptor of direct
// function-valued slots — one per runtime event — plus capability
// fields, handed to Runtime.Attach (usually via New or Reset). The
// runtime binds each non-nil slot straight into its hot path, so an
// event nobody subscribed to costs a single nil check and a collector
// pays an indirect call only for the events it declared. The old
// five-method Collector interface made every collector pay interface
// dispatch on every event and bolted elision opt-outs
// (ForceAccessEvents/ForceFramePopEvents), the AllocFallback probe and
// SetGCEvery wiring on the side; all of those are declarative fields
// here.
//
// The zero value subscribes to nothing: it is the "none" collector
// (plenty-of-storage configuration of §4.5).
type Events struct {
	// Name identifies the collector in experiment output.
	Name string

	// Attach, if non-nil, is called once when the descriptor is bound
	// to a runtime, before any event can fire. Collectors use it to
	// capture the runtime and (re)initialise their state; a descriptor
	// must not be attached to two runtimes at once.
	Attach func(rt *Runtime)

	// Detach, if non-nil, is called when another event table replaces
	// this one on the runtime (Reset between pooled-shard cells, or a
	// mid-run Attach). The collector must consider itself unbound and
	// must not be queried afterwards; pooled implementations reclaim
	// their side tables here so a sweep of cells stops paying per-cell
	// table construction. A runtime that is simply dropped never calls
	// Detach.
	Detach func()

	// Alloc observes a fresh object allocated while f was the active
	// frame ("when an object is created, it is associated with the
	// frame of the currently active method").
	Alloc func(id heap.HandleID, f *Frame)
	// Ref observes src acquiring a reference to dst (putfield or
	// aastore with a non-nil dst).
	Ref func(src, dst heap.HandleID)
	// StaticRef observes a static variable (or an interpreter-internal
	// static structure such as the intern table, §3.2) acquiring a
	// reference to dst.
	StaticRef func(dst heap.HandleID)
	// Return observes a method returning val to caller (areturn).
	Return func(val heap.HandleID, caller *Frame)
	// FramePop observes frame f popping; an incremental collector may
	// reclaim storage here and reports how many objects it freed. The
	// runtime elides the dispatch for frames whose GCHead is Nil — no
	// collector-owned state depends on them — unless AllPops is set.
	FramePop func(f *Frame) int
	// Access observes thread t touching object id (thread-share
	// detection, §3.3). The runtime elides the dispatch entirely while
	// it can prove every call would be a no-op — a single thread owns
	// every object it could touch (see Runtime.accessOn) — unless
	// AllAccess is set.
	Access func(id heap.HandleID, t *Thread)

	// AllocFallback, if non-nil, declares the recycling capability: it
	// may satisfy an allocation from recycled storage after the arena
	// is exhausted (§3.7), before the runtime falls back to a full
	// collection. ok reports whether id is a valid recycled object.
	AllocFallback func(c heap.ClassID, extra int) (id heap.HandleID, ok bool)
	// Collect, if non-nil, runs a full traditional collection and
	// reports how many objects were freed. Without it ForceCollect and
	// the exhaustion cascade collect nothing.
	Collect func() int
	// Overlap, if non-nil, declares the overlapped-collection
	// capability: at a countdown-driven collection point the runtime
	// offers the collector the chance to open a snapshot-at-the-
	// beginning epoch and trace concurrently while the mutator keeps
	// stepping. ok=false declines (admission: cycle too small, hooks
	// subscribed, overlap disabled) and the runtime falls back to the
	// synchronous Collect. ok=true means tracing has started; the
	// runtime arms its SATB write barrier and calls close — with the
	// world stopped — when the epoch must end (next allocation, next
	// collection point, Reset/Attach, or Quiesce). close completes the
	// cycle (drain, merge, sweep) and reports objects freed. Exhaustion-
	// cascade collections and explicit ForceCollect never overlap: they
	// must free storage before returning. Only hook-free collectors may
	// declare this — edge replay (§3.4) is order-sensitive.
	Overlap func() (close func() int, ok bool)

	// AllAccess subscribes Access to every object touch, defeating the
	// single-thread elision. Collectors whose Access slot has effects
	// beyond thread-share detection (cg+checked's taint assurance)
	// declare it; it replaces Runtime.ForceAccessEvents.
	AllAccess bool
	// AllPops subscribes FramePop to every pop, including frames whose
	// GCHead is Nil. Collectors that track pops without arming the
	// frame's GCHead word (instrumentation, tests) declare it; it
	// replaces Runtime.ForceFramePopEvents.
	AllPops bool

	// GCEvery, when non-zero, arms a full collection every GCEvery
	// runtime operations at attach (the §4.7 resetting
	// instrumentation). It replaces the engine's post-construction
	// SetGCEvery call; SetGCEvery remains for mid-run changes.
	GCEvery uint64

	// Collector is the concrete collector behind the table (e.g. a
	// *core.CG), carried for statistics extraction; nil for the empty
	// table. The runtime never touches it.
	Collector any
}

// Events implements Collector, so a descriptor can be passed anywhere a
// collector is expected.
func (ev Events) Events() Events { return ev }

// Collector is anything that can describe its event subscriptions as an
// Events table: every collector implementation, and Events itself. It
// replaces the old five-method event interface — the single method runs
// once at attach, never per event.
type Collector interface {
	Events() Events
}

// None is the empty event table: no collection, every event slot
// unsubscribed (the "plenty of storage, asynchronous GC disabled"
// configuration of §4.5).
func None() Events { return Events{Name: "none"} }
