// Package vm implements the managed-runtime substrate of the
// reproduction: stack frames, (green) threads, locals, statics, string
// interning and a native-code boundary, emitting exactly the event
// vocabulary the contaminated collector instruments in Sun's JDK 1.1.8
// interpreter (thesis §3.1.3):
//
//	object creation            -> Events.Alloc
//	putfield / aastore         -> Events.Ref
//	putstatic / intern / JNI   -> Events.StaticRef
//	areturn                    -> Events.Return
//	method return (frame pop)  -> Events.FramePop
//	any object touch           -> Events.Access (thread-share detection)
//
// The runtime is collector-agnostic: a collector declares the events it
// wants as an Events descriptor (events.go) and owns all liveness
// policy; unsubscribed events cost nothing. Allocation failure
// triggers, in order, the collector's declared recycling fallback
// (§3.7), a full traditional collection, and only then an
// out-of-memory error — the same cascade the JDK allocator performs.
package vm

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/obs"
)

// Frame is one method activation. Locals hold reference values only (the
// runtime does not model primitive locals; they are irrelevant to GC).
type Frame struct {
	// ID is a runtime-unique, monotonically increasing frame number.
	// Within one thread's live stack, a smaller ID is an older frame —
	// the ordering contamination compares. ID 0 is reserved for the
	// static pseudo-frame ("we view static references as stemming from a
	// program's initial stack frame").
	ID uint64
	// Depth is the frame's position on its thread's stack (root = 1).
	// The static pseudo-frame has depth 0.
	Depth int
	// Thread owns this frame; nil for the static pseudo-frame.
	Thread *Thread
	// GCHead is a collector-owned word: CG stores the head of the
	// frame's dependent equilive-set list here ("each frame is equipped
	// with a reference to a list of its dependent equilive blocks",
	// §3.1.2). The runtime only resets it when the frame is created.
	GCHead heap.HandleID

	locals []heap.HandleID
	// operands are JNI-style local references: every handle the runtime
	// hands to driver (Go) code — allocation results, field/static
	// reads, call returns — is rooted here until the frame pops, because
	// the driver may hold it in a Go variable the collectors cannot see.
	// This mirrors how Sun's JVM pins local references handed across the
	// native boundary (§3.3). Forget is the DeleteLocalRef analog.
	// Entries may be Nil (forgotten in place); root consumers skip Nil.
	operands []heap.HandleID
	// opRing holds the most recently rooted handles: addOperand skips a
	// handle already in the ring, so a raytrace-style loop re-reading
	// the same field thousands of times roots it once instead of
	// growing operands without bound. Nil slots match nothing.
	opRing [opRingSize]heap.HandleID
	opPos  uint32 // next ring slot (mod opRingSize)
	opNils int32  // forgotten-in-place entries awaiting compaction
	rt     *Runtime
}

// opRingSize is the operand dedup window. A power of two keeps the ring
// update branch-free; 4 covers the hot re-root patterns (obj, a couple
// of fields, the loop temp) the workload analogs exhibit.
const opRingSize = 4

// Runtime glues heap, threads, statics and the collector together.
type Runtime struct {
	Heap *heap.Heap

	// The bound event table, one field per slot: Attach copies the
	// descriptor's non-nil slots here so each dispatch site is a load,
	// a nil check and (when subscribed) a direct indirect call —
	// no interface itab lookup on the per-event path.
	onAlloc       func(id heap.HandleID, f *Frame)
	onRef         func(src, dst heap.HandleID)
	onStaticRef   func(dst heap.HandleID)
	onReturn      func(val heap.HandleID, caller *Frame)
	onFramePop    func(f *Frame) int
	onAccess      func(id heap.HandleID, t *Thread)
	allocFallback func(c heap.ClassID, extra int) (heap.HandleID, bool)
	collect       func() int
	overlapStart  func() (func() int, bool)
	detach        func()
	name          string
	source        any

	threads     []*Thread
	statics     []heap.HandleID
	staticNames map[string]int
	interned    map[string]heap.HandleID
	// internedRoots mirrors the intern table for root enumeration: the
	// table is interpreter-internal state invisible to the collectors
	// otherwise — exactly the §3.2 problem ("the references from the
	// hash table are essentially static").
	internedRoots []heap.HandleID
	staticFrame   *Frame
	frameSeq      uint64
	instr         uint64
	gcCycles      int

	// timeline records each collection cycle's phase breakdown (pause /
	// mark / sweep nanoseconds, worker count, object counts). Embedded —
	// not pointered — so the zero Runtime records without allocating;
	// collectors refine the mark boundary via Timeline().CycleMarkDone.
	timeline obs.Timeline

	// rec, when non-nil, receives the driver-facing operation stream
	// (tape recording; see record.go). Every dispatch site is one
	// predictable never-taken branch while detached.
	rec OpRecorder

	// gcEvery/countdown implement SetGCEvery as a decrement instead of
	// a modulo on every step: countdown is 0 when the forced-collection
	// instrumentation is off, so the steady-state step cost is one load
	// and one never-taken branch.
	gcEvery   uint64
	countdown uint64

	// popAlways, when set, dispatches FramePop even for frames whose
	// GCHead is Nil (the descriptor's AllPops capability; true only
	// when a FramePop slot is bound).
	popAlways bool

	// accessOn gates Access dispatch. While false the runtime has
	// proved every Access call would be a no-op: a single thread
	// exists and every object was allocated by it, so thread-share
	// detection (§3.3) can observe nothing. It flips — once, and
	// permanently — on the second NewThread or on an allocation owned
	// by the static pseudo-frame (whose owner differs from any thread);
	// events before the flip are exactly the ones that were provably
	// no-ops, so eliding them is semantics-preserving (DESIGN.md §5).
	// It can only ever flip to accessArmed: with no Access slot bound
	// the dispatch stays elided for the life of the run.
	accessOn bool
	// accessArmed records whether the descriptor bound an Access slot.
	accessArmed bool
	// accessBroken records that the single-thread proof failed (second
	// thread, or static-frame allocation). It is sticky for the life
	// of the run — Reset clears it, Attach does not — so attaching a
	// descriptor mid-run re-derives accessOn without forgetting that
	// the elision proof is already gone.
	accessBroken bool

	// Snapshot-epoch state (overlapped collection, DESIGN.md §10).
	// epochActive is the one branch the ref hot path pays: true only
	// while a collector's overlapped cycle is tracing concurrently, in
	// which case ref stores go through the SATB barrier. epochClose is
	// the collector's close function for the open epoch. The epoch
	// closes — before any of the mutator's allocator interactions
	// become visible — at the next allocation, the next collection
	// point, Reset/Attach, ForceCollect and Quiesce, which is what
	// keeps every heap observable byte-identical to the stop-the-world
	// run (the freed set at the close point equals the set a
	// synchronous cycle at the open point would have freed, and no
	// allocation ever sees a heap mid-epoch).
	epochActive bool
	epochClose  func() int
	// satb is the snapshot-at-the-beginning buffer: the overwritten
	// (old) values of every ref store during the epoch, drained by the
	// collector's close. Capacity is retained across cycles, so a
	// steady-state epoch appends without allocating.
	satb []heap.HandleID
	// satbNilDelta tracks the net Nil -> non-Nil slot transitions the
	// epoch's stores performed on the (always snapshot-reachable)
	// objects they hit, letting the close recompute the open-time
	// out-degree of the marked set exactly (msa overlap driver).
	satbNilDelta int64
}

// Thread is a green thread: a stack of frames driven directly by Go code
// (workloads interleave threads explicitly; preemption is irrelevant to
// the collector, only *which* thread touches an object matters).
type Thread struct {
	ID    int
	rt    *Runtime
	stack []*Frame
	// pool recycles popped frames: method-call rates are high enough
	// (the ray tracer pushes ~30 frames per pixel) that per-call frame
	// allocation would dominate the timing experiments.
	pool []*Frame
}

// New creates a runtime over h governed by c's event table. The static
// pseudo-frame (frame 0) is created immediately and never pops.
func New(h *heap.Heap, c Collector) *Runtime {
	rt := &Runtime{
		Heap:        h,
		staticNames: make(map[string]int),
		interned:    make(map[string]heap.HandleID),
	}
	rt.staticFrame = &Frame{ID: 0, Depth: 0, rt: rt}
	rt.Attach(c.Events())
	return rt
}

// Attach binds an event table into the runtime's dispatch sites: each
// non-nil slot is copied into its hot-path field, the capability fields
// re-derive the elision machinery (AllAccess, AllPops) and the forced-
// collection countdown (GCEvery) from the descriptor, and the
// descriptor's Attach hook runs last so the collector sees a fully
// wired runtime. New and Reset call it; attaching mid-run (only
// meaningful for instrumentation) replaces the collector and its
// declared capabilities but keeps heap, threads, statics and the
// already-broken single-thread proof intact. A mid-run swap requires
// that no live frame carries collector-armed state: a frame whose
// GCHead the outgoing collector armed still points into that
// collector's (now detached) tables, and the incoming collector would
// dereference it against its own empty ones. Swapping between
// stateful collectors mid-run is therefore unsupported — quiesce via
// Reset instead.
func (rt *Runtime) Attach(ev Events) {
	// An open snapshot epoch belongs to the outgoing collector; finish
	// it before rebinding anything.
	rt.Quiesce()
	// The outgoing collector is unbound first, so a pooled
	// implementation can reclaim its side tables before the incoming
	// one (possibly of the same family) asks for a fresh set.
	if rt.detach != nil {
		rt.detach()
	}
	rt.detach = ev.Detach
	rt.name = ev.Name
	rt.source = ev.Collector
	rt.onAlloc = ev.Alloc
	rt.onRef = ev.Ref
	rt.onStaticRef = ev.StaticRef
	rt.onReturn = ev.Return
	rt.onFramePop = ev.FramePop
	rt.onAccess = ev.Access
	rt.allocFallback = ev.AllocFallback
	rt.collect = ev.Collect
	rt.overlapStart = ev.Overlap
	rt.accessArmed = ev.Access != nil
	rt.accessOn = rt.accessArmed && (ev.AllAccess || rt.accessBroken)
	rt.popAlways = ev.AllPops && ev.FramePop != nil
	if ev.Attach != nil {
		ev.Attach(rt)
	}
	rt.SetGCEvery(ev.GCEvery)
}

// CollectorName reports the bound event table's Name.
func (rt *Runtime) CollectorName() string { return rt.name }

// Collector returns the concrete collector behind the bound event
// table (the descriptor's Collector field); nil for the empty table.
func (rt *Runtime) Collector() any { return rt.source }

// Reset returns the runtime — and its heap — to the freshly constructed
// state over the same arena, attaching collector c in place of the old
// one. Tables and slices keep their capacity: a pooled execution shard
// resets between matrix cells instead of paying construction per cell.
// A reset runtime is observably identical to vm.New(heap, c) over a
// fresh heap of the same arena size (see TestEnginePooledDeterminism).
func (rt *Runtime) Reset(c Collector) {
	rt.Quiesce()
	rt.Heap.Reset()
	rt.threads = rt.threads[:0]
	rt.statics = rt.statics[:0]
	clear(rt.staticNames)
	clear(rt.interned)
	rt.internedRoots = rt.internedRoots[:0]
	*rt.staticFrame = Frame{ID: 0, Depth: 0, rt: rt}
	rt.frameSeq = 0
	rt.instr = 0
	rt.gcCycles = 0
	rt.gcEvery, rt.countdown = 0, 0
	rt.accessBroken = false
	rt.satb = rt.satb[:0]
	rt.satbNilDelta = 0
	rt.rec = nil
	rt.timeline.Reset()
	rt.Attach(c.Events())
}

// StaticFrame returns the immortal pseudo-frame 0.
func (rt *Runtime) StaticFrame() *Frame { return rt.staticFrame }

// Instr reports the number of runtime operations executed so far.
func (rt *Runtime) Instr() uint64 { return rt.instr }

// GCCycles reports how many full (traditional) collections ran.
func (rt *Runtime) GCCycles() int { return rt.gcCycles }

// Timeline exposes the runtime's cycle recorder: collectors refine the
// mark/sweep boundary through it, and harnesses extract per-cell
// CycleStats after a run.
func (rt *Runtime) Timeline() *obs.Timeline { return &rt.timeline }

// SetGCEvery arranges a full collection every n runtime operations,
// counted from this call — the instrumentation behind the resetting
// experiment ("we instrumented the JVM to run garbage collection after
// a certain number of instructions", §4.7). n = 0 disables it. Call
// before driving work; the period restarts when set.
func (rt *Runtime) SetGCEvery(n uint64) {
	rt.gcEvery = n
	rt.countdown = n
}

// GCEvery reports the forced-collection period (0 = off).
func (rt *Runtime) GCEvery() uint64 { return rt.gcEvery }

// step counts one runtime operation and fires the periodic forced
// collection used by the resetting experiment. The countdown replaces
// the modulo the instrumentation check used to cost on every event.
func (rt *Runtime) step() {
	rt.instr++
	if rt.countdown != 0 {
		rt.countdown--
		if rt.countdown == 0 {
			rt.countdown = rt.gcEvery
			rt.collectDue()
		}
	}
}

// collectDue is the countdown-driven collection entry — the one place
// a cycle may overlap the mutator. If the bound collector declares the
// Overlap capability and admits this cycle, the snapshot epoch opens
// here and the runtime returns to the mutator with the trace still
// running; otherwise the cycle runs synchronously, exactly as
// ForceCollect. Either way a previous epoch still open at this point
// closes first: collection points are epoch boundaries.
func (rt *Runtime) collectDue() {
	if rt.epochActive {
		rt.closeEpoch()
	}
	rt.gcCycles++
	if rt.collect == nil {
		return
	}
	rt.timeline.CycleStart()
	if rt.overlapStart != nil {
		if closer, ok := rt.overlapStart(); ok {
			rt.epochClose = closer
			rt.epochActive = true
			rt.timeline.CycleDetach()
			return
		}
	}
	freed := rt.collect()
	rt.timeline.CycleEnd(uint64(freed))
}

// closeEpoch stops the world for the open epoch's close: the
// collector finishes its concurrent trace, drains the SATB buffer and
// sweeps. All heap mutation since the epoch opened was non-allocating
// (stores and reads only), so the freed set — and every byte of heap
// state after the close — is identical to what a synchronous cycle at
// the open point would have left.
func (rt *Runtime) closeEpoch() {
	closer := rt.epochClose
	rt.epochClose = nil
	rt.epochActive = false
	rt.timeline.CycleResume()
	freed := closer()
	rt.satb = rt.satb[:0]
	rt.satbNilDelta = 0
	rt.timeline.CycleEnd(uint64(freed))
}

// Quiesce completes any in-flight overlapped collection, leaving the
// runtime with no concurrent activity. Harnesses call it after driving
// a workload and before reading stats; it is a no-op when no epoch is
// open (every run under a non-overlapping collector).
func (rt *Runtime) Quiesce() {
	if rt.epochActive {
		rt.closeEpoch()
	}
}

// SATBPending returns the open epoch's snapshot-at-the-beginning
// buffer: the overwritten value of every ref store since the epoch
// opened. Valid only inside an Overlap close function (the world is
// stopped); the runtime truncates the buffer after the close returns.
func (rt *Runtime) SATBPending() []heap.HandleID { return rt.satb }

// SATBNilDelta reports the net Nil -> non-Nil ref-slot transitions the
// open epoch's stores performed. Every such store hits a snapshot-
// reachable object, so a close-time out-degree recount of the marked
// set minus this delta reproduces the open-time count exactly.
func (rt *Runtime) SATBNilDelta() int64 { return rt.satbNilDelta }

// ForceCollect runs a full traditional collection immediately; a
// collector with no Collect capability collects nothing. The cycle is
// always synchronous — callers want the storage freed on return — and
// closes any open epoch first. The two clock readings bracketing the
// cycle (plus any mark-boundary reading the collector adds) are the
// only timing the runtime ever takes — never per event — so
// instrumentation stays off the steady-state paths.
func (rt *Runtime) ForceCollect() int {
	if rt.rec != nil {
		// Only direct driver calls are recorded: the allocation
		// cascade's internal collection (forceCollect) replays itself
		// when the failing allocation is re-driven.
		rt.rec.ForceCollect()
	}
	return rt.forceCollect()
}

// forceCollect is ForceCollect minus the tape-recording hook — the
// entry used by runtime-internal collection triggers.
func (rt *Runtime) forceCollect() int {
	if rt.epochActive {
		rt.closeEpoch()
	}
	rt.gcCycles++
	if rt.collect == nil {
		return 0
	}
	rt.timeline.CycleStart()
	freed := rt.collect()
	rt.timeline.CycleEnd(uint64(freed))
	return freed
}

// NewThread creates a thread with a root frame holding nlocals locals.
// The second thread flips the runtime to multithreaded dispatch: from
// here on every object touch fires Access (thread-share detection can
// now observe something) — provided the collector subscribed an Access
// slot at all. The flip is deferred semantics firing exactly once —
// every elided event before it was a provable no-op, because the sole
// thread owned every object it could have touched.
func (rt *Runtime) NewThread(nlocals int) *Thread {
	t := &Thread{ID: len(rt.threads) + 1, rt: rt}
	rt.threads = append(rt.threads, t)
	if len(rt.threads) == 2 {
		rt.accessBroken = true
		rt.accessOn = rt.accessArmed
	}
	t.push(nlocals)
	if rt.rec != nil {
		rt.rec.NewThread(t, nlocals)
	}
	return t
}

// Threads returns the live thread list (root enumeration for tracing
// collectors).
func (rt *Runtime) Threads() []*Thread { return rt.threads }

// EachRootFrame visits every live frame of every thread, oldest frame
// first within each thread, preceded by the static pseudo-frame. A frame
// may be presented more than once with different root slices (locals,
// then operand references). This is the traversal order the resetting
// pass (§3.6) relies on: an object first reached from the oldest frame
// that references it receives the correct (most conservative) dependent
// frame.
func (rt *Runtime) EachRootFrame(fn func(f *Frame, roots []heap.HandleID)) {
	fn(rt.staticFrame, rt.statics)
	fn(rt.staticFrame, rt.internedRoots)
	for _, t := range rt.threads {
		for _, f := range t.stack {
			fn(f, f.locals)
			fn(f, f.operands)
		}
	}
}

// RootGroup is one (frame, roots) presentation of the canonical root
// enumeration — the slice form of EachRootFrame for tracers that
// partition root-driven work across workers. The Roots slice aliases
// live runtime state (locals, operands, statics): it is valid only
// while the world is stopped for the collection cycle and may contain
// Nil entries.
type RootGroup struct {
	Frame *Frame
	Roots []heap.HandleID
}

// rootGroupChunk bounds one root group's slot count. The static and
// interned groups dominate real root sets (every static, every
// interned string, in two groups); splitting any oversized group into
// ordered slot-range chunks lets the parallel tracer spread exactly
// the work that used to serialize on one worker. Chunks of one group
// keep consecutive group indices in slot order, so concatenating them
// is the original group's traversal and the min-group-index merge
// argument carries over unchanged: the minimum chunk index reaching an
// object maps to the same frame the unsplit group did.
const rootGroupChunk = 1024

// appendRootChunks appends roots as one group per rootGroupChunk slots
// (at least one group, possibly empty — group count, not content, is
// what varies).
func appendRootChunks(dst []RootGroup, f *Frame, roots []heap.HandleID) []RootGroup {
	for len(roots) > rootGroupChunk {
		dst = append(dst, RootGroup{f, roots[:rootGroupChunk]})
		roots = roots[rootGroupChunk:]
	}
	return append(dst, RootGroup{f, roots})
}

// AppendRootGroups appends every root group to dst, in exactly
// EachRootFrame's order (static pseudo-frame first — statics, then
// interned roots — then each thread's frames oldest-first, locals
// before operands, each split into ordered rootGroupChunk-slot
// chunks), and returns the extended slice. Group index order is
// therefore the sequential mark's traversal order: the parallel
// tracer's minimum-group-index merge reproduces the sequential
// first-reaching-frame assignment because of it.
func (rt *Runtime) AppendRootGroups(dst []RootGroup) []RootGroup {
	dst = appendRootChunks(dst, rt.staticFrame, rt.statics)
	dst = appendRootChunks(dst, rt.staticFrame, rt.internedRoots)
	for _, t := range rt.threads {
		for _, f := range t.stack {
			dst = appendRootChunks(dst, f, f.locals)
			dst = appendRootChunks(dst, f, f.operands)
		}
	}
	return dst
}

// EachFrame visits every live frame exactly once: the static
// pseudo-frame, then each thread's stack oldest-first. Consumers that
// only need the frames (CG's rebuild pass walks their dependent-set
// lists) use this instead of deduplicating EachRootFrame's repeated
// presentations.
func (rt *Runtime) EachFrame(fn func(f *Frame)) {
	fn(rt.staticFrame)
	for _, t := range rt.threads {
		for _, f := range t.stack {
			fn(f)
		}
	}
}

// push creates (or recycles) a frame on t's stack.
func (t *Thread) push(nlocals int) *Frame {
	t.rt.frameSeq++
	var f *Frame
	if n := len(t.pool); n > 0 {
		f = t.pool[n-1]
		t.pool = t.pool[:n-1]
		if cap(f.locals) >= nlocals {
			f.locals = f.locals[:nlocals]
			for i := range f.locals {
				f.locals[i] = heap.Nil
			}
		} else {
			f.locals = make([]heap.HandleID, nlocals)
		}
		f.operands = f.operands[:0]
		f.opRing = [opRingSize]heap.HandleID{}
		f.opPos = 0
		f.opNils = 0
	} else {
		f = &Frame{
			Thread: t,
			locals: make([]heap.HandleID, nlocals),
			rt:     t.rt,
		}
	}
	f.ID = t.rt.frameSeq
	f.Depth = len(t.stack) + 1
	f.GCHead = heap.Nil
	t.stack = append(t.stack, f)
	return f
}

// pop removes t's youngest frame, firing FramePop when any
// collector-owned state is armed on it, and recycles it. Collectors
// must not retain the *Frame past FramePop (CG's invariant: no
// equilive set may depend on a popped frame).
func (t *Thread) pop() {
	f := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	if f.GCHead != heap.Nil || t.rt.popAlways {
		if fp := t.rt.onFramePop; fp != nil {
			fp(f)
		}
	}
	t.pool = append(t.pool, f)
}

// Top returns the active frame.
func (t *Thread) Top() *Frame { return t.stack[len(t.stack)-1] }

// Depth reports the stack depth.
func (t *Thread) Depth() int { return len(t.stack) }

// Call pushes a frame with nlocals locals, runs body, fires areturn
// semantics for a non-nil result, pops the frame and returns the result.
// It is the runtime's method-invocation primitive: the Go closure plays
// the role of the method body, reading arguments from the locals the
// caller pre-loads via PassArg or from captured variables.
func (t *Thread) Call(nlocals int, body func(f *Frame) heap.HandleID) heap.HandleID {
	f := t.push(nlocals)
	if rec := t.rt.rec; rec != nil {
		rec.CallBegin(t, f, nlocals)
	}
	ret := body(f)
	if ret != heap.Nil {
		// areturn: the value's block must survive at least as long as
		// the caller's frame (§3.1.3).
		var caller *Frame
		if len(t.stack) >= 2 {
			caller = t.stack[len(t.stack)-2]
		} else {
			caller = t.rt.staticFrame
		}
		t.rt.step()
		if fn := t.rt.onReturn; fn != nil {
			fn(ret, caller)
		}
		if caller != t.rt.staticFrame {
			caller.addOperand(ret)
		}
	}
	t.pop()
	if rec := t.rt.rec; rec != nil {
		rec.CallEnd(t, ret)
	}
	return ret
}

// addOperand roots a handle handed to driver code in this frame. The
// ring check skips handles rooted within the last opRingSize adds —
// already on the operand list, so a second entry buys nothing — which
// bounds operand growth for loops that re-read the same objects. id is
// never Nil (all call sites check), so empty ring slots match nothing.
func (f *Frame) addOperand(id heap.HandleID) {
	if id == f.opRing[0] || id == f.opRing[1] || id == f.opRing[2] || id == f.opRing[3] {
		return
	}
	f.opRing[f.opPos&(opRingSize-1)] = id
	f.opPos++
	f.operands = append(f.operands, id)
}

// Forget drops every operand-reference this frame holds on id — the
// DeleteLocalRef analog. Locals and object fields referencing id are
// unaffected.
//
// Each call must scan the whole list (every occurrence is dropped),
// but entries are forgotten in place (root consumers skip Nil) and the
// list compacts once when half of it is dead, so a driver forgetting
// many operands pays one compaction instead of a full rewrite per
// call — the write traffic is amortized even though the read scan is
// inherently per-call linear.
func (f *Frame) Forget(id heap.HandleID) {
	if rec := f.rt.rec; rec != nil {
		rec.Forget(f, id)
	}
	for i := range f.opRing {
		if f.opRing[i] == id {
			// The ring must never claim a handle the operand list no
			// longer roots: a later addOperand(id) has to re-append.
			f.opRing[i] = heap.Nil
		}
	}
	for i, o := range f.operands {
		if o == id {
			f.operands[i] = heap.Nil
			f.opNils++
		}
	}
	if int(f.opNils)*2 >= len(f.operands) {
		out := f.operands[:0]
		for _, o := range f.operands {
			if o != heap.Nil {
				out = append(out, o)
			}
		}
		f.operands = out
		f.opNils = 0
	}
}

// CallVoid is Call for methods that return no reference.
func (t *Thread) CallVoid(nlocals int, body func(f *Frame)) {
	t.Call(nlocals, func(f *Frame) heap.HandleID {
		body(f)
		return heap.Nil
	})
}

// Local reads local slot i.
func (f *Frame) Local(i int) heap.HandleID { return f.locals[i] }

// SetLocal writes local slot i. Storing into a local is a stack (root)
// reference: it fires no contamination, only thread-access detection.
func (f *Frame) SetLocal(i int, v heap.HandleID) {
	if rec := f.rt.rec; rec != nil {
		rec.SetLocal(f, i, v)
	}
	f.rt.step()
	if f.rt.accessOn && v != heap.Nil {
		f.rt.onAccess(v, f.Thread)
	}
	f.locals[i] = v
}

// NumLocals reports the frame's local count.
func (f *Frame) NumLocals() int { return len(f.locals) }

// Runtime returns the owning runtime.
func (f *Frame) Runtime() *Runtime { return f.rt }

// New allocates an instance of class c while f is the active frame,
// driving the §3.7 fallback cascade on exhaustion:
// recycled storage, then a full collection, then error.
//
// The tape hook lives here (and in NewArray) rather than in alloc so
// that Intern's internal allocation records as one opIntern, never as
// an extra opAlloc.
func (f *Frame) New(c heap.ClassID) (heap.HandleID, error) {
	id, err := f.alloc(c, 0)
	if err == nil && f.rt.rec != nil {
		f.rt.rec.Alloc(f, c, 0, id)
	}
	return id, err
}

// NewArray allocates a reference array of n elements of array class c.
func (f *Frame) NewArray(c heap.ClassID, n int) (heap.HandleID, error) {
	id, err := f.alloc(c, n)
	if err == nil && f.rt.rec != nil {
		f.rt.rec.Alloc(f, c, n, id)
	}
	return id, err
}

func (f *Frame) alloc(c heap.ClassID, extra int) (heap.HandleID, error) {
	rt := f.rt
	rt.step()
	if rt.epochActive {
		// Allocation ends the epoch: the sweep must complete before the
		// allocator reuses handle IDs and arena blocks, or the run's
		// allocation decisions would diverge from the stop-the-world
		// schedule (DESIGN.md §10).
		rt.closeEpoch()
	}
	if f.Thread == nil {
		// A static-pseudo-frame allocation is owned by no thread, so
		// the first thread to touch it must be observed as sharing:
		// access dispatch can no longer be elided (when subscribed).
		rt.accessBroken = true
		rt.accessOn = rt.accessArmed
	}
	id, err := rt.Heap.Alloc(c, extra)
	if err != nil {
		if rt.allocFallback != nil {
			if rid, ok := rt.allocFallback(c, extra); ok {
				if rt.onAlloc != nil {
					rt.onAlloc(rid, f)
				}
				if rt.accessOn && f.Thread != nil {
					rt.onAccess(rid, f.Thread)
				}
				f.addOperand(rid)
				return rid, nil
			}
		}
		rt.forceCollect()
		id, err = rt.Heap.Alloc(c, extra)
		if err != nil {
			return heap.Nil, fmt.Errorf("vm: heap exhausted after full collection: %w", err)
		}
	}
	if rt.onAlloc != nil {
		rt.onAlloc(id, f)
	}
	if rt.accessOn && f.Thread != nil {
		rt.onAccess(id, f.Thread)
	}
	f.addOperand(id)
	return id, nil
}

// MustNew is New for workloads whose heap budget is known sufficient.
func (f *Frame) MustNew(c heap.ClassID) heap.HandleID {
	id, err := f.New(c)
	if err != nil {
		panic(err)
	}
	return id
}

// MustNewArray is NewArray with the same contract as MustNew.
func (f *Frame) MustNewArray(c heap.ClassID, n int) heap.HandleID {
	id, err := f.NewArray(c, n)
	if err != nil {
		panic(err)
	}
	return id
}

// PutField implements `obj.slot = val` (putfield / aastore): it fires
// contamination between obj and val and the thread-access events, then
// performs the store.
func (f *Frame) PutField(obj heap.HandleID, slot int, val heap.HandleID) {
	rt := f.rt
	if rt.rec != nil {
		rt.rec.PutField(f, obj, slot, val)
	}
	rt.step()
	if rt.accessOn {
		rt.onAccess(obj, f.Thread)
		if val != heap.Nil {
			rt.onAccess(val, f.Thread)
		}
	}
	if val != heap.Nil && rt.onRef != nil {
		rt.onRef(obj, val)
	}
	if rt.epochActive {
		// SATB write barrier: a concurrent trace is running. Store
		// atomically and record the overwritten value — the only edge
		// the tracer could otherwise lose is one the mutator destroys,
		// and recording its target preserves every snapshot-time path
		// (drained at close, internal/msa/overlap.go). Only reached
		// while a hook-free collector's epoch is open; the steady-state
		// cost when no trace is active is this one untaken branch.
		old := rt.Heap.SetRefEpoch(obj, slot, val)
		if old != val {
			if old != heap.Nil {
				rt.satb = append(rt.satb, old)
				if val == heap.Nil {
					rt.satbNilDelta--
				}
			} else {
				rt.satbNilDelta++
			}
		}
		return
	}
	rt.Heap.SetRef(obj, slot, val)
}

// GetField implements `obj.slot` (getfield / aaload).
func (f *Frame) GetField(obj heap.HandleID, slot int) heap.HandleID {
	rt := f.rt
	if rt.rec != nil {
		rt.rec.GetField(f, obj, slot)
	}
	rt.step()
	if rt.accessOn {
		rt.onAccess(obj, f.Thread)
	}
	v := rt.Heap.GetRef(obj, slot)
	if v != heap.Nil {
		if rt.accessOn {
			rt.onAccess(v, f.Thread)
		}
		f.addOperand(v)
	}
	return v
}

// StaticSlot interns a static-variable name, returning its slot index.
func (rt *Runtime) StaticSlot(name string) int {
	if i, ok := rt.staticNames[name]; ok {
		return i
	}
	i := len(rt.statics)
	rt.staticNames[name] = i
	rt.statics = append(rt.statics, heap.Nil)
	if rt.rec != nil {
		// Only slot creation is recorded: a lookup hit steps nothing
		// and fires nothing, so it has no place in the stream.
		rt.rec.StaticSlot(name)
	}
	return i
}

// PutStatic implements `static name = val` (putstatic): the referenced
// object's block joins the frame-0 dependent list.
func (f *Frame) PutStatic(slot int, val heap.HandleID) {
	rt := f.rt
	if rt.rec != nil {
		rt.rec.PutStatic(f, slot, val)
	}
	rt.step()
	if val != heap.Nil {
		if rt.accessOn {
			rt.onAccess(val, f.Thread)
		}
		if rt.onStaticRef != nil {
			rt.onStaticRef(val)
		}
	}
	rt.statics[slot] = val
}

// GetStatic implements `static name` (getstatic).
func (f *Frame) GetStatic(slot int) heap.HandleID {
	rt := f.rt
	if rt.rec != nil {
		rt.rec.GetStatic(f, slot)
	}
	rt.step()
	v := rt.statics[slot]
	if v != heap.Nil {
		if rt.accessOn {
			rt.onAccess(v, f.Thread)
		}
		f.addOperand(v)
	}
	return v
}

// Intern maps content to a unique object of class c, allocating on first
// use and pinning the result as static — the String.intern treatment of
// §3.2 ("any String mapped via intern() is static").
func (f *Frame) Intern(content string, c heap.ClassID) (heap.HandleID, error) {
	rt := f.rt
	if id, ok := rt.interned[content]; ok {
		rt.step()
		if rt.accessOn {
			rt.onAccess(id, f.Thread)
		}
		f.addOperand(id)
		if rt.rec != nil {
			rt.rec.Intern(f, content, c, id)
		}
		return id, nil
	}
	id, err := f.alloc(c, 0)
	if err != nil {
		return heap.Nil, err
	}
	rt.interned[content] = id
	rt.internedRoots = append(rt.internedRoots, id)
	if rt.onStaticRef != nil {
		rt.onStaticRef(id)
	}
	if rt.rec != nil {
		// Recorded for hits and misses alike — a hit still steps and
		// fires events — with hit-vs-miss derived identically on both
		// sides of the seam from first occurrence of the content
		// string, never from the handle (a recycled handle id could
		// alias a stale mapping).
		rt.rec.Intern(f, content, c, id)
	}
	return id, nil
}

// NativePin marks an object as escaping into native code: conservatively
// static ("we catch such allocations and treat the equilive blocks as if
// they were static", §3.3).
func (f *Frame) NativePin(id heap.HandleID) {
	rt := f.rt
	if rt.rec != nil {
		rt.rec.NativePin(f, id)
	}
	rt.step()
	if rt.onStaticRef != nil {
		rt.onStaticRef(id)
	}
}

// Statics returns the static slot values (root enumeration).
func (rt *Runtime) Statics() []heap.HandleID { return rt.statics }
