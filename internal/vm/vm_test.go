package vm

import (
	"testing"

	"repro/internal/heap"
)

// eventLog records every collector event in order, so tests can assert
// the runtime emits exactly the instrumentation vocabulary of §3.1.3.
type eventLog struct {
	rt     *Runtime
	events []string
	allocs []heap.HandleID
	pops   []uint64
}

// Events implements Collector: the log subscribes every reference and
// lifecycle slot. It arms no GCHead, so it declares AllPops to opt out
// of the Nil-GCHead pop elision.
func (e *eventLog) Events() Events {
	return Events{
		Name:   "log",
		Attach: func(rt *Runtime) { e.rt = rt },
		Alloc: func(id heap.HandleID, f *Frame) {
			e.allocs = append(e.allocs, id)
			e.add("alloc")
		},
		Ref:       func(src, dst heap.HandleID) { e.add("ref") },
		StaticRef: func(dst heap.HandleID) { e.add("static") },
		Return:    func(v heap.HandleID, caller *Frame) { e.add("return") },
		FramePop: func(f *Frame) int {
			e.pops = append(e.pops, f.ID)
			e.add("pop")
			return 0
		},
		AllPops:   true,
		Collector: e,
	}
}

func (e *eventLog) add(s string) { e.events = append(e.events, s) }

func newTestRT(c Collector, arena int) (*Runtime, heap.ClassID, heap.ClassID) {
	h := heap.New(arena)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	arr := h.DefineClass(heap.Class{Name: "Object[]", IsArray: true})
	return New(h, c), node, arr
}

func TestCallPushPopAndFrameOrdering(t *testing.T) {
	log := &eventLog{}
	rt, node, _ := newTestRT(log, 1<<16)
	th := rt.NewThread(2)
	root := th.Top()
	if root.Depth != 1 || root.ID == 0 {
		t.Fatalf("root frame depth/ID wrong: %+v", root)
	}
	var innerID uint64
	th.CallVoid(1, func(f *Frame) {
		innerID = f.ID
		if f.Depth != 2 {
			t.Fatalf("inner depth = %d, want 2", f.Depth)
		}
		if !(f.ID > root.ID) {
			t.Fatal("younger frame must have larger ID")
		}
		f.SetLocal(0, f.MustNew(node))
	})
	if len(log.pops) != 1 || log.pops[0] != innerID {
		t.Fatalf("expected exactly the inner frame to pop, got %v", log.pops)
	}
	if th.Depth() != 1 {
		t.Fatalf("stack depth after call = %d", th.Depth())
	}
}

func TestAReturnFiresBeforePop(t *testing.T) {
	log := &eventLog{}
	rt, node, _ := newTestRT(log, 1<<16)
	th := rt.NewThread(1)
	ret := th.Call(0, func(f *Frame) heap.HandleID { return f.MustNew(node) })
	if ret == heap.Nil {
		t.Fatal("Call lost the return value")
	}
	want := []string{"alloc", "return", "pop"}
	if len(log.events) != 3 {
		t.Fatalf("events = %v", log.events)
	}
	for i, w := range want {
		if log.events[i] != w {
			t.Fatalf("event[%d] = %s, want %s (full: %v)", i, log.events[i], w, log.events)
		}
	}
}

func TestVoidCallFiresNoReturn(t *testing.T) {
	log := &eventLog{}
	rt, node, _ := newTestRT(log, 1<<16)
	th := rt.NewThread(0)
	th.CallVoid(0, func(f *Frame) { f.MustNew(node) })
	for _, e := range log.events {
		if e == "return" {
			t.Fatal("void call fired OnReturn")
		}
	}
}

func TestPutFieldContaminationEvent(t *testing.T) {
	log := &eventLog{}
	rt, node, _ := newTestRT(log, 1<<16)
	th := rt.NewThread(2)
	f := th.Top()
	a, b := f.MustNew(node), f.MustNew(node)
	f.PutField(a, 0, b)
	if rt.Heap.GetRef(a, 0) != b {
		t.Fatal("store not performed")
	}
	found := false
	for _, e := range log.events {
		if e == "ref" {
			found = true
		}
	}
	if !found {
		t.Fatal("PutField did not fire OnRef")
	}
	// Nil stores must not fire contamination.
	n := len(log.events)
	f.PutField(a, 0, heap.Nil)
	for _, e := range log.events[n:] {
		if e == "ref" {
			t.Fatal("nil store fired OnRef")
		}
	}
}

func TestStaticsAndIntern(t *testing.T) {
	log := &eventLog{}
	rt, node, _ := newTestRT(log, 1<<16)
	th := rt.NewThread(1)
	f := th.Top()
	slot := rt.StaticSlot("table")
	if slot != rt.StaticSlot("table") {
		t.Fatal("StaticSlot not stable")
	}
	o := f.MustNew(node)
	f.PutStatic(slot, o)
	if f.GetStatic(slot) != o {
		t.Fatal("static round trip failed")
	}
	s1, err := f.Intern("hello", node)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.Intern("hello", node)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("intern not canonical")
	}
	statics := 0
	for _, e := range log.events {
		if e == "static" {
			statics++
		}
	}
	if statics != 2 { // one putstatic + one first-intern
		t.Fatalf("static events = %d, want 2", statics)
	}
}

func TestEachRootFrameOrder(t *testing.T) {
	rt, _, _ := newTestRT(&eventLog{}, 1<<16)
	th := rt.NewThread(1)
	var order []uint64
	th.CallVoid(0, func(inner *Frame) {
		last := uint64(0)
		rt.EachRootFrame(func(f *Frame, _ []heap.HandleID) {
			if len(order) == 0 || order[len(order)-1] != f.ID {
				order = append(order, f.ID)
			}
			if f.ID < last {
				t.Fatalf("frame %d visited after younger frame %d", f.ID, last)
			}
			last = f.ID
		})
	})
	if len(order) != 3 { // static, root, inner
		t.Fatalf("visited %v", order)
	}
	if order[0] != 0 {
		t.Fatal("static frame must come first")
	}
}

// oomCollector frees a designated victim when Collect is called, proving
// the alloc cascade reaches the collector. It declares only the Collect
// capability — no event slot at all.
type oomCollector struct {
	rt      *Runtime
	victims []heap.HandleID
	called  int
}

func (o *oomCollector) Events() Events {
	return Events{
		Name:      "oom",
		Attach:    func(rt *Runtime) { o.rt = rt },
		Collect:   o.collect,
		Collector: o,
	}
}

func (o *oomCollector) collect() int {
	o.called++
	n := len(o.victims)
	for _, v := range o.victims {
		o.rt.Heap.Free(v)
	}
	o.victims = nil
	return n
}

func TestAllocTriggersCollectOnExhaustion(t *testing.T) {
	col := &oomCollector{}
	h := heap.New(64) // room for exactly two 24-byte Nodes + slack
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	rt := New(h, col)
	th := rt.NewThread(0)
	f := th.Top()
	a := f.MustNew(node)
	_ = f.MustNew(node)
	col.victims = []heap.HandleID{a}
	c, err := f.New(node) // exhausted: must collect and retry
	if err != nil {
		t.Fatalf("alloc after collection failed: %v", err)
	}
	if col.called != 1 {
		t.Fatalf("Collect called %d times, want 1", col.called)
	}
	if !rt.Heap.Live(c) {
		t.Fatal("retried allocation not live")
	}
	// Now exhaust with no victims: hard OOM error.
	if _, err := f.New(node); err == nil {
		t.Fatal("expected hard OOM")
	}
}

// recycler satisfies allocations from a stashed dead object, proving the
// fallback path precedes Collect (§3.7: "before it tries to run MSA").
// It declares the AllocFallback capability alongside Collect.
type recycler struct {
	rt        *Runtime
	stash     heap.HandleID
	collected int
}

func (r *recycler) Events() Events {
	return Events{
		Name:          "recycler",
		Attach:        func(rt *Runtime) { r.rt = rt },
		Collect:       func() int { r.collected++; return 0 },
		AllocFallback: r.allocFallback,
		Collector:     r,
	}
}

func (r *recycler) allocFallback(c heap.ClassID, extra int) (heap.HandleID, bool) {
	if r.stash == heap.Nil {
		return heap.Nil, false
	}
	id := r.stash
	r.stash = heap.Nil
	if err := r.rt.Heap.Reinit(id, c, extra); err != nil {
		return heap.Nil, false
	}
	return id, true
}

func TestAllocFallbackPrecedesCollect(t *testing.T) {
	rec := &recycler{}
	h := heap.New(48)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8}) // 24 bytes
	rt := New(h, rec)
	th := rt.NewThread(0)
	f := th.Top()
	a := f.MustNew(node)
	_ = f.MustNew(node)
	rec.stash = a // CG-dead, heap-live
	got, err := f.New(node)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("expected recycled handle %d, got %d", a, got)
	}
	if rec.collected != 0 {
		t.Fatal("Collect ran although recycling satisfied the allocation")
	}
}

func TestGCEveryForcesCollections(t *testing.T) {
	col := &oomCollector{}
	rt, node, _ := newTestRT(col, 1<<16)
	rt.SetGCEvery(10)
	th := rt.NewThread(1)
	f := th.Top()
	for i := 0; i < 95; i++ {
		f.SetLocal(0, f.MustNew(node))
	}
	if rt.GCCycles() < 9 {
		t.Fatalf("GCCycles = %d after ~190 ops with GCEvery=10", rt.GCCycles())
	}
	if col.called != rt.GCCycles() {
		t.Fatalf("collector saw %d cycles, runtime counted %d", col.called, rt.GCCycles())
	}
}

func TestThreadsAreIndependentStacks(t *testing.T) {
	rt, node, _ := newTestRT(&eventLog{}, 1<<16)
	t1 := rt.NewThread(1)
	t2 := rt.NewThread(1)
	if t1.ID == t2.ID {
		t.Fatal("thread IDs collide")
	}
	t1.CallVoid(1, func(f *Frame) {
		f.SetLocal(0, f.MustNew(node))
		if t2.Depth() != 1 {
			t.Fatal("pushing on t1 affected t2")
		}
	})
	if len(rt.Threads()) != 2 {
		t.Fatal("thread registry wrong")
	}
}

func TestArraysViaFrame(t *testing.T) {
	rt, node, arr := newTestRT(&eventLog{}, 1<<16)
	th := rt.NewThread(0)
	f := th.Top()
	v := f.MustNewArray(arr, 4)
	e := f.MustNew(node)
	f.PutField(v, 2, e) // aastore is putfield on the array object
	if f.GetField(v, 2) != e {
		t.Fatal("array element store/load failed")
	}
	_ = rt
}

func TestInstrCounting(t *testing.T) {
	rt, node, _ := newTestRT(&eventLog{}, 1<<16)
	th := rt.NewThread(1)
	f := th.Top()
	before := rt.Instr()
	f.SetLocal(0, f.MustNew(node))
	if rt.Instr() != before+2 { // one alloc op + one setlocal op
		t.Fatalf("instr delta = %d, want 2", rt.Instr()-before)
	}
}
