package vm

import (
	"testing"

	"repro/internal/heap"
)

// accessLog records Access dispatches, to pin down exactly when the
// runtime elides them. allAccess mirrors the descriptor's AllAccess
// capability (the declarative form of the old ForceAccessEvents).
type accessLog struct {
	accesses  int
	allAccess bool
}

func (a *accessLog) Events() Events {
	return Events{
		Name:      "accesslog",
		Access:    func(id heap.HandleID, t *Thread) { a.accesses++ },
		AllAccess: a.allAccess,
		Collector: a,
	}
}

func TestOperandRingDedupBoundsGrowth(t *testing.T) {
	rt, node, _ := newTestRT(None(), 1<<20)
	th := rt.NewThread(1)
	th.CallVoid(1, func(f *Frame) {
		obj := f.MustNew(node)
		val := f.MustNew(node)
		f.PutField(obj, 0, val)
		before := len(f.operands)
		// A hot loop re-reading one field roots its result once, not
		// once per read.
		for i := 0; i < 1000; i++ {
			if got := f.GetField(obj, 0); got != val {
				t.Fatalf("GetField = %d, want %d", got, val)
			}
		}
		if grew := len(f.operands) - before; grew > 1 {
			t.Fatalf("operands grew by %d over a same-handle loop, want <= 1", grew)
		}
	})
}

func TestForgetPurgesRingAndCompacts(t *testing.T) {
	rt, node, _ := newTestRT(None(), 1<<20)
	th := rt.NewThread(1)
	th.CallVoid(1, func(f *Frame) {
		ids := make([]heap.HandleID, 8)
		for i := range ids {
			ids[i] = f.MustNew(node)
		}
		// Forget must purge the ring: a forgotten handle re-rooted
		// immediately afterwards has to reappear on the operand list,
		// or the driver would hold an unrooted reference.
		f.Forget(ids[7])
		f.addOperand(ids[7])
		found := 0
		for _, o := range f.operands {
			if o == ids[7] {
				found++
			}
		}
		if found != 1 {
			t.Fatalf("re-rooted handle appears %d times, want 1", found)
		}
		// Forgetting most of the list triggers the one-shot compaction:
		// no Nil padding survives once half the entries are dead.
		for _, id := range ids[:7] {
			f.Forget(id)
		}
		for _, o := range f.operands {
			if o == heap.Nil {
				t.Fatalf("operands %v still hold Nil after compaction threshold", f.operands)
			}
		}
		if f.opNils != 0 {
			t.Fatalf("opNils = %d after compaction, want 0", f.opNils)
		}
	})
}

// TestForgetManyOperandsLinearish exercises the drop-everything
// pattern: forgetting every operand of a large frame. Each Forget
// still reads the whole list (it must drop *every* occurrence), but
// the old per-call slice rewrite — n²/2 *writes* plus repeated
// reallocation traffic — is replaced by in-place nil-outs with a
// one-shot compaction. The assertion is semantic: everything is gone
// at the end, and re-rooting afterwards still works.
func TestForgetManyOperandsLinearish(t *testing.T) {
	rt, node, _ := newTestRT(None(), 64<<20)
	th := rt.NewThread(1)
	th.CallVoid(1, func(f *Frame) {
		const n = 20000
		ids := make([]heap.HandleID, n)
		for i := range ids {
			ids[i] = f.MustNew(node)
		}
		for _, id := range ids {
			f.Forget(id)
		}
		if len(f.operands) != 0 {
			t.Fatalf("%d operands survive forgetting everything", len(f.operands))
		}
	})
}

func TestAccessDispatchElidedUntilSecondThread(t *testing.T) {
	log := &accessLog{}
	rt, node, _ := newTestRT(log, 1<<20)
	t1 := rt.NewThread(1)
	t1.CallVoid(1, func(f *Frame) {
		obj := f.MustNew(node)
		val := f.MustNew(node)
		f.PutField(obj, 0, val)
		f.GetField(obj, 0)
		f.SetLocal(0, obj)
	})
	if log.accesses != 0 {
		t.Fatalf("single-threaded runtime dispatched %d OnAccess events, want 0", log.accesses)
	}
	rt.NewThread(1) // second thread: deferred semantics fire, dispatch is live
	t1.CallVoid(1, func(f *Frame) {
		obj := f.MustNew(node)
		f.SetLocal(0, obj)
	})
	if log.accesses == 0 {
		t.Fatal("multithreaded runtime still eliding OnAccess")
	}
}

func TestAccessDispatchForcedByStaticFrameAlloc(t *testing.T) {
	log := &accessLog{}
	rt, node, _ := newTestRT(log, 1<<20)
	t1 := rt.NewThread(1)
	// An allocation owned by the static pseudo-frame has no owning
	// thread, so the single-thread proof breaks: dispatch must resume
	// before the thread can touch the object unobserved.
	obj, err := rt.StaticFrame().New(node)
	if err != nil {
		t.Fatal(err)
	}
	t1.CallVoid(1, func(f *Frame) { f.SetLocal(0, obj) })
	if log.accesses == 0 {
		t.Fatal("static-frame allocation did not re-enable OnAccess dispatch")
	}
}

func TestAllAccessDefeatsElision(t *testing.T) {
	log := &accessLog{allAccess: true}
	rt, node, _ := newTestRT(log, 1<<20)
	th := rt.NewThread(1)
	th.CallVoid(1, func(f *Frame) { f.SetLocal(0, f.MustNew(node)) })
	if log.accesses == 0 {
		t.Fatal("the AllAccess capability did not defeat single-thread elision")
	}
}

// TestRuntimeResetObservablyFresh pins the pooled-shard contract at the
// runtime level: after Reset the same Runtime replays a program with
// identical frame IDs, handle IDs, instruction counts and statistics.
func TestRuntimeResetObservablyFresh(t *testing.T) {
	program := func(rt *Runtime, node heap.ClassID) (ids []heap.HandleID, frames []uint64) {
		th := rt.NewThread(1)
		th.CallVoid(2, func(f *Frame) {
			frames = append(frames, f.ID)
			a := f.MustNew(node)
			b := f.MustNew(node)
			ids = append(ids, a, b)
			f.PutField(a, 0, b)
			f.SetLocal(0, a)
			s := rt.StaticSlot("root")
			f.PutStatic(s, a)
			i, err := f.Intern("hello", node)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, i)
			th.CallVoid(1, func(g *Frame) {
				frames = append(frames, g.ID)
				ids = append(ids, g.MustNew(node))
			})
		})
		return ids, frames
	}

	fresh, node, _ := newTestRT(None(), 1<<20)
	wantIDs, wantFrames := program(fresh, node)
	wantInstr := fresh.Instr()

	reused, node2, _ := newTestRT(None(), 1<<20)
	program(reused, node2)
	reused.Reset(None())
	if reused.Instr() != 0 || len(reused.Threads()) != 0 || reused.GCCycles() != 0 {
		t.Fatal("Reset left runtime state behind")
	}
	node3 := reused.Heap.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	gotIDs, gotFrames := program(reused, node3)
	if reused.Instr() != wantInstr {
		t.Fatalf("Instr after Reset = %d, fresh = %d", reused.Instr(), wantInstr)
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("handle %d: %d after Reset, %d fresh", i, gotIDs[i], wantIDs[i])
		}
	}
	for i := range wantFrames {
		if gotFrames[i] != wantFrames[i] {
			t.Fatalf("frame %d: ID %d after Reset, %d fresh", i, gotFrames[i], wantFrames[i])
		}
	}
}
