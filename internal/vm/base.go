package vm

import "repro/internal/heap"

// BaseCollector is a no-op Collector suitable for embedding: concrete
// collectors override only the events they care about. On its own it
// never frees anything (the "plenty of storage, asynchronous GC disabled"
// configuration of §4.5).
type BaseCollector struct{}

// Name implements Collector.
func (BaseCollector) Name() string { return "none" }

// Attach implements Collector.
func (BaseCollector) Attach(*Runtime) {}

// OnAlloc implements Collector.
func (BaseCollector) OnAlloc(heap.HandleID, *Frame) {}

// OnRef implements Collector.
func (BaseCollector) OnRef(src, dst heap.HandleID) {}

// OnStaticRef implements Collector.
func (BaseCollector) OnStaticRef(heap.HandleID) {}

// OnReturn implements Collector.
func (BaseCollector) OnReturn(heap.HandleID, *Frame) {}

// OnFramePop implements Collector.
func (BaseCollector) OnFramePop(*Frame) int { return 0 }

// OnAccess implements Collector.
func (BaseCollector) OnAccess(heap.HandleID, *Thread) {}

// AllocFallback implements Collector.
func (BaseCollector) AllocFallback(heap.ClassID, int) (heap.HandleID, bool) {
	return heap.Nil, false
}

// Collect implements Collector.
func (BaseCollector) Collect() int { return 0 }

var _ Collector = BaseCollector{}
