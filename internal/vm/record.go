package vm

import "repro/internal/heap"

// OpRecorder receives the driver-facing operation stream: every call a
// workload driver (or the jasm interpreter) makes into the runtime, in
// execution order. internal/tape's Recorder implements it to capture an
// event tape that a Replayer can later feed back through the identical
// Runtime entry points — decode-op, switch, direct call — with no
// driver logic in the loop.
//
// The seam records driver *inputs*, never collector activity: the
// allocation-failure cascade, forced collections it triggers, event
// dispatch and frame pops all replay themselves when the recorded
// stream is re-driven. Two placement rules keep that true (and are why
// the hooks live where they do in vm.go):
//
//   - Alloc fires from the public New/NewArray wrappers, not from the
//     internal alloc path, so Intern's internal allocation is not
//     double-recorded;
//   - ForceCollect fires only for direct driver calls; the cascade's
//     internal collection goes through the unexported entry.
//
// A recorder must be attached (SetRecorder) to a freshly constructed or
// Reset runtime, before any threads or allocations exist: the stream
// has no way to describe pre-existing state.
type OpRecorder interface {
	// NewThread records Runtime.NewThread; the new thread is the
	// youngest entry of rt.Threads().
	NewThread(t *Thread, nlocals int)
	// CallBegin records Thread.Call entry: callee is the frame just
	// pushed (now t.Top()).
	CallBegin(t *Thread, callee *Frame, nlocals int)
	// CallEnd records Thread.Call return, after the callee popped; ret
	// is the body's result (possibly Nil).
	CallEnd(t *Thread, ret heap.HandleID)
	// Alloc records a successful Frame.New (extra == 0) or
	// Frame.NewArray (extra = element count). Failed allocations are
	// not recorded: the replayed allocation re-runs the same cascade.
	Alloc(f *Frame, c heap.ClassID, extra int, id heap.HandleID)
	// PutField, GetField, SetLocal, PutStatic and GetStatic record the
	// like-named Frame operations.
	PutField(f *Frame, obj heap.HandleID, slot int, val heap.HandleID)
	GetField(f *Frame, obj heap.HandleID, slot int)
	SetLocal(f *Frame, slot int, val heap.HandleID)
	PutStatic(f *Frame, slot int, val heap.HandleID)
	GetStatic(f *Frame, slot int)
	// StaticSlot records only slot *creation* (the interning miss);
	// repeated lookups of an existing name are unobservable no-ops and
	// are elided from the stream.
	StaticSlot(name string)
	// Intern records every Frame.Intern call — hits too, since a hit
	// still steps the instruction counter and fires access/rooting.
	Intern(f *Frame, content string, c heap.ClassID, id heap.HandleID)
	// NativePin and Forget record the like-named Frame operations.
	NativePin(f *Frame, id heap.HandleID)
	Forget(f *Frame, id heap.HandleID)
	// ForceCollect records a direct driver call to
	// Runtime.ForceCollect. Collections triggered internally (the
	// allocation cascade, the GCEvery countdown) are never recorded.
	ForceCollect()
}

// SetRecorder attaches r to the runtime's operation stream (nil
// detaches). When attached, every driver-facing operation pays one
// predictable nil-check branch plus the recorder call; when nil the
// cost is the branch alone — the same pattern as the event-table
// slots. Reset detaches any recorder along with the collector.
func (rt *Runtime) SetRecorder(r OpRecorder) { rt.rec = r }

// FrameAt returns the frame at stack depth d (root = 1, top = Depth()).
// Tape replay uses it to re-target operations a driver performed on
// non-top frames (a paused thread's root frame, say).
func (t *Thread) FrameAt(d int) *Frame { return t.stack[d-1] }
