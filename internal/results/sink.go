package results

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/table"
)

// Sink renders one figure's table incrementally: the title, header row
// and rule print at construction, and each data row prints the moment
// the in-order prefix reaches it — a long sweep shows its first rows
// while later cells are still running, instead of barriering on the
// whole matrix.
//
// Streaming forecloses the batch table's measure-then-render pass, so
// columns are sized from the headers alone and a wider cell simply
// widens its own row. What it preserves is determinism: cell text comes
// from the same table.Format the batch path uses, and rows are emitted
// by index, so sweep output is byte-identical for any worker count,
// process count or store state.
//
// Rows may arrive from any goroutine and in any order; out-of-order
// rows buffer until the prefix completes. Write errors stick and
// surface from Flush.
type Sink struct {
	mu      sync.Mutex
	w       io.Writer
	widths  []int
	pending map[int][]string
	next    int
	rows    int
	err     error
}

// NewSink writes the title, header and rule immediately and returns the
// row sink. rows is the number of data rows the figure will emit;
// Flush reports any shortfall.
func NewSink(w io.Writer, title string, rows int, headers ...string) *Sink {
	s := &Sink{w: w, pending: make(map[int][]string), rows: rows}
	s.widths = make([]int, len(headers))
	for i, h := range headers {
		s.widths[i] = len(h)
	}
	if title != "" {
		s.printf("%s\n", title)
	}
	s.writeRow(headers)
	total := 0
	for i, wd := range s.widths {
		if i > 0 {
			total += 2
		}
		total += wd
	}
	s.printf("%s\n", strings.Repeat("-", total))
	return s
}

// Row submits data row i (0-based). Safe for concurrent use; rows print
// in index order as the prefix completes.
func (s *Sink) Row(i int, cells ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pending[i]; dup || i < s.next {
		return // first submission wins, matching the reorder contract
	}
	s.pending[i] = table.Format(cells...)
	for {
		row, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		s.next++
		s.writeRow(row)
	}
}

// Flush verifies every row arrived and returns the first write error.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.next != s.rows {
		return fmt.Errorf("results: sink flushed with %d of %d rows", s.next, s.rows)
	}
	return nil
}

// writeRow prints one row under the header-derived widths. Like the
// batch table, every column — including the last — pads to width, so
// narrow cells align and wide cells overflow only their own row.
func (s *Sink) writeRow(cells []string) {
	var b strings.Builder
	for i := 0; i < len(s.widths) || i < len(cells); i++ {
		c := ""
		if i < len(cells) {
			c = cells[i]
		}
		wd := 0
		if i < len(s.widths) {
			wd = s.widths[i]
		}
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", wd, c)
	}
	b.WriteString("\n")
	s.printf("%s", b.String())
}

func (s *Sink) printf(format string, args ...any) {
	if s.err != nil {
		return
	}
	if _, err := fmt.Fprintf(s.w, format, args...); err != nil {
		s.err = err
	}
}
