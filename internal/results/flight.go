package results

import (
	"sync"

	"repro/internal/engine"
)

// Flight is the in-flight cell table: at most one computation per cell
// key, with every concurrent requester attached as a waiter. It is the
// second dedup tier of a shared-cache backend — the Store dedups
// against completed cells on disk, Flight dedups against cells that are
// *currently being computed* — and the primitive the sweep server's
// scheduler is built on: two clients asking for overlapping grids join
// the same calls, so each overlapping cell executes exactly once while
// both streams receive it.
//
// The protocol: Join attaches a delivery callback to key's call,
// creating the call when absent; whoever created it (the leader) owns
// computing the cell and calling Resolve, which removes the call and
// delivers the outcome to every waiter. A Join that arrives after
// Resolve starts a fresh call — callers that want completed cells
// deduped too must consult the Store before computing (the leader-side
// store check closes the race: the previous leader Puts before it
// Resolves, so a late joiner's recompute finds the cell on disk).
type Flight struct {
	mu    sync.Mutex
	calls map[string]*FlightCall
}

// FlightCall is one in-flight cell computation: the cell's key, the job
// as first submitted (fairness accounting tags ride on it), and the
// attached delivery callbacks.
type FlightCall struct {
	Key string
	Job engine.Job

	f       *Flight
	waiters []func(Outcome)
}

// Join attaches deliver to key's in-flight call. The boolean reports
// leadership: true means this Join created the call and the caller must
// compute the cell and Resolve it; false means an existing computation
// will deliver. deliver runs on the resolver's goroutine, exactly once,
// in attach order.
func (f *Flight) Join(key string, job engine.Job, deliver func(Outcome)) (*FlightCall, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.calls == nil {
		f.calls = make(map[string]*FlightCall)
	}
	if c, ok := f.calls[key]; ok {
		c.waiters = append(c.waiters, deliver)
		return c, false
	}
	c := &FlightCall{Key: key, Job: job, f: f, waiters: []func(Outcome){deliver}}
	f.calls[key] = c
	return c, true
}

// Resolve removes the call from the table and delivers o to every
// waiter in attach order. Only the leader calls it, exactly once; the
// removal happens before any delivery, so a waiter's callback can
// re-submit the same key without self-deadlock.
func (c *FlightCall) Resolve(o Outcome) {
	c.f.mu.Lock()
	delete(c.f.calls, c.Key)
	waiters := c.waiters
	c.waiters = nil
	c.f.mu.Unlock()
	for _, deliver := range waiters {
		deliver(o)
	}
}

// Waiters reports how many deliveries the call currently feeds
// (diagnostics; racy by nature, exact only from the leader before
// Resolve).
func (c *FlightCall) Waiters() int {
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return len(c.waiters)
}

// InFlight reports how many calls are currently open (diagnostics).
func (f *Flight) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
