package results

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestCycleStatsIdenticalAcrossWorkerCounts pins the observability
// layer's determinism contract: with a deterministic clock installed,
// the per-cell cycle statistics — and therefore any order-independent
// merge of them — are identical for a -workers 1 and a -workers 8 run.
// Each Timeline draws its own clock instance lazily at its first cycle
// (and discards it on Reset), so pooled-shard reuse and scheduling
// cannot perturb a cell's recorded sequence.
func TestCycleStatsIdenticalAcrossWorkerCounts(t *testing.T) {
	obs.SetClockFactory(func() func() int64 {
		var c int64
		return func() int64 { c++; return c }
	})
	defer obs.SetClockFactory(nil)

	// The Fig 4.11 configuration: forced traditional collections under
	// the resetting variant, tight heaps, every benchmark.
	var jobs []engine.Job
	for _, s := range workload.All() {
		jobs = append(jobs, engine.Job{Workload: s.Name, Size: 1, Collector: "cg+reset",
			HeapBytes: engine.TightHeap, GCEvery: 1000})
	}

	run := func(workers int) []obs.CycleStats {
		t.Helper()
		out := make([]obs.CycleStats, len(jobs))
		errs := make([]string, len(jobs))
		err := (Local{Eng: engine.New(workers)}).Run(jobs, func(i int, o Outcome) {
			errs[i] = o.Err
			if o.Obs != nil {
				out[i] = *o.Obs
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range errs {
			if e != "" {
				t.Fatalf("cell %d (%s) failed: %s", i, jobs[i].Workload, e)
			}
		}
		return out
	}

	one := run(1)
	eight := run(8)
	cycles := uint64(0)
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("cell %d (%s) cycle stats diverged across worker counts:\nw1: %+v\nw8: %+v",
				i, jobs[i].Workload, one[i], eight[i])
		}
		cycles += one[i].Cycles
	}
	if cycles == 0 {
		t.Fatal("no cell recorded a collection cycle; the comparison is vacuous")
	}

	// The aggregated distribution is a bucket-wise merge, so the two
	// runs aggregate identically in any merge order.
	var fwd, rev obs.CycleStats
	for i := range one {
		fwd.Merge(&one[i])
		rev.Merge(&eight[len(eight)-1-i])
	}
	if fwd != rev {
		t.Fatalf("aggregated cycle stats depend on merge order or worker count:\n%+v\n%+v", fwd, rev)
	}
	if fwd.Pause.Count != cycles {
		t.Fatalf("pause histogram counts %d cycles, want %d", fwd.Pause.Count, cycles)
	}
}

// TestOutcomeCarriesObsAndProvThroughStore round-trips an outcome with
// cycle stats and provenance through the content-addressed store and
// checks both survive byte-exactly.
func TestOutcomeCarriesObsAndProvThroughStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := engine.Job{Workload: "compress", Size: 1, Collector: "cg+reset",
		HeapBytes: engine.TightHeap, GCEvery: 1000}
	o := Extract(engine.Exec(job))
	if o.Err != "" {
		t.Fatal(o.Err)
	}
	if o.Prov == nil || o.Prov.GoVersion == "" {
		t.Fatalf("extract did not stamp provenance: %+v", o.Prov)
	}
	if o.Obs == nil || o.Obs.Cycles == 0 {
		t.Fatalf("forced-GC cell carries no cycle stats: %+v", o.Obs)
	}
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(job)
	if !ok || err != nil {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if *got.Obs != *o.Obs {
		t.Fatalf("cycle stats did not round-trip:\n%+v\n%+v", got.Obs, o.Obs)
	}
	if *got.Prov != *o.Prov {
		t.Fatalf("provenance did not round-trip:\n%+v\n%+v", got.Prov, o.Prov)
	}
}
