package results

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// TestFlightJoinResolve pins the in-flight table's protocol: the first
// Join leads, later Joins attach, Resolve removes the call and delivers
// to every waiter exactly once in attach order, and a Join after
// Resolve starts a fresh call (completed-cell dedup is the store's
// job, not Flight's).
func TestFlightJoinResolve(t *testing.T) {
	var f Flight
	var order []string
	deliver := func(tag string) func(Outcome) {
		return func(Outcome) { order = append(order, tag) }
	}

	c, leader := f.Join("k", engine.Job{Workload: "w"}, deliver("first"))
	if !leader {
		t.Fatal("first Join must lead")
	}
	if c2, leader := f.Join("k", engine.Job{}, deliver("second")); leader || c2 != c {
		t.Fatal("second Join must attach to the same call, not lead")
	}
	if _, leader := f.Join("other", engine.Job{}, deliver("other")); !leader {
		t.Fatal("a different key is its own call")
	}
	if got := f.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	if got := c.Waiters(); got != 2 {
		t.Fatalf("Waiters = %d, want 2", got)
	}
	if c.Job.Workload != "w" {
		t.Fatal("call must carry the leader's job")
	}

	c.Resolve(Outcome{})
	if got := len(order); got != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("deliveries = %v, want [first second]", order)
	}
	if got := f.InFlight(); got != 1 {
		t.Fatalf("InFlight after resolve = %d, want 1 (the other call)", got)
	}
	if _, leader := f.Join("k", engine.Job{}, deliver("late")); !leader {
		t.Fatal("a Join after Resolve must start a fresh call")
	}
}

// TestClientTagOutsideCellIdentity pins that the scheduling-only client
// tag on engine.Job never leaks into cell identity or serialised form:
// a tagged and an untagged job share their store key and their Encode
// bytes, which is what lets the sweep server tag jobs for fairness
// accounting while staying byte-identical to batch runs.
func TestClientTagOutsideCellIdentity(t *testing.T) {
	plain := engine.Job{Workload: workload.All()[0].Name, Size: 1, Collector: "cg"}
	tagged := plain
	tagged.Client = "alice"

	kp, err := Key(plain)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := Key(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if kp != kt {
		t.Errorf("client tag changed the store key:\n%s\n%s", kp, kt)
	}

	ep, err := Encode(Outcome{Job: plain, Payload: Payload{Kind: "none"}})
	if err != nil {
		t.Fatal(err)
	}
	et, err := Encode(Outcome{Job: tagged, Payload: Payload{Kind: "none"}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ep, et) {
		t.Errorf("client tag changed the serialised outcome:\n%s%s", ep, et)
	}
	if bytes.Contains(et, []byte("alice")) {
		t.Error("client name leaked into the serialised outcome")
	}
}

// TestStoreGetKey pins the key-addressed read path the cell endpoint
// serves from: the raw stored bytes come back for the exact key, and
// an uncomputed key is a miss, not an error.
func TestStoreGetKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := engine.Job{Workload: workload.All()[0].Name, Size: 1, Collector: "cg"}
	o := Outcome{Job: job, Payload: Payload{Kind: "none"}}
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	key, err := Key(job)
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.GetKey(key)
	if err != nil || !ok {
		t.Fatalf("GetKey = %v, %v", ok, err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Job != job {
		t.Fatalf("GetKey round-trip job = %+v, want %+v", got.Job, job)
	}
	if _, ok, err := s.GetKey(key + "-missing"); err != nil || ok {
		t.Fatalf("uncomputed key: ok=%v err=%v, want miss", ok, err)
	}
}
