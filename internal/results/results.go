// Package results makes the experiment matrix's cells serialisable,
// persistable and streamable. It sits between the execution engine and
// the experiment harness:
//
//   - Outcome is the JSON codec for (engine.Job, engine.Result) pairs:
//     collector specs round-trip via the registry's canonical grammar
//     (collectors.Spec) and collector statistics travel as typed
//     payloads, so a worker process can compute a cell and a
//     coordinator can merge it without ever sharing a heap.
//   - Store is a content-addressed on-disk cell store keyed by
//     (workload, size, canonical collector spec, seed, ...): re-running
//     a sweep skips completed cells, which is what makes a killed sweep
//     resumable.
//   - Sink renders table rows in index order as cells complete, so a
//     long sweep streams its figures instead of barriering on the last
//     cell.
//   - Backend abstracts who computes the cells: Local runs them on an
//     in-process engine pool; internal/dist's Coordinator fans them out
//     to worker processes; Resuming wraps either with a Store. All
//     three emit outcomes in strict index order, which is the whole
//     determinism argument — rendering consumes an index-ordered
//     stream and never sees completion order.
package results

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gengc"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/obs"
)

// Outcome is the serialisable extract of one engine.Result: everything
// the demographics and counter-based experiments consume, nothing that
// pins a shard (no runtime, no heap). Wall-clock fields ride along for
// timing-oriented consumers but are never part of table rendering, so
// stored and recomputed cells render identically.
type Outcome struct {
	Job      engine.Job    `json:"job"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	GCCycles int           `json:"gc_cycles,omitempty"`
	Instr    uint64        `json:"instr,omitempty"`
	Err      string        `json:"err,omitempty"`
	// Arena is the shard's end-of-run arena occupancy (the slab arena's
	// O(1) Info counters). Wall-clock-independent but address- and
	// allocator-layout-dependent, so it is versioned by the store key
	// (keyVersion v2), never part of table rendering.
	Arena   *heap.Info `json:"arena,omitempty"`
	Payload Payload    `json:"payload"`
	// Obs is the shard's cumulative cycle-phase extract: pause/mark/sweep
	// nanoseconds and the pause-time histogram (keyVersion v3). Its
	// object counts (Cycles/Marked/Freed) are deterministic; its
	// nanosecond fields are wall-clock measurements — timing consumers
	// only, never table rendering.
	Obs *obs.CycleStats `json:"obs,omitempty"`
	// Prov records where and under what conditions the cell was computed
	// (host, CPU, load, timestamps) — stamped by the process that ran the
	// cell, carried verbatim through the store and the dist protocol.
	Prov *obs.Provenance `json:"prov,omitempty"`
}

// Payload is the typed per-collector extract; Kind names the registry
// family and selects which branch is populated.
type Payload struct {
	Kind string       `json:"kind"`
	CG   *CGPayload   `json:"cg,omitempty"`
	MSA  *msa.Stats   `json:"msa,omitempty"`
	Gen  *gengc.Stats `json:"gen,omitempty"`
}

// CGPayload is the contaminated collector's extract: the end-of-run
// classification and the full counter set — the raw material of every
// demographics figure.
type CGPayload struct {
	Breakdown core.Breakdown `json:"breakdown"`
	Stats     core.Stats     `json:"stats"`
}

// Extract converts an engine.Result into its serialisable Outcome,
// dropping the shard. Call it on the worker's side of any boundary —
// process, channel or store — so the multi-hundred-MiB runtime never
// outlives the cell.
func Extract(r engine.Result) Outcome {
	o := Outcome{Job: r.Job, Elapsed: r.Elapsed}
	prov := obs.Capture(obs.Nanotime())
	o.Prov = &prov
	if r.Err != nil {
		o.Err = r.Err.Error()
		return o
	}
	if r.RT != nil {
		o.GCCycles = r.RT.GCCycles()
		o.Instr = r.RT.Instr()
		info := r.RT.Heap.Arena().Info()
		o.Arena = &info
		if st := r.RT.Timeline().Stats(); st.Cycles > 0 {
			o.Obs = &st
		}
	}
	switch col := r.Col.(type) {
	case *core.CG:
		o.Payload = Payload{Kind: "cg", CG: &CGPayload{Breakdown: col.Snapshot(), Stats: col.Stats()}}
	case *msa.System:
		st := col.Engine().Stats()
		o.Payload = Payload{Kind: "msa", MSA: &st}
	case *gengc.System:
		st := col.Stats()
		o.Payload = Payload{Kind: "gen", Gen: &st}
	default:
		o.Payload = Payload{Kind: "none"}
	}
	return o
}

// Encode marshals o to one JSON line (NDJSON-ready: no interior
// newlines), canonicalising the collector spec first so every spelling
// of a configuration serialises — and therefore stores — identically.
func Encode(o Outcome) ([]byte, error) {
	spec, err := collectors.Canonical(o.Job.Collector)
	if err != nil {
		return nil, fmt.Errorf("results: encode: %w", err)
	}
	o.Job.Collector = spec
	b, err := json.Marshal(o)
	if err != nil {
		return nil, fmt.Errorf("results: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode unmarshals an Encode line, re-validating the collector spec
// against the registry grammar (a stored cell for a collector this
// build no longer knows is an error, not a silent blob) and checking
// payload/kind consistency.
func Decode(data []byte) (Outcome, error) {
	var o Outcome
	if err := json.Unmarshal(data, &o); err != nil {
		return Outcome{}, fmt.Errorf("results: decode: %w", err)
	}
	spec, err := collectors.Canonical(o.Job.Collector)
	if err != nil {
		return Outcome{}, fmt.Errorf("results: decode: %w", err)
	}
	o.Job.Collector = spec
	if o.Err == "" {
		switch o.Payload.Kind {
		case "cg":
			if o.Payload.CG == nil {
				return Outcome{}, fmt.Errorf("results: decode: kind %q without payload", o.Payload.Kind)
			}
		case "msa":
			if o.Payload.MSA == nil {
				return Outcome{}, fmt.Errorf("results: decode: kind %q without payload", o.Payload.Kind)
			}
		case "gen":
			if o.Payload.Gen == nil {
				return Outcome{}, fmt.Errorf("results: decode: kind %q without payload", o.Payload.Kind)
			}
		case "none":
		default:
			return Outcome{}, fmt.Errorf("results: decode: unknown payload kind %q", o.Payload.Kind)
		}
	}
	return o, nil
}

// Failed reports whether the outcome carries an error instead of a
// payload, and materialises it.
func (o Outcome) Failed() error {
	if o.Err == "" {
		return nil
	}
	return fmt.Errorf("results: %s/%d under %s: %s",
		o.Job.Workload, o.Job.Size, o.Job.Collector, o.Err)
}

// Backend runs a batch of cells and emits one Outcome per job. The
// contract every implementation upholds:
//
//   - emit(i, o) is called exactly once per job, sequentially (never
//     concurrently), and in strictly increasing i — submission order,
//     regardless of which worker, process or store hit produced o.
//   - job-level failures travel inside Outcome.Err; Run's own error
//     means the batch could not complete (a broken store, every worker
//     dead) and some cells may not have been emitted.
//
// Index-ordered emission is what makes downstream rendering
// deterministic: a -procs 4 sweep and a -workers 1 sweep present the
// identical event sequence.
type Backend interface {
	Run(jobs []engine.Job, emit func(i int, o Outcome)) error
}

// Local is the in-process Backend: cells run on an engine worker pool
// and are extracted on the worker goroutine, so a completed shard is
// dropped immediately (RunEach footprint, not Stream's). Obs, when
// non-nil, counts each computed cell for a live debug surface.
type Local struct {
	Eng *engine.Engine
	Obs *obs.Progress
}

// Run implements Backend.
func (l Local) Run(jobs []engine.Job, emit func(i int, o Outcome)) error {
	ord := NewReorder(len(jobs), emit)
	l.Eng.RunEach(jobs, func(i int, r engine.Result) {
		ord.Add(i, Extract(r))
		l.Obs.AddComputed(1)
	})
	return ord.Finish()
}

// Observed wraps a Backend to count each batch's jobs toward a live
// progress total. It is applied outermost — around Resuming, which
// itself counts store hits, around Local/Coordinator, which count
// computed cells — so the three counters partition cleanly: total =
// stored + computed once a batch completes.
type Observed struct {
	Next Backend
	Obs  *obs.Progress
}

// Run implements Backend.
func (b Observed) Run(jobs []engine.Job, emit func(i int, o Outcome)) error {
	b.Obs.AddTotal(len(jobs))
	return b.Next.Run(jobs, emit)
}

// Reorder turns concurrent (index, Outcome) completions into the
// sequential, index-ordered emit calls the Backend contract promises.
// Emission happens under the lock, so emit never runs concurrently. It
// is the one implementation of the prefix-flush merge every backend —
// Local here, the dist coordinator across processes — goes through.
type Reorder struct {
	mu      sync.Mutex
	emit    func(int, Outcome)
	pending map[int]Outcome
	have    []bool
	next    int
}

// NewReorder returns a reorderer over n slots.
func NewReorder(n int, emit func(int, Outcome)) *Reorder {
	return &Reorder{emit: emit, pending: make(map[int]Outcome), have: make([]bool, n)}
}

// Add records outcome i and flushes the completed prefix. Duplicate
// completions (a retried cell that raced its first worker's death) are
// dropped: first result wins.
func (r *Reorder) Add(i int, o Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.have[i] {
		return
	}
	r.have[i] = true
	r.pending[i] = o
	for {
		o, ok := r.pending[r.next]
		if !ok {
			return
		}
		delete(r.pending, r.next)
		i := r.next
		r.next++
		r.emit(i, o)
	}
}

// Emitted reports how many slots have been emitted so far.
func (r *Reorder) Emitted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Finish verifies every slot was emitted.
func (r *Reorder) Finish() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next != len(r.have) {
		return fmt.Errorf("results: %d of %d cells never completed", len(r.have)-r.next, len(r.have))
	}
	return nil
}
