package results

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/collectors"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// keyVersion stamps the cell-identity scheme. Bump it when Outcome's
// schema or a key component's meaning changes: old files simply stop
// matching and cells recompute, instead of deserialising garbage.
// v2: Outcome grew the Arena occupancy extract (the slab-arena Info
// counters), whose values depend on the allocator's page/size-class
// layout — v1 cells predate that layout and must recompute.
// v3: Outcome grew the cycle-phase extract (Obs) and the provenance
// stamp (Prov); v2 cells carry neither, so they must recompute rather
// than read back as cells with no observability.
const keyVersion = "v3"

// Key is the canonical identity of a cell: every field that determines
// its deterministic outcome. The collector spec is canonicalised
// through the registry grammar (so "cg-recycle" and "cg+recycle" are
// one cell) and the workload's RNG seed is included explicitly (so a
// change to the seeding scheme invalidates the store rather than
// silently mixing event streams). HeapBytes stays in its symbolic form
// — 0 for the demographics default, TightHeap for the workload budget —
// which is itself deterministic per job.
func Key(job engine.Job) (string, error) {
	spec, err := collectors.Canonical(job.Collector)
	if err != nil {
		return "", err
	}
	if _, err := workload.ByName(job.Workload); err != nil {
		return "", err
	}
	reps := job.Repeats
	if reps < 1 {
		reps = 1
	}
	return fmt.Sprintf("%s w=%s s=%d c=%s h=%d g=%d r=%d seed=%d",
		keyVersion, job.Workload, job.Size, spec,
		job.HeapBytes, job.GCEvery, reps, workload.Seed(job.Workload, job.Size)), nil
}

// Store is the content-addressed on-disk cell store: one JSON file per
// completed cell, named by the SHA-256 of its Key. Concurrent writers
// (multiple sweep processes, a coordinator and its workers) are safe:
// files land via write-to-temp + rename, and whichever rename wins
// recorded the same deterministic outcome.
type Store struct {
	dir string
}

// Open creates dir if needed and returns the store over it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("results: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// KeyHash is the content-address of a cell key: the hex SHA-256 that
// names its store file and — because cells are deterministic functions
// of their key — doubles as a strong HTTP ETag for served outcomes.
func KeyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, KeyHash(key)+".json")
}

// GetKey returns the stored cell for an exact key string, as the raw
// Encode bytes — the shape an HTTP cell endpoint serves verbatim. The
// stored cell is decoded and its key recomputed before returning, so a
// torn or stale file reads as a miss plus the underlying error, exactly
// like Get.
func (s *Store) GetKey(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	o, err := Decode(data)
	if err != nil {
		return nil, false, err
	}
	back, err := Key(o.Job)
	if err != nil || back != key {
		return nil, false, fmt.Errorf("results: store file for %q holds cell %q", key, back)
	}
	return data, true, nil
}

// Get returns the stored outcome of job, if present. A stored file that
// fails to decode or whose recomputed key mismatches (schema drift, a
// truncated write from a kill -9 that beat the rename) reads as a miss
// plus the underlying error; resume treats it as not-yet-computed.
func (s *Store) Get(job engine.Job) (Outcome, bool, error) {
	key, err := Key(job)
	if err != nil {
		return Outcome{}, false, err
	}
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return Outcome{}, false, nil
	}
	if err != nil {
		return Outcome{}, false, err
	}
	o, err := Decode(data)
	if err != nil {
		return Outcome{}, false, err
	}
	back, err := Key(o.Job)
	if err != nil || back != key {
		return Outcome{}, false, fmt.Errorf("results: store file for %q holds cell %q", key, back)
	}
	return o, true, nil
}

// Put stores a completed cell atomically. Failed outcomes are not
// stored — cells are deterministic, but an admission-time condition
// (say, a since-raised memory cap) should be retried by the next sweep,
// and a panic bug fixed in a later build must not leave a poisoned
// cache behind.
func (s *Store) Put(o Outcome) error {
	if o.Err != "" {
		return nil
	}
	key, err := Key(o.Job)
	if err != nil {
		return err
	}
	data, err := Encode(o)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".cell-*")
	if err != nil {
		return fmt.Errorf("results: store put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("results: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("results: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("results: store put: %w", err)
	}
	return nil
}

// Len counts the stored cells (diagnostics; O(dir)).
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// Resuming wraps a Backend with a Store: cells already on disk are
// emitted without recomputation, the rest run on the inner backend and
// are stored as they complete. Emission stays in strict index order
// across both sources, so a resumed sweep renders byte-identically to a
// cold one.
type Resuming struct {
	Store *Store
	Next  Backend
	// Obs, when non-nil, counts store hits for a live debug surface
	// (computed cells are counted by the inner backend).
	Obs *obs.Progress

	stored, computed int
}

// Stats reports how many cells Runs on this backend have served from
// the store and how many they computed, cumulatively — a sweep calls
// Run once per figure, and cells stored by an earlier figure count as
// stored when a later figure reuses them (cross-figure dedup is part
// of what the store buys).
func (r *Resuming) Stats() (stored, computed int) { return r.stored, r.computed }

// Run implements Backend.
func (r *Resuming) Run(jobs []engine.Job, emit func(i int, o Outcome)) error {
	outs := make([]Outcome, len(jobs))
	have := make([]bool, len(jobs))
	var missing []int
	for i, job := range jobs {
		o, ok, err := r.Store.Get(job)
		if err != nil {
			// Unreadable cells (torn write from a killed sweep) recompute.
			ok = false
		}
		if ok {
			outs[i], have[i] = o, true
			r.stored++
			r.Obs.AddStored(1)
		} else {
			missing = append(missing, i)
		}
	}

	// Emit the in-order prefix that is already satisfied, then interleave
	// inner completions: the inner backend emits its sub-batch in its own
	// index order, which maps monotonically onto ours, so the merged
	// emission is in global index order.
	next := 0
	flush := func() {
		for next < len(jobs) && have[next] {
			emit(next, outs[next])
			next++
		}
	}
	flush()
	if len(missing) == 0 {
		return nil
	}

	sub := make([]engine.Job, len(missing))
	for mi, gi := range missing {
		sub[mi] = jobs[gi]
	}
	var putErr error
	err := r.Next.Run(sub, func(mi int, o Outcome) {
		gi := missing[mi]
		if err := r.Store.Put(o); err != nil && putErr == nil {
			putErr = err
		}
		outs[gi], have[gi] = o, true
		r.computed++
		flush()
	})
	if err != nil {
		return err
	}
	if putErr != nil {
		return putErr
	}
	if next != len(jobs) {
		return fmt.Errorf("results: resume emitted %d of %d cells", next, len(jobs))
	}
	return nil
}
