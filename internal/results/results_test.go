package results

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
)

func exec(t *testing.T, job engine.Job) Outcome {
	t.Helper()
	o := Extract(engine.Exec(job))
	if o.Err != "" {
		t.Fatalf("Exec(%+v): %s", job, o.Err)
	}
	return o
}

func TestCodecRoundTripsTypedPayloads(t *testing.T) {
	jobs := []engine.Job{
		{Workload: "compress", Size: 1, Collector: "cg+recycle", HeapBytes: engine.TightHeap},
		{Workload: "compress", Size: 1, Collector: "msa", HeapBytes: engine.TightHeap},
		{Workload: "compress", Size: 1, Collector: "gen", HeapBytes: engine.TightHeap},
		{Workload: "compress", Size: 1, Collector: "none"},
	}
	for _, job := range jobs {
		o := exec(t, job)
		if o.Arena == nil || o.Arena.Capacity <= 0 || o.Arena.HeapBytes > o.Arena.Capacity {
			t.Fatalf("Extract(%s) arena occupancy missing or inconsistent: %+v", job.Collector, o.Arena)
		}
		line, err := Encode(o)
		if err != nil {
			t.Fatalf("Encode(%s): %v", job.Collector, err)
		}
		if bytes.Count(line, []byte("\n")) != 1 || line[len(line)-1] != '\n' {
			t.Fatalf("Encode(%s) is not one NDJSON line: %q", job.Collector, line)
		}
		back, err := Decode(line)
		if err != nil {
			t.Fatalf("Decode(%s): %v", job.Collector, err)
		}
		if !reflect.DeepEqual(o, back) {
			t.Fatalf("round trip diverged for %s:\n%+v\n%+v", job.Collector, o, back)
		}
	}
}

func TestCodecCanonicalisesSpecs(t *testing.T) {
	job := engine.Job{Workload: "compress", Size: 1, Collector: "cg-recycle", HeapBytes: engine.TightHeap}
	o := exec(t, job)
	line, err := Encode(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(line)
	if err != nil {
		t.Fatal(err)
	}
	if back.Job.Collector != "cg+recycle" {
		t.Fatalf("decoded spec %q, want canonical %q", back.Job.Collector, "cg+recycle")
	}
}

func TestDecodeRejectsBadCells(t *testing.T) {
	for name, line := range map[string]string{
		"garbage":       "{not json",
		"unknown spec":  `{"job":{"Workload":"compress","Size":1,"Collector":"quantum"},"payload":{"kind":"none"}}`,
		"kind mismatch": `{"job":{"Workload":"compress","Size":1,"Collector":"cg"},"payload":{"kind":"cg"}}`,
		"unknown kind":  `{"job":{"Workload":"compress","Size":1,"Collector":"cg"},"payload":{"kind":"warp"}}`,
	} {
		if _, err := Decode([]byte(line)); err == nil {
			t.Fatalf("%s: Decode must error", name)
		}
	}
}

func TestKeyIdentity(t *testing.T) {
	base := engine.Job{Workload: "compress", Size: 1, Collector: "cg"}
	k1, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}
	// Alias spellings and default repeats collapse to the same cell.
	alias := base
	alias.Collector = "cg"
	alias.Repeats = 1
	if k2, _ := Key(alias); k2 != k1 {
		t.Fatalf("Repeats 0 and 1 keyed differently:\n%s\n%s", k1, k2)
	}
	spelled := base
	spelled.Collector = "cg+recycle"
	k3, _ := Key(spelled)
	spelled.Collector = "cg-recycle"
	if k4, _ := Key(spelled); k4 != k3 {
		t.Fatalf("alias keyed differently:\n%s\n%s", k3, k4)
	}
	// Every identity-bearing field separates cells.
	for _, vary := range []func(*engine.Job){
		func(j *engine.Job) { j.Workload = "db" },
		func(j *engine.Job) { j.Size = 10 },
		func(j *engine.Job) { j.Collector = "cg+noopt" },
		func(j *engine.Job) { j.HeapBytes = engine.TightHeap },
		func(j *engine.Job) { j.GCEvery = 100 },
		func(j *engine.Job) { j.Repeats = 3 },
	} {
		j := base
		vary(&j)
		k, err := Key(j)
		if err != nil {
			t.Fatal(err)
		}
		if k == k1 {
			t.Fatalf("distinct cell %+v collided with base key %s", j, k1)
		}
	}
	if _, err := Key(engine.Job{Workload: "nosuch", Size: 1, Collector: "cg"}); err == nil {
		t.Fatal("unknown workload must not key")
	}
}

func TestStorePutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := engine.Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap}
	if _, ok, err := st.Get(job); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	o := exec(t, job)
	if err := st.Put(o); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(job)
	if !ok || err != nil {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(o, got) {
		t.Fatalf("stored cell diverged:\n%+v\n%+v", o, got)
	}
	// The alias spelling hits the same cell.
	aliased := job
	aliased.Collector = "cg"
	if _, ok, _ := st.Get(aliased); !ok {
		t.Fatal("canonical respelling missed the stored cell")
	}
	if n, err := st.Len(); n != 1 || err != nil {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestStoreSkipsFailedOutcomes(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := engine.Job{Workload: "compress", Size: 1, Collector: "cg"}
	if err := st.Put(Outcome{Job: job, Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get(job); ok {
		t.Fatal("failed outcome must not be stored")
	}
}

func TestStoreTornWriteReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := engine.Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap}
	if err := st.Put(exec(t, job)); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte(`{"trunc`), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := st.Get(job); ok || err == nil {
		t.Fatalf("torn cell: ok=%v err=%v, want miss with error", ok, err)
	}
}

func TestSinkStreamsRowsInIndexOrder(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, "T", 3, "a", "bb")
	header := buf.String()
	if !strings.Contains(header, "T\n") || !strings.Contains(header, "a ") {
		t.Fatalf("header not written eagerly: %q", header)
	}
	s.Row(2, "z", 3)
	if strings.Contains(buf.String(), "z") {
		t.Fatal("row 2 rendered before rows 0-1")
	}
	s.Row(0, "x", 1)
	if !strings.Contains(buf.String(), "x") {
		t.Fatal("row 0 must render immediately")
	}
	s.Row(1, "y", 2.5)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "T\na  bb\n-----\nx  1 \ny  2.50\nz  3 \n"
	if buf.String() != want {
		t.Fatalf("sink rendered:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestSinkFlushReportsMissingRows(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf, "", 2, "h")
	s.Row(0, "only")
	if err := s.Flush(); err == nil {
		t.Fatal("missing row must fail Flush")
	}
}

func TestSinkConcurrentRows(t *testing.T) {
	var buf bytes.Buffer
	const n = 64
	s := NewSink(&buf, "", n, "i")
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Row(i, i)
		}(i)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	rows := lines[2:] // header + rule
	for i, l := range rows {
		if strings.TrimSpace(l) != strconv.Itoa(i) {
			t.Fatalf("row %d rendered as %q", i, l)
		}
	}
}

func TestLocalBackendEmitsInOrder(t *testing.T) {
	jobs := []engine.Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg"},
		{Workload: "nosuch", Size: 1, Collector: "cg"},
		{Workload: "jess", Size: 1, Collector: "msa"},
	}
	var got []Outcome
	err := Local{Eng: engine.New(4)}.Run(jobs, func(i int, o Outcome) {
		if i != len(got) {
			t.Fatalf("emit index %d out of order (have %d)", i, len(got))
		}
		got = append(got, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("emitted %d outcomes, want %d", len(got), len(jobs))
	}
	if got[2].Err == "" {
		t.Fatal("bad cell must carry its error")
	}
	if got[0].Payload.Kind != "cg" || got[3].Payload.Kind != "msa" {
		t.Fatalf("payload kinds %q/%q", got[0].Payload.Kind, got[3].Payload.Kind)
	}
}

func TestResumingComputesOnlyMissingCells(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []engine.Job{
		{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
		{Workload: "db", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
		{Workload: "jess", Size: 1, Collector: "cg", HeapBytes: engine.TightHeap},
	}
	run := func() (*Resuming, []Outcome) {
		r := &Resuming{Store: st, Next: Local{Eng: engine.New(2)}}
		var got []Outcome
		if err := r.Run(jobs, func(i int, o Outcome) {
			if i != len(got) {
				t.Fatalf("emit index %d out of order", i)
			}
			got = append(got, o)
		}); err != nil {
			t.Fatal(err)
		}
		return r, got
	}

	r1, cold := run()
	if s, c := r1.Stats(); s != 0 || c != len(jobs) {
		t.Fatalf("cold run: stored=%d computed=%d", s, c)
	}
	// The resumed run must recompute zero already-stored cells.
	r2, warm := run()
	if s, c := r2.Stats(); s != len(jobs) || c != 0 {
		t.Fatalf("resumed run: stored=%d computed=%d, want %d/0", s, c, len(jobs))
	}
	stripElapsed := func(os []Outcome) []Outcome {
		out := append([]Outcome(nil), os...)
		for i := range out {
			out[i].Elapsed = 0
		}
		return out
	}
	if !reflect.DeepEqual(stripElapsed(cold), stripElapsed(warm)) {
		t.Fatal("resumed outcomes diverged from cold outcomes")
	}

	// Kill-and-restart: lose one stored cell, resume recomputes just it.
	lost, _ := Key(jobs[1])
	if err := os.Remove(st.path(lost)); err != nil {
		t.Fatal(err)
	}
	r3, _ := run()
	if s, c := r3.Stats(); s != len(jobs)-1 || c != 1 {
		t.Fatalf("partial resume: stored=%d computed=%d, want %d/1", s, c, len(jobs)-1)
	}
}
