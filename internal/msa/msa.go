// Package msa implements the "traditional collector" of the thesis: an
// exact mark-and-sweep collector (MSA) over the handle table, rooted in
// the runtime stacks and static area ("the roots of computation", §1).
//
// The collection cycle exposes observation points so the contaminated
// collector can verify and rebuild its equilive structures while the
// world is being traversed anyway — the resetting scheme of §3.6.
// Observers subscribe through the Cycle descriptor, the collection-side
// analog of vm.Events: function-valued slots, nil meaning
// "unsubscribed". A cycle with no per-object/per-edge slots runs a
// tight, hook-free mark loop (and, for large heaps, a deterministic
// parallel trace — see trace.go); a fully subscribed cycle pays one
// direct indirect call per event, never interface dispatch.
//
// Frames are visited oldest-first (static pseudo-frame, then each
// thread's stack bottom-up), so the first frame to reach an object is
// the oldest frame that references it: the conservative dependent frame
// CG wants.
package msa

import (
	"math/bits"
	"sync"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Cycle describes what an observer wants from one collection cycle —
// the descriptor that replaced the five-method Hooks interface. Every
// slot is optional; the zero value observes nothing and selects the
// flat (and, when profitable, parallel) mark path.
type Cycle struct {
	// Begin fires before marking starts.
	Begin func()
	// Reached fires the first time the mark phase visits id; f is the
	// root frame whose traversal reached it first.
	Reached func(id heap.HandleID, f *vm.Frame)
	// Edge fires for every reference src -> dst the traversal follows
	// (dst may already be marked).
	Edge func(src, dst heap.HandleID)
	// WillFree fires during the sweep for every unmarked object, just
	// before the heap extent is released.
	WillFree func(id heap.HandleID)
	// End fires after the sweep with the number of objects freed.
	End func(freed int)
}

// Stats aggregates collector activity across cycles.
type Stats struct {
	Cycles     int    // collections performed
	Marked     uint64 // cumulative objects marked (cache-pollution proxy)
	Freed      uint64 // cumulative objects swept
	EdgeVisits uint64 // cumulative reference traversals
}

// Merge accumulates o into s (order-independent shard aggregation).
func (s *Stats) Merge(o Stats) {
	s.Cycles += o.Cycles
	s.Marked += o.Marked
	s.Freed += o.Freed
	s.EdgeVisits += o.EdgeVisits
}

// Collector is the mark–sweep engine. It holds no policy about *when*
// to collect; the runtime (or a wrapping collector) decides that.
type Collector struct {
	rt    *vm.Runtime
	stats Stats
	mark  heap.Bitset     // scratch mark bits, indexed by HandleID
	work  []heap.HandleID // scratch DFS stack
	// parts/workers are parallel-trace scratch (trace.go): the root
	// partition list and the per-cycle worker scratch table, recycled
	// with the engine through Reattach and the collector pools.
	parts   []vm.RootGroup
	workers []*traceScratch
	// traceWorkers/traceMinLive override the package-level parallel
	// tracing defaults when non-zero; overlapOn/occSaturated are the
	// per-engine overlap admission and core-occupancy bits
	// (SetTraceConfig).
	traceWorkers int
	traceMinLive int
	overlapOn    bool
	occSaturated bool

	// Overlapped-cycle scratch (overlap.go): the pooled heap snapshot,
	// the flat root-value copy with its group spans, the in-flight
	// worker join, and the per-worker sweep batches. All retained
	// across cycles of one run.
	snap    heap.Snapshot
	rootBuf []heap.HandleID
	oparts  []vm.RootGroup
	frozen  []heap.HandleID
	batches []heap.FreeBatch
	wg      sync.WaitGroup
}

// New returns a mark–sweep engine bound to rt.
func New(rt *vm.Runtime) *Collector { return &Collector{rt: rt} }

// Reattach rebinds the engine to a new runtime and zeroes its
// counters, keeping the mark/work/trace scratch capacity. A reattached
// engine is observably fresh: Collect re-sizes and re-clears the mark
// bits every cycle anyway. Pooled collectors (core's detachable
// tables, the System pool below) reuse engines through this instead of
// allocating HandleCap-sized scratch per matrix cell. The root
// partition scratch is pointer-bearing and is cleared through its
// capacity, so a pooled engine never pins a dead shard's frames.
func (m *Collector) Reattach(rt *vm.Runtime) {
	m.rt = rt
	m.stats = Stats{}
	// Per-engine configuration does not survive reattachment: a pooled
	// engine must behave like a fresh one, not like whichever previous
	// user tuned it last.
	m.traceWorkers, m.traceMinLive = 0, 0
	m.overlapOn, m.occSaturated = false, false
	parts := m.parts[:cap(m.parts)]
	clear(parts)
	m.parts = parts[:0]
	// Overlap scratch: the snapshot must not pin the old heap, and the
	// group-span copy is pointer-bearing (frames) like parts. The flat
	// root and sweep-batch buffers are pointer-free; batches are
	// dropped anyway so an idle pooled engine does not retain
	// sweep-sized arrays.
	m.snap.Release()
	oparts := m.oparts[:cap(m.oparts)]
	clear(oparts)
	m.oparts = oparts[:0]
	m.batches = nil
	// Trace-worker scratch is kept across cycles of one run (forced-GC
	// cells cycle thousands of times) but returns to the shared pool
	// between runs: W private bitsets per idle engine would dwarf the
	// mark scratch the pool exists to recycle.
	for i, s := range m.workers {
		scratchPool.Put(s)
		m.workers[i] = nil
	}
	m.workers = m.workers[:0]
}

// Stats returns a copy of the counters.
func (m *Collector) Stats() Stats { return m.stats }

// Collect runs one full mark–sweep cycle, firing the cycle descriptor's
// subscribed slots throughout, and returns the number of objects freed.
//
// The mark phase picks the cheapest loop the subscription allows: with
// no Reached/Edge slot it runs hook-free — zero calls per edge — and
// escalates to the deterministic parallel tracer when the live
// population clears the admission gate; with either slot bound it runs
// the sequential devirtualized loop (the rebuild observers depend on
// the exact oldest-first DFS event order, which parallel tracing does
// not replay — see trace.go for why the mark *set* still matches).
//
// The sweep phase is word-at-a-time: garbage in a 64-handle window is
// one live&^mark, and each garbage object is found with a
// find-next-set-bit loop instead of a per-handle liveness branch.
func (m *Collector) Collect(cy Cycle) int {
	h := m.rt.Heap
	m.stats.Cycles++
	if cy.Begin != nil {
		cy.Begin()
	}
	m.mark.Reset(h.HandleCap())

	markedBefore := m.stats.Marked
	traceWorkers := 1
	if cy.Reached == nil && cy.Edge == nil {
		if w := m.parallelWorkers(h); w > 1 {
			traceWorkers = w
			m.markParallel(w, nil)
		} else {
			m.markFlat()
		}
	} else {
		m.markHooked(cy)
	}
	m.rt.Timeline().CycleMarkDone(traceWorkers, m.stats.Marked-markedBefore)

	// Sweep: handle-table order, releasing unmarked extents. The
	// garbage word is a snapshot, so each object re-checks the current
	// live word before its Free: a WillFree observer that itself
	// releases a garbage sibling must find that sibling skipped here,
	// exactly as the per-handle liveness walk this loop replaced
	// guaranteed.
	freed := 0
	live := h.LiveWords()
	mark := m.mark
	for k, lw := range live {
		g := lw &^ mark[k]
		base := k << 6
		for g != 0 {
			b := bits.TrailingZeros64(g)
			g &= g - 1
			if live[k]&(1<<uint(b)) == 0 {
				continue
			}
			id := heap.HandleID(base + b)
			if cy.WillFree != nil {
				cy.WillFree(id)
			}
			h.Free(id)
			freed++
		}
	}
	m.stats.Freed += uint64(freed)
	if cy.End != nil {
		cy.End(freed)
	}
	return freed
}

// markFlat is the hook-free sequential mark: the tight inner loop a
// cycle with no per-object/per-edge observers runs. Roots are visited
// in the canonical oldest-first order; each reachable object is pushed
// once and its slab extent scanned once.
func (m *Collector) markFlat() {
	h := m.rt.Heap
	mark := m.mark
	work := m.work[:0]
	var marked, edges uint64
	m.rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r == heap.Nil || mark.Has(int(r)) {
				continue
			}
			mark.Set(int(r))
			marked++
			work = append(work, r)
			for len(work) > 0 {
				src := work[len(work)-1]
				work = work[:len(work)-1]
				// RefSlots walks the object's slab extent directly —
				// the contiguous-memory traversal the slab layout buys
				// the mark phase.
				for _, dst := range h.RefSlots(src) {
					if dst == heap.Nil {
						continue
					}
					edges++
					if !mark.Has(int(dst)) {
						mark.Set(int(dst))
						marked++
						work = append(work, dst)
					}
				}
			}
		}
	})
	m.work = work
	m.stats.Marked += marked
	m.stats.EdgeVisits += edges
}

// markHooked is the observed sequential mark: identical traversal to
// markFlat, firing the subscribed Reached/Edge slots. Event order is
// the contract the §3.6 rebuild depends on: Reached fires before any
// Edge touching the object, so a rebuilding observer (internal/core)
// sees both endpoints in fresh singleton sets before re-contaminating
// them, and the oldest-first root order makes the first reaching frame
// the most conservative dependent frame.
func (m *Collector) markHooked(cy Cycle) {
	h := m.rt.Heap
	mark := m.mark
	work := m.work[:0]
	reached, edge := cy.Reached, cy.Edge
	var marked, edges uint64
	m.rt.EachRootFrame(func(f *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r == heap.Nil || mark.Has(int(r)) {
				continue
			}
			mark.Set(int(r))
			marked++
			if reached != nil {
				reached(r, f)
			}
			work = append(work, r)
			for len(work) > 0 {
				src := work[len(work)-1]
				work = work[:len(work)-1]
				for _, dst := range h.RefSlots(src) {
					if dst == heap.Nil {
						continue
					}
					edges++
					if !mark.Has(int(dst)) {
						mark.Set(int(dst))
						marked++
						if reached != nil {
							reached(dst, f)
						}
						work = append(work, dst)
					}
					if edge != nil {
						edge(src, dst)
					}
				}
			}
		}
	})
	m.work = work
	m.stats.Marked += marked
	m.stats.EdgeVisits += edges
}

// systemPool recycles System engines (mark bitset, DFS stack, trace
// scratch) across pooled-shard cells through the event table's Detach
// path, mirroring core's table pool.
var systemPool = sync.Pool{New: func() any { return &Collector{} }}

// System is the baseline "JDK 1.1.8" configuration: no incremental
// collection, mark–sweep on demand. It implements vm.Collector with the
// leanest possible event table: mark–sweep needs no per-event
// bookkeeping at all, so it subscribes no slot and declares only the
// Collect capability — under the event-table ABI every putfield,
// access and frame pop under msa costs the runtime nothing. Its
// collection cycle subscribes no Cycle slot either, so it always runs
// the flat (or parallel) mark.
type System struct {
	m *Collector
	// cfg is the per-engine tracing configuration, applied to the
	// pooled engine at every Attach (and immediately when already
	// attached) so configuration set before vm.New survives the
	// pool draw.
	cfg TraceConfig
}

// NewSystem returns an unattached baseline system; pass it to vm.New.
func NewSystem() *System { return &System{} }

// Name identifies the system in experiment output.
func (s *System) Name() string { return "msa" }

// Events implements vm.Collector.
func (s *System) Events() vm.Events {
	return vm.Events{
		Name:      "msa",
		Attach:    s.Attach,
		Detach:    s.detach,
		Collect:   s.Collect,
		Overlap:   s.Overlap,
		Collector: s,
	}
}

// Attach binds the system to rt (the descriptor's Attach hook), drawing
// a pooled engine so a sweep of matrix cells stops re-allocating
// HandleCap-sized mark scratch per cell.
func (s *System) Attach(rt *vm.Runtime) {
	m := systemPool.Get().(*Collector)
	m.Reattach(rt)
	m.SetTraceConfig(s.cfg)
	s.m = m
}

// SetTraceConfig records the per-engine tracing configuration,
// applying it to the attached engine immediately and to every engine
// this system attaches later (vm.TraceConfigurable — engines call
// this per job instead of racing on the package globals).
func (s *System) SetTraceConfig(c TraceConfig) {
	s.cfg = c
	if s.m != nil {
		s.m.SetTraceConfig(c)
	}
}

// Overlap is the overlapped-collection capability (vm.Events.Overlap):
// hook-free msa cycles may trace against a snapshot epoch while the
// mutator keeps stepping.
func (s *System) Overlap() (func() int, bool) { return s.m.CollectOverlap() }

// detach implements the event table's Detach capability: the engine
// (and its scratch) goes back to the pool. The system must not be
// queried after detach; m is nilled so a violation fails loudly.
func (s *System) detach() {
	if s.m == nil {
		return
	}
	s.m.Reattach(nil)
	systemPool.Put(s.m)
	s.m = nil
}

// Collect is the collection capability.
func (s *System) Collect() int { return s.m.Collect(Cycle{}) }

// Engine exposes the underlying mark–sweep engine (stats).
func (s *System) Engine() *Collector { return s.m }

var _ vm.Collector = (*System)(nil)
