// Package msa implements the "traditional collector" of the thesis: an
// exact mark-and-sweep collector (MSA) over the handle table, rooted in
// the runtime stacks and static area ("the roots of computation", §1).
//
// The mark phase exposes hooks so the contaminated collector can verify
// and rebuild its equilive structures while the world is being traversed
// anyway — the resetting scheme of §3.6. Frames are visited oldest-first
// (static pseudo-frame, then each thread's stack bottom-up), so the first
// frame to reach an object is the oldest frame that references it: the
// conservative dependent frame CG wants.
package msa

import (
	"repro/internal/heap"
	"repro/internal/vm"
)

// Hooks observe the collection cycle. The zero-value NopHooks ignores
// everything.
type Hooks interface {
	// BeginCycle fires before marking starts.
	BeginCycle()
	// Reached fires the first time the mark phase visits id; f is the
	// root frame whose traversal reached it first.
	Reached(id heap.HandleID, f *vm.Frame)
	// Edge fires for every reference src -> dst the traversal follows
	// (dst may already be marked).
	Edge(src, dst heap.HandleID)
	// WillFree fires during the sweep for every unmarked object, just
	// before the heap extent is released.
	WillFree(id heap.HandleID)
	// EndCycle fires after the sweep with the number of objects freed.
	EndCycle(freed int)
}

// NopHooks is the do-nothing Hooks implementation.
type NopHooks struct{}

// BeginCycle implements Hooks.
func (NopHooks) BeginCycle() {}

// Reached implements Hooks.
func (NopHooks) Reached(heap.HandleID, *vm.Frame) {}

// Edge implements Hooks.
func (NopHooks) Edge(src, dst heap.HandleID) {}

// WillFree implements Hooks.
func (NopHooks) WillFree(heap.HandleID) {}

// EndCycle implements Hooks.
func (NopHooks) EndCycle(int) {}

// Stats aggregates collector activity across cycles.
type Stats struct {
	Cycles     int    // collections performed
	Marked     uint64 // cumulative objects marked (cache-pollution proxy)
	Freed      uint64 // cumulative objects swept
	EdgeVisits uint64 // cumulative reference traversals
}

// Merge accumulates o into s (order-independent shard aggregation).
func (s *Stats) Merge(o Stats) {
	s.Cycles += o.Cycles
	s.Marked += o.Marked
	s.Freed += o.Freed
	s.EdgeVisits += o.EdgeVisits
}

// Collector is the mark–sweep engine. It holds no policy about *when* to
// collect; the runtime (or a wrapping collector) decides that.
type Collector struct {
	rt    *vm.Runtime
	stats Stats
	mark  []bool          // scratch mark bits, indexed by HandleID
	work  []heap.HandleID // scratch DFS stack
}

// New returns a mark–sweep engine bound to rt.
func New(rt *vm.Runtime) *Collector { return &Collector{rt: rt} }

// Reattach rebinds the engine to a new runtime and zeroes its
// counters, keeping the mark/work scratch capacity. A reattached
// engine is observably fresh: Collect re-sizes and re-clears the mark
// bits every cycle anyway. Pooled collectors (core's detachable
// tables) reuse engines through this instead of allocating
// HandleCap-sized scratch per matrix cell.
func (m *Collector) Reattach(rt *vm.Runtime) {
	m.rt = rt
	m.stats = Stats{}
}

// Stats returns a copy of the counters.
func (m *Collector) Stats() Stats { return m.stats }

// Collect runs one full mark–sweep cycle, invoking hooks throughout, and
// returns the number of objects freed.
func (m *Collector) Collect(hooks Hooks) int {
	h := m.rt.Heap
	m.stats.Cycles++
	hooks.BeginCycle()

	cap := h.HandleCap()
	if len(m.mark) < cap {
		m.mark = make([]bool, cap)
	} else {
		for i := range m.mark {
			m.mark[i] = false
		}
	}

	// Mark phase: roots in oldest-first frame order.
	m.rt.EachRootFrame(func(f *vm.Frame, roots []heap.HandleID) {
		for _, r := range roots {
			if r != heap.Nil {
				m.markFrom(r, f, hooks)
			}
		}
	})

	// Sweep phase: handle-table order, releasing unmarked extents.
	freed := 0
	h.ForEachLive(func(id heap.HandleID) {
		if !m.mark[int(id)] {
			hooks.WillFree(id)
			h.Free(id)
			freed++
		}
	})
	m.stats.Freed += uint64(freed)
	hooks.EndCycle(freed)
	return freed
}

// markFrom marks everything reachable from root, attributing first visits
// to frame f. Iterative DFS: recursion depth is data-dependent and the
// raytrace analog builds long chains.
func (m *Collector) markFrom(root heap.HandleID, f *vm.Frame, hooks Hooks) {
	h := m.rt.Heap
	if m.mark[int(root)] {
		return
	}
	m.mark[int(root)] = true
	m.stats.Marked++
	hooks.Reached(root, f)
	m.work = append(m.work[:0], root)
	for len(m.work) > 0 {
		src := m.work[len(m.work)-1]
		m.work = m.work[:len(m.work)-1]
		// RefSlots walks the object's slab extent directly — the
		// contiguous-memory traversal the slab layout buys the mark
		// phase (no per-edge closure call).
		for _, dst := range h.RefSlots(src) {
			if dst == heap.Nil {
				continue
			}
			m.stats.EdgeVisits++
			if !m.mark[int(dst)] {
				m.mark[int(dst)] = true
				m.stats.Marked++
				// Reached must precede the Edge event so a rebuilding
				// hook (internal/core) sees both endpoints in fresh
				// singleton sets before re-contaminating them.
				hooks.Reached(dst, f)
				m.work = append(m.work, dst)
			}
			hooks.Edge(src, dst)
		}
	}
}

// System is the baseline "JDK 1.1.8" configuration: no incremental
// collection, mark–sweep on demand. It implements vm.Collector with the
// leanest possible event table: mark–sweep needs no per-event
// bookkeeping at all, so it subscribes no slot and declares only the
// Collect capability — under the event-table ABI every putfield,
// access and frame pop under msa costs the runtime nothing.
type System struct {
	m *Collector
}

// NewSystem returns an unattached baseline system; pass it to vm.New.
func NewSystem() *System { return &System{} }

// Name identifies the system in experiment output.
func (s *System) Name() string { return "msa" }

// Events implements vm.Collector.
func (s *System) Events() vm.Events {
	return vm.Events{
		Name:      "msa",
		Attach:    s.Attach,
		Collect:   s.Collect,
		Collector: s,
	}
}

// Attach binds the system to rt (the descriptor's Attach hook).
func (s *System) Attach(rt *vm.Runtime) { s.m = New(rt) }

// Collect is the collection capability.
func (s *System) Collect() int { return s.m.Collect(NopHooks{}) }

// Engine exposes the underlying mark–sweep engine (stats).
func (s *System) Engine() *Collector { return s.m }

var _ vm.Collector = (*System)(nil)
