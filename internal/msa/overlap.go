package msa

import (
	"os"
	"sync"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Overlapped collection: snapshot-at-the-beginning tracing that runs
// concurrently with the mutator, for hook-free cycles only
// (DESIGN.md §10).
//
// The cycle splits into three pieces:
//
//   - Open (stop-the-world, a short pause): version the live bitmap
//     into a pooled heap.Snapshot, copy every root VALUE into a flat
//     buffer (so the trace never reads live locals/operands/statics
//     the mutator keeps mutating), and start the PR 5 deterministic
//     parallel trace — per-worker private bitsets over round-robin
//     root groups — on worker goroutines, reading the shared slab
//     through atomic loads and clamped to snapshot-live IDs.
//   - Overlap: the mutator keeps stepping. Its ref stores go through
//     the runtime's SATB barrier (vm.PutField -> heap.SetRefEpoch),
//     which records each overwritten value. The epoch permits stores
//     and reads only — the runtime closes the epoch before any
//     allocation — so the heap's handle table, extents and live bitmap
//     are frozen for the epoch's duration and the one genuinely
//     concurrent region is the ref slots, synchronised store/load by
//     atomics.
//   - Close (stop-the-world): join the workers, merge their bitsets
//     (the PR 5 disjoint word-chunk merge), drain the SATB buffer —
//     re-tracing from every recorded old value — and sweep in
//     parallel against the snapshot with the canonical-order batch
//     merge (heap.CollectGarbageRange / ApplyFreeBatch).
//
// Why the result is EXACT, not conservative, and therefore
// byte-identical to the stop-the-world cycle at the open point:
//
//  1. marks ⊇ reach(snapshot): the standard SATB induction. For any
//     snapshot path v0 -> v1 -> ... -> vk, each vi is eventually
//     marked and traced; when vi's slots are scanned, the edge to
//     vi+1 either still holds vi+1 (marked then) or was overwritten —
//     and the FIRST overwrite of a slot after the open recorded
//     exactly its snapshot value into the SATB buffer, which the
//     close drains and traces.
//  2. marks ⊆ reach(snapshot): the epoch admits no allocation, so
//     every value the mutator can store was read out of the snapshot-
//     reachable graph in the first place — every value any tracer can
//     ever load (snapshot value, later store, or SATB entry) is
//     snapshot-reachable, and the trace additionally clamps to
//     snapshot-live IDs.
//
// So the final mark set equals reach(snapshot) independent of worker
// count, scheduling or where the mutator had gotten to — and the
// freed set (snapshot-live minus marks) equals what a synchronous
// cycle at the open point would have freed. Combined with the
// runtime's close-before-allocation policy, every heap observable
// (handle IDs, arena addresses, stats, figure tables) is
// byte-identical to the stop-the-world schedule.
//
// EdgeVisits needs one correction: the merge recounts the marked
// set's out-degree over the close-time slab, but the stored stat must
// be the open-time count. Every epoch store lands in a snapshot-
// reachable (hence marked) object, so the runtime's barrier tracks
// the net Nil <-> non-Nil slot transitions and the close subtracts
// that delta — recovering the open-time out-degree exactly.
//
// Hooked (CG) cycles never overlap: §3.4's edge replay is
// order-sensitive (contamination is non-confluent), so they keep the
// sequential stop-the-world mark. Admission here mirrors the parallel
// tracer's: hook-free, overlap configured on, and NumLive clears the
// MinLive gate.

// overlapForced force-enables overlap admission process-wide
// (REPRO_OVERLAP=1): the CI -race suite and the determinism jobs run
// every hook-free cycle overlapped without threading a flag through
// every harness. Admission gates other than the on/off bit still
// apply.
var overlapForced = os.Getenv("REPRO_OVERLAP") == "1"

// CollectOverlap tries to open an overlapped collection cycle. On
// admission it takes the snapshot, starts the concurrent trace and
// returns the close function (the vm.Events Overlap contract: the
// runtime calls close with the world stopped). ok=false declines —
// overlap not configured, or the cycle is too small to be worth a
// snapshot epoch — and the caller falls back to the synchronous path.
func (m *Collector) CollectOverlap() (func() int, bool) {
	return m.collectOverlap(nil, false)
}

// collectOverlap is the shared overlap-open body. owners, when
// non-nil, requests first-reaching-group attribution (resolved in the
// close's merge exactly as markParallel's: minimum group index over
// workers); attribution over a concurrently mutating slab would be
// timing-dependent, so owners mode implies freeze. freeze copies the
// slab into the snapshot so the trace reads the epoch-start graph
// verbatim — the property tests' reference mode; production passes
// (nil, false) and pays no copy.
func (m *Collector) collectOverlap(owners []int32, freeze bool) (func() int, bool) {
	if !(m.overlapOn || overlapForced) || m.rt == nil {
		return nil, false
	}
	h := m.rt.Heap
	gate := m.resolveMinLive()
	if overlapForced {
		// The force knob exists to drive the overlap machinery through
		// every hook-free cycle the suite runs, including cells far too
		// small to admit in production.
		gate = 1
	}
	if h.NumLive() < gate {
		// A small cycle's stop-the-world pause is already shorter than
		// the snapshot-epoch machinery it would buy.
		return nil, false
	}
	m.stats.Cycles++
	h.Snapshot(&m.snap)
	if freeze || owners != nil {
		m.frozen = m.snap.Freeze(m.frozen)
	}
	snapCap := m.snap.HandleCap()

	// Copy the root values. RootGroup.Roots aliases live frames and
	// static slots the mutator will mutate (SetLocal, Forget, appends),
	// so the trace must own its own copy; group structure — and with
	// it the min-group-index attribution argument — is preserved by
	// spans into one flat buffer. Pre-sizing keeps every span aliasing
	// the same backing array.
	m.parts = m.rt.AppendRootGroups(m.parts[:0])
	total := 0
	for _, g := range m.parts {
		total += len(g.Roots)
	}
	if cap(m.rootBuf) < total {
		m.rootBuf = make([]heap.HandleID, 0, total)
	}
	buf := m.rootBuf[:0]
	op := m.oparts[:0]
	for _, g := range m.parts {
		start := len(buf)
		buf = append(buf, g.Roots...)
		op = append(op, vm.RootGroup{Frame: g.Frame, Roots: buf[start:len(buf)]})
	}
	m.rootBuf, m.oparts = buf, op

	workers := m.resolveWorkers()
	if workers > len(op) {
		workers = len(op)
	}
	if workers < 1 {
		workers = 1
	}
	ws := m.scratchFor(workers)
	needOwners := owners != nil

	// Concurrent phase 1: the private per-worker traces, exactly
	// markParallel's, against the snapshot view. The spawn is the last
	// thing the open does — everything the workers read (snapshot,
	// root copy, scratch) is written before these statements.
	for i, s := range ws {
		m.wg.Add(1)
		go func(s *traceScratch, start int) {
			defer m.wg.Done()
			s.traceSnapshot(&m.snap, op, start, workers, needOwners)
		}(s, i)
	}
	return func() int { return m.closeOverlap(ws, owners, snapCap) }, true
}

// closeOverlap completes the overlapped cycle with the world stopped:
// join, merge, SATB drain, parallel sweep.
func (m *Collector) closeOverlap(ws []*traceScratch, owners []int32, snapCap int) int {
	m.wg.Wait()
	h := m.rt.Heap
	workers := len(ws)

	// Merge (the PR 5 disjoint word-chunk merge): OR of the worker
	// bitsets into m.mark, popcount, out-degree recount, min-group
	// owner resolution. The world is stopped, so the recount may read
	// the slab plainly; extents of marked (snapshot-live) objects are
	// untouched since the open.
	m.mark.Reset(snapCap)
	words := len(m.mark)
	chunk := (words + workers - 1) / workers
	var wg sync.WaitGroup
	for i, s := range ws {
		lo := i * chunk
		hi := lo + chunk
		if hi > words {
			hi = words
		}
		wg.Add(1)
		go func(s *traceScratch, lo, hi int) {
			defer wg.Done()
			s.merge(h, m.mark, ws, owners, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	var marked, edges uint64
	for _, s := range ws {
		marked += s.marked
		edges += s.edges
	}

	// SATB drain: re-trace from every overwritten value the epoch
	// recorded. Anything already marked is skipped in O(1); anything
	// new is marked and traced over the current slab (stopped world,
	// plain reads), its out-degree counted like the merge counted the
	// rest of the marked set's.
	dm, de := m.drainSATB(snapCap)
	marked += dm
	edges += de

	// Out-degree correction: recounts above saw the close-time slab;
	// subtracting the barrier's net Nil -> non-Nil delta recovers the
	// open-time EdgeVisits exactly (every epoch store hit a marked
	// object).
	edges = uint64(int64(edges) - m.rt.SATBNilDelta())
	m.stats.Marked += marked
	m.stats.EdgeVisits += edges
	m.rt.Timeline().CycleMarkDone(workers, marked)

	freed := m.sweepParallel(workers)
	m.stats.Freed += uint64(freed)
	m.snap.Release()
	return freed
}

// traceSnapshot is one worker's private trace against the snapshot
// view: trace()'s loop with three changes — roots come from the flat
// copy, slab loads are atomic (the mutator stores concurrently), and
// traversal clamps to snapshot-live IDs below the snapshot's handle
// cap (anything else was born after the open and is live this cycle
// by construction).
func (s *traceScratch) traceSnapshot(snap *heap.Snapshot, parts []vm.RootGroup, start, stride int, needOwners bool) {
	snapCap := snap.HandleCap()
	s.mark.Reset(snapCap)
	if needOwners {
		s.owner = resetOwners(s.owner, snapCap)
	}
	mark := s.mark
	live := snap.Live
	work := s.work[:0]
	for pi := start; pi < len(parts); pi += stride {
		for _, r := range parts[pi].Roots {
			if r == heap.Nil || int(r) >= snapCap || !live.Has(int(r)) || mark.Has(int(r)) {
				continue
			}
			mark.Set(int(r))
			if needOwners {
				s.owner[int(r)] = int32(pi)
			}
			work = append(work, r)
			for len(work) > 0 {
				src := work[len(work)-1]
				work = work[:len(work)-1]
				slots := snap.RefSlots(src)
				for i := range slots {
					dst := heap.RefAtomic(slots, i)
					if dst == heap.Nil || int(dst) >= snapCap || !live.Has(int(dst)) || mark.Has(int(dst)) {
						continue
					}
					mark.Set(int(dst))
					if needOwners {
						s.owner[int(dst)] = int32(pi)
					}
					work = append(work, dst)
				}
			}
		}
	}
	s.work = work
}

// drainSATB marks and traces everything reachable from the epoch's
// recorded overwritten values that the concurrent trace missed,
// returning the additional marked count and their close-time
// out-degree. Usually near-empty: an entry survives only if the
// mutator destroyed the sole path the tracer had left to it.
func (m *Collector) drainSATB(snapCap int) (marked, edges uint64) {
	h := m.rt.Heap
	live := m.snap.Live
	mark := m.mark
	work := m.work[:0]
	for _, id := range m.rt.SATBPending() {
		if id == heap.Nil || int(id) >= snapCap || !live.Has(int(id)) || mark.Has(int(id)) {
			continue
		}
		mark.Set(int(id))
		marked++
		work = append(work, id)
		for len(work) > 0 {
			src := work[len(work)-1]
			work = work[:len(work)-1]
			for _, dst := range h.RefSlots(src) {
				if dst == heap.Nil {
					continue
				}
				edges++
				if int(dst) >= snapCap || !live.Has(int(dst)) || mark.Has(int(dst)) {
					continue
				}
				mark.Set(int(dst))
				marked++
				work = append(work, dst)
			}
		}
	}
	m.work = work
	return marked, edges
}

// sweepParallel frees everything snapshot-live but unmarked: workers
// release handle records and live bits over disjoint word ranges into
// per-worker batches, then the batches merge into the arena
// sequentially in ascending range order — the canonical lowest-ID
// free sequence, byte-identical in effect to the sequential sweep
// (heap/sweepbatch.go).
func (m *Collector) sweepParallel(workers int) int {
	h := m.rt.Heap
	live := m.snap.Live
	mark := m.mark
	words := len(mark)
	if len(live) < words {
		words = len(live)
	}
	for len(m.batches) < workers {
		m.batches = append(m.batches, heap.FreeBatch{})
	}
	bs := m.batches[:workers]
	if workers == 1 {
		bs[0].Reset()
		h.CollectGarbageRange(live, mark, 0, words, &bs[0])
		return h.ApplyFreeBatch(&bs[0])
	}
	chunk := (words + workers - 1) / workers
	var wg sync.WaitGroup
	for i := range bs {
		bs[i].Reset()
		lo := i * chunk
		if lo > words {
			lo = words
		}
		hi := lo + chunk
		if hi > words {
			hi = words
		}
		wg.Add(1)
		go func(b *heap.FreeBatch, lo, hi int) {
			defer wg.Done()
			h.CollectGarbageRange(live, mark, lo, hi, b)
		}(&bs[i], lo, hi)
	}
	wg.Wait()
	freed := 0
	for i := range bs {
		freed += h.ApplyFreeBatch(&bs[i])
	}
	return freed
}

// Overlapped reports whether overlap admission is currently on for
// this engine (configuration or the REPRO_OVERLAP force).
func (m *Collector) Overlapped() bool { return m.overlapOn || overlapForced }
