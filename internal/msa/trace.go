package msa

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Deterministic parallel tracing.
//
// The mark phase is a pure reachability computation, and reachability
// from a root set is a property of the object graph alone — it does not
// depend on traversal order or on what other traversals marked first.
// That is the whole determinism argument, in three steps:
//
//  1. Partition the roots into groups in the canonical sequential
//     order (vm.AppendRootGroups: static pseudo-frame first, then each
//     thread's frames oldest-first). Group index = sequential
//     traversal position.
//  2. Trace groups independently on a bounded worker pool. Each worker
//     owns a private mark bitset (and, when requested, a private
//     owner table) — no shared mutable state, no atomics on the mark
//     path. Groups are dealt round-robin (worker i takes groups i,
//     i+W, i+2W, ...), so the groups one worker processes form an
//     increasing subsequence; within one worker, marking stops at
//     locally-marked objects exactly the way the sequential mark stops
//     at globally-marked ones, so the worker-local owner of an object
//     is the minimum of its groups that reach it. (Round-robin rather
//     than a shared work counter: the assignment — and so each
//     worker's duplicated-work profile — is reproducible instead of
//     scheduler-dependent, and the mark path needs no atomics at all.)
//  3. Merge: the final mark set is the union (word-wise OR) of the
//     worker bitsets, and an object's first reaching group is the
//     minimum group index over workers. min over workers of per-worker
//     minima is the global minimum over all groups that reach the
//     object — which is precisely the group the sequential oldest-first
//     mark would have credited, because a sequential traversal from
//     group i marks exactly reach(i) minus what groups j<i already
//     marked. The per-object first-reaching *frame* is therefore
//     byte-identical to the sequential assignment
//     (TestParallelTraceMatchesSequentialFrames pins it).
//
// Stats stay identical too: Marked is the popcount of the merged set,
// and EdgeVisits is recomputed as the summed out-degree of marked
// objects — equal to the sequential count, where every marked object is
// popped exactly once and each of its non-nil slots counted once. Both
// are summed per word-chunk, so the merge parallelizes without
// atomics: chunks are disjoint word ranges, each owned by one worker.
//
// What parallel tracing deliberately does NOT do is replay the
// Reached/Edge slots: CG's §3.6 rebuild is order-sensitive (the §3.4
// static-set optimization makes contamination non-confluent — whether
// an edge unions depends on whether the target's set is *already*
// static when the edge is processed), so a hooked cycle always runs the
// sequential devirtualized mark. Hook-free cycles (plain msa, none) are
// the ones whose time is pure traversal, and they are exactly the ones
// that parallelize.

// DefaultTraceMinLive is the parallel-tracing admission gate: below
// this many live objects a cycle is traced sequentially (per-cycle
// goroutine spawn and worker bitset clears would dominate the marking
// they spread out). One popcount pass over the live bitmap decides.
const DefaultTraceMinLive = 1 << 15

// maxTraceWorkers caps the worker pool: tracing is memory-bound, and
// every worker re-traces the subgraph shared with other workers'
// partitions, so wide pools pay duplicated work for diminishing wins.
// The GOMAXPROCS-derived default assumes the cycle has the machine to
// itself (cgrun, a single timing cell); an engine sweep already
// saturating its cores with shards should pass -trace-workers 1 —
// the duplicated tracing then has no idle cores to hide on, which is
// what TraceConfig.OccupancySaturated automates.
const maxTraceWorkers = 8

// TraceConfig is the tracing configuration, scoped to one Collector
// (and so to one engine's shards). There is deliberately no
// process-global equivalent — the former SetDefaultTrace /
// SetTraceOccupancySaturated shims let two engines in one process race
// on trace settings, and every path (CLI flags included) now threads a
// TraceConfig instead. Zero fields keep the built-in default for that
// knob, so the zero TraceConfig is "inherit everything".
type TraceConfig struct {
	// Workers is the trace pool size: 1 disables parallel tracing, 0
	// selects the automatic default (min(GOMAXPROCS, 8), or 1 under
	// occupancy saturation).
	Workers int
	// MinLive is the live-object admission gate for parallel tracing
	// and overlapped cycles; 0 inherits DefaultTraceMinLive.
	MinLive int
	// Overlap admits overlapped (snapshot-epoch) collection for
	// hook-free cycles that also clear the MinLive gate.
	Overlap bool
	// OccupancySaturated tells automatic worker resolution that sweep
	// workers already occupy every core (the engine sets it when its
	// worker count reaches GOMAXPROCS); an explicit Workers choice
	// still wins.
	OccupancySaturated bool
}

// SetTraceConfig applies a per-engine tracing configuration,
// replacing any previous one. Output is byte-identical for every
// configuration; only wall-clock and pause shape vary.
func (m *Collector) SetTraceConfig(c TraceConfig) {
	m.traceWorkers = c.Workers
	m.traceMinLive = c.MinLive
	m.overlapOn = c.Overlap
	m.occSaturated = c.OccupancySaturated
}

// SetTrace overrides the automatic defaults for this collector only (0
// keeps the default for that knob). Kept for callers that predate
// TraceConfig.
func (m *Collector) SetTrace(workers, minLive int) {
	m.traceWorkers = workers
	m.traceMinLive = minLive
}

// resolveWorkers resolves the configured trace pool size (>= 1)
// without consulting the admission gate.
func (m *Collector) resolveWorkers() int {
	w := m.traceWorkers
	if w == 0 {
		if m.occSaturated {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
		if w > maxTraceWorkers {
			w = maxTraceWorkers
		}
	}
	if w < 1 {
		return 1
	}
	return w
}

// resolveMinLive resolves the live-object admission gate.
func (m *Collector) resolveMinLive() int {
	if m.traceMinLive == 0 {
		return DefaultTraceMinLive
	}
	return m.traceMinLive
}

// parallelWorkers resolves how many trace workers a hook-free cycle
// over h should use; 1 means trace sequentially.
func (m *Collector) parallelWorkers(h *heap.Heap) int {
	w := m.resolveWorkers()
	if w <= 1 {
		return 1
	}
	if h.NumLive() < m.resolveMinLive() {
		return 1
	}
	return w
}

// traceScratch is one worker's private state: a mark bitset, an
// optional owner table (first-reaching group index per handle, -1
// unreached), a DFS stack, and the per-chunk merge accumulators. All
// fields are pointer-free, so pooled scratch pins nothing.
type traceScratch struct {
	mark   heap.Bitset
	owner  []int32
	work   []heap.HandleID
	marked uint64
	edges  uint64
}

var scratchPool = sync.Pool{New: func() any { return new(traceScratch) }}

// scratchFor sizes the collector's retained worker-scratch table to
// exactly workers entries: reuse the scratch retained from the
// previous cycle (forced-GC cells cycle constantly); draw from or
// return to the shared pool only when the worker count changes.
func (m *Collector) scratchFor(workers int) []*traceScratch {
	ws := m.workers
	for len(ws) < workers {
		ws = append(ws, scratchPool.Get().(*traceScratch))
	}
	for i := workers; i < len(ws); i++ {
		scratchPool.Put(ws[i])
		ws[i] = nil
	}
	ws = ws[:workers]
	m.workers = ws
	return ws
}

// trace marks everything reachable from the roots of groups start,
// start+stride, start+2*stride, ... into the worker-private bitset.
func (s *traceScratch) trace(h *heap.Heap, parts []vm.RootGroup, start, stride, handleCap int, needOwners bool) {
	s.mark.Reset(handleCap)
	if needOwners {
		s.owner = resetOwners(s.owner, handleCap)
	}
	mark := s.mark
	work := s.work[:0]
	for pi := start; pi < len(parts); pi += stride {
		for _, r := range parts[pi].Roots {
			if r == heap.Nil || mark.Has(int(r)) {
				continue
			}
			mark.Set(int(r))
			if needOwners {
				s.owner[int(r)] = int32(pi)
			}
			work = append(work, r)
			for len(work) > 0 {
				src := work[len(work)-1]
				work = work[:len(work)-1]
				for _, dst := range h.RefSlots(src) {
					if dst == heap.Nil || mark.Has(int(dst)) {
						continue
					}
					mark.Set(int(dst))
					if needOwners {
						s.owner[int(dst)] = int32(pi)
					}
					work = append(work, dst)
				}
			}
		}
	}
	s.work = work
}

// resetOwners sizes o to n entries, all -1, reusing capacity.
func resetOwners(o []int32, n int) []int32 {
	if cap(o) < n {
		o = make([]int32, n)
	}
	o = o[:n]
	for i := range o {
		o[i] = -1
	}
	return o
}

// markParallel runs one deterministic parallel mark into m.mark (which
// Collect has already Reset). When owners is non-nil it must have at
// least HandleCap entries pre-filled with -1; each marked object's
// entry receives its first-reaching root-group index — the sequential
// oldest-first attribution (the property tests consume this; hook-free
// production cycles pass nil and skip the owner bookkeeping entirely).
// It returns the root group list so callers can map group indices back
// to frames.
func (m *Collector) markParallel(workers int, owners []int32) []vm.RootGroup {
	h := m.rt.Heap
	m.parts = m.rt.AppendRootGroups(m.parts[:0])
	parts := m.parts
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	handleCap := h.HandleCap()
	needOwners := owners != nil

	ws := m.scratchFor(workers)

	// Phase 1: private traces over statically dealt groups — nothing is
	// shared, nothing is atomic.
	var wg sync.WaitGroup
	for i, s := range ws {
		wg.Add(1)
		go func(s *traceScratch, start int) {
			defer wg.Done()
			s.trace(h, parts, start, workers, handleCap, needOwners)
		}(s, i)
	}
	wg.Wait()

	// Phase 2: merge. The word range is split into one disjoint chunk
	// per worker, so the OR passes, the popcount, the out-degree
	// recount and the min-group resolution all run without atomics.
	words := len(m.mark)
	chunk := (words + workers - 1) / workers
	for i, s := range ws {
		lo := i * chunk
		hi := lo + chunk
		if hi > words {
			hi = words
		}
		wg.Add(1)
		go func(s *traceScratch, lo, hi int) {
			defer wg.Done()
			s.merge(h, m.mark, ws, owners, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()

	var marked, edges uint64
	for _, s := range ws {
		marked += s.marked
		edges += s.edges
	}
	m.stats.Marked += marked
	m.stats.EdgeVisits += edges
	return parts
}

// merge resolves words [lo, hi) of the final mark set: OR of every
// worker's bitset, plus the chunk's share of the Marked popcount, the
// EdgeVisits out-degree recount and (when owners is non-nil) the
// min-group owner resolution. The receiver only carries the chunk's
// accumulators; it reads every worker's scratch read-only.
func (s *traceScratch) merge(h *heap.Heap, dst heap.Bitset, ws []*traceScratch, owners []int32, lo, hi int) {
	var marked, edges uint64
	for k := lo; k < hi; k++ {
		merged := uint64(0)
		for _, w := range ws {
			merged |= w.mark[k]
		}
		dst[k] = merged
		marked += uint64(bits.OnesCount64(merged))
		base := k << 6
		for g := merged; g != 0; g &= g - 1 {
			id := heap.HandleID(base + bits.TrailingZeros64(g))
			for _, ref := range h.RefSlots(id) {
				if ref != heap.Nil {
					edges++
				}
			}
			if owners != nil {
				best := int32(-1)
				for _, w := range ws {
					if o := w.owner[int(id)]; o >= 0 && (best < 0 || o < best) {
						best = o
					}
				}
				owners[int(id)] = best
			}
		}
	}
	s.marked = marked
	s.edges = edges
}
