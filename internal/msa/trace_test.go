package msa

import (
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

// buildWorld constructs a randomized multi-thread object world: 1-3
// threads, each with a stack of 1-4 live frames holding locals and
// operand roots, a static slot, and a random edge set — then calls
// check while every frame is still live. Identical seeds build
// identical worlds (the RNG is the only entropy), which is what lets
// the equivalence tests run a parallel and a sequential collector over
// twin runtimes.
func buildWorld(seed int64, arena int, check func(rt *vm.Runtime, sys *System, objs []heap.HandleID)) {
	rng := rand.New(rand.NewSource(seed))
	h := heap.New(arena)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 3, Data: 8})
	sys := NewSystem()
	rt := vm.New(h, sys)

	nThreads := 1 + rng.Intn(3)
	var objs []heap.HandleID
	slot := rt.StaticSlot("pin")

	// Frames must be live while check runs, so the world is built by
	// nesting: each thread deepens its stack recursively, then hands
	// off to the next thread; the innermost nesting level wires the
	// random edges and runs check.
	var finish func()
	var buildThread func(ti int)
	buildThread = func(ti int) {
		if ti == nThreads {
			finish()
			return
		}
		th := rt.NewThread(2)
		var deepen func(d int)
		deepen = func(d int) {
			f := th.Top()
			for i := 0; i < 2+rng.Intn(6); i++ {
				o := f.MustNew(node)
				objs = append(objs, o)
				if rng.Intn(2) == 0 {
					f.SetLocal(rng.Intn(2), o)
				}
				// Objects not stored to a local stay operand-rooted in
				// this frame; some are forgotten to create garbage.
				if rng.Intn(4) == 0 {
					f.Forget(o)
				}
			}
			if d > 0 {
				th.CallVoid(2, func(*vm.Frame) { deepen(d - 1) })
				return
			}
			buildThread(ti + 1)
		}
		deepen(rng.Intn(4))
	}
	finish = func() {
		f := rt.Threads()[0].Top()
		for i := 0; i < 2*len(objs); i++ {
			src := objs[rng.Intn(len(objs))]
			dst := objs[rng.Intn(len(objs))]
			f.PutField(src, rng.Intn(3), dst)
		}
		f.PutStatic(slot, objs[rng.Intn(len(objs))])
		check(rt, sys, objs)
	}
	buildThread(0)
}

// TestParallelTraceMatchesSequentialFrames is the mark-order
// equivalence property: across randomized heaps and thread counts, the
// parallel tracer's minimum-group-index resolution assigns every
// reached object exactly the first-reaching frame the sequential
// oldest-first mark attributes, and reaches exactly the same object
// set with the same Marked/EdgeVisits counters.
func TestParallelTraceMatchesSequentialFrames(t *testing.T) {
	for trial := int64(0); trial < 25; trial++ {
		buildWorld(1000+trial, 1<<20, func(rt *vm.Runtime, sys *System, objs []heap.HandleID) {
			m := sys.Engine()
			h := rt.Heap
			workers := 2 + int(trial%4)

			// Parallel mark first (no sweep): owner table pre-filled -1.
			m.mark.Reset(h.HandleCap())
			owners := make([]int32, h.HandleCap())
			for i := range owners {
				owners[i] = -1
			}
			before := m.Stats()
			parts := m.markParallel(workers, owners)
			par := m.Stats()

			// Sequential hooked mark over the identical heap state.
			firstFrame := make(map[heap.HandleID]uint64)
			m.Collect(recordReached(firstFrame))
			seq := m.Stats()

			parMarked := par.Marked - before.Marked
			parEdges := par.EdgeVisits - before.EdgeVisits
			seqMarked := seq.Marked - par.Marked
			seqEdges := seq.EdgeVisits - par.EdgeVisits
			if parMarked != seqMarked || parEdges != seqEdges {
				t.Fatalf("trial %d: parallel marked/edges = %d/%d, sequential = %d/%d",
					trial, parMarked, parEdges, seqMarked, seqEdges)
			}
			for _, id := range objs {
				seqF, seqReached := firstFrame[id]
				parReached := owners[int(id)] >= 0
				if seqReached != parReached {
					t.Fatalf("trial %d: object %d reached: parallel=%v sequential=%v",
						trial, id, parReached, seqReached)
				}
				if !seqReached {
					continue
				}
				if got := parts[owners[int(id)]].Frame.ID; got != seqF {
					t.Fatalf("trial %d: object %d first-reaching frame: parallel=%d sequential=%d",
						trial, id, got, seqF)
				}
			}
		})
	}
}

// TestParallelCollectMatchesSequential builds twin worlds from one
// seed and collects one with parallel tracing forced on (multiple
// partitions, multiple workers — the -race multi-partition cycle) and
// one sequentially, demanding identical frees, identical stats and
// identical survivor sets — the whole-cycle determinism claim behind
// enabling parallel tracing by default.
func TestParallelCollectMatchesSequential(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		type outcome struct {
			freed  int
			stats  Stats
			live   []heap.HandleID
			freed2 int
		}
		run := func(parallel bool) outcome {
			var out outcome
			buildWorld(2000+trial, 1<<20, func(rt *vm.Runtime, sys *System, objs []heap.HandleID) {
				if parallel {
					sys.Engine().SetTrace(4, 1) // force: any live count, 4 workers
				} else {
					sys.Engine().SetTrace(1, 0)
				}
				out.freed = sys.Collect()
				out.stats = sys.Engine().Stats()
				for _, id := range objs {
					if rt.Heap.Live(id) {
						out.live = append(out.live, id)
					}
				}
				// A second cycle immediately after must find nothing.
				out.freed2 = sys.Collect()
			})
			return out
		}
		seq, par := run(false), run(true)
		if seq.freed != par.freed || seq.freed2 != par.freed2 {
			t.Fatalf("trial %d: freed %d/%d sequential, %d/%d parallel",
				trial, seq.freed, seq.freed2, par.freed, par.freed2)
		}
		if seq.stats != par.stats {
			t.Fatalf("trial %d: stats diverge: sequential %+v, parallel %+v", trial, seq.stats, par.stats)
		}
		if len(seq.live) != len(par.live) {
			t.Fatalf("trial %d: %d survivors sequential, %d parallel", trial, len(seq.live), len(par.live))
		}
		for i := range seq.live {
			if seq.live[i] != par.live[i] {
				t.Fatalf("trial %d: survivor sets diverge at %d: %d vs %d",
					trial, i, seq.live[i], par.live[i])
			}
		}
	}
}
