package msa

import (
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

func newRT(arena int) (*vm.Runtime, *System, heap.ClassID) {
	h := heap.New(arena)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 2, Data: 8})
	sys := NewSystem()
	rt := vm.New(h, sys)
	return rt, sys, node
}

func TestCollectFreesUnreachable(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	kept := f.MustNew(node)
	f.SetLocal(0, kept)
	// Garbage is made in a nested frame: handles handed to Go code are
	// rooted (JNI local-reference semantics) until their frame pops.
	th.CallVoid(0, func(g *vm.Frame) {
		for i := 0; i < 10; i++ {
			g.MustNew(node) // dropped on the floor
		}
	})
	freed := sys.Collect()
	if freed != 10 {
		t.Fatalf("freed %d, want 10", freed)
	}
	if !rt.Heap.Live(kept) {
		t.Fatal("rooted object was swept")
	}
}

func TestCollectTracesFieldChains(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	head := f.MustNew(node)
	f.SetLocal(0, head)
	// Build the chain in a nested frame so only the field links (not
	// local references) keep it alive once the frame pops.
	var all []heap.HandleID
	th.CallVoid(0, func(g *vm.Frame) {
		cur := head
		for i := 0; i < 20; i++ {
			n := g.MustNew(node)
			g.PutField(cur, 0, n)
			all = append(all, n)
			cur = n
		}
	})
	if freed := sys.Collect(); freed != 0 {
		t.Fatalf("freed %d reachable objects", freed)
	}
	for _, id := range all {
		if !rt.Heap.Live(id) {
			t.Fatal("chained object swept")
		}
	}
	// Cut the chain in the middle: the tail becomes garbage.
	f.PutField(all[9], 0, heap.Nil)
	if freed := sys.Collect(); freed != 10 {
		t.Fatalf("freed %d, want 10 (the severed tail)", freed)
	}
}

func TestCollectHandlesCycles(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	var a, b heap.HandleID
	th.CallVoid(0, func(g *vm.Frame) {
		a = g.MustNew(node)
		b = g.MustNew(node)
		g.PutField(a, 0, b)
		g.PutField(b, 0, a) // cycle
		f.SetLocal(0, a)    // rooted in the outer frame
	})
	if freed := sys.Collect(); freed != 0 {
		t.Fatal("rooted cycle swept")
	}
	f.SetLocal(0, heap.Nil)
	if freed := sys.Collect(); freed != 2 {
		t.Fatalf("unrooted cycle: freed %d, want 2", freed)
	}
	_ = rt
	_ = b
}

func TestStaticsAreRoots(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(0)
	f := th.Top()
	slot := rt.StaticSlot("pin")
	o := f.MustNew(node)
	f.PutStatic(slot, o)
	th.CallVoid(0, func(inner *vm.Frame) {
		inner.MustNew(node) // garbage
	})
	if freed := sys.Collect(); freed != 1 {
		t.Fatalf("freed %d, want 1", freed)
	}
	if !rt.Heap.Live(o) {
		t.Fatal("static-rooted object swept")
	}
}

// recordReached returns a Cycle subscribing only Reached, recording
// first-visit attribution — the oldest-first property the resetting
// pass depends on.
func recordReached(firstFrame map[heap.HandleID]uint64) Cycle {
	return Cycle{Reached: func(id heap.HandleID, f *vm.Frame) {
		if _, ok := firstFrame[id]; ok {
			panic("Reached fired twice for one object")
		}
		firstFrame[id] = f.ID
	}}
}

func TestReachedAttributesOldestFrame(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(1)
	rootF := th.Top()
	shared := rootF.MustNew(node)
	rootF.SetLocal(0, shared)
	th.CallVoid(1, func(inner *vm.Frame) {
		inner.SetLocal(0, shared) // also referenced by the younger frame
		firstFrame := make(map[heap.HandleID]uint64)
		sys.Engine().Collect(recordReached(firstFrame))
		if got := firstFrame[shared]; got != rootF.ID {
			t.Fatalf("shared object attributed to frame %d, want oldest %d", got, rootF.ID)
		}
	})
}

func TestWillFreePrecedesFree(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(0)
	var victim heap.HandleID
	th.CallVoid(0, func(g *vm.Frame) { victim = g.MustNew(node) })
	liveAtHook := false
	cy := Cycle{WillFree: func(id heap.HandleID) {
		if id == victim {
			liveAtHook = rt.Heap.Live(id)
		}
	}}
	sys.Engine().Collect(cy)
	if !liveAtHook {
		t.Fatal("WillFree fired after the object was freed (or never)")
	}
	if rt.Heap.Live(victim) {
		t.Fatal("victim survived")
	}
}

// TestRandomGraphExactness builds a random object graph, computes an
// independent reachability oracle, and checks the collector frees exactly
// the unreachable objects — MSA is the exactness reference for CG's
// conservativeness experiments, so it must itself be exact.
func TestRandomGraphExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 20; trial++ {
		rt, sys, node := newRT(1 << 18)
		th := rt.NewThread(4)
		f := th.Top()
		slot := rt.StaticSlot("s")
		// Build the graph inside a nested frame so its operand roots
		// vanish when it pops; survivors are whatever the outer locals,
		// the static slot and the field graph still reach.
		var objs []heap.HandleID
		th.CallVoid(0, func(g *vm.Frame) {
			for i := 0; i < 200; i++ {
				objs = append(objs, g.MustNew(node))
			}
			for i := 0; i < 300; i++ {
				src := objs[rng.Intn(len(objs))]
				dst := objs[rng.Intn(len(objs))]
				g.PutField(src, rng.Intn(2), dst)
			}
			for i := 0; i < 4; i++ {
				f.SetLocal(i, objs[rng.Intn(len(objs))])
			}
			g.PutStatic(slot, objs[rng.Intn(len(objs))])
		})

		// Oracle: BFS from the same root enumeration the collector
		// uses (locals, operand references and statics).
		reach := make(map[heap.HandleID]bool)
		var queue []heap.HandleID
		push := func(id heap.HandleID) {
			if id != heap.Nil && !reach[id] {
				reach[id] = true
				queue = append(queue, id)
			}
		}
		rt.EachRootFrame(func(_ *vm.Frame, roots []heap.HandleID) {
			for _, r := range roots {
				push(r)
			}
		})
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			rt.Heap.Refs(id, push)
		}
		_ = slot

		freed := sys.Collect()
		if want := len(objs) - len(reach); freed != want {
			t.Fatalf("trial %d: freed %d, oracle says %d unreachable", trial, freed, want)
		}
		for _, id := range objs {
			if reach[id] != rt.Heap.Live(id) {
				t.Fatalf("trial %d: object %d live=%v oracle=%v", trial, id, rt.Heap.Live(id), reach[id])
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(1)
	f := th.Top()
	f.SetLocal(0, f.MustNew(node))
	th.CallVoid(0, func(g *vm.Frame) { g.MustNew(node) }) // garbage
	sys.Collect()
	sys.Collect()
	st := sys.Engine().Stats()
	if st.Cycles != 2 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	if st.Marked < 2 || st.Freed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	_ = rt
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Cycles: 1, Marked: 10, Freed: 4, EdgeVisits: 20}
	b := Stats{Cycles: 2, Marked: 5, Freed: 1, EdgeVisits: 7}
	a.Merge(b)
	if a != (Stats{Cycles: 3, Marked: 15, Freed: 5, EdgeVisits: 27}) {
		t.Fatalf("Stats.Merge = %+v", a)
	}
}

// TestWillFreeMayFreeSiblingGarbage pins the sweep's re-check
// contract: an observer whose WillFree releases another garbage object
// itself (eager finalization of an owned buffer, say) must see that
// sibling skipped by the sweep — not double-freed — exactly as the
// per-handle liveness walk the word sweep replaced behaved.
func TestWillFreeMayFreeSiblingGarbage(t *testing.T) {
	rt, sys, node := newRT(1 << 16)
	th := rt.NewThread(0)
	var owner, buf heap.HandleID
	th.CallVoid(0, func(g *vm.Frame) {
		owner = g.MustNew(node)
		buf = g.MustNew(node)
		g.PutField(owner, 0, buf)
	})
	freed := sys.Engine().Collect(Cycle{WillFree: func(id heap.HandleID) {
		if id == owner {
			rt.Heap.Free(buf) // finalizer releases the owned buffer early
		}
	}})
	// Both are gone: one by the observer, one by the sweep; the sweep
	// must count only its own.
	if rt.Heap.Live(owner) || rt.Heap.Live(buf) {
		t.Fatal("garbage survived the cycle")
	}
	if freed != 1 {
		t.Fatalf("sweep freed %d, want 1 (the observer freed the other)", freed)
	}
}
