package msa

import (
	"math/bits"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/heap"
	"repro/internal/vm"
)

// forceOverlapOff disables the REPRO_OVERLAP force for one test so a
// control runtime really runs stop-the-world even under the CI job
// that forces overlap everywhere.
func forceOverlapOff(t *testing.T) {
	t.Helper()
	old := overlapForced
	overlapForced = false
	t.Cleanup(func() { overlapForced = old })
}

// worldResult is everything observable about a finished world that
// must be bit-equal between the stop-the-world and overlapped
// schedules: cycle counts, collector stats (Marked/Freed/EdgeVisits),
// allocator stats, the exact live-object set with every ref slot, and
// the arena's internal state.
type worldResult struct {
	gcCycles   int
	instr      uint64
	stats      Stats
	heapStats  heap.Stats
	numLive    int
	handleCap  int
	liveSig    []heap.HandleID // id, refLen, slots... per live object
	arena      any
	overlapped uint64
}

// driveWorld runs one deterministic randomized mutator — allocation
// bursts, heavy pointer stores (including Nil clears), operand
// forgets — under an msa system with periodic forced collections, and
// extracts the result. The RNG is the only entropy and the collector
// configuration is not consulted by the driver, so two calls with the
// same seed issue the identical event stream; with overlap admitted,
// collection cycles opened by the gc-every countdown trace
// concurrently while the stream keeps stepping, closing at the next
// allocation or countdown.
func driveWorld(t *testing.T, seed int64, cfg TraceConfig) worldResult {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := heap.New(1 << 22)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 3, Data: 8})
	sys := NewSystem()
	sys.SetTraceConfig(cfg)
	rt := vm.New(h, sys)
	rt.SetGCEvery(512)
	th := rt.NewThread(4)
	f := th.Top()

	var objs []heap.HandleID
	alloc := func() {
		o := f.MustNew(node)
		objs = append(objs, o)
	}
	for i := 0; i < 600; i++ {
		alloc()
	}
	for i := 0; i < 25000; i++ {
		switch r := rng.Intn(100); {
		case r < 72: // pointer store; 1 in 5 clears the slot
			src := objs[rng.Intn(len(objs))]
			val := heap.Nil
			if rng.Intn(5) != 0 {
				val = objs[rng.Intn(len(objs))]
			}
			f.PutField(src, rng.Intn(3), val)
		case r < 88: // drop a root: the object may become garbage
			if len(objs) > 64 {
				i := rng.Intn(len(objs))
				f.Forget(objs[i])
				objs[i] = objs[len(objs)-1]
				objs = objs[:len(objs)-1]
			}
		default:
			alloc()
		}
	}
	rt.Quiesce()

	res := worldResult{
		gcCycles:   rt.GCCycles(),
		instr:      rt.Instr(),
		stats:      sys.Engine().Stats(),
		heapStats:  h.Stats(),
		numLive:    h.NumLive(),
		handleCap:  h.HandleCap(),
		arena:      h.Arena().Info(),
		overlapped: rt.Timeline().Stats().Overlapped,
	}
	h.ForEachLive(func(id heap.HandleID) {
		res.liveSig = append(res.liveSig, id, heap.HandleID(len(h.RefSlots(id))))
		res.liveSig = append(res.liveSig, h.RefSlots(id)...)
	})
	return res
}

// equalWorlds asserts two results are bit-equal in everything but the
// timing-only overlap counter.
func equalWorlds(t *testing.T, name string, a, b worldResult) {
	t.Helper()
	a.overlapped, b.overlapped = 0, 0
	if a.gcCycles != b.gcCycles || a.instr != b.instr || a.stats != b.stats ||
		a.heapStats != b.heapStats || a.numLive != b.numLive || a.handleCap != b.handleCap {
		t.Fatalf("%s: scalar state diverged:\n  a={gc:%d instr:%d stats:%+v heap:%+v live:%d cap:%d}\n  b={gc:%d instr:%d stats:%+v heap:%+v live:%d cap:%d}",
			name, a.gcCycles, a.instr, a.stats, a.heapStats, a.numLive, a.handleCap,
			b.gcCycles, b.instr, b.stats, b.heapStats, b.numLive, b.handleCap)
	}
	if !reflect.DeepEqual(a.liveSig, b.liveSig) {
		t.Fatalf("%s: live-object graph diverged (%d vs %d sig words)", name, len(a.liveSig), len(b.liveSig))
	}
	if !reflect.DeepEqual(a.arena, b.arena) {
		t.Fatalf("%s: arena state diverged:\n  a=%+v\n  b=%+v", name, a.arena, b.arena)
	}
}

// TestOverlapMatchesStopTheWorld is the end-to-end byte-identity
// property: the identical randomized event stream, run once
// stop-the-world and once with overlapped collection admitted (the
// production SATB path: concurrent workers, atomic slot traffic, the
// write barrier, close-before-allocation), finishes with bit-equal
// collector stats, freed sets, live graphs and arena state. Runs
// meaningfully under -race: the overlapped run's cycles trace while
// the mutator stores.
func TestOverlapMatchesStopTheWorld(t *testing.T) {
	forceOverlapOff(t)
	for seed := int64(1); seed <= 6; seed++ {
		stw := driveWorld(t, seed, TraceConfig{})
		if stw.overlapped != 0 {
			t.Fatalf("seed %d: control run overlapped %d cycles", seed, stw.overlapped)
		}
		ov := driveWorld(t, seed, TraceConfig{Overlap: true, MinLive: 1, Workers: 4})
		if ov.overlapped == 0 {
			t.Fatalf("seed %d: overlap run never overlapped a cycle (gc cycles: %d)", seed, ov.gcCycles)
		}
		equalWorlds(t, "stw vs overlap", stw, ov)
	}
}

// TestOverlapDeterministicAcrossWorkers pins schedule-independence:
// with overlap on, worker count (and so interleaving shape) must not
// change a single observable.
func TestOverlapDeterministicAcrossWorkers(t *testing.T) {
	forceOverlapOff(t)
	for seed := int64(10); seed <= 12; seed++ {
		w1 := driveWorld(t, seed, TraceConfig{Overlap: true, MinLive: 1, Workers: 1})
		if w1.overlapped == 0 {
			t.Fatalf("seed %d: single-worker overlap never engaged", seed)
		}
		for _, w := range []int{2, 4, 8} {
			wn := driveWorld(t, seed, TraceConfig{Overlap: true, MinLive: 1, Workers: w})
			equalWorlds(t, "workers", w1, wn)
		}
	}
}

// TestOverlapFrozenAttribution is the attribution half of the
// property: an overlapped cycle in owners mode (frozen snapshot)
// must assign every marked object the identical first-reaching frame
// the sequential stop-the-world attribution assigns on the same
// snapshot, and free exactly the objects the stop-the-world cycle
// would free — no matter how much the mutator stores mid-trace.
func TestOverlapFrozenAttribution(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		buildWorld(seed, 1<<22, func(rt *vm.Runtime, sys *System, objs []heap.HandleID) {
			rng := rand.New(rand.NewSource(seed * 77))
			h := rt.Heap
			m := sys.Engine()
			m.SetTraceConfig(TraceConfig{Overlap: true, MinLive: 1, Workers: 3})
			cap := h.HandleCap()

			// Sequential reference on the same state: mark set +
			// attribution, taken before anything mutates.
			ownersSeq := resetOwners(nil, cap)
			m.mark.Reset(cap)
			m.markParallel(1, ownersSeq)
			seqMark := append(heap.Bitset(nil), m.mark...)
			liveAtOpen := append(heap.Bitset(nil), h.LiveWords()...)

			// Overlapped owners-mode cycle: open, mutate hard, close.
			ownersOv := resetOwners(nil, cap)
			closer, ok := m.collectOverlap(ownersOv, true)
			if !ok {
				t.Fatalf("seed %d: overlap declined", seed)
			}
			f := rt.Threads()[0].Top()
			for i := 0; i < 4*len(objs); i++ {
				val := heap.Nil
				if rng.Intn(3) != 0 {
					val = objs[rng.Intn(len(objs))]
				}
				f.PutField(objs[rng.Intn(len(objs))], rng.Intn(3), val)
			}
			freed := closer()

			wantFreed := 0
			for k, lw := range liveAtOpen {
				g := lw
				if k < len(seqMark) {
					g = lw &^ seqMark[k]
				}
				wantFreed += bits.OnesCount64(g)
			}
			if freed != wantFreed {
				t.Fatalf("seed %d: overlapped cycle freed %d, stop-the-world would free %d", seed, freed, wantFreed)
			}
			for id := 1; id < cap; id++ {
				if seqMark.Has(id) != (ownersOv[id] >= 0) {
					t.Fatalf("seed %d: object %d marked mismatch (seq %v)", seed, id, seqMark.Has(id))
				}
				if ownersOv[id] != ownersSeq[id] {
					t.Fatalf("seed %d: object %d attributed to group %d, sequential says %d",
						seed, id, ownersOv[id], ownersSeq[id])
				}
				if seqMark.Has(id) && !h.Live(heap.HandleID(id)) {
					t.Fatalf("seed %d: reachable object %d was freed", seed, id)
				}
				if !seqMark.Has(id) && liveAtOpen.Has(id) && h.Live(heap.HandleID(id)) {
					t.Fatalf("seed %d: garbage object %d survived", seed, id)
				}
			}
		})
	}
}
