package obs

import (
	"math/bits"
	"time"
)

// HistBuckets is the fixed bucket count of every Histogram: bucket 0
// holds exact zeros, bucket i (i >= 1) holds values in
// [2^(i-1), 2^i) nanoseconds, and the last bucket absorbs everything
// from ~2.3 minutes up. Forty buckets cover the full plausible range
// of a collection pause, so recording never needs a resize — the
// zero-allocation guarantee is structural, not amortised.
const HistBuckets = 40

// Histogram is a log-scale fixed-bucket distribution. The zero value
// is empty and ready to record. It is a plain value type (one fixed
// array plus a counter): shards embed it, merges copy it, and two
// histograms can be compared with ==.
type Histogram struct {
	// Count is the number of recorded values.
	Count uint64 `json:"count"`
	// Buckets holds the per-bucket counts; see HistBuckets for bounds.
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// bucketOf maps a value to its bucket index: the bit length of v,
// clamped to the table. Negative values (a clock that stepped
// backwards mid-cycle) clamp to bucket 0 rather than corrupting the
// table.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Record adds one value. One shift, one compare, two increments — the
// whole hot-path cost of the metrics core.
func (h *Histogram) Record(v int64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
}

// Merge accumulates o into h. Bucket-wise addition is commutative and
// associative, so merging any permutation of the same shard histograms
// produces identical buckets — the order-independence the engine's
// cell-completion merge relies on.
func (h *Histogram) Merge(o *Histogram) {
	h.Count += o.Count
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// BucketBound reports the exclusive upper bound of bucket i in
// nanoseconds (bucket 0's bound is 1: it holds exact zeros).
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	return 1 << uint(i)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) of the recorded values — a conservative
// estimate, as a histogram cannot resolve within a bucket. Zero when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			return time.Duration(BucketBound(i))
		}
	}
	return time.Duration(BucketBound(HistBuckets - 1))
}

// Max returns the upper bound of the highest non-empty bucket; zero
// when the histogram is empty.
func (h *Histogram) Max() time.Duration {
	for i := HistBuckets - 1; i >= 0; i-- {
		if h.Buckets[i] != 0 {
			return time.Duration(BucketBound(i))
		}
	}
	return 0
}
