package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestProgressLanes pins the per-client fairness ledger: lanes count
// per client, anonymous (empty-name) updates have no lane, snapshots
// sort by client, and the table is bounded — clients past the cap
// aggregate into the "(other)" lane instead of growing without bound.
func TestProgressLanes(t *testing.T) {
	p := &Progress{}
	p.LaneSubmitted("bob", 4)
	p.LaneComputed("bob")
	p.LaneStored("bob")
	p.LaneDeduped("bob")
	p.LaneSubmitted("alice", 2)
	p.LaneComputed("alice")
	p.LaneSubmitted("", 100) // anonymous: no lane

	s := p.Snapshot()
	if len(s.Lanes) != 2 {
		t.Fatalf("lanes = %+v, want alice and bob only", s.Lanes)
	}
	if s.Lanes[0].Client != "alice" || s.Lanes[1].Client != "bob" {
		t.Fatalf("lanes not sorted by client: %+v", s.Lanes)
	}
	if got := s.Lanes[1]; got.Submitted != 4 || got.Computed != 1 || got.Stored != 1 || got.Deduped != 1 {
		t.Fatalf("bob's lane = %+v", got)
	}

	// Overflow the table: everything past maxLanes lands in "(other)".
	for i := 0; i < maxLanes+10; i++ {
		p.LaneSubmitted(fmt.Sprintf("client-%03d", i), 1)
	}
	s = p.Snapshot()
	if len(s.Lanes) != maxLanes+1 {
		t.Fatalf("lane table grew to %d, want cap %d plus the catch-all", len(s.Lanes), maxLanes)
	}
	var other *LaneSnapshot
	for i := range s.Lanes {
		if s.Lanes[i].Client == OtherLane {
			other = &s.Lanes[i]
		}
	}
	if other == nil || other.Submitted == 0 {
		t.Fatalf("overflow clients did not aggregate into %q: %+v", OtherLane, s.Lanes)
	}
}

// TestDebugServerHealthz pins the /healthz contract: a static 200 ok
// with no callback installed, and the callback's drain state rendered
// as a 503 — which is how load balancers and the smoke scripts observe
// a draining server.
func TestDebugServerHealthz(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func() Snapshot { return Snapshot{} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() (int, Health) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz is not JSON: %v: %s", err, body)
		}
		return resp.StatusCode, h
	}

	if code, h := get(); code != http.StatusOK || h.Status != "ok" || h.Draining {
		t.Fatalf("default healthz = %d %+v, want 200 ok", code, h)
	}

	srv.SetHealth(func() Health { return Health{Draining: true, InFlight: 3} })
	code, h := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", code)
	}
	if h.Status != "draining" || !h.Draining || h.InFlight != 3 {
		t.Fatalf("draining healthz body = %+v", h)
	}

	srv.SetHealth(nil)
	if code, h := get(); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz after reset = %d %+v, want 200 ok", code, h)
	}

	// The endpoint listing advertises healthz.
	resp, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "/healthz") {
		t.Fatalf("root listing does not mention /healthz: %s", body)
	}
}
