package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Progress is the live counter set of a running sweep: cell totals,
// store hits, computed cells, queue depth and in-flight count, plus
// per-worker utilization. Cell-grained — every update happens at job
// boundaries, never on an event or cycle path — so plain atomics and
// one small mutex for the worker table are plenty. All methods are
// nil-receiver-safe: call sites thread an optional *Progress through
// without guarding.
type Progress struct {
	total, stored, computed, deduped, inFlight, queued atomic.Int64
	tapesRecorded, tapeReplays                         atomic.Int64

	mu      sync.Mutex
	workers []workerState
	lanes   map[string]*laneState
}

type workerState struct {
	label string
	busy  int64
	done  int64
}

// laneState is one client's slice of a shared sweep server: how many
// cells it submitted and how each was satisfied. Lanes are the fairness
// ledger — a server snapshot shows exactly which client's sweeps the
// engine is spending its executions on.
type laneState struct {
	submitted int64 // cells this client asked for
	computed  int64 // executed by the engine on this client's behalf
	stored    int64 // served from the shared results store
	deduped   int64 // attached to another client's in-flight cell
}

// maxLanes bounds the lane table on a long-running server: clients
// beyond the cap aggregate into the catch-all "(other)" lane instead of
// growing the map without bound.
const maxLanes = 128

// OtherLane is the catch-all lane name used once maxLanes distinct
// clients have been seen.
const OtherLane = "(other)"

// AddTotal adds n cells to the expected total (one batch submission).
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
}

// AddStored counts a cell served from the results store.
func (p *Progress) AddStored(n int) {
	if p == nil {
		return
	}
	p.stored.Add(int64(n))
}

// AddComputed counts a cell actually computed (locally or by a worker
// process).
func (p *Progress) AddComputed(n int) {
	if p == nil {
		return
	}
	p.computed.Add(int64(n))
}

// AddDeduped counts a cell delivered by attaching to another client's
// in-flight computation (neither stored nor recomputed).
func (p *Progress) AddDeduped(n int) {
	if p == nil {
		return
	}
	p.deduped.Add(int64(n))
}

// lane returns client's lane state, creating it under the cap. Callers
// hold p.mu. Empty client names have no lane.
func (p *Progress) lane(client string) *laneState {
	if client == "" {
		return nil
	}
	if p.lanes == nil {
		p.lanes = make(map[string]*laneState)
	}
	l, ok := p.lanes[client]
	if !ok {
		if len(p.lanes) >= maxLanes {
			client = OtherLane
			if l, ok = p.lanes[client]; ok {
				return l
			}
		}
		l = &laneState{}
		p.lanes[client] = l
	}
	return l
}

// LaneSubmitted counts n cells submitted by client (no-op for the empty
// client name, so anonymous one-shot requests never grow the table).
func (p *Progress) LaneSubmitted(client string, n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if l := p.lane(client); l != nil {
		l.submitted += int64(n)
	}
}

// LaneComputed counts one cell the engine executed on client's behalf —
// the engine calls it for jobs carrying a client tag, which is what
// makes fairness auditable from /progress.
func (p *Progress) LaneComputed(client string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if l := p.lane(client); l != nil {
		l.computed++
	}
}

// LaneStored counts one of client's cells served from the shared store.
func (p *Progress) LaneStored(client string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if l := p.lane(client); l != nil {
		l.stored++
	}
}

// LaneDeduped counts one of client's cells delivered by another
// client's in-flight computation.
func (p *Progress) LaneDeduped(client string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if l := p.lane(client); l != nil {
		l.deduped++
	}
}

// TapeRecorded counts one event tape captured by the engine (the first
// cell of a (workload, size) row drove the workload and recorded it).
func (p *Progress) TapeRecorded() {
	if p == nil {
		return
	}
	p.tapesRecorded.Add(1)
}

// TapeReplayed counts one repeat served by replaying a cached event
// tape instead of re-running driver logic.
func (p *Progress) TapeReplayed() {
	if p == nil {
		return
	}
	p.tapeReplays.Add(1)
}

// SetQueued records the scheduler's current ready-queue depth.
func (p *Progress) SetQueued(n int) {
	if p == nil {
		return
	}
	p.queued.Store(int64(n))
}

// SetInFlight records how many cells are currently being computed.
func (p *Progress) SetInFlight(n int) {
	if p == nil {
		return
	}
	p.inFlight.Store(int64(n))
}

// EnsureWorkers grows the per-worker table to at least n slots.
func (p *Progress) EnsureWorkers(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) < n {
		p.workers = append(p.workers, workerState{})
	}
}

// SetWorkerLabel names worker i in snapshots (a dist worker's host and
// pid, say).
func (p *Progress) SetWorkerLabel(i int, label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= 0 && i < len(p.workers) {
		p.workers[i].label = label
	}
}

// SetWorkerBusy records worker i's current in-flight cell count.
func (p *Progress) SetWorkerBusy(i int, busy int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= 0 && i < len(p.workers) {
		p.workers[i].busy = int64(busy)
	}
}

// AddWorkerDone counts one cell completed by worker i.
func (p *Progress) AddWorkerDone(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= 0 && i < len(p.workers) {
		p.workers[i].done++
	}
}

// ProgressSnapshot is the JSON-ready copy of a Progress — what the
// debug endpoint serves.
type ProgressSnapshot struct {
	CellsTotal    int64            `json:"cells_total"`
	CellsStored   int64            `json:"cells_stored"`
	CellsComputed int64            `json:"cells_computed"`
	CellsDeduped  int64            `json:"cells_deduped,omitempty"`
	CellsInFlight int64            `json:"cells_in_flight"`
	QueueDepth    int64            `json:"queue_depth"`
	TapesRecorded int64            `json:"tapes_recorded,omitempty"`
	TapeReplays   int64            `json:"tape_replays,omitempty"`
	Workers       []WorkerSnapshot `json:"workers,omitempty"`
	Lanes         []LaneSnapshot   `json:"lanes,omitempty"`
}

// LaneSnapshot is one client's lane: its submissions and how they were
// satisfied. computed + stored + deduped converges on submitted as the
// client's batches complete.
type LaneSnapshot struct {
	Client    string `json:"client"`
	Submitted int64  `json:"submitted"`
	Computed  int64  `json:"computed"`
	Stored    int64  `json:"stored"`
	Deduped   int64  `json:"deduped"`
}

// WorkerSnapshot is one worker's utilization: its current in-flight
// count and cumulative completions.
type WorkerSnapshot struct {
	Label string `json:"label,omitempty"`
	Busy  int64  `json:"busy"`
	Done  int64  `json:"done"`
}

// Snapshot copies the current counters. Safe to call concurrently with
// updates; nil returns the zero snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		CellsTotal:    p.total.Load(),
		CellsStored:   p.stored.Load(),
		CellsComputed: p.computed.Load(),
		CellsDeduped:  p.deduped.Load(),
		CellsInFlight: p.inFlight.Load(),
		QueueDepth:    p.queued.Load(),
		TapesRecorded: p.tapesRecorded.Load(),
		TapeReplays:   p.tapeReplays.Load(),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{Label: w.label, Busy: w.busy, Done: w.done})
	}
	for client, l := range p.lanes {
		s.Lanes = append(s.Lanes, LaneSnapshot{
			Client: client, Submitted: l.submitted,
			Computed: l.computed, Stored: l.stored, Deduped: l.deduped,
		})
	}
	// Map iteration order is random; snapshots sort by client so the
	// rendered JSON is stable across requests.
	sort.Slice(s.Lanes, func(i, j int) bool { return s.Lanes[i].Client < s.Lanes[j].Client })
	return s
}
