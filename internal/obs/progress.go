package obs

import (
	"sync"
	"sync/atomic"
)

// Progress is the live counter set of a running sweep: cell totals,
// store hits, computed cells, queue depth and in-flight count, plus
// per-worker utilization. Cell-grained — every update happens at job
// boundaries, never on an event or cycle path — so plain atomics and
// one small mutex for the worker table are plenty. All methods are
// nil-receiver-safe: call sites thread an optional *Progress through
// without guarding.
type Progress struct {
	total, stored, computed, inFlight, queued atomic.Int64

	mu      sync.Mutex
	workers []workerState
}

type workerState struct {
	label string
	busy  int64
	done  int64
}

// AddTotal adds n cells to the expected total (one batch submission).
func (p *Progress) AddTotal(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
}

// AddStored counts a cell served from the results store.
func (p *Progress) AddStored(n int) {
	if p == nil {
		return
	}
	p.stored.Add(int64(n))
}

// AddComputed counts a cell actually computed (locally or by a worker
// process).
func (p *Progress) AddComputed(n int) {
	if p == nil {
		return
	}
	p.computed.Add(int64(n))
}

// SetQueued records the scheduler's current ready-queue depth.
func (p *Progress) SetQueued(n int) {
	if p == nil {
		return
	}
	p.queued.Store(int64(n))
}

// SetInFlight records how many cells are currently being computed.
func (p *Progress) SetInFlight(n int) {
	if p == nil {
		return
	}
	p.inFlight.Store(int64(n))
}

// EnsureWorkers grows the per-worker table to at least n slots.
func (p *Progress) EnsureWorkers(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.workers) < n {
		p.workers = append(p.workers, workerState{})
	}
}

// SetWorkerLabel names worker i in snapshots (a dist worker's host and
// pid, say).
func (p *Progress) SetWorkerLabel(i int, label string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= 0 && i < len(p.workers) {
		p.workers[i].label = label
	}
}

// SetWorkerBusy records worker i's current in-flight cell count.
func (p *Progress) SetWorkerBusy(i int, busy int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= 0 && i < len(p.workers) {
		p.workers[i].busy = int64(busy)
	}
}

// AddWorkerDone counts one cell completed by worker i.
func (p *Progress) AddWorkerDone(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i >= 0 && i < len(p.workers) {
		p.workers[i].done++
	}
}

// ProgressSnapshot is the JSON-ready copy of a Progress — what the
// debug endpoint serves.
type ProgressSnapshot struct {
	CellsTotal    int64            `json:"cells_total"`
	CellsStored   int64            `json:"cells_stored"`
	CellsComputed int64            `json:"cells_computed"`
	CellsInFlight int64            `json:"cells_in_flight"`
	QueueDepth    int64            `json:"queue_depth"`
	Workers       []WorkerSnapshot `json:"workers,omitempty"`
}

// WorkerSnapshot is one worker's utilization: its current in-flight
// count and cumulative completions.
type WorkerSnapshot struct {
	Label string `json:"label,omitempty"`
	Busy  int64  `json:"busy"`
	Done  int64  `json:"done"`
}

// Snapshot copies the current counters. Safe to call concurrently with
// updates; nil returns the zero snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		CellsTotal:    p.total.Load(),
		CellsStored:   p.stored.Load(),
		CellsComputed: p.computed.Load(),
		CellsInFlight: p.inFlight.Load(),
		QueueDepth:    p.queued.Load(),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{Label: w.label, Busy: w.busy, Done: w.done})
	}
	return s
}
