package obs

// TimelineCap bounds the per-shard cycle ring: the most recent
// TimelineCap collection cycles keep their full phase breakdown; older
// cycles survive only in the cumulative CycleStats. A forced-GC cell
// can cycle hundreds of thousands of times, so the ring must be
// bounded — and fixed-size, so recording never allocates.
const TimelineCap = 256

// CycleRecord is one collection cycle's phase breakdown: nanosecond
// durations for the whole stop-the-world pause and its mark and sweep
// phases, the trace worker count the mark phase used, and the object
// counts it produced.
type CycleRecord struct {
	Pause   int64  `json:"pause_ns"`
	Mark    int64  `json:"mark_ns"`
	Sweep   int64  `json:"sweep_ns"`
	Workers int32  `json:"workers"`
	Marked  uint64 `json:"marked"`
	Freed   uint64 `json:"freed"`
	// Overlap is the cycle's detached nanoseconds: time the collector
	// spent running concurrently with the mutator (an overlapped cycle's
	// CycleDetach..CycleResume window). Pause and Mark count only the
	// stop-the-world share, so Pause = Mark + Sweep still holds and the
	// pause histogram records what the mutator actually felt.
	Overlap int64 `json:"overlap_ns,omitempty"`
}

// CycleStats is the cumulative, serialisable extract of a shard's
// timeline: what Outcome carries per cell and what any number of cells
// merge into. Merge is field-wise addition (plus max for the maxima
// and the histogram's bucket-wise add), so aggregation is
// order-independent: merging the same cells in any order — any
// -workers/-procs split — produces the identical struct.
type CycleStats struct {
	// Cycles counts completed collection cycles.
	Cycles uint64 `json:"cycles"`
	// Marked and Freed are cumulative object counts across cycles.
	Marked uint64 `json:"marked"`
	Freed  uint64 `json:"freed"`
	// PauseNS/MarkNS/SweepNS are cumulative phase nanoseconds.
	PauseNS int64 `json:"pause_ns"`
	MarkNS  int64 `json:"mark_ns"`
	SweepNS int64 `json:"sweep_ns"`
	// MaxPauseNS is the longest single pause observed.
	MaxPauseNS int64 `json:"max_pause_ns"`
	// MaxWorkers is the widest trace-worker fan-out any cycle used.
	MaxWorkers int32 `json:"max_workers,omitempty"`
	// OverlapNS is the cumulative detached nanoseconds: collection time
	// spent concurrent with the mutator rather than pausing it. The
	// fraction OverlapNS/(OverlapNS+PauseNS) is the share of total cycle
	// time the mutator kept running through.
	OverlapNS int64 `json:"overlap_ns,omitempty"`
	// Overlapped counts cycles that detached at all (ran any portion
	// concurrently with the mutator).
	Overlapped uint64 `json:"overlapped,omitempty"`
	// Pause is the pause-duration histogram (log-scale ns buckets).
	Pause Histogram `json:"pause_hist"`
}

// Merge accumulates o into s (order-independent shard aggregation).
func (s *CycleStats) Merge(o *CycleStats) {
	s.Cycles += o.Cycles
	s.Marked += o.Marked
	s.Freed += o.Freed
	s.PauseNS += o.PauseNS
	s.MarkNS += o.MarkNS
	s.SweepNS += o.SweepNS
	if o.MaxPauseNS > s.MaxPauseNS {
		s.MaxPauseNS = o.MaxPauseNS
	}
	if o.MaxWorkers > s.MaxWorkers {
		s.MaxWorkers = o.MaxWorkers
	}
	s.OverlapNS += o.OverlapNS
	s.Overlapped += o.Overlapped
	s.Pause.Merge(&o.Pause)
}

// Timeline is the per-shard cycle recorder: a bounded ring of recent
// CycleRecords plus cumulative CycleStats. The zero value is ready to
// record (the clock is drawn lazily on the first cycle). It is
// single-writer — the shard that owns it records; readers take
// snapshots through Stats/Recent after the shard quiesces — and every
// buffer is fixed-size, so the recording path performs no allocation
// and no locking.
//
// The phase protocol per cycle: CycleStart, then at most one
// CycleMarkDone per mark pass (last call wins for the phase boundary;
// marked counts accumulate), then CycleEnd. MarkDone/End outside an
// open cycle are ignored, so a collector whose Collect runs outside
// the runtime's instrumented path records nothing rather than
// corrupting the ring.
type Timeline struct {
	now func() int64

	// Current-cycle scratch.
	open       bool
	start      int64
	markEnd    int64
	curWorkers int32
	curMarked  uint64
	curOverlap int64
	detachAt   int64 // nonzero while the cycle is detached

	ring  [TimelineCap]CycleRecord
	n     uint64 // total cycles ever recorded (ring writes = n % cap)
	stats CycleStats
}

// CycleStart opens a cycle at the current clock reading.
func (t *Timeline) CycleStart() {
	if t.now == nil {
		t.now = newClock()
	}
	t.open = true
	t.start = t.now()
	t.markEnd = t.start
	t.curWorkers = 1
	t.curMarked = 0
	t.curOverlap = 0
	t.detachAt = 0
}

// CycleDetach marks the mutator resuming while the cycle continues
// concurrently (an overlapped collection's snapshot pause just ended).
// Time until CycleResume counts as overlap, not pause. Ignored outside
// an open cycle or when already detached.
func (t *Timeline) CycleDetach() {
	if !t.open || t.detachAt != 0 {
		return
	}
	t.detachAt = t.now()
}

// CycleResume marks the mutator stopping again so the cycle can close
// (drain and sweep). Ignored unless the cycle is detached.
func (t *Timeline) CycleResume() {
	if !t.open || t.detachAt == 0 {
		return
	}
	t.curOverlap += t.now() - t.detachAt
	t.detachAt = 0
}

// CycleMarkDone records the end of a mark pass: the mark/sweep phase
// boundary moves to now, workers widens the cycle's trace fan-out
// high-water mark, and marked objects accumulate. Ignored outside an
// open cycle.
func (t *Timeline) CycleMarkDone(workers int, marked uint64) {
	if !t.open {
		return
	}
	t.markEnd = t.now()
	if int32(workers) > t.curWorkers {
		t.curWorkers = int32(workers)
	}
	t.curMarked += marked
}

// CycleEnd closes the cycle: the record lands in the ring and the
// cumulative stats (including the pause histogram). Ignored outside an
// open cycle.
func (t *Timeline) CycleEnd(freed uint64) {
	if !t.open {
		return
	}
	if t.detachAt != 0 {
		// Closing while still detached: end the overlap window here.
		t.CycleResume()
	}
	t.open = false
	end := t.now()
	// All detached time falls inside the mark phase (the sweep never
	// overlaps), so both Pause and Mark shed it: they report the
	// stop-the-world share only.
	rec := CycleRecord{
		Pause:   end - t.start - t.curOverlap,
		Mark:    t.markEnd - t.start - t.curOverlap,
		Sweep:   end - t.markEnd,
		Workers: t.curWorkers,
		Marked:  t.curMarked,
		Freed:   freed,
		Overlap: t.curOverlap,
	}
	t.ring[t.n%TimelineCap] = rec
	t.n++
	s := &t.stats
	s.Cycles++
	s.Marked += rec.Marked
	s.Freed += rec.Freed
	s.PauseNS += rec.Pause
	s.MarkNS += rec.Mark
	s.SweepNS += rec.Sweep
	if rec.Pause > s.MaxPauseNS {
		s.MaxPauseNS = rec.Pause
	}
	if rec.Workers > s.MaxWorkers {
		s.MaxWorkers = rec.Workers
	}
	if rec.Overlap > 0 {
		s.OverlapNS += rec.Overlap
		s.Overlapped++
	}
	s.Pause.Record(rec.Pause)
}

// Cycles reports how many cycles have been recorded in total.
func (t *Timeline) Cycles() uint64 { return t.n }

// Stats returns a copy of the cumulative cycle statistics.
func (t *Timeline) Stats() CycleStats { return t.stats }

// Recent appends the retained cycle records to buf, oldest first, and
// returns the extended slice (at most TimelineCap records; older
// cycles have aged out of the ring).
func (t *Timeline) Recent(buf []CycleRecord) []CycleRecord {
	n := t.n
	lo := uint64(0)
	if n > TimelineCap {
		lo = n - TimelineCap
	}
	for i := lo; i < n; i++ {
		buf = append(buf, t.ring[i%TimelineCap])
	}
	return buf
}

// Reset returns the timeline to its zero state and discards its clock,
// so the next cycle draws a fresh one from the current factory: a
// pooled shard's timeline is indistinguishable from a fresh shard's.
func (t *Timeline) Reset() {
	*t = Timeline{}
}
