// Package obs is the zero-allocation observability layer: a metrics
// core the execution hot paths can record into without perturbing the
// properties the suite is built on — the 0 allocs/op steady-state
// gates and the byte-identical determinism of every rendered table.
//
// The layer has four parts:
//
//   - Histogram (hist.go): fixed-bucket log-scale distributions. A
//     value is one shift and one increment to record; merging is
//     bucket-wise addition, so shard aggregation is order-independent
//     by construction — any -workers/-procs split of the same cells
//     merges to identical buckets.
//   - Timeline (timeline.go): the per-shard cycle-phase recorder. Each
//     collection cycle contributes pause/mark/sweep nanoseconds, the
//     trace worker count and the marked/freed object counts to a
//     bounded ring plus cumulative CycleStats. Nanotime deltas are
//     taken only around cycle phases — never per runtime event — and
//     every buffer is fixed-size, so recording is branch-cheap and
//     allocation-free on the instrumented paths.
//   - Provenance (provenance.go): host, OS/arch, CPU model,
//     GOMAXPROCS, go version and load averages, stamped into stored
//     outcomes so a wall-clock measurement is meaningful after the
//     fact (which machine, how loaded).
//   - Progress + Server (progress.go, debug.go): live counters for a
//     running sweep (cells stored/computed/in-flight, per-worker
//     utilization, queue depth) served as a JSON snapshot next to
//     net/http/pprof on -debug-addr.
//
// Determinism contract: everything wall-clock-dependent that obs
// produces (histogram buckets, phase nanoseconds, provenance) lives
// outside the deterministic payload — results carries it in dedicated
// Outcome fields that table rendering never reads, so goldens stay
// byte-identical with observability enabled.
package obs

import (
	"sync/atomic"
	"time"
)

// epoch anchors the process-monotonic clock: Nanotime is time.Since a
// fixed start, which Go computes from the monotonic reading — immune
// to wall-clock steps, allocation-free, and cheap enough to take a
// handful of times per collection cycle.
var epoch = time.Now()

// Nanotime returns the process-monotonic clock in nanoseconds. Callers
// that stamp provenance pass this in, so the stored timestamp is
// explicitly monotonic rather than a wall reading in disguise.
func Nanotime() int64 { return int64(time.Since(epoch)) }

// clockFactory, when set, replaces the monotonic clock for every
// Timeline created (or reset) afterwards. Tests install a deterministic
// counter here so phase durations — and therefore pause histograms —
// become pure functions of the cycle sequence, which is what lets the
// workers=1 vs workers=8 split be compared bucket-for-bucket.
var clockFactory atomic.Value // of func() func() int64

// SetClockFactory installs f as the source of per-Timeline clocks (each
// Timeline draws its own clock instance, so concurrent shards never
// share clock state); nil restores the monotonic default. Test-only:
// the real clock is the default and never needs installing.
func SetClockFactory(f func() func() int64) {
	if f == nil {
		clockFactory.Store((func() func() int64)(nil))
		return
	}
	clockFactory.Store(f)
}

// newClock resolves the clock for one Timeline: the installed factory's
// product, or the shared monotonic reader (no per-Timeline allocation
// on the default path).
func newClock() func() int64 {
	if f, _ := clockFactory.Load().(func() func() int64); f != nil {
		return f()
	}
	return Nanotime
}
