package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServerServesSnapshotAndPprof boots the -debug-addr surface
// on a free port and checks both halves: /progress returns the live
// JSON snapshot, and the pprof index answers.
func TestDebugServerServesSnapshotAndPprof(t *testing.T) {
	p := &Progress{}
	p.AddTotal(7)
	p.AddComputed(3)
	p.EnsureWorkers(1)
	p.SetWorkerLabel(0, "w0")
	srv, err := Serve("127.0.0.1:0", func() Snapshot {
		ps := p.Snapshot()
		return Snapshot{
			Provenance: Capture(Nanotime()),
			Progress:   &ps,
			Gauges:     map[string]int64{"heap_reserved_bytes": 42},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/progress"), &snap); err != nil {
		t.Fatalf("progress snapshot is not JSON: %v", err)
	}
	if snap.Progress == nil || snap.Progress.CellsTotal != 7 || snap.Progress.CellsComputed != 3 {
		t.Fatalf("snapshot progress = %+v", snap.Progress)
	}
	if len(snap.Progress.Workers) != 1 || snap.Progress.Workers[0].Label != "w0" {
		t.Fatalf("snapshot workers = %+v", snap.Progress.Workers)
	}
	if snap.Gauges["heap_reserved_bytes"] != 42 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
	if snap.Provenance.GoVersion == "" {
		t.Fatal("snapshot provenance missing")
	}

	if body := string(get("/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index does not list profiles: %.120s", body)
	}
}
