package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Provenance records where and under what conditions an outcome was
// computed: the honest context a wall-clock measurement needs before
// persisting it is meaningful (ROADMAP: "honest provenance (host,
// load, CPU) in the stored outcome"). It travels inside
// results.Outcome — through the store and the dist protocol — but is
// never part of table rendering, so goldens stay byte-identical.
type Provenance struct {
	// Host, OS, Arch and CPU identify the machine.
	Host string `json:"host,omitempty"`
	OS   string `json:"os,omitempty"`
	Arch string `json:"arch,omitempty"`
	CPU  string `json:"cpu,omitempty"`
	// CPUs is the logical CPU count, GoMaxProcs the scheduler width the
	// process actually ran with.
	CPUs       int `json:"cpus,omitempty"`
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go,omitempty"`
	// PID distinguishes worker processes sharing one host.
	PID int `json:"pid,omitempty"`
	// Load1/5/15 are the host load averages at capture (0 where the
	// platform does not expose /proc/loadavg).
	Load1  float64 `json:"load1,omitempty"`
	Load5  float64 `json:"load5,omitempty"`
	Load15 float64 `json:"load15,omitempty"`
	// Wall is the capture's UTC wall-clock time.
	Wall string `json:"wall,omitempty"`
	// MonoNS is a monotonic-clock timestamp passed in by the caller
	// (obs.Nanotime for the capturing process), ordering captures
	// within one process immune to wall-clock steps.
	MonoNS int64 `json:"mono_ns,omitempty"`
}

// staticProv caches the per-process-constant fields; only the load
// averages and timestamps are re-read per capture.
var (
	staticOnce sync.Once
	staticProv Provenance
)

// Capture returns the current provenance. monoNS is the caller's
// monotonic timestamp (pass obs.Nanotime()); everything else is
// captured here — constant fields once per process, load averages and
// wall clock per call. Capture runs at cell completion, never on an
// event or cycle hot path, so its file reads and formatting are free
// to allocate.
func Capture(monoNS int64) Provenance {
	staticOnce.Do(func() {
		host, _ := os.Hostname()
		staticProv = Provenance{
			Host:      host,
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			CPU:       cpuModel(),
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
			PID:       os.Getpid(),
		}
	})
	p := staticProv
	p.GoMaxProcs = runtime.GOMAXPROCS(0)
	p.Load1, p.Load5, p.Load15 = loadAvg()
	p.Wall = time.Now().UTC().Format(time.RFC3339Nano)
	p.MonoNS = monoNS
	return p
}

// loadAvg reads the 1/5/15-minute load averages. Linux keeps them in
// /proc/loadavg; elsewhere (or on read/parse failure) they report as
// zeros rather than failing the capture.
func loadAvg() (l1, l5, l15 float64) {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0, 0, 0
	}
	f := strings.Fields(string(data))
	if len(f) < 3 {
		return 0, 0, 0
	}
	l1, _ = strconv.ParseFloat(f[0], 64)
	l5, _ = strconv.ParseFloat(f[1], 64)
	l15, _ = strconv.ParseFloat(f[2], 64)
	return l1, l5, l15
}

// cpuModel extracts the CPU model string from /proc/cpuinfo ("model
// name" on x86, "Processor"/"uarch" variants elsewhere); empty when
// the platform does not expose it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(key) {
		case "model name", "Processor", "cpu model":
			return strings.TrimSpace(val)
		}
	}
	return ""
}
