package obs

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistogramBuckets pins the bucket function: zeros in bucket 0,
// powers of two on their boundaries, the tail clamped.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 38, 39}, {1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 1; i < HistBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("bucket bounds not monotone at %d", i)
		}
	}
}

// TestHistogramMergeOrderIndependent is the determinism core of the
// metrics layer: merging the same shard histograms in any permutation
// produces identical buckets, which is why aggregated distributions
// cannot depend on the -workers/-procs split that scheduled the cells.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shards := make([]Histogram, 16)
	for i := range shards {
		for j := 0; j < 1000; j++ {
			shards[i].Record(rng.Int63n(1 << 30))
		}
	}
	merge := func(order []int) Histogram {
		var h Histogram
		for _, i := range order {
			h.Merge(&shards[i])
		}
		return h
	}
	base := make([]int, len(shards))
	for i := range base {
		base[i] = i
	}
	want := merge(base)
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(shards))
		if got := merge(perm); got != want {
			t.Fatalf("merge order %v diverged", perm)
		}
	}
	if want.Count != 16*1000 {
		t.Fatalf("merged count %d", want.Count)
	}
}

// TestHistogramQuantiles sanity-checks the conservative quantile read.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	for i := 0; i < 90; i++ {
		h.Record(100) // bucket 7, bound 128
	}
	for i := 0; i < 10; i++ {
		h.Record(100000) // bucket 17, bound 131072
	}
	if p50 := h.Quantile(0.5); p50 != 128*time.Nanosecond {
		t.Fatalf("p50 = %v, want 128ns", p50)
	}
	if p95 := h.Quantile(0.95); p95 != 131072*time.Nanosecond {
		t.Fatalf("p95 = %v, want ~131µs", p95)
	}
	if h.Max() != 131072*time.Nanosecond {
		t.Fatalf("max = %v", h.Max())
	}
}

// fakeClock returns a clock factory whose clocks advance a fixed step
// per reading — each Timeline gets its own counter, so concurrent
// shards stay deterministic.
func fakeClock(step int64) func() func() int64 {
	return func() func() int64 {
		var c int64
		return func() int64 {
			c += step
			return c
		}
	}
}

// TestTimelinePhases drives the cycle protocol against a deterministic
// clock and checks the phase arithmetic, the ring and the cumulative
// stats.
func TestTimelinePhases(t *testing.T) {
	SetClockFactory(fakeClock(10))
	defer SetClockFactory(nil)

	var tl Timeline
	tl.CycleStart()          // t=10
	tl.CycleMarkDone(4, 100) // t=20: mark = 10
	tl.CycleEnd(25)          // t=30: pause = 20, sweep = 10
	tl.CycleStart()          // t=40
	tl.CycleEnd(0)           // t=50: pause = 10, no mark-done: mark 0, sweep 10
	tl.CycleMarkDone(8, 1)   // outside a cycle: ignored
	tl.CycleEnd(99)          // ignored
	recs := tl.Recent(nil)
	want := []CycleRecord{
		{Pause: 20, Mark: 10, Sweep: 10, Workers: 4, Marked: 100, Freed: 25},
		{Pause: 10, Mark: 0, Sweep: 10, Workers: 1, Marked: 0, Freed: 0},
	}
	if len(recs) != 2 || recs[0] != want[0] || recs[1] != want[1] {
		t.Fatalf("ring = %+v, want %+v", recs, want)
	}
	s := tl.Stats()
	if s.Cycles != 2 || s.Marked != 100 || s.Freed != 25 ||
		s.PauseNS != 30 || s.MarkNS != 10 || s.SweepNS != 20 ||
		s.MaxPauseNS != 20 || s.MaxWorkers != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Pause.Count != 2 {
		t.Fatalf("pause histogram count %d", s.Pause.Count)
	}

	tl.Reset()
	if tl.Cycles() != 0 || tl.Stats() != (CycleStats{}) {
		t.Fatal("reset timeline not observably fresh")
	}
}

// TestTimelineRingBounded overfills the ring and checks only the most
// recent TimelineCap records survive while the stats keep counting.
func TestTimelineRingBounded(t *testing.T) {
	SetClockFactory(fakeClock(1))
	defer SetClockFactory(nil)
	var tl Timeline
	total := TimelineCap + 37
	for i := 0; i < total; i++ {
		tl.CycleStart()
		tl.CycleEnd(uint64(i))
	}
	recs := tl.Recent(nil)
	if len(recs) != TimelineCap {
		t.Fatalf("ring holds %d records, want %d", len(recs), TimelineCap)
	}
	if recs[0].Freed != uint64(total-TimelineCap) || recs[len(recs)-1].Freed != uint64(total-1) {
		t.Fatalf("ring window [%d..%d], want [%d..%d]",
			recs[0].Freed, recs[len(recs)-1].Freed, total-TimelineCap, total-1)
	}
	if got := tl.Stats().Cycles; got != uint64(total) {
		t.Fatalf("stats counted %d cycles, want %d", got, total)
	}
}

// TestCycleStatsMergeOrderIndependent checks the outcome-level merge:
// any permutation of cell stats aggregates identically.
func TestCycleStatsMergeOrderIndependent(t *testing.T) {
	SetClockFactory(fakeClock(3))
	defer SetClockFactory(nil)
	rng := rand.New(rand.NewSource(7))
	cells := make([]CycleStats, 12)
	for i := range cells {
		var tl Timeline
		for c := 0; c < 1+rng.Intn(20); c++ {
			tl.CycleStart()
			tl.CycleMarkDone(1+rng.Intn(8), uint64(rng.Intn(1000)))
			tl.CycleEnd(uint64(rng.Intn(500)))
		}
		cells[i] = tl.Stats()
	}
	merge := func(order []int) CycleStats {
		var s CycleStats
		for _, i := range order {
			s.Merge(&cells[i])
		}
		return s
	}
	base := rng.Perm(len(cells))
	want := merge(base)
	for trial := 0; trial < 10; trial++ {
		if got := merge(rng.Perm(len(cells))); got != want {
			t.Fatal("cycle-stats merge depends on order")
		}
	}
}

// TestProvenanceCapture smoke-checks the capture: constant fields
// populated, the caller's monotonic stamp carried through.
func TestProvenanceCapture(t *testing.T) {
	mono := Nanotime()
	p := Capture(mono)
	if p.OS == "" || p.Arch == "" || p.GoVersion == "" || p.CPUs < 1 || p.GoMaxProcs < 1 {
		t.Fatalf("constant fields missing: %+v", p)
	}
	if p.MonoNS != mono {
		t.Fatalf("mono stamp %d, want %d", p.MonoNS, mono)
	}
	if _, err := time.Parse(time.RFC3339Nano, p.Wall); err != nil {
		t.Fatalf("wall stamp %q: %v", p.Wall, err)
	}
	if Nanotime() < mono {
		t.Fatal("monotonic clock went backwards")
	}
}

// TestProgressCounters exercises the nil-safety and the snapshot copy.
func TestProgressCounters(t *testing.T) {
	var nilP *Progress
	nilP.AddTotal(1) // must not panic
	nilP.SetWorkerBusy(0, 1)
	if s := nilP.Snapshot(); s.CellsTotal != 0 {
		t.Fatal("nil progress must snapshot as zero")
	}

	p := &Progress{}
	p.AddTotal(10)
	p.AddStored(3)
	p.AddComputed(2)
	p.SetQueued(4)
	p.SetInFlight(1)
	p.EnsureWorkers(2)
	p.SetWorkerLabel(1, "hostb:42")
	p.SetWorkerBusy(1, 1)
	p.AddWorkerDone(1)
	p.AddWorkerDone(7) // out of range: ignored
	s := p.Snapshot()
	if s.CellsTotal != 10 || s.CellsStored != 3 || s.CellsComputed != 2 ||
		s.CellsInFlight != 1 || s.QueueDepth != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Workers) != 2 || s.Workers[1].Label != "hostb:42" ||
		s.Workers[1].Busy != 1 || s.Workers[1].Done != 1 {
		t.Fatalf("worker snapshot = %+v", s.Workers)
	}
}
