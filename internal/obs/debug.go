package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Snapshot is what the debug endpoint's /progress handler serves: the
// process's provenance, the sweep's live progress counters, and any
// extra gauges the host process wants visible (heap-reservation
// occupancy, say). Gauges is a map so CLIs can add signals without an
// obs change; encoding/json sorts its keys, so the rendered snapshot
// is stable.
type Snapshot struct {
	Provenance Provenance        `json:"provenance"`
	Progress   *ProgressSnapshot `json:"progress,omitempty"`
	Gauges     map[string]int64  `json:"gauges,omitempty"`
}

// Server is the -debug-addr HTTP surface: net/http/pprof plus the JSON
// progress snapshot. It exists so a long sweep can be profiled and
// watched while it runs, without the sweep paying anything when the
// flag is absent.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port; the chosen address is
// reported by Addr) and serves in a background goroutine:
//
//	/progress          JSON Snapshot from the snap callback
//	/debug/pprof/...   the standard pprof handlers
//
// The callback runs per request, so the snapshot always reflects the
// live counters.
func Serve(addr string, snap func() Snapshot) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "endpoints: /progress /debug/pprof/")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	go func() {
		// ErrServerClosed after Close; anything else is reported by the
		// next Close call's error (the listener is gone either way).
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr reports the bound address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
