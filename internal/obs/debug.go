package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Snapshot is what the debug endpoint's /progress handler serves: the
// process's provenance, the sweep's live progress counters, and any
// extra gauges the host process wants visible (heap-reservation
// occupancy, say). Gauges is a map so CLIs can add signals without an
// obs change; encoding/json sorts its keys, so the rendered snapshot
// is stable.
type Snapshot struct {
	Provenance Provenance        `json:"provenance"`
	Progress   *ProgressSnapshot `json:"progress,omitempty"`
	Gauges     map[string]int64  `json:"gauges,omitempty"`
}

// Health is what /healthz serves: liveness (answering at all) plus the
// process's drain state. A draining server answers 503 so load
// balancers and smoke scripts stop sending new sweeps while in-flight
// streams finish; InFlight lets an operator watch the drain converge.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	Draining bool   `json:"draining"`
	InFlight int64  `json:"in_flight,omitempty"`
}

// Server is the debug/serving HTTP surface: net/http/pprof, the JSON
// progress snapshot, and /healthz. It exists so a long sweep — or the
// sweep server — can be profiled and watched while it runs, without
// paying anything when the flag is absent. Hosts with their own
// endpoints (cgserve's /sweep and /cell) mount them on Mux before
// announcing the address.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	mux    *http.ServeMux
	health atomic.Pointer[func() Health]
}

// Serve binds addr (":0" picks a free port; the chosen address is
// reported by Addr) and serves in a background goroutine:
//
//	/progress          JSON Snapshot from the snap callback
//	/healthz           JSON Health (200 ok / 503 draining)
//	/debug/pprof/...   the standard pprof handlers
//
// The callbacks run per request, so snapshots always reflect the live
// counters. Without SetHealth, /healthz reports a static ok.
func Serve(addr string, snap func() Snapshot) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	s := &Server{ln: ln, mux: mux, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}}
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok"}
		if f := s.health.Load(); f != nil {
			h = (*f)()
		}
		if h.Status == "" {
			h.Status = "ok"
			if h.Draining {
				h.Status = "draining"
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if h.Draining {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "endpoints: /progress /healthz /debug/pprof/")
	})
	go func() {
		// ErrServerClosed after Close; anything else is reported by the
		// next Close call's error (the listener is gone either way).
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// SetHealth installs the /healthz callback (nil restores the static
// ok). Safe to call while serving — the handler reads it per request.
func (s *Server) SetHealth(f func() Health) {
	if f == nil {
		s.health.Store(nil)
		return
	}
	s.health.Store(&f)
}

// Mux exposes the server's mux so a host can mount its own endpoints
// (cgserve's sweep API) on the same listener. http.ServeMux.Handle is
// internally locked, but register before publishing the address —
// requests racing a registration would 404.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// Addr reports the bound address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
