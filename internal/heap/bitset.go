package heap

import "math/bits"

// Bitset is a word-packed bit vector over handle IDs — the mark/live
// scratch representation of the collection cycle. One cache line holds
// 512 handles' worth of bits (the byte-wide []bool it replaced held
// 64), and the sweep consumes it word-at-a-time: garbage in a 64-handle
// window is one AND-NOT and a TrailingZeros loop instead of 64 loads
// and branches.
type Bitset []uint64

// BitsetWords reports the number of uint64 words needed to cover n
// bits.
func BitsetWords(n int) int { return (n + 63) >> 6 }

// Reset sizes b to cover n bits and zeroes every covered word, reusing
// capacity. The whole new length is cleared unconditionally, so a
// pooled bitset shrunk and re-grown across uses can never leak stale
// bits into a later cycle.
func (b *Bitset) Reset(n int) {
	w := BitsetWords(n)
	if cap(*b) < w {
		*b = make(Bitset, w)
		return
	}
	s := (*b)[:w]
	clear(s)
	*b = s
}

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// NextSet returns the index of the first set bit at or after i, or -1 if
// none. It scans word-at-a-time, so a sparse upward search (the recycle
// index's best-fit class scan) costs O(words), not O(bits).
func (b Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b) {
		return -1
	}
	if m := b[w] &^ (1<<(uint(i)&63) - 1); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	for w++; w < len(b); w++ {
		if m := b[w]; m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// Count reports the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
