package heap

import "math/bits"

// Parallel sweep primitives (DESIGN.md §10).
//
// The sequential hook-free sweep interleaves three kinds of work per
// garbage object: handle-record release (live flag, ref extent), live
// bitmap maintenance, and the arena free. Only the arena free is
// order-sensitive — block placement, partial-list linkage, slab
// caching and page coalescing all depend on the order frees arrive —
// so the parallel sweep splits the phases:
//
//  1. CollectGarbageRange (parallel): workers own disjoint word ranges
//     of the live/mark bitmaps. Each worker releases the handle
//     records and live bits of its range's garbage and records the
//     (id, addr, size) free list into a private FreeBatch, in
//     ascending handle order. Handle records of distinct IDs and words
//     of distinct ranges never alias, so this phase needs no locks and
//     no atomics.
//  2. ApplyFreeBatch (sequential): batches are merged into the arena
//     in ascending word-range order, each batch already ascending — so
//     the arena observes exactly the canonical lowest-ID (= the
//     sequential sweep's) free sequence, and the free-ID list refills
//     in the identical order. The post-sweep arena and handle table
//     are byte-for-byte the state the sequential sweep produces, which
//     is what keeps Reset-replay address determinism and every seed
//     observable intact.
type FreeBatch struct {
	entries []freeEnt
	// freedBytes accumulates requested-size bytes for observability.
	freedBytes uint64
}

type freeEnt struct {
	id   HandleID
	addr int32
	size int32
}

// Len reports the number of frees the batch holds.
func (b *FreeBatch) Len() int { return len(b.entries) }

// FreedBytes reports the cumulative requested-size bytes in the batch.
func (b *FreeBatch) FreedBytes() uint64 { return b.freedBytes }

// Reset empties the batch, keeping capacity.
func (b *FreeBatch) Reset() {
	b.entries = b.entries[:0]
	b.freedBytes = 0
}

// CollectGarbageRange sweeps words [loWord, hiWord) of live&^mark into
// b: every garbage object's handle record is released (live flag
// cleared, ref extent truncated — the extent stays bound to the slot
// for reuse, exactly as Free leaves it), its live bit cleared, and its
// (id, addr, size) appended to b in ascending handle order. live is
// the bitmap the cycle decided garbage against — the current bitmap
// for a stop-the-world sweep, the epoch snapshot for an overlapped one
// (objects born during the epoch have bits in the current bitmap only,
// so they are never garbage here and their bits survive the word-level
// clear untouched).
//
// Safe to call from concurrent goroutines with disjoint word ranges:
// all writes are to handle records of this range's IDs and to this
// range's words of the live bitmap.
func (h *Heap) CollectGarbageRange(live, mark Bitset, loWord, hiWord int, b *FreeBatch) {
	lb := h.liveBits
	for k := loWord; k < hiWord; k++ {
		g := live[k] &^ mark[k]
		if g == 0 {
			continue
		}
		lb[k] &^= g
		base := k << 6
		for ; g != 0; g &= g - 1 {
			id := HandleID(base + bits.TrailingZeros64(g))
			hd := &h.handles[int(id)]
			hd.live = false
			hd.refLen = 0
			b.entries = append(b.entries, freeEnt{id: id, addr: int32(hd.addr), size: int32(hd.size)})
			b.freedBytes += uint64(hd.size)
		}
	}
}

// ApplyFreeBatch merges one batch into the arena and the free-ID list,
// in batch order, and returns the number of objects freed. Callers
// apply batches in ascending word-range order so the combined sequence
// is the canonical sequential sweep order.
func (h *Heap) ApplyFreeBatch(b *FreeBatch) int {
	for _, e := range b.entries {
		h.arena.Free(int(e.addr), int(e.size))
		h.freeIDs = append(h.freeIDs, e.id)
	}
	n := len(b.entries)
	h.stats.Frees += uint64(n)
	return n
}
