package heap

import (
	"fmt"
	"math/bits"
)

// HandleID names an object through its handle-table slot. ID 0 is the
// null reference, mirroring the JVM's null.
type HandleID int32

// Nil is the null reference.
const Nil HandleID = 0

// ClassID indexes the class table.
type ClassID int32

// Class describes an object layout: how many reference slots instances
// carry and how many additional payload (primitive) bytes. Arrays are
// classes with IsArray set; their element count is chosen per allocation.
type Class struct {
	Name    string
	Refs    int  // reference slots per instance
	Data    int  // primitive payload bytes per instance
	IsArray bool // element count supplied at Alloc time
}

// headerBytes models the JVM object header.
const headerBytes = 8

// maxSlab bounds the shared ref slab so extent offsets (and off+len
// sums) fit the int32 fields of the handle record.
const maxSlab = 1<<31 - 1

// refBytes models one reference slot (handle index) in the object body.
const refBytes = 4

// align rounds sizes to 8-byte boundaries, as the JDK allocator does.
func align(n int) int { return (n + 7) &^ 7 }

// InstanceSize reports the arena footprint of an instance of c with
// extra additional reference slots (array elements).
func InstanceSize(c Class, extra int) int {
	return align(headerBytes + (c.Refs+extra)*refBytes + c.Data)
}

// handle is one slot of the handle table: the indirection cell through
// which all references pass (§3.1: "Each handle contains a pointer to the
// object's current location …"). Reference slots live in the heap's
// shared slab, not in a per-handle slice: the handle records only its
// extent (offset, live length, capacity). refOff/refCap survive Free so
// that a handle slot recycled through the free-ID path reuses its slab
// extent — steady-state allocation touches no Go allocator.
type handle struct {
	class  ClassID
	addr   int
	size   int
	refOff int32 // base of this handle's extent in the ref slab
	refLen int32 // live reference slots (current instance)
	refCap int32 // extent capacity; kept across Free for reuse
	live   bool
	birth  uint64 // allocation sequence number
}

// Stats aggregates heap-level counters.
type Stats struct {
	Allocs      uint64 // successful allocations
	Frees       uint64 // explicit frees (CG or MSA)
	FailedAlloc uint64 // allocations that saw ErrOutOfMemory at least once
	BytesAlloc  uint64 // cumulative bytes allocated
}

// Heap combines the class table, handle table, the shared ref slab and
// the arena. Create one with New.
type Heap struct {
	classes []Class
	byName  map[string]ClassID
	handles []handle
	freeIDs []HandleID
	// slab is the single backing store for every handle's reference
	// slots: handle i owns slab[refOff : refOff+refLen]. Extents are
	// recycled with their handle slot (see handle.refCap); an extent is
	// orphaned only when a recycled slot needs a wider one, so in steady
	// state Alloc/Reinit/Free perform no Go allocation and the mark
	// phase walks contiguous memory.
	slab  []HandleID
	arena *Arena
	stats Stats
	seq   uint64
	// liveBits mirrors handle.live word-packed, maintained by
	// Alloc/Free: bit i is set iff handles[i].live. The sweep phase
	// consumes it directly — garbage in a 64-handle window is
	// live &^ mark, one AND-NOT per word — and ForEachLive/NumLive walk
	// words instead of handle records.
	liveBits Bitset
}

// New returns a heap whose object space spans arenaBytes.
func New(arenaBytes int) *Heap {
	h := &Heap{
		arena:    NewArena(arenaBytes),
		byName:   make(map[string]ClassID),
		handles:  make([]handle, 1), // slot 0 = Nil, never used
		liveBits: make(Bitset, 1),
	}
	return h
}

// DefineClass registers a class and returns its ID. Redefining a name
// returns the existing ID if the layout matches and panics otherwise —
// class tables are append-only in the JVM too.
func (h *Heap) DefineClass(c Class) ClassID {
	if id, ok := h.byName[c.Name]; ok {
		if h.classes[id] != c {
			panic(fmt.Sprintf("heap: conflicting redefinition of class %q", c.Name))
		}
		return id
	}
	id := ClassID(len(h.classes))
	h.classes = append(h.classes, c)
	h.byName[c.Name] = id
	return id
}

// ClassByName looks a class up; ok is false if undefined.
func (h *Heap) ClassByName(name string) (ClassID, bool) {
	id, ok := h.byName[name]
	return id, ok
}

// ClassOf reports the class of a live object.
func (h *Heap) ClassOf(id HandleID) ClassID { return h.h(id).class }

// ClassDef returns the class descriptor.
func (h *Heap) ClassDef(c ClassID) Class { return h.classes[int(c)] }

// NumClasses reports how many classes are defined. ClassIDs are dense:
// every id in [0, NumClasses) is valid for ClassDef, in definition
// order — which is what lets a recorded tape snapshot the class table
// and a replay rebuild it with identical ids.
func (h *Heap) NumClasses() int { return len(h.classes) }

// Arena exposes the underlying allocator (read-mostly; the VM's GC
// trigger inspects occupancy).
func (h *Heap) Arena() *Arena { return h.arena }

// Stats returns a copy of the counters.
func (h *Heap) Stats() Stats { return h.stats }

// h returns the handle record for id, panicking on null or stale IDs:
// handle discipline violations are runtime bugs, not user errors. The
// failure paths live in a noinline helper so h itself inlines into the
// per-event accessors.
func (h *Heap) h(id HandleID) *handle {
	hd := &h.handles[int(id)]
	if id == Nil || !hd.live {
		h.badHandle(id)
	}
	return hd
}

//go:noinline
func (h *Heap) badHandle(id HandleID) {
	if id == Nil {
		panic("heap: null handle dereference")
	}
	panic(fmt.Sprintf("heap: dangling handle %d", id))
}

//go:noinline
func (h *Heap) badSlot(hd *handle, i int) {
	panic(fmt.Sprintf("heap: ref slot %d out of range on %s", i, h.classes[hd.class].Name))
}

// Alloc creates an instance of class c with extra additional reference
// slots (used for reference arrays; zero for plain objects), returning
// its handle. On arena exhaustion it returns ErrOutOfMemory without side
// effects, so the runtime can collect and retry.
func (h *Heap) Alloc(c ClassID, extra int) (HandleID, error) {
	cls := h.classes[int(c)]
	if extra != 0 && !cls.IsArray {
		return Nil, fmt.Errorf("heap: class %q is not an array class", cls.Name)
	}
	size := InstanceSize(cls, extra)
	addr, err := h.arena.Alloc(size)
	if err != nil {
		h.stats.FailedAlloc++
		return Nil, err
	}
	var id HandleID
	if n := len(h.freeIDs); n > 0 {
		id = h.freeIDs[n-1]
		h.freeIDs = h.freeIDs[:n-1]
	} else {
		h.handles = append(h.handles, handle{})
		id = HandleID(len(h.handles) - 1)
		if int(id)>>6 >= len(h.liveBits) {
			// Appended values are explicit zeros, so capacity retained
			// across Reset can never surface stale bits.
			h.liveBits = append(h.liveBits, 0)
		}
	}
	h.seq++
	hd := &h.handles[int(id)]
	hd.class = c
	hd.addr = addr
	hd.size = size
	hd.live = true
	hd.birth = h.seq
	h.liveBits.Set(int(id))
	h.bindRefs(hd, cls.Refs+extra)
	h.stats.Allocs++
	h.stats.BytesAlloc += uint64(size)
	return id, nil
}

// bindRefs points hd at a zeroed slab extent of nrefs slots, reusing the
// slot's previous extent when it is wide enough (the free-ID recycling
// path) and carving a fresh one off the slab tail otherwise.
func (h *Heap) bindRefs(hd *handle, nrefs int) {
	if nrefs <= int(hd.refCap) {
		hd.refLen = int32(nrefs)
		clearRefs(h.slab[hd.refOff : hd.refOff+int32(nrefs)])
		return
	}
	off := len(h.slab)
	if off+nrefs > maxSlab {
		panic("heap: ref slab exceeds 2^31 slots")
	}
	if n := off + nrefs; n <= cap(h.slab) {
		h.slab = h.slab[:n]
		clearRefs(h.slab[off:]) // reused capacity may hold stale refs
	} else {
		h.slab = append(h.slab, make([]HandleID, nrefs)...)
	}
	hd.refOff = int32(off)
	hd.refLen = int32(nrefs)
	hd.refCap = int32(nrefs)
}

// clearRefs nils out a slab extent (compiles to a memclr).
func clearRefs(s []HandleID) {
	for i := range s {
		s[i] = Nil
	}
}

// refs returns hd's live reference slots as a slab window.
func (h *Heap) refs(hd *handle) []HandleID {
	return h.slab[hd.refOff : hd.refOff+hd.refLen]
}

// Free releases an object's arena extent and recycles its handle slot.
// The slab extent stays bound to the slot (refCap) so a later Alloc
// reusing the slot reuses the extent. Freeing Nil or a dead handle
// panics: both collectors must agree on ownership, and a double free
// indicates a collector bug.
func (h *Heap) Free(id HandleID) {
	hd := h.h(id)
	h.arena.Free(hd.addr, hd.size)
	hd.live = false
	hd.refLen = 0
	h.liveBits.Clear(int(id))
	h.freeIDs = append(h.freeIDs, id)
	h.stats.Frees++
}

// Reinit repurposes a live object's extent and handle for a fresh
// instance of class c with extra reference slots — the §3.7 recycling
// path, where a dead-but-unfreed object is handed out again without
// touching the allocator ("instead of having to free each object … we
// only update a pointer"). The extent keeps its original size (first-fit
// allows internal fragmentation); it must be at least as big as the new
// instance requires.
func (h *Heap) Reinit(id HandleID, c ClassID, extra int) error {
	hd := h.h(id)
	cls := h.classes[int(c)]
	if extra != 0 && !cls.IsArray {
		return fmt.Errorf("heap: class %q is not an array class", cls.Name)
	}
	need := InstanceSize(cls, extra)
	if need > hd.size {
		return fmt.Errorf("heap: recycled extent of %d bytes too small for %d", hd.size, need)
	}
	h.seq++
	hd.class = c
	hd.birth = h.seq
	h.bindRefs(hd, cls.Refs+extra)
	h.stats.Allocs++
	h.stats.BytesAlloc += uint64(need)
	return nil
}

// Live reports whether id names a currently allocated object. Nil is not
// live.
func (h *Heap) Live(id HandleID) bool {
	return id != Nil && int(id) < len(h.handles) && h.handles[int(id)].live
}

// NumLive counts live objects. One popcount per 64 handles — cheap
// enough that the collection cycle consults it as its parallel-tracing
// admission gate.
func (h *Heap) NumLive() int { return h.liveBits.Count() }

// HandleCap reports the current handle-table capacity (including dead
// slots); CG sizes its side metadata from this.
func (h *Heap) HandleCap() int { return len(h.handles) }

// SizeOf reports the arena footprint of a live object.
func (h *Heap) SizeOf(id HandleID) int { return h.h(id).size }

// AddrOf reports a live object's arena address (tests, fragmentation
// studies).
func (h *Heap) AddrOf(id HandleID) int { return h.h(id).addr }

// Birth reports the allocation sequence number of a live object.
func (h *Heap) Birth(id HandleID) uint64 { return h.h(id).birth }

// NumRefSlots reports how many reference slots a live object carries.
func (h *Heap) NumRefSlots(id HandleID) int { return int(h.h(id).refLen) }

// GetRef reads reference slot i of object id.
func (h *Heap) GetRef(id HandleID, i int) HandleID {
	hd := h.h(id)
	if uint(i) >= uint(hd.refLen) {
		h.badSlot(hd, i)
	}
	return h.slab[hd.refOff+int32(i)]
}

// SetRef writes reference slot i of object id. The *runtime* is
// responsible for routing the corresponding contamination event to the
// collector before calling SetRef; the heap is policy-free.
func (h *Heap) SetRef(id HandleID, i int, val HandleID) {
	hd := h.h(id)
	if uint(i) >= uint(hd.refLen) {
		h.badSlot(hd, i)
	}
	if val != Nil && !h.Live(val) {
		panic("heap: storing dangling reference")
	}
	h.slab[hd.refOff+int32(i)] = val
}

// RefSlots returns a live object's reference slots as a read-only view
// of the shared slab — the contiguous walk the mark phase performs.
// Callers must not retain the slice across any heap mutation.
func (h *Heap) RefSlots(id HandleID) []HandleID { return h.refs(h.h(id)) }

// Refs iterates over the non-nil outgoing references of a live object,
// the traversal the MSA mark phase performs.
func (h *Heap) Refs(id HandleID, fn func(HandleID)) {
	for _, r := range h.refs(h.h(id)) {
		if r != Nil {
			fn(r)
		}
	}
}

// ForEachLive visits every live object in handle order (the MSA sweep
// order), walking the live bitmap word-at-a-time. The current bit is
// re-checked against the live array before each visit, so a callback
// that frees objects ahead of the cursor (within the current word)
// observes the same skip-dead semantics the handle-record walk had.
func (h *Heap) ForEachLive(fn func(HandleID)) {
	lb := h.liveBits
	for k, w := range lb {
		base := k << 6
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			if lb[k]&(1<<uint(b)) != 0 {
				fn(HandleID(base + b))
			}
		}
	}
}

// LiveWords exposes the live bitmap as a read-only word view covering
// the whole handle table — the sweep phase's input. Callers must not
// retain it across heap growth.
func (h *Heap) LiveWords() Bitset { return h.liveBits }

// Reset returns the heap to its freshly constructed state — empty class
// table, one-slot handle table, empty slab, fully free arena, zeroed
// counters — without releasing any capacity. A pooled execution shard
// calls this between matrix cells so a sweep stops paying per-cell
// arena and table construction; a reset heap is observably identical to
// heap.New(h.Arena().Size()).
func (h *Heap) Reset() {
	h.arena.Reset()
	h.classes = h.classes[:0]
	clear(h.byName)
	// Shrink to the Nil slot. Stale records beyond len are overwritten
	// by the zero-handle append in Alloc before they are ever reachable.
	h.handles = h.handles[:1]
	h.freeIDs = h.freeIDs[:0]
	// Clear the live bitmap through its full capacity before shrinking:
	// regrowth appends explicit zero words, but a plain truncation here
	// would leave stale bits inside the retained capacity.
	full := h.liveBits[:cap(h.liveBits)]
	clear(full)
	h.liveBits = full[:1]
	h.slab = h.slab[:0]
	h.stats = Stats{}
	h.seq = 0
}
