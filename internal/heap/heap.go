package heap

import (
	"fmt"
)

// HandleID names an object through its handle-table slot. ID 0 is the
// null reference, mirroring the JVM's null.
type HandleID int32

// Nil is the null reference.
const Nil HandleID = 0

// ClassID indexes the class table.
type ClassID int32

// Class describes an object layout: how many reference slots instances
// carry and how many additional payload (primitive) bytes. Arrays are
// classes with IsArray set; their element count is chosen per allocation.
type Class struct {
	Name    string
	Refs    int  // reference slots per instance
	Data    int  // primitive payload bytes per instance
	IsArray bool // element count supplied at Alloc time
}

// headerBytes models the JVM object header.
const headerBytes = 8

// refBytes models one reference slot (handle index) in the object body.
const refBytes = 4

// align rounds sizes to 8-byte boundaries, as the JDK allocator does.
func align(n int) int { return (n + 7) &^ 7 }

// InstanceSize reports the arena footprint of an instance of c with
// extra additional reference slots (array elements).
func InstanceSize(c Class, extra int) int {
	return align(headerBytes + (c.Refs+extra)*refBytes + c.Data)
}

// handle is one slot of the handle table: the indirection cell through
// which all references pass (§3.1: "Each handle contains a pointer to the
// object's current location …").
type handle struct {
	class ClassID
	addr  int
	size  int
	refs  []HandleID
	live  bool
	birth uint64 // allocation sequence number
}

// Stats aggregates heap-level counters.
type Stats struct {
	Allocs      uint64 // successful allocations
	Frees       uint64 // explicit frees (CG or MSA)
	FailedAlloc uint64 // allocations that saw ErrOutOfMemory at least once
	BytesAlloc  uint64 // cumulative bytes allocated
}

// Heap combines the class table, handle table and arena.
// Create one with New.
type Heap struct {
	classes []Class
	byName  map[string]ClassID
	handles []handle
	freeIDs []HandleID
	arena   *Arena
	stats   Stats
	seq     uint64
}

// New returns a heap whose object space spans arenaBytes.
func New(arenaBytes int) *Heap {
	h := &Heap{
		arena:   NewArena(arenaBytes),
		byName:  make(map[string]ClassID),
		handles: make([]handle, 1), // slot 0 = Nil, never used
	}
	return h
}

// DefineClass registers a class and returns its ID. Redefining a name
// returns the existing ID if the layout matches and panics otherwise —
// class tables are append-only in the JVM too.
func (h *Heap) DefineClass(c Class) ClassID {
	if id, ok := h.byName[c.Name]; ok {
		if h.classes[id] != c {
			panic(fmt.Sprintf("heap: conflicting redefinition of class %q", c.Name))
		}
		return id
	}
	id := ClassID(len(h.classes))
	h.classes = append(h.classes, c)
	h.byName[c.Name] = id
	return id
}

// ClassByName looks a class up; ok is false if undefined.
func (h *Heap) ClassByName(name string) (ClassID, bool) {
	id, ok := h.byName[name]
	return id, ok
}

// ClassOf reports the class of a live object.
func (h *Heap) ClassOf(id HandleID) ClassID { return h.h(id).class }

// ClassDef returns the class descriptor.
func (h *Heap) ClassDef(c ClassID) Class { return h.classes[int(c)] }

// Arena exposes the underlying allocator (read-mostly; the VM's GC
// trigger inspects occupancy).
func (h *Heap) Arena() *Arena { return h.arena }

// Stats returns a copy of the counters.
func (h *Heap) Stats() Stats { return h.stats }

// h returns the handle record for id, panicking on null or stale IDs:
// handle discipline violations are runtime bugs, not user errors.
func (h *Heap) h(id HandleID) *handle {
	if id == Nil {
		panic("heap: null handle dereference")
	}
	hd := &h.handles[int(id)]
	if !hd.live {
		panic(fmt.Sprintf("heap: dangling handle %d", id))
	}
	return hd
}

// Alloc creates an instance of class c with extra additional reference
// slots (used for reference arrays; zero for plain objects), returning
// its handle. On arena exhaustion it returns ErrOutOfMemory without side
// effects, so the runtime can collect and retry.
func (h *Heap) Alloc(c ClassID, extra int) (HandleID, error) {
	cls := h.classes[int(c)]
	if extra != 0 && !cls.IsArray {
		return Nil, fmt.Errorf("heap: class %q is not an array class", cls.Name)
	}
	size := InstanceSize(cls, extra)
	addr, err := h.arena.Alloc(size)
	if err != nil {
		h.stats.FailedAlloc++
		return Nil, err
	}
	var id HandleID
	if n := len(h.freeIDs); n > 0 {
		id = h.freeIDs[n-1]
		h.freeIDs = h.freeIDs[:n-1]
	} else {
		h.handles = append(h.handles, handle{})
		id = HandleID(len(h.handles) - 1)
	}
	h.seq++
	nrefs := cls.Refs + extra
	hd := &h.handles[int(id)]
	*hd = handle{class: c, addr: addr, size: size, live: true, birth: h.seq}
	if nrefs > 0 {
		if cap(hd.refs) >= nrefs {
			hd.refs = hd.refs[:nrefs]
			for i := range hd.refs {
				hd.refs[i] = Nil
			}
		} else {
			hd.refs = make([]HandleID, nrefs)
		}
	}
	h.stats.Allocs++
	h.stats.BytesAlloc += uint64(size)
	return id, nil
}

// Free releases an object's arena extent and recycles its handle slot.
// Freeing Nil or a dead handle panics: both collectors must agree on
// ownership, and a double free indicates a collector bug.
func (h *Heap) Free(id HandleID) {
	hd := h.h(id)
	h.arena.Free(hd.addr, hd.size)
	hd.live = false
	hd.refs = hd.refs[:0]
	h.freeIDs = append(h.freeIDs, id)
	h.stats.Frees++
}

// Reinit repurposes a live object's extent and handle for a fresh
// instance of class c with extra reference slots — the §3.7 recycling
// path, where a dead-but-unfreed object is handed out again without
// touching the allocator ("instead of having to free each object … we
// only update a pointer"). The extent keeps its original size (first-fit
// allows internal fragmentation); it must be at least as big as the new
// instance requires.
func (h *Heap) Reinit(id HandleID, c ClassID, extra int) error {
	hd := h.h(id)
	cls := h.classes[int(c)]
	if extra != 0 && !cls.IsArray {
		return fmt.Errorf("heap: class %q is not an array class", cls.Name)
	}
	need := InstanceSize(cls, extra)
	if need > hd.size {
		return fmt.Errorf("heap: recycled extent of %d bytes too small for %d", hd.size, need)
	}
	h.seq++
	hd.class = c
	hd.birth = h.seq
	nrefs := cls.Refs + extra
	if cap(hd.refs) >= nrefs {
		hd.refs = hd.refs[:nrefs]
		for i := range hd.refs {
			hd.refs[i] = Nil
		}
	} else {
		hd.refs = make([]HandleID, nrefs)
	}
	h.stats.Allocs++
	h.stats.BytesAlloc += uint64(need)
	return nil
}

// Live reports whether id names a currently allocated object. Nil is not
// live.
func (h *Heap) Live(id HandleID) bool {
	return id != Nil && int(id) < len(h.handles) && h.handles[int(id)].live
}

// NumLive counts live objects (O(table); used by tests and experiments,
// not hot paths).
func (h *Heap) NumLive() int {
	n := 0
	for i := 1; i < len(h.handles); i++ {
		if h.handles[i].live {
			n++
		}
	}
	return n
}

// HandleCap reports the current handle-table capacity (including dead
// slots); CG sizes its side metadata from this.
func (h *Heap) HandleCap() int { return len(h.handles) }

// SizeOf reports the arena footprint of a live object.
func (h *Heap) SizeOf(id HandleID) int { return h.h(id).size }

// AddrOf reports a live object's arena address (tests, fragmentation
// studies).
func (h *Heap) AddrOf(id HandleID) int { return h.h(id).addr }

// Birth reports the allocation sequence number of a live object.
func (h *Heap) Birth(id HandleID) uint64 { return h.h(id).birth }

// NumRefSlots reports how many reference slots a live object carries.
func (h *Heap) NumRefSlots(id HandleID) int { return len(h.h(id).refs) }

// GetRef reads reference slot i of object id.
func (h *Heap) GetRef(id HandleID, i int) HandleID {
	hd := h.h(id)
	if i < 0 || i >= len(hd.refs) {
		panic(fmt.Sprintf("heap: ref slot %d out of range on %s", i, h.classes[hd.class].Name))
	}
	return hd.refs[i]
}

// SetRef writes reference slot i of object id. The *runtime* is
// responsible for routing the corresponding contamination event to the
// collector before calling SetRef; the heap is policy-free.
func (h *Heap) SetRef(id HandleID, i int, val HandleID) {
	hd := h.h(id)
	if i < 0 || i >= len(hd.refs) {
		panic(fmt.Sprintf("heap: ref slot %d out of range on %s", i, h.classes[hd.class].Name))
	}
	if val != Nil && !h.Live(val) {
		panic("heap: storing dangling reference")
	}
	hd.refs[i] = val
}

// Refs iterates over the non-nil outgoing references of a live object,
// the traversal the MSA mark phase performs.
func (h *Heap) Refs(id HandleID, fn func(HandleID)) {
	for _, r := range h.h(id).refs {
		if r != Nil {
			fn(r)
		}
	}
}

// ForEachLive visits every live object in handle order (the MSA sweep
// order).
func (h *Heap) ForEachLive(fn func(HandleID)) {
	for i := 1; i < len(h.handles); i++ {
		if h.handles[i].live {
			fn(HandleID(i))
		}
	}
}
