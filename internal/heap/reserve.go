package heap

import (
	"fmt"
	"sync"
)

// Reserve is a process-wide byte budget that arenas are drawn against:
// every shard arena's full capacity is reserved before the shard runs
// and released when the shard is discarded, so a -max-heap-bytes cap is
// an *exact* admission check — the sum of reserved bytes never exceeds
// the cap, and an admitted job can never OOM the reserve, because the
// arena cannot grow past the capacity that was reserved for it.
//
// Admission blocks until enough reserved bytes are released. A request
// larger than the cap itself admits only when the reserve is otherwise
// empty (runs alone), so a single oversized cell degrades to sequential
// execution instead of deadlocking the sweep. An optional evict hook
// lets the owner surrender idle reservations (pooled shards) before a
// request waits.
type Reserve struct {
	max   int64
	evict func() bool // try to release an idle reservation; reports progress

	mu       sync.Mutex
	cond     *sync.Cond
	reserved int64
}

// NewReserve returns a reserve admitting up to max bytes.
func NewReserve(max int64) *Reserve {
	if max <= 0 {
		panic(fmt.Sprintf("heap: non-positive reserve %d", max))
	}
	r := &Reserve{max: max}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Max reports the reserve's byte cap.
func (r *Reserve) Max() int64 { return r.max }

// Reserved reports currently reserved bytes.
func (r *Reserve) Reserved() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reserved
}

// SetEvict installs the eviction hook, called (without the reserve's
// lock held) when an acquisition would otherwise wait. It must return
// true only if it released reserve bytes. Set before concurrent use.
func (r *Reserve) SetEvict(evict func() bool) { r.evict = evict }

// Acquire blocks until n bytes fit under the cap and reserves them. The
// oversized escape: when nothing is reserved, any n is admitted.
func (r *Reserve) Acquire(n int64) {
	r.mu.Lock()
	for r.reserved != 0 && r.reserved+n > r.max {
		if evict := r.evict; evict != nil {
			r.mu.Unlock()
			progressed := evict()
			r.mu.Lock()
			if progressed {
				continue
			}
			if r.reserved == 0 || r.reserved+n <= r.max {
				break
			}
		}
		r.cond.Wait()
	}
	r.reserved += n
	r.mu.Unlock()
}

// TryAcquire reserves n bytes if they fit (or the reserve is empty)
// without blocking or evicting; it reports whether it did.
func (r *Reserve) TryAcquire(n int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reserved != 0 && r.reserved+n > r.max {
		return false
	}
	r.reserved += n
	return true
}

// Release returns n reserved bytes and wakes waiters.
func (r *Reserve) Release(n int64) {
	r.mu.Lock()
	r.reserved -= n
	if r.reserved < 0 {
		panic("heap: reserve released more than acquired")
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}
