package heap

import (
	"fmt"
	"sort"
)

// span is a free extent [addr, addr+size).
type span struct {
	addr, size int
}

// SpanArena is the first-fit allocator over a virtual address range
// [0, size) that governed the heap before the size-class slab arena: free
// spans are kept sorted by address; allocation scans from a rotating
// cursor (the remembered last-allocation position) and wraps once before
// failing, reproducing the JDK 1.1.8 policy that §4.8 analyses.
//
// It is retained as the *reference model* for the slab arena's property
// tests: its success/failure behaviour under coalescing is the ground
// truth the slab arena is checked against in the regimes where the two
// provably agree (see arena_prop_test.go), and its O(n) bookkeeping is
// the cost the slab arena's O(1) paths are benchmarked against.
type SpanArena struct {
	size    int
	free    []span // sorted by addr, never adjacent (always coalesced)
	cursor  int    // address just past the last allocation; scans start here
	curIdx  int    // hint: index of the first span at/after cursor (validated before use)
	freeIdx int    // hint: insertion index of the last Free (validated before use)
	inUse   int    // allocated bytes
	// maxFree is an upper bound on the largest free span: it never
	// underestimates, so a request above it fails in O(1) instead of
	// scanning every span to prove exhaustion. Carving never raises it,
	// frees raise it exactly, and a failed full scan tightens it to the
	// true maximum.
	maxFree int
}

// NewSpanArena returns a first-fit arena spanning [0, size) bytes,
// entirely free.
func NewSpanArena(size int) *SpanArena {
	if size <= 0 {
		panic(fmt.Sprintf("heap: non-positive arena size %d", size))
	}
	return &SpanArena{size: size, free: []span{{0, size}}, maxFree: size}
}

// Size reports the arena's total byte capacity.
func (a *SpanArena) Size() int { return a.size }

// Reset returns the arena to its entirely-free initial state without
// releasing the span slice's capacity.
func (a *SpanArena) Reset() {
	a.free = append(a.free[:0], span{0, a.size})
	a.cursor = 0
	a.curIdx = 0
	a.freeIdx = 0
	a.inUse = 0
	a.maxFree = a.size
}

// InUse reports currently allocated bytes.
func (a *SpanArena) InUse() int { return a.inUse }

// FreeBytes reports currently free bytes.
func (a *SpanArena) FreeBytes() int { return a.size - a.inUse }

// FreeSpans reports the number of discontiguous free extents — a direct
// fragmentation measure.
func (a *SpanArena) FreeSpans() int { return len(a.free) }

// LargestFree reports the largest single free extent.
func (a *SpanArena) LargestFree() int {
	max := 0
	for _, s := range a.free {
		if s.size > max {
			max = s.size
		}
	}
	return max
}

// Alloc carves size bytes out of the first fitting free span at or after
// the cursor, wrapping to the start once. It returns the extent's base
// address or ErrOutOfMemory.
func (a *SpanArena) Alloc(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("heap: invalid allocation size %d", size)
	}
	if size > a.maxFree {
		return 0, ErrOutOfMemory
	}
	n := len(a.free)
	start := a.startIndex(n)
	largest := 0
	for probe := 0; probe < n; probe++ {
		i := start + probe
		if i >= n {
			i -= n
		}
		if a.free[i].size < size {
			if a.free[i].size > largest {
				largest = a.free[i].size
			}
			continue
		}
		addr := a.free[i].addr
		if a.free[i].size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i].addr += size
			a.free[i].size -= size
		}
		a.cursor = addr + size
		// Either the carved span shrank (its addr is now the cursor) or
		// it was removed (the old next span slid into index i, and its
		// addr exceeds the cursor); both make i the next start index.
		a.curIdx = i
		a.inUse += size
		return addr, nil
	}
	// The scan visited every span, so largest is exact: tighten the
	// bound so the rest of the storm fails without scanning.
	a.maxFree = largest
	return 0, ErrOutOfMemory
}

// startIndex resolves the first free span at or after the cursor. The
// cached hint is authoritative whenever it still brackets the cursor —
// true for any run of allocations with no interleaved free, which is
// the dominant pattern — so the common case costs two compares instead
// of a binary search per allocation.
func (a *SpanArena) startIndex(n int) int {
	i := a.curIdx
	if i <= n && (i == n || a.free[i].addr >= a.cursor) && (i == 0 || a.free[i-1].addr < a.cursor) {
		return i
	}
	return sort.Search(n, func(j int) bool { return a.free[j].addr >= a.cursor })
}

// Free returns the extent [addr, addr+size) to the free pool, coalescing
// with adjacent free spans ("tries to coalesce two contiguous objects",
// §3.7).
func (a *SpanArena) Free(addr, size int) {
	if size <= 0 || addr < 0 || addr+size > a.size {
		panic(fmt.Sprintf("heap: bad free [%d,%d) in arena of %d", addr, addr+size, a.size))
	}
	i := a.freeIndex(addr)
	// Overlap checks guard the no-overlap invariant (DESIGN.md §5.5).
	if i > 0 && a.free[i-1].addr+a.free[i-1].size > addr {
		panic(fmt.Sprintf("heap: double free or overlap at %d", addr))
	}
	if i < len(a.free) && addr+size > a.free[i].addr {
		panic(fmt.Sprintf("heap: double free or overlap at %d", addr))
	}
	mergeLeft := i > 0 && a.free[i-1].addr+a.free[i-1].size == addr
	mergeRight := i < len(a.free) && a.free[i].addr == addr+size
	merged := size
	switch {
	case mergeLeft && mergeRight:
		a.free[i-1].size += size + a.free[i].size
		merged = a.free[i-1].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	case mergeLeft:
		a.free[i-1].size += size
		merged = a.free[i-1].size
	case mergeRight:
		a.free[i].addr = addr
		a.free[i].size += size
		merged = a.free[i].size
	default:
		a.free = append(a.free, span{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = span{addr, size}
	}
	if merged > a.maxFree {
		a.maxFree = merged
	}
	a.freeIdx = i
	a.inUse -= size
}

// freeIndex resolves the insertion index for a free at addr: the first
// span at or after it. A dying equilive set releases its members in
// allocation order, so consecutive frees bracket at (or next to) the
// previous free's index; the cached hint turns the per-free binary
// search into a couple of compares, falling back to the search when an
// interleaved allocation moved things.
func (a *SpanArena) freeIndex(addr int) int {
	n := len(a.free)
	for i := a.freeIdx; i <= a.freeIdx+1 && i <= n; i++ {
		if (i == n || a.free[i].addr >= addr) && (i == 0 || a.free[i-1].addr < addr) {
			return i
		}
	}
	return sort.Search(n, func(i int) bool { return a.free[i].addr >= addr })
}

// checkInvariants validates the sorted/coalesced/accounted structure. It
// is exported to the package's tests.
func (a *SpanArena) checkInvariants() error {
	freeSum := 0
	for i, s := range a.free {
		if s.size <= 0 {
			return fmt.Errorf("span %d has size %d", i, s.size)
		}
		if s.addr < 0 || s.addr+s.size > a.size {
			return fmt.Errorf("span %d out of range: [%d,%d)", i, s.addr, s.addr+s.size)
		}
		if i > 0 {
			prev := a.free[i-1]
			if prev.addr+prev.size > s.addr {
				return fmt.Errorf("spans %d,%d overlap", i-1, i)
			}
			if prev.addr+prev.size == s.addr {
				return fmt.Errorf("spans %d,%d not coalesced", i-1, i)
			}
		}
		freeSum += s.size
	}
	if freeSum+a.inUse != a.size {
		return fmt.Errorf("accounting: free %d + inUse %d != size %d", freeSum, a.inUse, a.size)
	}
	if largest := a.LargestFree(); largest > a.maxFree {
		return fmt.Errorf("maxFree bound %d underestimates largest free span %d", a.maxFree, largest)
	}
	return nil
}
