package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpanArenaAllocFree(t *testing.T) {
	a := NewSpanArena(1024)
	if a.FreeBytes() != 1024 || a.InUse() != 0 {
		t.Fatalf("fresh arena accounting wrong: free=%d inUse=%d", a.FreeBytes(), a.InUse())
	}
	p1, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlapping allocations")
	}
	if a.InUse() != 384 {
		t.Fatalf("inUse = %d, want 384", a.InUse())
	}
	a.Free(p1, 128)
	a.Free(p2, 256)
	if a.FreeBytes() != 1024 || a.FreeSpans() != 1 {
		t.Fatalf("free did not coalesce back to one span: spans=%d free=%d", a.FreeSpans(), a.FreeBytes())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanArenaExhaustion(t *testing.T) {
	a := NewSpanArena(256)
	if _, err := a.Alloc(256); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestSpanArenaFirstFitFromCursor(t *testing.T) {
	a := NewSpanArena(1000)
	// Carve three blocks; the cursor now sits at 300. Free block 1: the
	// allocator must NOT reuse its hole (it is behind the cursor) while
	// untouched space remains ahead.
	p1, _ := a.Alloc(100)
	if _, err := a.Alloc(100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(100); err != nil {
		t.Fatal(err)
	}
	a.Free(p1, 100)
	got, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 300 {
		t.Fatalf("cursor policy: expected fresh space at 300, got %d", got)
	}
	// Exhaust the tail, then allocate again: the scan wraps and finds
	// block 1's hole ("forced to start its search at the beginning of
	// the heap", §4.8).
	if _, err := a.Alloc(600); err != nil {
		t.Fatal(err)
	}
	got2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != p1 {
		t.Fatalf("wrap-around: expected hole %d, got %d", p1, got2)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanArenaCoalesceMiddle(t *testing.T) {
	a := NewSpanArena(300)
	p1, _ := a.Alloc(100)
	p2, _ := a.Alloc(100)
	p3, _ := a.Alloc(100)
	a.Free(p1, 100)
	a.Free(p3, 100)
	if a.FreeSpans() != 2 {
		t.Fatalf("expected 2 spans, got %d", a.FreeSpans())
	}
	a.Free(p2, 100) // merges with both neighbours
	if a.FreeSpans() != 1 || a.LargestFree() != 300 {
		t.Fatalf("triple coalesce failed: spans=%d largest=%d", a.FreeSpans(), a.LargestFree())
	}
}

func TestSpanArenaDoubleFreePanics(t *testing.T) {
	a := NewSpanArena(128)
	p, _ := a.Alloc(64)
	a.Free(p, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p, 64)
}

// TestSpanArenaRandomized drives a random alloc/free workload and checks the
// structural invariants after every operation (DESIGN.md §5.5).
func TestSpanArenaRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := NewSpanArena(1 << 16)
	type ext struct{ addr, size int }
	var live []ext
	for step := 0; step < 5000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			size := 8 * (1 + rng.Intn(64))
			addr, err := a.Alloc(size)
			if err == nil {
				live = append(live, ext{addr, size})
			}
		} else {
			i := rng.Intn(len(live))
			a.Free(live[i].addr, live[i].size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if err := a.checkInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Allocated extents must never overlap one another.
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			x, y := live[i], live[j]
			if x.addr < y.addr+y.size && y.addr < x.addr+x.size {
				t.Fatalf("live extents overlap: %+v %+v", x, y)
			}
		}
	}
}

// TestSpanArenaFillDrain property: allocating until exhaustion and freeing
// everything restores a single maximal span (quick).
func TestSpanArenaFillDrain(t *testing.T) {
	check := func(sizes []uint8) bool {
		a := NewSpanArena(1 << 12)
		var exts [][2]int
		for _, s := range sizes {
			size := 8 * (1 + int(s)%32)
			addr, err := a.Alloc(size)
			if err != nil {
				break
			}
			exts = append(exts, [2]int{addr, size})
		}
		for _, e := range exts {
			a.Free(e[0], e[1])
		}
		return a.FreeSpans() == 1 && a.FreeBytes() == 1<<12 && a.checkInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func testHeap(t testing.TB) (*Heap, ClassID, ClassID) {
	h := New(1 << 16)
	node := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
	arr := h.DefineClass(Class{Name: "Object[]", IsArray: true})
	return h, node, arr
}

func TestHeapAllocAndFields(t *testing.T) {
	h, node, _ := testHeap(t)
	a, err := h.Alloc(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Live(a) || !h.Live(b) || h.Live(Nil) {
		t.Fatal("liveness wrong after alloc")
	}
	if h.GetRef(a, 0) != Nil || h.GetRef(a, 1) != Nil {
		t.Fatal("fresh object fields not nil")
	}
	h.SetRef(a, 0, b)
	if h.GetRef(a, 0) != b {
		t.Fatal("SetRef/GetRef round trip failed")
	}
	var seen []HandleID
	h.Refs(a, func(r HandleID) { seen = append(seen, r) })
	if len(seen) != 1 || seen[0] != b {
		t.Fatalf("Refs visited %v, want [%d]", seen, b)
	}
}

func TestHeapArrays(t *testing.T) {
	h, node, arr := testHeap(t)
	v, err := h.Alloc(arr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRefSlots(v) != 10 {
		t.Fatalf("array slots = %d, want 10", h.NumRefSlots(v))
	}
	e, _ := h.Alloc(node, 0)
	h.SetRef(v, 7, e)
	if h.GetRef(v, 7) != e {
		t.Fatal("array store/load failed")
	}
	if _, err := h.Alloc(node, 3); err == nil {
		t.Fatal("extra slots on non-array class must error")
	}
}

func TestHeapFreeRecyclesHandles(t *testing.T) {
	h, node, _ := testHeap(t)
	a, _ := h.Alloc(node, 0)
	sz := h.SizeOf(a)
	h.Free(a)
	if h.Live(a) {
		t.Fatal("freed object still live")
	}
	b, _ := h.Alloc(node, 0)
	if b != a {
		t.Fatalf("handle slot not recycled: got %d want %d", b, a)
	}
	if h.SizeOf(b) != sz {
		t.Fatal("recycled handle has wrong size")
	}
	if got := h.Stats().Frees; got != 1 {
		t.Fatalf("Frees = %d, want 1", got)
	}
}

func TestHeapOOMAndRecovery(t *testing.T) {
	h := New(64)
	c := h.DefineClass(Class{Name: "Big", Data: 40})
	a, err := h.Alloc(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(c, 0); err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if h.Stats().FailedAlloc != 1 {
		t.Fatalf("FailedAlloc = %d, want 1", h.Stats().FailedAlloc)
	}
	h.Free(a)
	if _, err := h.Alloc(c, 0); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestHeapClassTable(t *testing.T) {
	h := New(1024)
	c1 := h.DefineClass(Class{Name: "A", Refs: 1})
	c2 := h.DefineClass(Class{Name: "A", Refs: 1}) // identical redefinition
	if c1 != c2 {
		t.Fatal("identical redefinition should return same ID")
	}
	if _, ok := h.ClassByName("A"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := h.ClassByName("missing"); ok {
		t.Fatal("phantom class")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting redefinition must panic")
		}
	}()
	h.DefineClass(Class{Name: "A", Refs: 2})
}

func TestInstanceSizeAlignment(t *testing.T) {
	cases := []struct {
		c     Class
		extra int
		want  int
	}{
		{Class{Refs: 0, Data: 0}, 0, 8},
		{Class{Refs: 1, Data: 0}, 0, 16},
		{Class{Refs: 2, Data: 8}, 0, 24},
		{Class{IsArray: true}, 3, 24}, // 8 + 12 -> 24
	}
	for _, tc := range cases {
		if got := InstanceSize(tc.c, tc.extra); got != tc.want {
			t.Errorf("InstanceSize(%+v,%d) = %d, want %d", tc.c, tc.extra, got, tc.want)
		}
	}
}

func TestDanglingAccessPanics(t *testing.T) {
	h, node, _ := testHeap(t)
	a, _ := h.Alloc(node, 0)
	h.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("dangling GetRef must panic")
		}
	}()
	h.GetRef(a, 0)
}

func TestBirthOrder(t *testing.T) {
	h, node, _ := testHeap(t)
	a, _ := h.Alloc(node, 0)
	b, _ := h.Alloc(node, 0)
	if !(h.Birth(a) < h.Birth(b)) {
		t.Fatal("birth sequence not monotone")
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	h := New(1 << 20)
	c := h.DefineClass(Class{Name: "N", Refs: 2, Data: 8})
	b.ReportAllocs()
	b.ResetTimer()
	ids := make([]HandleID, 0, 1024)
	for i := 0; i < b.N; i++ {
		id, err := h.Alloc(c, 0)
		if err != nil {
			for _, x := range ids {
				h.Free(x)
			}
			ids = ids[:0]
			id, err = h.Alloc(c, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
}

// TestLiveBitmapMirrorsHandles pins the live-bitmap invariant the
// word-at-a-time sweep depends on: bit i of LiveWords is set exactly
// when handle i is live, across alloc, free, handle recycling and
// Reset (including regrowth into retained capacity, which must never
// surface stale bits).
func TestLiveBitmapMirrorsHandles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, node, _ := testHeap(t)
	check := func(when string) {
		t.Helper()
		lw := h.LiveWords()
		if want := BitsetWords(h.HandleCap()); len(lw) != want {
			t.Fatalf("%s: LiveWords len %d, want %d for cap %d", when, len(lw), want, h.HandleCap())
		}
		n := 0
		for i := 0; i < h.HandleCap(); i++ {
			id := HandleID(i)
			if lw.Has(i) != h.Live(id) {
				t.Fatalf("%s: bit %d = %v, Live = %v", when, i, lw.Has(i), h.Live(id))
			}
			if h.Live(id) {
				n++
			}
		}
		if h.NumLive() != n {
			t.Fatalf("%s: NumLive = %d, manual count %d", when, h.NumLive(), n)
		}
		var visited []HandleID
		h.ForEachLive(func(id HandleID) { visited = append(visited, id) })
		if len(visited) != n {
			t.Fatalf("%s: ForEachLive visited %d, want %d", when, len(visited), n)
		}
		for i := 1; i < len(visited); i++ {
			if visited[i-1] >= visited[i] {
				t.Fatalf("%s: ForEachLive out of order at %d", when, i)
			}
		}
	}
	var ids []HandleID
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			id, err := h.Alloc(node, 0)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		check("after allocs")
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		for _, id := range ids[:len(ids)/2] {
			h.Free(id)
		}
		ids = ids[len(ids)/2:]
		check("after frees")
	}
	h.Reset()
	node = h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
	check("after reset")
	if _, err := h.Alloc(node, 0); err != nil {
		t.Fatal(err)
	}
	check("after reset+alloc")
	ids = ids[:0]
}
