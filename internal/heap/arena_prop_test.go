package heap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Property tests: the slab arena against the first-fit SpanArena as a
// reference model (satellite of the slab-arena PR).
//
// The two allocators do not agree on arbitrary workloads — that is the
// point of the redesign: first-fit can satisfy a request by crossing
// size-class boundaries where a slab arena has pinned pages to other
// classes (a two-page arena holding one 8-byte and one 16-byte object
// refuses a page-sized request that first-fit serves from the remaining
// contiguous bytes). Agreement is therefore asserted in the regime
// where both allocators provably reduce to pure byte accounting:
//
//	single allocation size s, s divides the page size, capacity is a
//	multiple of the page size.
//
// There the span arena's free spans are always s-aligned s-multiples
// (induction over alloc/free), so first-fit succeeds iff live+s <=
// capacity; and every free slab block is reachable through a partial
// list, the per-class cache or the page heap, so the slab arena
// succeeds under exactly the same condition. Any divergence — success,
// failure, or InUse accounting — is a bug in one of them.
//
// Info() invariants are checked on *arbitrary* mixed sequences, and the
// checkers themselves are mutation-verified: deliberately broken
// allocators and a deliberately broken Info must make them fail.

// arenaModel is the operation surface the agreement checker drives.
// Both *Arena and *SpanArena satisfy it; mutants wrap one of them.
type arenaModel interface {
	Alloc(size int) (int, error)
	Free(addr, size int)
	Reset()
	InUse() int
	Size() int
}

// checkAgreement replays one randomized alloc/free/reset script against
// both allocators and returns an error on the first divergence.
func checkAgreement(subject, model arenaModel, s int, seed int64, steps int) error {
	if subject.Size() != model.Size() {
		return fmt.Errorf("capacity mismatch: %d vs %d", subject.Size(), model.Size())
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ sub, mod int }
	var live []pair
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(20); {
		case op == 0:
			subject.Reset()
			model.Reset()
			live = live[:0]
		case op < 12 || len(live) == 0:
			pSub, errSub := subject.Alloc(s)
			pMod, errMod := model.Alloc(s)
			if (errSub == nil) != (errMod == nil) {
				return fmt.Errorf("step %d: alloc(%d) success disagrees: subject err=%v, model err=%v (live=%d of %d)",
					step, s, errSub, errMod, subject.InUse(), subject.Size())
			}
			if errSub == nil {
				live = append(live, pair{pSub, pMod})
			}
		default:
			i := rng.Intn(len(live))
			subject.Free(live[i].sub, s)
			model.Free(live[i].mod, s)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if subject.InUse() != model.InUse() {
			return fmt.Errorf("step %d: InUse disagrees: subject %d, model %d", step, subject.InUse(), model.InUse())
		}
	}
	return nil
}

func TestArenaAgreesWithSpanModel(t *testing.T) {
	for _, capacity := range []int{1 << 14, 1 << 16, 1 << 20} {
		pageSize := NewArena(capacity).PageSize()
		if capacity%pageSize != 0 {
			t.Fatalf("test capacity %d not page-aligned (page %d)", capacity, pageSize)
		}
		for s := 8; s <= pageSize; s *= 2 {
			seed := int64(capacity ^ s)
			if err := checkAgreement(NewArena(capacity), NewSpanArena(capacity), s, seed, 4000); err != nil {
				t.Errorf("capacity %d class %d: %v", capacity, s, err)
			}
		}
	}
}

// checkInfo replays a randomized mixed-size script on a slab arena and
// returns an error if any Info() invariant breaks:
//
//   - AllocBytes + free-list bytes <= HeapBytes <= Capacity, and
//     AllocBytes == InUse
//   - Overhead >= 0
//   - Overhead never decreases across a successful Alloc unless that
//     allocation reclaimed cached slabs (reclaim returns page slack to
//     the un-carved pool, which legitimately lowers Overhead)
//
// info is injected so the mutation tests can feed it a corrupted view.
func checkInfo(a *Arena, info func() Info, seed int64, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	type ext struct{ addr, size int }
	var live []ext
	check := func(step int) error {
		in := info()
		if in.Capacity != a.Size() {
			return fmt.Errorf("step %d: Capacity %d, want %d", step, in.Capacity, a.Size())
		}
		if in.AllocBytes != a.InUse() {
			return fmt.Errorf("step %d: AllocBytes %d, InUse %d", step, in.AllocBytes, a.InUse())
		}
		if in.Overhead < 0 {
			return fmt.Errorf("step %d: negative overhead %d", step, in.Overhead)
		}
		if free := in.HeapBytes - in.AllocBytes - in.Overhead; free < 0 {
			return fmt.Errorf("step %d: alloc %d + overhead %d exceed heap %d", step, in.AllocBytes, in.Overhead, in.HeapBytes)
		}
		if in.HeapBytes > in.Capacity {
			return fmt.Errorf("step %d: heap %d exceeds capacity %d", step, in.HeapBytes, in.Capacity)
		}
		return nil
	}
	if err := check(-1); err != nil {
		return err
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(20); {
		case op == 0:
			a.Reset()
			live = live[:0]
		case op < 12 || len(live) == 0:
			var size int
			if rng.Intn(8) == 0 {
				size = 1 + rng.Intn(5*a.PageSize())
			} else {
				size = 1 + rng.Intn(300)
			}
			before := info().Overhead
			beforeReclaims := a.reclaims
			addr, err := a.Alloc(size)
			if err == nil {
				live = append(live, ext{addr, size})
				if after := info().Overhead; after < before && a.reclaims == beforeReclaims {
					return fmt.Errorf("step %d: overhead fell %d -> %d on alloc(%d) without a reclaim",
						step, before, after, size)
				}
			}
		default:
			i := rng.Intn(len(live))
			a.Free(live[i].addr, live[i].size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if err := check(step); err != nil {
			return err
		}
	}
	return nil
}

func TestArenaInfoInvariants(t *testing.T) {
	for _, capacity := range []int{64, 24 << 10, 1 << 16, 1 << 20} {
		a := NewArena(capacity)
		if err := checkInfo(a, a.Info, int64(capacity), 6000); err != nil {
			t.Errorf("capacity %d: %v", capacity, err)
		}
	}
}

// --- mutation verification of the checkers ---

// mutantFailing wraps an allocator and spuriously refuses every nth
// allocation — a lost-block bug the agreement checker must catch.
type mutantFailing struct {
	arenaModel
	n, count int
}

func (m *mutantFailing) Alloc(size int) (int, error) {
	m.count++
	if m.count%m.n == 0 {
		return 0, ErrOutOfMemory
	}
	return m.arenaModel.Alloc(size)
}

// mutantLeaking wraps an allocator and silently drops every other Free —
// a leak the agreement checker must catch through accounting or through
// premature exhaustion.
type mutantLeaking struct {
	arenaModel
	count int
}

func (m *mutantLeaking) Free(addr, size int) {
	m.count++
	if m.count%2 == 0 {
		return
	}
	m.arenaModel.Free(addr, size)
}

func TestAgreementCheckerCatchesMutants(t *testing.T) {
	capacity := 1 << 14
	err := checkAgreement(&mutantFailing{arenaModel: NewArena(capacity), n: 97}, NewSpanArena(capacity), 64, 1, 4000)
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("checker missed the spurious-failure mutant (err=%v)", err)
	}
	err = checkAgreement(&mutantLeaking{arenaModel: NewArena(capacity)}, NewSpanArena(capacity), 64, 2, 4000)
	if err == nil {
		t.Error("checker missed the leaking mutant")
	}
	// And the unmutated pair still passes under the same seeds.
	for _, seed := range []int64{1, 2} {
		if err := checkAgreement(NewArena(capacity), NewSpanArena(capacity), 64, seed, 4000); err != nil {
			t.Errorf("seed %d: clean pair fails: %v", seed, err)
		}
	}
}

func TestInfoCheckerCatchesMutants(t *testing.T) {
	// A corrupted Info that under-reports HeapBytes must violate the
	// alloc+overhead<=heap identity.
	a := NewArena(1 << 16)
	skew := func() Info {
		in := a.Info()
		in.HeapBytes -= a.PageSize()
		return in
	}
	if err := checkInfo(a, skew, 3, 2000); err == nil {
		t.Error("checker missed the skewed-heap Info mutant")
	}
	// A corrupted Info whose Overhead grows spuriously (free-list bytes
	// counted as slack) must trip the monotonicity window or the
	// accounting identity once frees occur.
	b := NewArena(1 << 16)
	drift := 0
	leakyOverhead := func() Info {
		in := b.Info()
		in.Overhead -= drift
		drift++
		return in
	}
	if err := checkInfo(b, leakyOverhead, 4, 2000); err == nil {
		t.Error("checker missed the drifting-overhead Info mutant")
	}
}
