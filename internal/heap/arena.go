// Package heap implements the managed-heap substrate the contaminated
// garbage collector runs against: a class table, a handle table (Sun's
// JDK 1.1.8 managed objects through handles, §3.1), and a virtual-address
// arena governed by a size-class slab allocator with O(1) alloc, free and
// occupancy accounting (DESIGN.md §8). The JDK's first-fit policy that
// §3.7 describes survives as SpanArena, the reference model the slab
// arena is property-tested against.
//
// The arena is *virtual*: no payload bytes are stored, only extents, which
// is sufficient because CG's behaviour depends on addresses, sizes,
// fragmentation and exhaustion, not on object contents. Reference fields
// live in the handle table, mirroring the JDK split between handle space
// and object space.
package heap

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfMemory is returned by Arena.Alloc and Heap.Alloc when no free
// block or page run can satisfy a request. The runtime reacts by invoking
// the collector and retrying, exactly as the JDK allocator runs MSA on
// failure.
var ErrOutOfMemory = errors.New("heap: out of memory")

// The size-class ladder is exact: class c serves rounded sizes of
// (c+1)*8 bytes, so a block carries zero intra-class slack and a freed
// object's class is known from its size alone — the property cg+recycle's
// reuse index is rebuilt on (internal/core). The ladder is defined
// arena-independently up to MaxSmallSize so the recycle index does not
// depend on any one arena's page geometry; an arena whose pages are
// narrower than MaxSmallSize simply serves its upper classes from the
// large (page-run) path.
const (
	// MaxSmallSize is the top of the exported size-class ladder: the
	// largest allocation the slab path can serve in the widest page
	// configuration.
	MaxSmallSize = 1 << maxPageShift
	// NumSizeClasses is the number of ladder rungs: sizes 8, 16, ...,
	// MaxSmallSize.
	NumSizeClasses = MaxSmallSize / 8

	// Page geometry scales with capacity: pageShift starts at
	// maxPageShift and shrinks (to minPageShift at the floor) until the
	// arena spans at least minPages pages, so the tight per-workload
	// budgets (24 KiB for compress, 48 KiB for db, ...) are not eaten by
	// page-granularity slack while demographics-sized arenas keep wide
	// pages and the full ladder.
	maxPageShift = 12
	minPageShift = 8
	minPages     = 256
)

// SizeClass maps an allocation size in (0, MaxSmallSize] to its ladder
// class index.
func SizeClass(size int) int { return (size+7)>>3 - 1 }

// SizeClassBytes reports the block size of ladder class c.
func SizeClassBytes(c int) int { return (c + 1) * 8 }

// Info is an arena occupancy snapshot, maintained incrementally so every
// field is O(1) to read — no free-list or slab walks (the gostore malloc
// Info contract).
type Info struct {
	// Capacity is the arena's total byte capacity.
	Capacity int `json:"capacity"`
	// HeapBytes counts bytes drawn from the page heap: slab pages plus
	// large page runs. Capacity - HeapBytes is still un-carved.
	HeapBytes int `json:"heap"`
	// AllocBytes counts bytes in live allocations at their requested
	// sizes — the arena's InUse.
	AllocBytes int `json:"alloc"`
	// Overhead is HeapBytes minus AllocBytes minus the bytes sitting on
	// class free lists: rounding slack inside blocks and page runs, plus
	// page tails too short for their slab's class.
	Overhead int `json:"overhead"`
}

// pageSpan is a free run of n whole pages starting at page.
type pageSpan struct {
	page, n int32
}

// slabRec describes one page. A page is either a slab (class >= 0),
// carving the page into equal blocks of its class size with a free
// bitmap, or not (class < 0): free, part of a large run, or the unused
// short tail. Partial slabs of a class form a doubly-linked list through
// prev/next; the links are page indices, so the whole structure is
// pointer-free and a pooled arena pins nothing.
type slabRec struct {
	class  int32 // ladder class, -1 when the page is not a slab
	used   int32 // allocated blocks
	blocks int32 // total blocks (usable bytes / class bytes)
	prev   int32 // partial-list neighbours, -1 = none
	next   int32
	// freeMask bit b set = block b free. 8 words cover the worst case of
	// pageSize/8 = 512 blocks per page.
	freeMask [8]uint64
}

// Arena is a size-class slab allocator over a virtual address range
// [0, size). Pages are drawn lowest-address-first from a sorted,
// coalesced page heap; small allocations (rounded size <= page size) are
// served from per-class slabs with intrusive partial lists and per-page
// free bitmaps, large ones from contiguous page runs. Alloc, Free and
// Info are O(1); exhaustion is detected in O(1) through the page heap's
// never-underestimating maxRun bound plus per-class list heads.
//
// Addresses are deterministic: the lowest free page and the lowest free
// block are always chosen, partial slabs are pushed and popped at the
// list head, and emptied slabs are cached (one per class) before being
// returned to the page heap only when an allocation would otherwise
// fail. Reset reproduces the fresh-arena address sequence exactly.
type Arena struct {
	size      int
	pageShift uint
	pageSize  int
	fullPages int32 // pages of pageSize bytes; page indices [0, fullPages)
	shortLen  int   // usable bytes of the trailing short page (0 = none)

	// slabs is indexed by page and grown lazily to the high-water page —
	// pages are acquired lowest-first, so its length tracks peak usage,
	// not capacity.
	slabs []slabRec

	partial []int32 // per-class head of the partial-slab list, -1 = empty
	cached  []int32 // per-class retained fully-free slab, -1 = none
	cachedN int32   // count of non-empty cached entries (O(1) reclaim no-op)

	freePages []pageSpan // sorted by page, coalesced
	// maxRun is an upper bound on the longest free page run: it never
	// underestimates, so an oversized request fails in O(1). Carving
	// never raises it, frees raise it exactly, and a failed full scan
	// tightens it to the true maximum.
	maxRun    int32
	shortFree bool // the short page is unused and available

	allocBytes    int // live bytes at requested sizes
	heapBytes     int // bytes drawn from the page heap
	freeListBytes int // bytes sitting free inside slabs (blocks * class bytes)

	// reclaims counts cached-slab drains. Reclaim returns page slack to
	// the un-carved pool and so may lower Overhead mid-allocation; the
	// property tests use this counter to scope the overhead-monotonicity
	// invariant to reclaim-free windows.
	reclaims uint64
}

// NewArena returns a slab arena spanning [0, size) bytes, entirely free.
func NewArena(size int) *Arena {
	if size <= 0 {
		panic(fmt.Sprintf("heap: non-positive arena size %d", size))
	}
	shift := uint(maxPageShift)
	for shift > minPageShift && size>>shift < minPages {
		shift--
	}
	a := &Arena{
		size:      size,
		pageShift: shift,
		pageSize:  1 << shift,
		fullPages: int32(size >> shift),
	}
	a.shortLen = size - int(a.fullPages)<<shift
	classes := a.pageSize / 8
	a.partial = make([]int32, classes)
	a.cached = make([]int32, classes)
	a.Reset()
	return a
}

// Size reports the arena's total byte capacity.
func (a *Arena) Size() int { return a.size }

// InUse reports currently allocated bytes, at requested (pre-rounding)
// sizes — the same accounting the first-fit arena kept, so every
// InUse-derived observable is unchanged.
func (a *Arena) InUse() int { return a.allocBytes }

// FreeBytes reports capacity not allocated to live objects.
func (a *Arena) FreeBytes() int { return a.size - a.allocBytes }

// PageSize reports the arena's page granularity (capacity-scaled).
func (a *Arena) PageSize() int { return a.pageSize }

// Info reports the occupancy snapshot. Every field is a maintained
// counter: O(1), no walks.
func (a *Arena) Info() Info {
	return Info{
		Capacity:   a.size,
		HeapBytes:  a.heapBytes,
		AllocBytes: a.allocBytes,
		Overhead:   a.heapBytes - a.allocBytes - a.freeListBytes,
	}
}

// Reset returns the arena to its entirely-free initial state, retaining
// the slab table's capacity (shard pooling). Because the table is
// re-grown from length zero, every record re-initialises on first use
// and the post-Reset address sequence is identical to a fresh arena's.
func (a *Arena) Reset() {
	a.slabs = a.slabs[:0]
	for i := range a.partial {
		a.partial[i] = -1
	}
	for i := range a.cached {
		a.cached[i] = -1
	}
	a.cachedN = 0
	a.freePages = a.freePages[:0]
	if a.fullPages > 0 {
		a.freePages = append(a.freePages, pageSpan{0, a.fullPages})
	}
	a.maxRun = a.fullPages
	a.shortFree = a.shortLen >= 8
	a.allocBytes = 0
	a.heapBytes = 0
	a.freeListBytes = 0
	a.reclaims = 0
}

// Release resets the arena and drops its retained buffers, returning the
// slab table and page heap to the Go allocator. The arena remains
// usable; the buffers re-grow on demand.
func (a *Arena) Release() {
	a.slabs = nil
	a.freePages = nil
	a.Reset()
}

// Alloc serves size bytes and returns the extent's base address or
// ErrOutOfMemory. Sizes are rounded to the 8-byte ladder internally, but
// accounting (InUse, Info.AllocBytes) is kept at the requested size.
func (a *Arena) Alloc(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("heap: invalid allocation size %d", size)
	}
	rounded := align(size)
	if rounded <= a.pageSize {
		return a.allocSmall(size, rounded)
	}
	return a.allocLarge(size)
}

// Free returns the extent [addr, addr+size) to the arena. size must be
// the requested size passed to the Alloc that returned addr.
func (a *Arena) Free(addr, size int) {
	if size <= 0 || addr < 0 || addr+size > a.size {
		panic(fmt.Sprintf("heap: bad free [%d,%d) in arena of %d", addr, addr+size, a.size))
	}
	rounded := align(size)
	if rounded <= a.pageSize {
		a.freeSmall(addr, size, rounded)
		return
	}
	a.freeLarge(addr, size)
}

// --- small path ---

func (a *Arena) allocSmall(size, rounded int) (int, error) {
	c := int32(rounded>>3 - 1)
	p := a.partial[c]
	if p < 0 {
		p = a.takeSlabPage(c)
		if p < 0 {
			return 0, ErrOutOfMemory
		}
	}
	s := &a.slabs[p]
	b := 0
	for w := range s.freeMask {
		if m := s.freeMask[w]; m != 0 {
			b = w<<6 + bits.TrailingZeros64(m)
			s.freeMask[w] = m & (m - 1)
			break
		}
	}
	s.used++
	if s.used == s.blocks {
		a.unlinkPartial(c, p)
	}
	a.allocBytes += size
	a.freeListBytes -= rounded
	return int(p)<<a.pageShift + b*rounded, nil
}

// takeSlabPage produces a partial-listed slab for class c: the cached
// fully-free slab if one is retained, else a fresh page from the page
// heap (reclaiming other classes' cached slabs if that is what stands
// between the request and success), else the short tail page. Returns
// the page, linked at the head of c's partial list, or -1.
func (a *Arena) takeSlabPage(c int32) int32 {
	if p := a.cached[c]; p >= 0 {
		a.cached[c] = -1
		a.cachedN--
		a.linkPartial(c, p)
		return p
	}
	p := a.takePage()
	if p < 0 && a.reclaim() {
		p = a.takePage()
	}
	if p >= 0 {
		a.initSlab(p, c, a.pageSize)
		a.linkPartial(c, p)
		return p
	}
	if a.shortFree && a.shortLen >= SizeClassBytes(int(c)) {
		a.shortFree = false
		p = a.fullPages
		a.initSlab(p, c, a.shortLen)
		a.linkPartial(c, p)
		return p
	}
	return -1
}

// initSlab formats page p as a class-c slab over usable bytes, all
// blocks free.
func (a *Arena) initSlab(p, c int32, usable int) {
	a.ensureSlabs(int(p) + 1)
	classBytes := SizeClassBytes(int(c))
	blocks := usable / classBytes
	s := &a.slabs[p]
	s.class = c
	s.used = 0
	s.blocks = int32(blocks)
	s.prev, s.next = -1, -1
	for w := range s.freeMask {
		lo := w << 6
		switch {
		case blocks >= lo+64:
			s.freeMask[w] = ^uint64(0)
		case blocks > lo:
			s.freeMask[w] = 1<<(uint(blocks-lo)) - 1
		default:
			s.freeMask[w] = 0
		}
	}
	a.heapBytes += usable
	a.freeListBytes += blocks * classBytes
}

func (a *Arena) freeSmall(addr, size, rounded int) {
	p := int32(addr >> a.pageShift)
	if int(p) >= len(a.slabs) {
		panic(fmt.Sprintf("heap: bad free at %d: page %d not in use", addr, p))
	}
	s := &a.slabs[p]
	c := int32(rounded>>3 - 1)
	if s.class != c {
		panic(fmt.Sprintf("heap: bad free at %d: size %d does not match page class", addr, size))
	}
	off := addr - int(p)<<a.pageShift
	b := off / rounded
	if off%rounded != 0 || int32(b) >= s.blocks {
		panic(fmt.Sprintf("heap: bad free at %d: misaligned block", addr))
	}
	w, bit := b>>6, uint(b&63)
	if s.freeMask[w]&(1<<bit) != 0 {
		panic(fmt.Sprintf("heap: double free at %d", addr))
	}
	s.freeMask[w] |= 1 << bit
	wasFull := s.used == s.blocks
	s.used--
	a.allocBytes -= size
	a.freeListBytes += rounded
	switch {
	case s.used == 0:
		if !wasFull {
			a.unlinkPartial(c, p)
		}
		a.retireSlab(c, p)
	case wasFull:
		a.linkPartial(c, p)
	}
}

// retireSlab handles a slab that just emptied: the short page returns to
// its dedicated free flag, one empty slab per class is cached for
// immediate reuse (the churn pattern: a class oscillating around a page
// boundary), and further empties return to the page heap.
func (a *Arena) retireSlab(c, p int32) {
	if p == a.fullPages {
		s := &a.slabs[p]
		a.heapBytes -= a.shortLen
		a.freeListBytes -= int(s.blocks) * SizeClassBytes(int(c))
		s.class = -1
		a.shortFree = true
		return
	}
	if a.cached[c] < 0 {
		a.cached[c] = p
		a.cachedN++
		return
	}
	a.releaseSlab(p)
}

// releaseSlab returns a fully-free full-page slab to the page heap.
func (a *Arena) releaseSlab(p int32) {
	s := &a.slabs[p]
	a.heapBytes -= a.pageSize
	a.freeListBytes -= int(s.blocks) * SizeClassBytes(int(s.class))
	s.class = -1
	a.freeRun(p, 1)
}

// reclaim drains every cached fully-free slab back to the page heap. It
// runs only on the allocation-failure path; cachedN makes the no-op case
// O(1), keeping repeated failures (the §3.7 allocation storm that drives
// recycling) constant-time.
func (a *Arena) reclaim() bool {
	if a.cachedN == 0 {
		return false
	}
	for c := range a.cached {
		if p := a.cached[c]; p >= 0 {
			a.cached[c] = -1
			a.releaseSlab(p)
		}
	}
	a.cachedN = 0
	a.reclaims++
	return true
}

// linkPartial pushes p at the head of class c's partial list.
func (a *Arena) linkPartial(c, p int32) {
	s := &a.slabs[p]
	s.prev = -1
	s.next = a.partial[c]
	if s.next >= 0 {
		a.slabs[s.next].prev = p
	}
	a.partial[c] = p
}

// unlinkPartial removes p from class c's partial list.
func (a *Arena) unlinkPartial(c, p int32) {
	s := &a.slabs[p]
	if s.prev >= 0 {
		a.slabs[s.prev].next = s.next
	} else {
		a.partial[c] = s.next
	}
	if s.next >= 0 {
		a.slabs[s.next].prev = s.prev
	}
	s.prev, s.next = -1, -1
}

// ensureSlabs grows the slab table to cover n pages. New records are
// explicitly not-a-slab (the zero class would alias ladder class 0).
func (a *Arena) ensureSlabs(n int) {
	for len(a.slabs) < n {
		a.slabs = append(a.slabs, slabRec{class: -1})
	}
}

// --- large path ---

func (a *Arena) allocLarge(size int) (int, error) {
	n := int32((size + a.pageSize - 1) >> a.pageShift)
	p := a.takeRun(n)
	if p < 0 && a.reclaim() {
		p = a.takeRun(n)
	}
	if p < 0 {
		return 0, ErrOutOfMemory
	}
	a.heapBytes += int(n) << a.pageShift
	a.allocBytes += size
	return int(p) << a.pageShift, nil
}

func (a *Arena) freeLarge(addr, size int) {
	if addr&(a.pageSize-1) != 0 {
		panic(fmt.Sprintf("heap: bad free at %d: large extent not page-aligned", addr))
	}
	p := int32(addr >> a.pageShift)
	if int(p) < len(a.slabs) && a.slabs[p].class >= 0 {
		panic(fmt.Sprintf("heap: bad free at %d: page %d is a live slab", addr, p))
	}
	n := int32((size + a.pageSize - 1) >> a.pageShift)
	a.heapBytes -= int(n) << a.pageShift
	a.allocBytes -= size
	a.freeRun(p, n)
}

// takePage pops the lowest free page: O(1) against the head span.
func (a *Arena) takePage() int32 {
	if len(a.freePages) == 0 {
		return -1
	}
	s := &a.freePages[0]
	p := s.page
	s.page++
	s.n--
	if s.n == 0 {
		a.freePages = append(a.freePages[:0], a.freePages[1:]...)
	}
	return p
}

// takeRun carves the first (lowest-address) free run of at least n
// pages. The maxRun bound makes the failure answer O(1); a failed full
// scan tightens it to the true maximum so an exhaustion storm stays
// O(1) per request.
func (a *Arena) takeRun(n int32) int32 {
	if n > a.maxRun {
		return -1
	}
	largest := int32(0)
	for i := range a.freePages {
		s := &a.freePages[i]
		if s.n < n {
			if s.n > largest {
				largest = s.n
			}
			continue
		}
		p := s.page
		s.page += n
		s.n -= n
		if s.n == 0 {
			a.freePages = append(a.freePages[:i], a.freePages[i+1:]...)
		}
		return p
	}
	a.maxRun = largest
	return -1
}

// freeRun returns pages [page, page+n) to the page heap, coalescing with
// neighbours and raising maxRun exactly.
func (a *Arena) freeRun(page, n int32) {
	// Locate the insertion index. Frees cluster near the low end (pages
	// are handed out lowest-first), and the span list is short in steady
	// state; a linear scan from the front matches the access pattern.
	i := 0
	for i < len(a.freePages) && a.freePages[i].page < page {
		i++
	}
	if i > 0 && a.freePages[i-1].page+a.freePages[i-1].n > page {
		panic(fmt.Sprintf("heap: double free of page run [%d,%d)", page, page+n))
	}
	if i < len(a.freePages) && page+n > a.freePages[i].page {
		panic(fmt.Sprintf("heap: double free of page run [%d,%d)", page, page+n))
	}
	mergeLeft := i > 0 && a.freePages[i-1].page+a.freePages[i-1].n == page
	mergeRight := i < len(a.freePages) && a.freePages[i].page == page+n
	merged := n
	switch {
	case mergeLeft && mergeRight:
		a.freePages[i-1].n += n + a.freePages[i].n
		merged = a.freePages[i-1].n
		a.freePages = append(a.freePages[:i], a.freePages[i+1:]...)
	case mergeLeft:
		a.freePages[i-1].n += n
		merged = a.freePages[i-1].n
	case mergeRight:
		a.freePages[i].page = page
		a.freePages[i].n += n
		merged = a.freePages[i].n
	default:
		a.freePages = append(a.freePages, pageSpan{})
		copy(a.freePages[i+1:], a.freePages[i:])
		a.freePages[i] = pageSpan{page, n}
	}
	if merged > a.maxRun {
		a.maxRun = merged
	}
}

// checkInvariants recomputes the arena's structure from scratch and
// cross-checks every maintained counter. Exported to the package's
// tests; O(pages), never called on production paths.
func (a *Arena) checkInvariants() error {
	slabHeap, slabFree, slabCount := 0, 0, 0
	onPartial := make(map[int32]bool)
	for c := range a.partial {
		seen := map[int32]bool{}
		prev := int32(-1)
		for p := a.partial[c]; p >= 0; p = a.slabs[p].next {
			if seen[p] {
				return fmt.Errorf("class %d partial list cycles at page %d", c, p)
			}
			seen[p] = true
			s := &a.slabs[p]
			if s.class != int32(c) {
				return fmt.Errorf("page %d on class %d list has class %d", p, c, s.class)
			}
			if s.prev != prev {
				return fmt.Errorf("page %d prev link %d, want %d", p, s.prev, prev)
			}
			if s.used == 0 || s.used == s.blocks {
				return fmt.Errorf("page %d on partial list with used=%d/%d", p, s.used, s.blocks)
			}
			onPartial[p] = true
			prev = p
		}
	}
	cachedN := int32(0)
	for c, p := range a.cached {
		if p < 0 {
			continue
		}
		cachedN++
		s := &a.slabs[p]
		if s.class != int32(c) || s.used != 0 {
			return fmt.Errorf("cached page %d: class %d used %d, want class %d used 0", p, s.class, s.used, c)
		}
	}
	if cachedN != a.cachedN {
		return fmt.Errorf("cachedN %d, counted %d", a.cachedN, cachedN)
	}
	for p := range a.slabs {
		s := &a.slabs[p]
		if s.class < 0 {
			continue
		}
		usable := a.pageSize
		if int32(p) == a.fullPages {
			usable = a.shortLen
		}
		classBytes := SizeClassBytes(int(s.class))
		if int(s.blocks) != usable/classBytes {
			return fmt.Errorf("page %d: %d blocks, want %d", p, s.blocks, usable/classBytes)
		}
		free := 0
		for w := range s.freeMask {
			free += bits.OnesCount64(s.freeMask[w])
		}
		if int32(free) != s.blocks-s.used {
			return fmt.Errorf("page %d: mask holds %d free, used %d of %d", p, free, s.used, s.blocks)
		}
		if s.used > 0 && s.used < s.blocks && !onPartial[int32(p)] {
			return fmt.Errorf("page %d partial (%d/%d) but not listed", p, s.used, s.blocks)
		}
		slabHeap += usable
		slabFree += free * classBytes
		slabCount++
	}
	pagesFree := int32(0)
	for i, s := range a.freePages {
		if s.n <= 0 {
			return fmt.Errorf("page span %d has length %d", i, s.n)
		}
		if s.page < 0 || s.page+s.n > a.fullPages {
			return fmt.Errorf("page span %d out of range: [%d,%d)", i, s.page, s.page+s.n)
		}
		if i > 0 {
			prev := a.freePages[i-1]
			if prev.page+prev.n >= s.page {
				return fmt.Errorf("page spans %d,%d overlap or uncoalesced", i-1, i)
			}
		}
		if int(s.page) < len(a.slabs) {
			for p := s.page; p < s.page+s.n && int(p) < len(a.slabs); p++ {
				if a.slabs[p].class >= 0 {
					return fmt.Errorf("free page %d is a live slab", p)
				}
			}
		}
		pagesFree += s.n
	}
	if largest := int32(0); true {
		for _, s := range a.freePages {
			if s.n > largest {
				largest = s.n
			}
		}
		if largest > a.maxRun {
			return fmt.Errorf("maxRun bound %d underestimates largest run %d", a.maxRun, largest)
		}
	}
	if slabFree != a.freeListBytes {
		return fmt.Errorf("freeListBytes %d, slabs hold %d", a.freeListBytes, slabFree)
	}
	largeHeap := a.heapBytes - slabHeap
	if largeHeap < 0 || largeHeap%a.pageSize != 0 {
		return fmt.Errorf("heapBytes %d inconsistent with slab bytes %d", a.heapBytes, slabHeap)
	}
	largePages := int32(largeHeap >> a.pageShift)
	slabFullPages := int32(slabCount)
	if !a.shortFree && a.shortLen >= 8 {
		// The short page is in use as a slab (counted in slabCount) or
		// unusable; when it is a slab it is not a full page.
		if int(a.fullPages) < len(a.slabs) && a.slabs[a.fullPages].class >= 0 {
			slabFullPages--
		}
	}
	if pagesFree+slabFullPages+largePages != a.fullPages {
		return fmt.Errorf("page accounting: %d free + %d slab + %d large != %d",
			pagesFree, slabFullPages, largePages, a.fullPages)
	}
	if a.allocBytes < 0 || a.allocBytes > a.size {
		return fmt.Errorf("allocBytes %d out of range", a.allocBytes)
	}
	if over := a.heapBytes - a.allocBytes - a.freeListBytes; over < 0 {
		return fmt.Errorf("negative overhead %d", over)
	}
	return nil
}
