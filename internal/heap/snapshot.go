package heap

import "sync/atomic"

// Snapshot is the heap view an overlapped collection cycle traces
// against: the live bitmap versioned at epoch start plus the handle
// table and ref slab as they stood at that instant (DESIGN.md §10).
//
// The snapshot-at-the-beginning argument rests on what the mutator can
// and cannot touch while the trace runs:
//
//   - Live is a *copy* of the live bitmap, so births and (absent)
//     deaths during the epoch are invisible to the tracer.
//   - handles/slab are captured slice headers, not copies. The mutator
//     may append to either (allocation growth) — growth writes beyond
//     the captured lengths or into a new backing array, never into the
//     extents the snapshot can reach. The handle records and extents of
//     snapshot-live objects are immutable for the whole epoch: under an
//     overlap-admitted (hook-free) collector nothing calls Free or
//     Reinit until the epoch closes, and allocation only writes records
//     of snapshot-dead or freshly appended slots.
//   - The one region both sides touch concurrently is the ref slots of
//     snapshot-live objects: the mutator stores through SetRefEpoch
//     (atomic) and the tracer reads through RefAtomic (atomic), so the
//     race detector sees synchronised accesses and the tracer reads a
//     value each slot actually held at some point in the epoch — the
//     snapshot value or a later store, either of which the SATB
//     invariant covers (internal/msa/overlap.go).
//
// A Snapshot must not outlive the epoch that took it: the backing
// arrays it aliases are only guaranteed quiescent in the regions above
// while the runtime's SATB barrier is armed.
type Snapshot struct {
	// Live is the pooled copy of the live bitmap at epoch start,
	// covering exactly Cap handles. Its capacity is reused across
	// epochs.
	Live Bitset

	handles []handle
	slab    []HandleID
	cap     int
}

// Snapshot fills s with the heap's current live bitmap, handle-table
// view and slab view, reusing s.Live's capacity. This is the O(live
// bitmap) part of an overlapped cycle's opening pause: one word copy
// per 64 handles, no per-object work.
func (h *Heap) Snapshot(s *Snapshot) {
	s.cap = len(h.handles)
	w := BitsetWords(s.cap)
	s.Live.Reset(s.cap)
	copy(s.Live, h.liveBits[:w])
	s.handles = h.handles
	s.slab = h.slab
}

// HandleCap reports the handle-table capacity at snapshot time; IDs at
// or beyond it were born during the epoch.
func (s *Snapshot) HandleCap() int { return s.cap }

// Release drops the captured views (keeping Live's capacity for the
// next epoch) so a pooled snapshot pins neither the handle table nor
// the slab between cycles.
func (s *Snapshot) Release() {
	s.handles = nil
	s.slab = nil
	s.cap = 0
}

// Freeze replaces the snapshot's slab view with a private copy taken
// now, reusing buf's capacity, and returns the copy for reuse. After
// Freeze the snapshot's RefSlots windows are immune to mutator stores:
// a trace over a frozen snapshot reads exactly the epoch-start graph,
// which is what makes first-reaching-frame attribution snapshot-exact
// (the owners-mode property tests use this; production hook-free
// cycles never pay the copy).
func (s *Snapshot) Freeze(buf []HandleID) []HandleID {
	buf = append(buf[:0], s.slab...)
	s.slab = buf
	return buf
}

// RefSlots returns the captured-extent ref window of a snapshot-live
// object. The window aliases the live slab; while the mutator runs,
// elements must be read through RefAtomic. Callers must only pass IDs
// set in s.Live — the snapshot does not re-validate.
func (s *Snapshot) RefSlots(id HandleID) []HandleID {
	hd := &s.handles[int(id)]
	return s.slab[hd.refOff : hd.refOff+hd.refLen]
}

// SizeOf reports the captured arena footprint of a snapshot-live
// object (the parallel sweep reads extents from the snapshot view so
// its batch phase touches no mutator-written record).
func (s *Snapshot) SizeOf(id HandleID) int { return s.handles[int(id)].size }

// AddrOf reports the captured arena address of a snapshot-live object.
func (s *Snapshot) AddrOf(id HandleID) int { return s.handles[int(id)].addr }

// RefAtomic reads element i of a RefSlots window with an atomic load —
// the tracer-side half of the SetRefEpoch synchronisation.
func RefAtomic(slots []HandleID, i int) HandleID {
	return HandleID(atomic.LoadInt32((*int32)(&slots[i])))
}

// SetRefEpoch is SetRef for the mutator while a trace is concurrently
// reading the slab: identical validation and semantics, but the store
// is atomic and the overwritten value is returned so the runtime's
// write barrier can record it in the SATB buffer. The old value is
// read plainly — only the mutator writes ref slots, so it always
// observes its own last store.
func (h *Heap) SetRefEpoch(id HandleID, i int, val HandleID) (old HandleID) {
	hd := h.h(id)
	if uint(i) >= uint(hd.refLen) {
		h.badSlot(hd, i)
	}
	if val != Nil && !h.Live(val) {
		panic("heap: storing dangling reference")
	}
	p := &h.slab[hd.refOff+int32(i)]
	old = *p
	atomic.StoreInt32((*int32)(p), int32(val))
	return old
}
