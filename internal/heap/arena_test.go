package heap

import (
	"math/rand"
	"testing"
)

func TestSizeClassLadder(t *testing.T) {
	for size := 1; size <= MaxSmallSize; size++ {
		c := SizeClass(size)
		if c < 0 || c >= NumSizeClasses {
			t.Fatalf("SizeClass(%d) = %d out of range", size, c)
		}
		b := SizeClassBytes(c)
		if b < size || b != align(size) {
			t.Fatalf("class %d holds %d bytes, cannot serve %d exactly", c, b, size)
		}
	}
	if SizeClassBytes(NumSizeClasses-1) != MaxSmallSize {
		t.Fatalf("top class serves %d, want %d", SizeClassBytes(NumSizeClasses-1), MaxSmallSize)
	}
}

func TestArenaCapacityScaledPageSize(t *testing.T) {
	cases := []struct{ size, page int }{
		{64, 256},       // floor: tiny arena is all short page
		{24 << 10, 256}, // compress's tight budget
		{64 << 10, 256}, // mpegaudio's tight budget
		{256 << 10, 1024},
		{1 << 20, 4096}, // full ladder from 1 MiB up
		{512 << 20, 4096},
	}
	for _, tc := range cases {
		if got := NewArena(tc.size).PageSize(); got != tc.page {
			t.Errorf("NewArena(%d).PageSize() = %d, want %d", tc.size, got, tc.page)
		}
	}
}

func TestArenaAllocFree(t *testing.T) {
	a := NewArena(1 << 20)
	if a.FreeBytes() != 1<<20 || a.InUse() != 0 {
		t.Fatalf("fresh arena accounting wrong: free=%d inUse=%d", a.FreeBytes(), a.InUse())
	}
	p1, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlapping allocations")
	}
	if a.InUse() != 384 {
		t.Fatalf("inUse = %d, want 384", a.InUse())
	}
	in := a.Info()
	if in.AllocBytes != 384 || in.Capacity != 1<<20 {
		t.Fatalf("Info = %+v, want alloc 384 of 1 MiB", in)
	}
	if in.HeapBytes != 2*a.PageSize() {
		t.Fatalf("Info.HeapBytes = %d, want two pages (%d)", in.HeapBytes, 2*a.PageSize())
	}
	a.Free(p1, 128)
	a.Free(p2, 256)
	if a.FreeBytes() != 1<<20 || a.InUse() != 0 {
		t.Fatalf("free did not restore accounting: free=%d inUse=%d", a.FreeBytes(), a.InUse())
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestArenaSameClassReuse pins the slab discipline: a free followed by a
// same-class alloc hands the same block back (lowest free bit of the
// head partial slab).
func TestArenaSameClassReuse(t *testing.T) {
	a := NewArena(1 << 20)
	p1, _ := a.Alloc(48)
	p2, _ := a.Alloc(48)
	if p2 != p1+48 {
		t.Fatalf("second block at %d, want %d (adjacent in slab)", p2, p1+48)
	}
	a.Free(p1, 48)
	p3, _ := a.Alloc(48)
	if p3 != p1 {
		t.Fatalf("freed block not reused: got %d want %d", p3, p1)
	}
}

func TestArenaExhaustionAndRecovery(t *testing.T) {
	a := NewArena(256)
	p, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	a.Free(p, 256)
	if _, err := a.Alloc(256); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

// TestArenaShortPage covers arenas smaller than one page: the trailing
// short extent must serve classes that fit it, exactly once.
func TestArenaShortPage(t *testing.T) {
	a := NewArena(64)
	p, err := a.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(48); err != ErrOutOfMemory {
		t.Fatalf("second alloc: want ErrOutOfMemory, got %v", err)
	}
	a.Free(p, 48)
	if _, err := a.Alloc(48); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaLargePath(t *testing.T) {
	a := NewArena(1 << 20)
	big := 3*a.PageSize() + 40
	p, err := a.Alloc(big)
	if err != nil {
		t.Fatal(err)
	}
	if p%a.PageSize() != 0 {
		t.Fatalf("large extent at %d not page-aligned", p)
	}
	in := a.Info()
	if in.HeapBytes != 4*a.PageSize() {
		t.Fatalf("HeapBytes = %d, want 4 pages", in.HeapBytes)
	}
	if in.AllocBytes != big {
		t.Fatalf("AllocBytes = %d, want %d", in.AllocBytes, big)
	}
	if want := 4*a.PageSize() - big; in.Overhead != want {
		t.Fatalf("Overhead = %d, want run slack %d", in.Overhead, want)
	}
	a.Free(p, big)
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if in := a.Info(); in.HeapBytes != 0 || in.AllocBytes != 0 || in.Overhead != 0 {
		t.Fatalf("Info after drain = %+v, want zeros", in)
	}
}

// TestArenaReclaimCachedSlab: a cached fully-free slab must be
// surrendered when a large allocation would otherwise fail.
func TestArenaReclaimCachedSlab(t *testing.T) {
	size := 2 << 10 // 2 KiB => 256-byte pages, 8 full pages
	a := NewArena(size)
	ps := a.PageSize()
	// Turn every page into a class slab, then free all: one slab stays
	// cached, the rest return to the page heap.
	var ptrs []int
	for {
		p, err := a.Alloc(32)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		a.Free(p, 32)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The whole arena as one run requires every page, including the
	// cached slab's.
	p, err := a.Alloc(8 * ps)
	if err != nil {
		t.Fatalf("large alloc did not reclaim cached slab: %v", err)
	}
	a.Free(p, 8*ps)
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaDoubleFreePanics(t *testing.T) {
	a := NewArena(1 << 16)
	p, _ := a.Alloc(64)
	a.Free(p, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p, 64)
}

func TestArenaLargeDoubleFreePanics(t *testing.T) {
	a := NewArena(1 << 16)
	big := 2 * a.PageSize()
	p, _ := a.Alloc(big)
	a.Free(p, big)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p, big)
}

// arenaScript replays a deterministic mixed small/large workload and
// returns every address Alloc handed out.
func arenaScript(a *Arena, seed int64, steps int) []int {
	rng := rand.New(rand.NewSource(seed))
	type ext struct{ addr, size int }
	var live []ext
	var addrs []int
	for i := 0; i < steps; i++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			var size int
			if rng.Intn(8) == 0 {
				size = a.PageSize() + rng.Intn(3*a.PageSize())
			} else {
				size = 1 + rng.Intn(200)
			}
			if addr, err := a.Alloc(size); err == nil {
				live = append(live, ext{addr, size})
				addrs = append(addrs, addr)
			} else {
				addrs = append(addrs, -1)
			}
		} else {
			j := rng.Intn(len(live))
			a.Free(live[j].addr, live[j].size)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, e := range live {
		a.Free(e.addr, e.size)
	}
	return addrs
}

// TestArenaResetDeterministic pins the address determinism Reset
// promises: a reset arena replays the fresh arena's exact address
// sequence, so pooled shards are observably identical to fresh ones.
func TestArenaResetDeterministic(t *testing.T) {
	a := NewArena(1 << 16)
	first := arenaScript(a, 42, 4000)
	a.Reset()
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	second := arenaScript(a, 42, 4000)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("op %d: fresh addr %d, post-Reset addr %d", i, first[i], second[i])
		}
	}
	fresh := arenaScript(NewArena(1<<16), 42, 4000)
	for i := range first {
		if first[i] != fresh[i] {
			t.Fatalf("op %d: addr %d, fresh arena %d", i, first[i], fresh[i])
		}
	}
}

func TestArenaReleaseKeepsWorking(t *testing.T) {
	a := NewArena(1 << 16)
	before := arenaScript(a, 7, 1000)
	a.Release()
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	after := arenaScript(a, 7, 1000)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("op %d: pre-Release addr %d, post-Release addr %d", i, before[i], after[i])
		}
	}
}

// TestArenaRandomizedInvariants drives a random mixed workload and
// recomputes every maintained counter after each operation, and checks
// that the extents the arena actually reserved (class blocks, page
// runs) never overlap.
func TestArenaRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := NewArena(1 << 16)
	type ext struct{ addr, size, reserved int }
	var live []ext
	reservedFor := func(size int) int {
		if align(size) <= a.PageSize() {
			return align(size)
		}
		n := (size + a.PageSize() - 1) / a.PageSize()
		return n * a.PageSize()
	}
	for step := 0; step < 6000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			var size int
			switch rng.Intn(10) {
			case 0:
				size = a.PageSize() + rng.Intn(4*a.PageSize())
			case 1:
				size = a.PageSize() - 8 + rng.Intn(16)
			default:
				size = 1 + rng.Intn(256)
			}
			addr, err := a.Alloc(size)
			if err == nil {
				live = append(live, ext{addr, size, reservedFor(size)})
			}
		} else {
			i := rng.Intn(len(live))
			a.Free(live[i].addr, live[i].size)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if err := a.checkInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for i := range live {
		for j := i + 1; j < len(live); j++ {
			x, y := live[i], live[j]
			if x.addr < y.addr+y.reserved && y.addr < x.addr+x.reserved {
				t.Fatalf("reserved extents overlap: %+v %+v", x, y)
			}
		}
	}
}

func TestBitsetNextSet(t *testing.T) {
	var b Bitset
	b.Reset(300)
	if got := b.NextSet(0); got != -1 {
		t.Fatalf("NextSet on empty = %d, want -1", got)
	}
	for _, i := range []int{3, 64, 130, 299} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 130}, {131, 299}, {299, 299}, {300, -1}, {-5, 3},
	}
	for _, tc := range cases {
		if got := b.NextSet(tc.from); got != tc.want {
			t.Errorf("NextSet(%d) = %d, want %d", tc.from, got, tc.want)
		}
	}
}
