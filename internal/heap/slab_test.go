package heap

import (
	"math/rand"
	"testing"
)

// slabModel is the reference semantics the slab-backed heap must match:
// the old per-handle-slice behavior, kept as plain Go maps. Every
// observable — GetRef, SetRef, Refs, NumRefSlots, Live — must agree
// after any operation sequence.
type slabModel struct {
	refs map[HandleID][]HandleID // live handles only
}

func (m *slabModel) alloc(id HandleID, nrefs int) {
	m.refs[id] = make([]HandleID, nrefs)
}

func (m *slabModel) free(id HandleID) { delete(m.refs, id) }

// TestSlabMatchesPerSliceModel drives randomized Alloc / Free / Reinit
// / SetRef sequences and checks the slab-backed ref storage against the
// reference model after every step. This is the property the slab
// refactor must preserve: extent sharing and recycling are invisible —
// no stale value from a previous occupant of an extent may ever leak
// into a fresh object's slots.
func TestSlabMatchesPerSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := New(1 << 20)
	classes := []ClassID{
		h.DefineClass(Class{Name: "N0", Refs: 0, Data: 8}),
		h.DefineClass(Class{Name: "N1", Refs: 1, Data: 8}),
		h.DefineClass(Class{Name: "N3", Refs: 3, Data: 16}),
		h.DefineClass(Class{Name: "Arr", Refs: 0, Data: 0, IsArray: true}),
	}
	nrefsOf := func(c ClassID, extra int) int { return h.ClassDef(c).Refs + extra }

	model := &slabModel{refs: make(map[HandleID][]HandleID)}
	var live []HandleID

	check := func(step int) {
		t.Helper()
		if got, want := h.NumLive(), len(model.refs); got != want {
			t.Fatalf("step %d: NumLive = %d, model has %d", step, got, want)
		}
		for id, want := range model.refs {
			if !h.Live(id) {
				t.Fatalf("step %d: model-live handle %d dead in heap", step, id)
			}
			if got := h.NumRefSlots(id); got != len(want) {
				t.Fatalf("step %d: NumRefSlots(%d) = %d, want %d", step, id, got, len(want))
			}
			for i, w := range want {
				if got := h.GetRef(id, i); got != w {
					t.Fatalf("step %d: GetRef(%d,%d) = %d, want %d", step, id, i, got, w)
				}
			}
			// Refs must visit exactly the non-nil slots in order.
			var visited []HandleID
			h.Refs(id, func(r HandleID) { visited = append(visited, r) })
			var wantVisit []HandleID
			for _, w := range want {
				if w != Nil {
					wantVisit = append(wantVisit, w)
				}
			}
			if len(visited) != len(wantVisit) {
				t.Fatalf("step %d: Refs(%d) visited %v, want %v", step, id, visited, wantVisit)
			}
			for i := range visited {
				if visited[i] != wantVisit[i] {
					t.Fatalf("step %d: Refs(%d) visited %v, want %v", step, id, visited, wantVisit)
				}
			}
		}
	}

	randLive := func() HandleID { return live[rng.Intn(len(live))] }
	removeLive := func(id HandleID) {
		for i, o := range live {
			if o == id {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				return
			}
		}
	}

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0: // alloc
			ci := rng.Intn(len(classes))
			c := classes[ci]
			extra := 0
			if h.ClassDef(c).IsArray {
				extra = rng.Intn(6)
			}
			id, err := h.Alloc(c, extra)
			if err != nil {
				t.Fatalf("step %d: alloc: %v", step, err)
			}
			model.alloc(id, nrefsOf(c, extra))
			live = append(live, id)
		case op < 6: // free
			id := randLive()
			h.Free(id)
			model.free(id)
			removeLive(id)
		case op < 7: // reinit (recycling path): any class that fits
			id := randLive()
			ci := rng.Intn(len(classes))
			c := classes[ci]
			extra := 0
			if h.ClassDef(c).IsArray {
				extra = rng.Intn(6)
			}
			if InstanceSize(h.ClassDef(c), extra) > h.SizeOf(id) {
				continue
			}
			if err := h.Reinit(id, c, extra); err != nil {
				t.Fatalf("step %d: reinit: %v", step, err)
			}
			model.alloc(id, nrefsOf(c, extra))
		default: // setref
			id := randLive()
			n := h.NumRefSlots(id)
			if n == 0 {
				continue
			}
			slot := rng.Intn(n)
			val := Nil
			if rng.Intn(3) > 0 {
				val = randLive()
			}
			h.SetRef(id, slot, val)
			model.refs[id][slot] = val
		}
		if step%97 == 0 {
			check(step)
		}
	}
	check(5000)
}

// TestHeapResetObservablyFresh checks the pooled-shard contract: after
// Reset, a heap behaves exactly like heap.New of the same arena size —
// same handle IDs, same addresses, same zeroed slots — even though the
// slab and tables still hold a previous run's bytes.
func TestHeapResetObservablyFresh(t *testing.T) {
	run := func(h *Heap) (ids []HandleID, addrs []int, vals []HandleID) {
		cls := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
		arr := h.DefineClass(Class{Name: "Arr", IsArray: true})
		for i := 0; i < 100; i++ {
			id, err := h.Alloc(cls, 0)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			addrs = append(addrs, h.AddrOf(id))
		}
		a, err := h.Alloc(arr, 7)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, a)
		for i := 0; i < 50; i += 2 {
			h.SetRef(ids[i], 1, ids[i+1])
			h.Free(ids[i+50])
		}
		for i := 0; i < 50; i++ {
			vals = append(vals, h.GetRef(ids[i], 0), h.GetRef(ids[i], 1))
		}
		return ids, addrs, vals
	}

	fresh := New(1 << 20)
	wantIDs, wantAddrs, wantVals := run(fresh)

	pooled := New(1 << 20)
	run(pooled) // dirty it
	pooled.Reset()
	if pooled.NumLive() != 0 || pooled.Arena().InUse() != 0 || pooled.HandleCap() != 1 {
		t.Fatalf("Reset left residue: live=%d inUse=%d cap=%d",
			pooled.NumLive(), pooled.Arena().InUse(), pooled.HandleCap())
	}
	gotIDs, gotAddrs, gotVals := run(pooled)
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("handle %d: id %d after Reset, %d fresh", i, gotIDs[i], wantIDs[i])
		}
	}
	for i := range wantAddrs {
		if gotAddrs[i] != wantAddrs[i] {
			t.Fatalf("handle %d: addr %d after Reset, %d fresh", i, gotAddrs[i], wantAddrs[i])
		}
	}
	for i := range wantVals {
		if gotVals[i] != wantVals[i] {
			t.Fatalf("val %d: %d after Reset, %d fresh", i, gotVals[i], wantVals[i])
		}
	}
	if got := pooled.Stats(); got != fresh.Stats() {
		t.Fatalf("stats after Reset = %+v, fresh = %+v", got, fresh.Stats())
	}
}
