package engine

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// tapeDriveCount counts how many times the counting workload's driver
// actually ran — replayed cells never touch it, which is the whole
// point of the cache.
var tapeDriveCount atomic.Int64

func init() {
	workload.Register(workload.Spec{
		Name:      "tape-count",
		Desc:      "test workload counting driver executions",
		Threads:   func(int) int { return 1 },
		HeapBytes: func(int) int { return 1 << 20 },
		Run: func(rt *vm.Runtime, size int) {
			tapeDriveCount.Add(1)
			c := rt.Heap.DefineClass(heap.Class{Name: "obj", Refs: 1, Data: 8})
			th := rt.NewThread(2)
			th.CallVoid(1, func(f *vm.Frame) {
				prev := f.MustNew(c)
				for i := 0; i < 40*size; i++ {
					o := f.MustNew(c)
					f.PutField(o, 0, prev)
					f.SetLocal(0, o)
					prev = o
				}
			})
		},
	})
}

// TestTapeCacheSharesAcrossRepeats pins the Repeats contract: one job
// with N repeats drives the workload once (recording) and replays the
// other N-1 from the shared tape; with the cache off every repeat
// drives.
func TestTapeCacheSharesAcrossRepeats(t *testing.T) {
	job := Job{Workload: "tape-count", Size: 1, Collector: "cg", HeapBytes: 1 << 21, Repeats: 5}

	tapeDriveCount.Store(0)
	r := New(1).Exec(job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := tapeDriveCount.Load(); got != 1 {
		t.Errorf("tape cache on: driver ran %d times across 5 repeats, want 1", got)
	}

	tapeDriveCount.Store(0)
	r = New(1).SetTapeCache(false).Exec(job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := tapeDriveCount.Load(); got != 5 {
		t.Errorf("tape cache off: driver ran %d times across 5 repeats, want 5", got)
	}
}

// TestTapeCacheBitIdentical pins the substitution property at the
// engine surface: the same matrix row computed through the cache
// (second cell replays) and with the cache disabled produces identical
// collector statistics and heap state.
func TestTapeCacheBitIdentical(t *testing.T) {
	jobs := []Job{
		{Workload: "jess", Size: 1, Collector: "cg", HeapBytes: 1 << 24},
		{Workload: "jess", Size: 1, Collector: "cg+recycle", HeapBytes: 1 << 24},
		{Workload: "jess", Size: 1, Collector: "cg", HeapBytes: 1 << 24, GCEvery: 900},
	}
	type snap struct {
		stats core.Stats
		hs    heap.Stats
		instr uint64
	}
	collect := func(eng *Engine) []snap {
		out := make([]snap, len(jobs))
		for i, job := range jobs {
			r := eng.Exec(job)
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			out[i] = snap{r.Col.(*core.CG).Stats(), r.RT.Heap.Stats(), r.RT.Instr()}
		}
		return out
	}
	cached := collect(New(1))
	driven := collect(New(1).SetTapeCache(false))
	for i := range jobs {
		if cached[i] != driven[i] {
			t.Errorf("job %d: tape-backed cell differs from driven cell\ncached: %+v\ndriven: %+v",
				i, cached[i], driven[i])
		}
	}
}

// TestTapeCacheProgressCounters checks the /progress accounting: one
// recording for the row, one replay per subsequent cell.
func TestTapeCacheProgressCounters(t *testing.T) {
	p := &obs.Progress{}
	eng := New(1).SetProgress(p)
	for _, col := range []string{"cg", "msa", "gen"} {
		r := eng.Exec(Job{Workload: "compress", Size: 1, Collector: col, HeapBytes: 1 << 24})
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s := p.Snapshot()
	if s.TapesRecorded != 1 || s.TapeReplays != 2 {
		t.Errorf("recorded %d / replays %d, want 1 / 2", s.TapesRecorded, s.TapeReplays)
	}
	if eng.Tapes() != 1 {
		t.Errorf("engine caches %d tapes, want 1", eng.Tapes())
	}
}

// TestTapeCacheClears pins cache invalidation: a cap change rebinds
// the reserve (cached charges belonged to the old regime), and
// disabling the cache drops it entirely.
func TestTapeCacheClears(t *testing.T) {
	eng := New(1).SetMaxHeapBytes(1 << 26)
	if r := eng.Exec(Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: 1 << 22}); r.Err != nil {
		t.Fatal(r.Err)
	}
	if eng.Tapes() != 1 {
		t.Fatalf("expected 1 cached tape, have %d", eng.Tapes())
	}
	eng.SetMaxHeapBytes(1 << 27)
	if eng.Tapes() != 0 {
		t.Errorf("cap change left %d cached tapes", eng.Tapes())
	}
	if got := eng.ReservedBytes(); got != 0 {
		t.Errorf("cap change left %d reserved bytes", got)
	}

	if r := eng.Exec(Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: 1 << 22}); r.Err != nil {
		t.Fatal(r.Err)
	}
	before := eng.ReservedBytes()
	if eng.Tapes() != 1 || before == 0 {
		t.Fatalf("expected 1 cached tape holding reserve, have %d tapes, %d bytes", eng.Tapes(), before)
	}
	eng.SetTapeCache(false)
	if eng.Tapes() != 0 || eng.TapeCache() {
		t.Error("SetTapeCache(false) left the cache populated")
	}
	if got := eng.ReservedBytes(); got != 0 {
		t.Errorf("disabling the cache left %d reserved bytes", got)
	}
}
