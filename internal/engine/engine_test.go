package engine

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	const n = 100
	var hits [n]int32
	New(8).Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestRunResultsInSubmissionOrder(t *testing.T) {
	jobs := []Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg"},
		{Workload: "jess", Size: 1, Collector: "msa"},
	}
	res := New(3).Run(jobs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Job.Workload != jobs[i].Workload || r.Job.Collector != jobs[i].Collector {
			t.Fatalf("result %d is for %s/%s, want %s/%s",
				i, r.Job.Workload, r.Job.Collector, jobs[i].Workload, jobs[i].Collector)
		}
		if r.RT == nil || r.Col == nil {
			t.Fatalf("result %d missing shard state", i)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	jobs := []Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: "jess", Size: 1, Collector: "cg"},
		{Workload: "raytrace", Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg+noopt"},
	}
	seq := New(1).Run(jobs)
	par := New(4).Run(jobs)
	for i := range jobs {
		ss := seq[i].Col.(*core.CG).Stats()
		ps := par[i].Col.(*core.CG).Stats()
		if !reflect.DeepEqual(ss, ps) {
			t.Fatalf("job %d stats diverge between 1 and 4 workers:\n%+v\n%+v", i, ss, ps)
		}
		if seq[i].RT.Instr() != par[i].RT.Instr() {
			t.Fatalf("job %d instruction counts diverge", i)
		}
	}
}

func TestExecErrors(t *testing.T) {
	if r := Exec(Job{Workload: "nosuch", Size: 1, Collector: "cg"}); r.Err == nil {
		t.Fatal("unknown workload must error")
	}
	if r := Exec(Job{Workload: "compress", Size: 1, Collector: "nosuch"}); r.Err == nil {
		t.Fatal("unknown collector must error")
	}
	if r := Exec(Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: -7}); r.Err == nil {
		t.Fatal("negative heap budget must error")
	}
}

func TestExecRecoversShardPanic(t *testing.T) {
	// A 1 KiB arena cannot hold any analog's live set: the shard hits a
	// hard OOM panic, which must surface as Result.Err, not crash the
	// matrix.
	r := Exec(Job{Workload: "compress", Size: 1, Collector: "msa", HeapBytes: 1 << 10})
	if r.Err == nil {
		t.Fatal("OOM shard must report an error")
	}
}

func TestRepeatsUseFreshShards(t *testing.T) {
	one := Exec(Job{Workload: "db", Size: 1, Collector: "cg"})
	five := Exec(Job{Workload: "db", Size: 1, Collector: "cg", Repeats: 5})
	if one.Err != nil || five.Err != nil {
		t.Fatalf("unexpected errors: %v, %v", one.Err, five.Err)
	}
	// The last repeat's collector saw exactly one run's worth of
	// allocations: repeats do not accumulate state.
	a := one.Col.(*core.CG).Stats().Created
	b := five.Col.(*core.CG).Stats().Created
	if a != b {
		t.Fatalf("repeat shard created %d objects, single run %d", b, a)
	}
}

func TestTightHeapBudget(t *testing.T) {
	r := Exec(Job{Workload: "compress", Size: 1, Collector: "msa", HeapBytes: TightHeap})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	spec, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.RT.Heap.Arena().Size(), spec.HeapBytes(1); got != want {
		t.Fatalf("tight shard arena = %d bytes, want the workload budget %d", got, want)
	}
	big := Exec(Job{Workload: "compress", Size: 1, Collector: "msa"})
	if got := big.RT.Heap.Arena().Size(); got != DemographicsArena {
		t.Fatalf("default shard arena = %d bytes, want %d", got, DemographicsArena)
	}
}

func TestWorkersDefault(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("workers must default to at least 1")
	}
	if New(7).Workers() != 7 {
		t.Fatal("explicit worker count must stick")
	}
}

func TestRunEachConsumesEveryCellInIndexSlot(t *testing.T) {
	jobs := []Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "msa"},
		{Workload: "nosuch", Size: 1, Collector: "cg"},
	}
	got := make([]Result, len(jobs))
	New(3).RunEach(jobs, func(i int, r Result) { got[i] = r })
	if got[0].Err != nil || got[1].Err != nil {
		t.Fatalf("good cells errored: %v, %v", got[0].Err, got[1].Err)
	}
	if got[0].Job.Workload != "compress" || got[1].Job.Workload != "db" {
		t.Fatal("results landed in the wrong slots")
	}
	if got[2].Err == nil {
		t.Fatal("bad cell must carry its error")
	}
}
