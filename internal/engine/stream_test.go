package engine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/heap"
	"repro/internal/vm"
	"repro/internal/workload"
)

// panicWorkload is registered once for the whole test process: a
// workload that allocates a few objects and then panics mid-stream,
// exercising the failure path of Stream and (transitively) the dist
// coordinator. Keyed off size: size 1 panics, size 2 completes.
const panicWorkload = "panicky"

func init() {
	workload.Register(workload.Spec{
		Name:      panicWorkload,
		Desc:      "panics mid-stream (test fixture)",
		Threads:   func(int) int { return 1 },
		HeapBytes: func(int) int { return 1 << 20 },
		Run: func(rt *vm.Runtime, size int) {
			cls := rt.Heap.DefineClass(heap.Class{Name: "panicky.Obj", Data: 8})
			th := rt.NewThread(1)
			th.CallVoid(1, func(f *vm.Frame) {
				f.MustNew(cls)
				if size == 1 {
					panic("synthetic mid-stream failure")
				}
			})
		},
	})
}

func TestStreamDeliversInSubmissionOrder(t *testing.T) {
	jobs := []Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg"},
		{Workload: "jess", Size: 1, Collector: "msa"},
		{Workload: "raytrace", Size: 1, Collector: "cg"},
	}
	i := 0
	for r := range New(4).Stream(jobs) {
		if r.Job.Workload != jobs[i].Workload {
			t.Fatalf("receive %d is %s, want %s", i, r.Job.Workload, jobs[i].Workload)
		}
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		i++
	}
	if i != len(jobs) {
		t.Fatalf("stream delivered %d results, want %d", i, len(jobs))
	}
}

// TestStreamSurvivesPanickingWorkload is the engine half of the failure
// contract: a job whose workload panics mid-stream must yield its slot
// as an error, and every other slot must still arrive — the stream
// closes instead of wedging.
func TestStreamSurvivesPanickingWorkload(t *testing.T) {
	jobs := []Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: panicWorkload, Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg"},
		{Workload: panicWorkload, Size: 2, Collector: "cg"},
	}
	done := make(chan []Result, 1)
	go func() {
		var got []Result
		for r := range New(4).Stream(jobs) {
			got = append(got, r)
		}
		done <- got
	}()
	var got []Result
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream wedged on a panicking workload")
	}
	if len(got) != len(jobs) {
		t.Fatalf("stream delivered %d results, want %d", len(got), len(jobs))
	}
	if got[1].Err == nil || !strings.Contains(got[1].Err.Error(), "panicked") {
		t.Fatalf("panicking cell yielded %v, want a panic error", got[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if got[i].Err != nil {
			t.Fatalf("healthy cell %d errored: %v", i, got[i].Err)
		}
	}
}

func TestStreamConsumerMayLag(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: 1 << 20}
	}
	ch := New(4).Stream(jobs)
	time.Sleep(50 * time.Millisecond) // let every worker finish first
	n := 0
	for range ch {
		n++
	}
	if n != len(jobs) {
		t.Fatalf("lagging consumer got %d results, want %d", n, len(jobs))
	}
}

func TestReserveThrottlesAdmission(t *testing.T) {
	// Cap = 1.5 shards: at most one 1 MiB shard may be in flight at a
	// time, so concurrency observed inside Acquire/Release never
	// exceeds 1 even on an 8-worker pool.
	const shard = 1 << 20
	r := heap.NewReserve(shard * 3 / 2)
	var cur, peak int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				r.Acquire(shard)
				if c := atomic.AddInt64(&cur, 1); c > atomic.LoadInt64(&peak) {
					atomic.StoreInt64(&peak, c)
				}
				atomic.AddInt64(&cur, -1)
				r.Release(shard)
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("reserve deadlocked")
	}
	if p := atomic.LoadInt64(&peak); p > 1 {
		t.Fatalf("reserve admitted %d concurrent shards under a 1.5-shard cap", p)
	}
}

func TestReserveAdmitsOversizedJobAlone(t *testing.T) {
	eng := New(4).SetMaxHeapBytes(1 << 20) // cap far below the 512 MiB default arena
	done := make(chan Result, 1)
	go func() { done <- eng.Exec(Job{Workload: "compress", Size: 1, Collector: "cg"}) }()
	select {
	case r := <-done:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("oversized job deadlocked instead of running alone")
	}
}

func TestEngineRunUnderMemoryCap(t *testing.T) {
	jobs := []Job{
		{Workload: "compress", Size: 1, Collector: "cg"},
		{Workload: "db", Size: 1, Collector: "cg"},
		{Workload: "jess", Size: 1, Collector: "cg"},
	}
	capped := New(4).SetMaxHeapBytes(engineCapForTest()).Run(jobs)
	free := New(1).Run(jobs)
	for i := range jobs {
		if capped[i].Err != nil || free[i].Err != nil {
			t.Fatalf("cell %d errored: %v / %v", i, capped[i].Err, free[i].Err)
		}
		if capped[i].RT.Instr() != free[i].RT.Instr() {
			t.Fatalf("cell %d diverged under the memory cap", i)
		}
	}
}

// engineCapForTest admits exactly one demographics arena at a time.
func engineCapForTest() int64 { return DemographicsArena + DemographicsArena/2 }

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"0":      0,
		"1024":   1024,
		"512KiB": 512 << 10,
		"512K":   512 << 10,
		"3MiB":   3 << 20,
		"2GiB":   2 << 30,
		" 2G ":   2 << 30,
	}
	for in, want := range good {
		got, err := ParseByteSize(in)
		if err != nil {
			t.Fatalf("ParseByteSize(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseByteSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "-1", "1.5GiB", "10TiB", "9999999999G"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Fatalf("ParseByteSize(%q) must error", bad)
		}
	}
}
