package engine

import (
	"sync"

	"repro/internal/vm"
)

// shardPool recycles quiescent vm.Runtime shards between matrix cells,
// keyed by arena size: a demographics sweep runs hundreds of cells over
// identical 512 MiB arenas, and Reset-ing a pooled shard replaces
// per-cell heap/runtime construction (arena spans, handle table, ref
// slab, intern maps) with a handful of slice truncations. Only the
// extract-and-drop execution paths (ExecRelease, RunEach) recycle
// through the pool; paths whose Results escape to the caller (Exec,
// Run, Stream) never do, so a retained Result.RT stays quiescent.
type shardPool struct {
	mu     sync.Mutex
	bySize map[int][]*vm.Runtime
	count  int // pooled shards across all sizes
	max    int // retention cap; excess shards are dropped to the GC
}

func newShardPool(max int) *shardPool {
	return &shardPool{bySize: make(map[int][]*vm.Runtime), max: max}
}

// get pops a pooled shard with exactly the requested arena size, or
// returns nil when the caller should build a fresh one.
func (p *shardPool) get(arenaBytes int) *vm.Runtime {
	p.mu.Lock()
	defer p.mu.Unlock()
	stack := p.bySize[arenaBytes]
	n := len(stack)
	if n == 0 {
		return nil
	}
	rt := stack[n-1]
	stack[n-1] = nil
	p.bySize[arenaBytes] = stack[:n-1]
	p.count--
	return rt
}

// put returns a quiescent shard to the pool; over the retention cap it
// is dropped instead (the cap bounds idle handle-table memory at the
// worker count — the same high-water the pool's cells reached anyway).
func (p *shardPool) put(arenaBytes int, rt *vm.Runtime) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count >= p.max {
		return
	}
	p.bySize[arenaBytes] = append(p.bySize[arenaBytes], rt)
	p.count++
}
