package engine

import (
	"sync"

	"repro/internal/vm"
)

// shardPool recycles quiescent vm.Runtime shards between matrix cells,
// keyed by arena size: a demographics sweep runs hundreds of cells over
// identical 512 MiB arenas, and Reset-ing a pooled shard replaces
// per-cell heap/runtime construction (arena spans, handle table, ref
// slab, intern maps) with a handful of slice truncations. Only the
// extract-and-drop execution paths (ExecRelease, RunEach) recycle
// through the pool; paths whose Results escape to the caller (Exec,
// Run, Stream) never do, so a retained Result.RT stays quiescent.
type shardPool struct {
	mu     sync.Mutex
	bySize map[int][]*vm.Runtime
	count  int // pooled shards across all sizes
	max    int // retention cap; excess shards are dropped to the GC
}

func newShardPool(max int) *shardPool {
	return &shardPool{bySize: make(map[int][]*vm.Runtime), max: max}
}

// get pops a pooled shard with exactly the requested arena size, or
// returns nil when the caller should build a fresh one.
func (p *shardPool) get(arenaBytes int) *vm.Runtime {
	p.mu.Lock()
	defer p.mu.Unlock()
	stack := p.bySize[arenaBytes]
	n := len(stack)
	if n == 0 {
		return nil
	}
	rt := stack[n-1]
	stack[n-1] = nil
	p.bySize[arenaBytes] = stack[:n-1]
	p.count--
	return rt
}

// put returns a quiescent shard to the pool and reports whether it was
// retained; over the retention cap it is dropped instead (the cap
// bounds idle handle-table memory at the worker count — the same
// high-water the pool's cells reached anyway). Under a memory cap the
// caller keys reservation ownership off the return: a retained shard
// keeps its reserve bytes, a dropped one's are released.
func (p *shardPool) put(arenaBytes int, rt *vm.Runtime) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count >= p.max {
		return false
	}
	p.bySize[arenaBytes] = append(p.bySize[arenaBytes], rt)
	p.count++
	return true
}

// evictOne drops one pooled shard — deterministically the largest arena
// size with a pooled shard, the choice that frees the most reserve per
// eviction — and reports its arena size. ok is false when the pool is
// empty. The evicted shard's reservation is NOT released here; the
// caller (the reserve's evict hook) owns that.
func (p *shardPool) evictOne() (arenaBytes int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := -1
	for size, stack := range p.bySize {
		if len(stack) > 0 && size > best {
			best = size
		}
	}
	if best < 0 {
		return 0, false
	}
	stack := p.bySize[best]
	stack[len(stack)-1] = nil
	p.bySize[best] = stack[:len(stack)-1]
	p.count--
	return best, true
}

// drain drops every pooled shard. SetMaxHeapBytes calls it when the cap
// changes: pooled shards carry the reservation regime they were pooled
// under, and draining is how the regimes stay unmixed.
func (p *shardPool) drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	clear(p.bySize)
	p.count = 0
}
