package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// The admission throttle behind SetMaxHeapBytes lives in heap.Reserve: a
// process-wide byte reserve that every shard arena is drawn against in
// full before its job runs. See SetMaxHeapBytes for the engine-side
// wiring (pooled shards retain their reservations; eviction surrenders
// them under pressure).

// ParseByteSize parses a human byte count for -max-heap-bytes style
// flags: a plain integer is bytes; KiB/MiB/GiB (or K/M/G) suffixes
// scale by powers of 1024. "0" means unlimited.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	shift := 0
	for suffix, sh := range map[string]int{
		"KiB": 10, "K": 10, "MiB": 20, "M": 20, "GiB": 30, "G": 30,
	} {
		if strings.HasSuffix(t, suffix) {
			t, shift = strings.TrimSuffix(t, suffix), sh
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("engine: bad byte size %q (want e.g. 1073741824, 512MiB, 2GiB)", s)
	}
	if n>>(63-shift) != 0 {
		return 0, fmt.Errorf("engine: byte size %q overflows", s)
	}
	return n << shift, nil
}
