package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// heapBudget is the admission throttle behind SetMaxHeapBytes: a
// counting semaphore over arena bytes. acquire blocks until the charge
// fits under the cap — except that a charge larger than the whole cap
// is admitted once the pool is otherwise empty, so one oversized shard
// degrades to sequential execution instead of deadlocking.
type heapBudget struct {
	max   int64
	mu    sync.Mutex
	cond  *sync.Cond
	inUse int64
}

func newHeapBudget(max int64) *heapBudget {
	b := &heapBudget{max: max}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// acquire blocks until bytes fits: inUse+bytes <= max, or the pool is
// empty (the oversized-job escape hatch).
func (b *heapBudget) acquire(bytes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inUse != 0 && b.inUse+bytes > b.max {
		b.cond.Wait()
	}
	b.inUse += bytes
}

// release returns bytes to the budget and wakes blocked admissions.
func (b *heapBudget) release(bytes int64) {
	b.mu.Lock()
	b.inUse -= bytes
	b.mu.Unlock()
	b.cond.Broadcast()
}

// ParseByteSize parses a human byte count for -max-heap-bytes style
// flags: a plain integer is bytes; KiB/MiB/GiB (or K/M/G) suffixes
// scale by powers of 1024. "0" means unlimited.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	shift := 0
	for suffix, sh := range map[string]int{
		"KiB": 10, "K": 10, "MiB": 20, "M": 20, "GiB": 30, "G": 30,
	} {
		if strings.HasSuffix(t, suffix) {
			t, shift = strings.TrimSuffix(t, suffix), sh
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("engine: bad byte size %q (want e.g. 1073741824, 512MiB, 2GiB)", s)
	}
	if n>>(63-shift) != 0 {
		return 0, fmt.Errorf("engine: byte size %q overflows", s)
	}
	return n << shift, nil
}
