package engine

import (
	"sync"

	"repro/internal/heap"
	"repro/internal/tape"
)

// tapeKey identifies a recorded event stream. A tape is a pure
// function of (workload, size): the driver's control flow depends only
// on its deterministic RNG and on graph reads whose Nil-ness every
// collector preserves, so the collector / heap-budget / gc-every /
// repeat axes of the matrix all replay one recording.
type tapeKey struct {
	workload string
	size     int
}

// tapeCache holds one tape per (workload, size) row of the matrix.
// Recording is opportunistic singleflight: the first cell of a row to
// arrive claims the recording slot and drives the workload normally
// (recording as a side effect); concurrent cells of the same row miss
// and drive normally too — nobody ever blocks on a recording in
// flight. Only complete, error-free runs publish; a panic mid-record
// releases the claim so the next cell can try again.
//
// Tape bytes are charged against the engine's heap reserve (when one
// is set) via non-blocking admission: a tape that does not fit is
// simply dropped — the cache is an accelerator, never a correctness
// dependency — and a cap change clears the cache along with the shard
// pool, since cached charges belong to the old regime.
type tapeCache struct {
	mu        sync.Mutex
	tapes     map[tapeKey]*tape.Tape
	bytes     map[tapeKey]int64 // reserve charge per tape (uncapped: 0)
	recording map[tapeKey]bool
	reserve   *heap.Reserve
}

func newTapeCache() *tapeCache {
	return &tapeCache{
		tapes:     make(map[tapeKey]*tape.Tape),
		bytes:     make(map[tapeKey]int64),
		recording: make(map[tapeKey]bool),
	}
}

// lookup returns the cached tape for k, if one has been published.
func (tc *tapeCache) lookup(k tapeKey) (*tape.Tape, bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	t, ok := tc.tapes[k]
	return t, ok
}

// beginRecord claims the recording slot for k. It fails (false) when a
// tape is already published or another cell is mid-recording.
func (tc *tapeCache) beginRecord(k tapeKey) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.recording[k] {
		return false
	}
	if _, ok := tc.tapes[k]; ok {
		return false
	}
	tc.recording[k] = true
	return true
}

// abortRecord releases an unfulfilled recording claim (the recording
// run panicked or errored before publish).
func (tc *tapeCache) abortRecord(k tapeKey) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.recording, k)
}

// publish installs the recorded tape and releases the claim. Under a
// reserve, the tape's footprint must be admitted without blocking or
// the tape is dropped. Reports whether the tape was kept.
func (tc *tapeCache) publish(k tapeKey, t *tape.Tape) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.recording, k)
	if _, ok := tc.tapes[k]; ok {
		return false
	}
	if tc.reserve != nil {
		n := int64(t.MemBytes())
		if !tc.reserve.TryAcquire(n) {
			return false
		}
		tc.bytes[k] = n
	}
	tc.tapes[k] = t
	return true
}

// clear drops every cached tape, returning reserve charges.
func (tc *tapeCache) clear() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for k, n := range tc.bytes {
		if tc.reserve != nil && n > 0 {
			tc.reserve.Release(n)
		}
		delete(tc.bytes, k)
	}
	for k := range tc.tapes {
		delete(tc.tapes, k)
	}
}

// setReserve rebinds the cache to a (possibly nil) reserve, clearing
// it first: cached charges were acquired against the old regime.
func (tc *tapeCache) setReserve(r *heap.Reserve) {
	tc.clear()
	tc.mu.Lock()
	tc.reserve = r
	tc.mu.Unlock()
}

// Tapes reports how many event tapes the engine currently caches.
func (e *Engine) Tapes() int {
	if e.tapes == nil {
		return 0
	}
	e.tapes.mu.Lock()
	defer e.tapes.mu.Unlock()
	return len(e.tapes.tapes)
}

// SetTapeCache enables or disables the per-(workload, size) event-tape
// cache and returns e for chaining. Enabled (the default from New),
// the first cell of each matrix row records the driver's operation
// stream as a side effect of running it, and every other cell of the
// row — different collector, heap budget, gc-every or repeat — replays
// the tape through the same runtime entry points instead of re-running
// driver logic. Results are bit-identical either way; the cache only
// removes redundant driver work. Disabling clears any cached tapes.
func (e *Engine) SetTapeCache(on bool) *Engine {
	if on {
		if e.tapes == nil {
			e.tapes = newTapeCache()
			e.tapes.setReserve(e.reserve)
		}
		return e
	}
	if e.tapes != nil {
		e.tapes.clear()
		e.tapes = nil
	}
	return e
}

// TapeCache reports whether the event-tape cache is enabled.
func (e *Engine) TapeCache() bool { return e.tapes != nil }
