package engine

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// TestExecReleaseRecyclesShards checks that back-to-back equal-arena
// cells actually reuse one runtime (the pool is doing something) and
// that a job of a different arena size never receives it.
func TestExecReleaseRecyclesShards(t *testing.T) {
	eng := New(1)
	job := Job{Workload: "javac", Size: 1, Collector: "cg", HeapBytes: 1 << 24}
	var first, second *core.CG
	eng.ExecRelease(job, func(r Result) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		first = r.Col.(*core.CG)
	})
	if got := eng.pool.count; got != 1 {
		t.Fatalf("pool holds %d shards after one release, want 1", got)
	}
	var rt1 = eng.pool.bySize[1<<24][0]
	eng.ExecRelease(job, func(r Result) {
		if r.RT != rt1 {
			t.Fatal("equal-arena cell did not reuse the pooled shard")
		}
		second = r.Col.(*core.CG)
	})
	if first == second {
		t.Fatal("collector instances must be fresh per cell")
	}
	other := job
	other.HeapBytes = 1 << 23
	eng.ExecRelease(other, func(r Result) {
		if r.RT == rt1 {
			t.Fatal("different-arena cell received a mismatched pooled shard")
		}
	})
}

// TestMemoryCapRetainsPooling pins the cap/pool interaction: pooled
// idle shards keep their reservation against the engine's reserve, so
// pooling stays on under -max-heap-bytes and ReservedBytes accounts for
// running and pooled arenas alike. When admission stalls, the reserve
// evicts pooled shards — largest arena first — instead of blocking.
func TestMemoryCapRetainsPooling(t *testing.T) {
	// Tape cache off: this test pins the reserve to exact *arena* bytes,
	// and cached tapes would add their own (legitimate) charges.
	eng := New(2).SetMaxHeapBytes(3 << 24).SetTapeCache(false) // 48 MiB
	run := func(bytes int) {
		t.Helper()
		job := Job{Workload: "javac", Size: 1, Collector: "cg", HeapBytes: bytes}
		eng.ExecRelease(job, func(r Result) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		})
	}
	run(1 << 24) // 16 MiB, pooled with its reservation
	if got, want := eng.ReservedBytes(), int64(1<<24); got != want || eng.pool.count != 1 {
		t.Fatalf("after first cell: reserved %d (want %d), pooled %d (want 1)", got, want, eng.pool.count)
	}
	run(1 << 25) // 32 MiB, pooled too: reserve now exactly at the cap
	if got, want := eng.ReservedBytes(), int64(3<<24); got != want || eng.pool.count != 2 {
		t.Fatalf("after second cell: reserved %d (want %d), pooled %d (want 2)", got, want, eng.pool.count)
	}
	// 8 MiB doesn't fit beside 48 MiB of pooled reservations; admission
	// must evict the largest pooled shard (32 MiB) rather than block.
	run(1 << 23)
	if got, want := eng.ReservedBytes(), int64(1<<24+1<<23); got != want {
		t.Fatalf("after eviction: reserved %d, want %d (16 MiB + 8 MiB pooled)", got, want)
	}
	if eng.pool.count != 2 || len(eng.pool.bySize[1<<25]) != 0 {
		t.Fatalf("eviction kept the wrong shard: count %d, 32 MiB stack %d",
			eng.pool.count, len(eng.pool.bySize[1<<25]))
	}
	// Dropping the cap drains the pool along with its reservations.
	eng.SetMaxHeapBytes(0)
	if eng.pool.count != 0 || eng.ReservedBytes() != 0 {
		t.Fatalf("uncapping left %d pooled shards, %d reserved bytes", eng.pool.count, eng.ReservedBytes())
	}
}

// TestMemoryCapAdmissionExact is the admission-exactness property: on a
// concurrent sweep of mixed arena sizes (each below the cap), the
// reserve never over-admits — at every sampled instant, running plus
// pooled arena bytes stay within -max-heap-bytes — and admitted jobs
// never fail for lack of reserve. Afterwards only pooled reservations
// remain.
func TestMemoryCapAdmissionExact(t *testing.T) {
	const cap = 5 << 22 // 20 MiB: forces both blocking and eviction
	// Tape cache off, as above: the quiescent-reserve == pooled-arena
	// equality below has no tape-byte term.
	eng := New(4).SetMaxHeapBytes(cap).SetTapeCache(false)
	sizes := []int{1 << 21, 1 << 22, 3 << 21, 1 << 23} // 2, 4, 6, 8 MiB
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{Workload: "compress", Size: 1, Collector: "cg", HeapBytes: sizes[i%len(sizes)]}
	}
	var over atomic.Int64
	eng.RunEach(jobs, func(i int, r Result) {
		if r.Err != nil {
			t.Errorf("job %d (%d bytes) failed under the cap: %v", i, jobs[i].HeapBytes, r.Err)
		}
		if got := eng.ReservedBytes(); got > cap {
			over.Store(got)
		}
	})
	if got := over.Load(); got != 0 {
		t.Fatalf("reserve over-admitted: observed %d reserved bytes under a %d cap", got, int64(cap))
	}
	if got := eng.ReservedBytes(); got > cap {
		t.Fatalf("quiescent reserve holds %d bytes under a %d cap", got, int64(cap))
	}
	var pooled int64
	for size, stack := range eng.pool.bySize {
		pooled += int64(size) * int64(len(stack))
	}
	if got := eng.ReservedBytes(); got != pooled {
		t.Fatalf("quiescent reserve %d != pooled arena bytes %d", got, pooled)
	}
}

// TestEnginePooledDeterminism is the Reset-reuse determinism gate: a
// cell computed on a recycled shard must produce byte-for-byte the
// statistics a fresh shard produces. The first RunEach pass fills the
// pool, the second runs entirely on recycled runtimes.
func TestEnginePooledDeterminism(t *testing.T) {
	jobs := []Job{
		{Workload: "jess", Size: 1, Collector: "cg", HeapBytes: 1 << 24},
		{Workload: "raytrace", Size: 1, Collector: "cg+recycle", HeapBytes: 1 << 22},
		{Workload: "jack", Size: 1, Collector: "cg+reset", HeapBytes: 1 << 22, GCEvery: 1200},
		{Workload: "mtrt", Size: 1, Collector: "cg", HeapBytes: 1 << 24},
	}
	collect := func(eng *Engine) []core.Stats {
		out := make([]core.Stats, len(jobs))
		errs := make([]error, len(jobs))
		eng.RunEach(jobs, func(i int, r Result) {
			if r.Err != nil {
				errs[i] = r.Err
				return
			}
			out[i] = r.Col.(*core.CG).Stats()
		})
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	eng := New(2)
	fresh := collect(eng)    // pool empty: fresh shards
	recycled := collect(eng) // pool warm: recycled shards
	again := collect(New(2)) // control: a fresh engine
	for i := range jobs {
		if fresh[i] != recycled[i] {
			t.Errorf("job %d: pooled stats %+v != fresh stats %+v", i, recycled[i], fresh[i])
		}
		if fresh[i] != again[i] {
			t.Errorf("job %d: fresh-engine stats differ between engines", i)
		}
	}
}
