package engine

import (
	"testing"

	"repro/internal/core"
)

// TestExecReleaseRecyclesShards checks that back-to-back equal-arena
// cells actually reuse one runtime (the pool is doing something) and
// that a job of a different arena size never receives it.
func TestExecReleaseRecyclesShards(t *testing.T) {
	eng := New(1)
	job := Job{Workload: "javac", Size: 1, Collector: "cg", HeapBytes: 1 << 24}
	var first, second *core.CG
	eng.ExecRelease(job, func(r Result) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		first = r.Col.(*core.CG)
	})
	if got := eng.pool.count; got != 1 {
		t.Fatalf("pool holds %d shards after one release, want 1", got)
	}
	var rt1 = eng.pool.bySize[1<<24][0]
	eng.ExecRelease(job, func(r Result) {
		if r.RT != rt1 {
			t.Fatal("equal-arena cell did not reuse the pooled shard")
		}
		second = r.Col.(*core.CG)
	})
	if first == second {
		t.Fatal("collector instances must be fresh per cell")
	}
	other := job
	other.HeapBytes = 1 << 23
	eng.ExecRelease(other, func(r Result) {
		if r.RT == rt1 {
			t.Fatal("different-arena cell received a mismatched pooled shard")
		}
	})
}

// TestMemoryCapDisablesPooling pins the cap/pool interaction: with
// -max-heap-bytes set, idle shards must not stay resident outside the
// admission budget, so ExecRelease neither fills nor draws from the
// pool.
func TestMemoryCapDisablesPooling(t *testing.T) {
	eng := New(1).SetMaxHeapBytes(1 << 26)
	job := Job{Workload: "javac", Size: 1, Collector: "cg", HeapBytes: 1 << 24}
	eng.ExecRelease(job, func(r Result) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	})
	if got := eng.pool.count; got != 0 {
		t.Fatalf("capped engine pooled %d shards, want 0", got)
	}
}

// TestEnginePooledDeterminism is the Reset-reuse determinism gate: a
// cell computed on a recycled shard must produce byte-for-byte the
// statistics a fresh shard produces. The first RunEach pass fills the
// pool, the second runs entirely on recycled runtimes.
func TestEnginePooledDeterminism(t *testing.T) {
	jobs := []Job{
		{Workload: "jess", Size: 1, Collector: "cg", HeapBytes: 1 << 24},
		{Workload: "raytrace", Size: 1, Collector: "cg+recycle", HeapBytes: 1 << 22},
		{Workload: "jack", Size: 1, Collector: "cg+reset", HeapBytes: 1 << 22, GCEvery: 1200},
		{Workload: "mtrt", Size: 1, Collector: "cg", HeapBytes: 1 << 24},
	}
	collect := func(eng *Engine) []core.Stats {
		out := make([]core.Stats, len(jobs))
		errs := make([]error, len(jobs))
		eng.RunEach(jobs, func(i int, r Result) {
			if r.Err != nil {
				errs[i] = r.Err
				return
			}
			out[i] = r.Col.(*core.CG).Stats()
		})
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	eng := New(2)
	fresh := collect(eng)    // pool empty: fresh shards
	recycled := collect(eng) // pool warm: recycled shards
	again := collect(New(2)) // control: a fresh engine
	for i := range jobs {
		if fresh[i] != recycled[i] {
			t.Errorf("job %d: pooled stats %+v != fresh stats %+v", i, recycled[i], fresh[i])
		}
		if fresh[i] != again[i] {
			t.Errorf("job %d: fresh-engine stats differ between engines", i)
		}
	}
}
