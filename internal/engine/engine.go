// Package engine is the sharded execution engine: a worker-pool job
// scheduler that runs (workload, size, collector) cells of the
// experiment matrix on independent vm.Runtime shards.
//
// Each vm.Runtime owns its heap, threads, statics and collector, and
// every workload analog draws from its own deterministic RNG, so a cell
// shares no mutable state with any other cell — the matrix is
// embarrassingly parallel. The engine exploits that: it fans jobs out
// to a fixed pool of workers and writes each result into the slot of
// its job index, so callers always observe results in submission order
// no matter which worker finished first. Merging is therefore
// deterministic and order-independent by construction: a -workers 32
// run renders byte-identical tables to a -workers 1 run (for the
// demographics experiments; wall-clock measurements naturally vary).
//
// Layering: engine sits between the experiment harness above and the
// runtime/collector substrate below. It resolves workloads from the
// internal/workload registry and collectors from the internal/collectors
// registry, so adding a benchmark or collector variant requires no
// engine change.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/collectors"
	"repro/internal/heap"
	"repro/internal/vm"
	"repro/internal/workload"
)

// DemographicsArena is the big-heap shard configuration used for object
// accounting ("asynchronous GC disabled as well as giving it plenty of
// storage", §4.5): the traditional collector never runs, so every
// object is classified purely by CG.
const DemographicsArena = 512 << 20

// TightHeap, as a Job.HeapBytes value, selects the workload's own tight
// arena budget (workload.Spec.HeapBytes) so the traditional collector
// actually has to work — the §4.5 timing configuration.
const TightHeap = -1

// Job is one cell of the experiment matrix.
type Job struct {
	// Workload names a registered benchmark analog.
	Workload string
	// Size is the SPEC problem size (1, 10 or 100).
	Size int
	// Collector is a collector spec resolved by internal/collectors
	// (e.g. "cg", "msa", "cg+recycle+reset").
	Collector string
	// HeapBytes is the shard's arena budget: a positive byte count,
	// 0 for DemographicsArena, or TightHeap for the workload's own
	// pressure-inducing budget.
	HeapBytes int
	// GCEvery, when non-zero, forces a full collection every GCEvery
	// runtime operations (the §4.7 resetting instrumentation).
	GCEvery uint64
	// Repeats re-runs the cell on fresh shards (minimum 1). Result
	// captures the last shard and the mean wall time per repeat; small
	// cells finish in well under a millisecond, so timing experiments
	// repeat them to keep scheduler jitter out of the comparison.
	Repeats int
}

// Result is the outcome of one Job.
type Result struct {
	// Job echoes the submitted cell.
	Job Job
	// RT is the runtime shard of the last repeat. It is quiescent: no
	// engine goroutine touches it once the job completes.
	RT *vm.Runtime
	// Col is the concrete collector of the last repeat (the event
	// table's Collector field); callers type-assert it (e.g. to
	// *core.CG) to extract statistics. Nil under the "none" table.
	Col any
	// Elapsed is the mean wall time per repeat.
	Elapsed time.Duration
	// Err is non-nil if the spec failed to resolve or the run panicked
	// (workloads panic on hard OOM; the engine converts that to an
	// error so one exhausted shard cannot take down the matrix).
	Err error
}

// ArenaBytes resolves the arena budget a job's shard will allocate: an
// explicit positive HeapBytes, the plenty-of-storage demographics
// default, or the workload's own tight budget. The memory-cap admission
// throttle charges jobs by this value before they run.
func ArenaBytes(job Job) (int, error) {
	switch {
	case job.HeapBytes > 0:
		return job.HeapBytes, nil
	case job.HeapBytes == 0:
		return DemographicsArena, nil
	case job.HeapBytes == TightHeap:
		spec, err := workload.ByName(job.Workload)
		if err != nil {
			return 0, err
		}
		return spec.HeapBytes(job.Size), nil
	default:
		return 0, fmt.Errorf("engine: bad heap budget %d", job.HeapBytes)
	}
}

// Exec runs one job synchronously in the caller's goroutine. It is the
// unit of work Engine.Run distributes; callers with their own
// per-benchmark control flow (probe runs, budget retry loops) may call
// it directly. Package-level Exec ignores any engine memory cap; use
// Engine.Exec for throttled admission.
func Exec(job Job) Result { return exec(job, nil) }

// exec is the shared job body. With a non-nil pool it starts from a
// Reset pooled shard of the right arena size when one is available; it
// never returns shards to the pool itself — the caller does, once the
// Result can no longer escape (see ExecRelease).
func exec(job Job, pool *shardPool) (res Result) {
	res.Job = job
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("engine: %s/%d under %s panicked: %v",
				job.Workload, job.Size, job.Collector, r)
		}
	}()

	spec, err := workload.ByName(job.Workload)
	if err != nil {
		res.Err = err
		return res
	}
	factory, err := collectors.Parse(job.Collector)
	if err != nil {
		res.Err = err
		return res
	}
	bytes, err := ArenaBytes(job)
	if err != nil {
		res.Err = err
		return res
	}
	reps := job.Repeats
	if reps < 1 {
		reps = 1
	}

	var rt *vm.Runtime
	if pool != nil {
		rt = pool.get(bytes)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		// The forced-collection instrumentation is a declarative field
		// of the event table: decorating the descriptor replaces the
		// old post-construction SetGCEvery call.
		ev := factory()
		ev.GCEvery = job.GCEvery
		if rt == nil {
			rt = vm.New(heap.New(bytes), ev)
		} else {
			rt.Reset(ev)
		}
		spec.Run(rt, job.Size)
		res.RT, res.Col = rt, ev.Collector
	}
	res.Elapsed = time.Since(start) / time.Duration(reps)
	return res
}

// Engine is a fixed-size worker pool with an optional aggregate memory
// cap and a shard pool that recycles runtimes between cells of equal
// arena size. The zero value is not usable; construct with New. An
// Engine holds no per-run state beyond the shard pool and is safe for
// concurrent use.
type Engine struct {
	workers int
	budget  *heapBudget // nil when uncapped
	pool    *shardPool
}

// New returns an engine with the given worker count; workers <= 0
// selects GOMAXPROCS (saturate the hardware).
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, pool: newShardPool(workers)}
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// SetMaxHeapBytes caps the aggregate arena bytes of concurrently
// admitted jobs (n <= 0 removes the cap) and returns e for chaining.
// Every job path that knows its arena budget — Exec, Run, RunEach,
// Stream — blocks admission while running jobs hold cap-exceeding
// budgets, so -workers 16 of 512 MiB demographics arenas cannot thrash
// an 8 GiB machine. A single job larger than the cap is admitted alone
// rather than deadlocking: the cap throttles aggregate pressure, it is
// not a per-job limit. Set before submitting work; the cap does not
// apply to the generic Do, which has no job to charge.
func (e *Engine) SetMaxHeapBytes(n int64) *Engine {
	if n <= 0 {
		e.budget = nil
	} else {
		e.budget = newHeapBudget(n)
	}
	return e
}

// MaxHeapBytes reports the aggregate cap (0 = uncapped).
func (e *Engine) MaxHeapBytes() int64 {
	if e.budget == nil {
		return 0
	}
	return e.budget.max
}

// Exec runs one job in the caller's goroutine, first acquiring the
// job's arena budget from the engine's memory cap (blocking while
// admission would push aggregate arena bytes over the cap). This is the
// admission-controlled entry the distribution worker uses for jobs that
// arrive one at a time rather than as a batch.
func (e *Engine) Exec(job Job) Result {
	if e.budget == nil {
		return Exec(job)
	}
	bytes, err := ArenaBytes(job)
	if err != nil {
		return Result{Job: job, Err: err}
	}
	e.budget.acquire(int64(bytes))
	defer e.budget.release(int64(bytes))
	return Exec(job)
}

// ExecRelease runs one job with admission control, hands the result to
// consume, and then recycles the job's runtime shard into the engine's
// pool — so a sweep of equal-arena cells stops paying per-cell heap and
// runtime construction. The Result, its RT and its Col are only valid
// until consume returns: extract what the merge needs, drop the rest.
// A shard that panicked mid-run is discarded, never recycled.
func (e *Engine) ExecRelease(job Job, consume func(Result)) {
	var bytes int
	if e.budget != nil || e.pool != nil {
		var err error
		if bytes, err = ArenaBytes(job); err != nil {
			consume(Result{Job: job, Err: err})
			return
		}
	}
	if e.budget != nil {
		e.budget.acquire(int64(bytes))
		defer e.budget.release(int64(bytes))
	}
	// Pooling is disabled under a memory cap: a pooled idle shard keeps
	// its whole arena and handle table resident while its budget bytes
	// have been released back to admission, which would let resident
	// memory exceed the cap by workers x arena. The cap buys memory
	// honesty at the price of per-cell construction.
	pool := e.pool
	if e.budget != nil {
		pool = nil
	}
	r := exec(job, pool)
	consume(r)
	if r.Err == nil && r.RT != nil && pool != nil {
		pool.put(bytes, r.RT)
	}
}

// Do runs fn(i) for every i in [0, n) on the pool and returns when all
// calls have completed. Each fn call must confine its writes to state
// owned by shard i (typically a per-index result slot); distinct
// indices never alias, which is what makes merges order-independent.
func (e *Engine) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Run executes jobs concurrently and returns their results in
// submission order: results[i] is the outcome of jobs[i] regardless of
// completion order. Every Result retains its shard's full runtime until
// the caller drops it, so the peak footprint is all cells at once; for
// matrices of big-heap shards prefer RunEach and extract only what the
// merge needs.
func (e *Engine) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	e.Do(len(jobs), func(i int) {
		results[i] = e.Exec(jobs[i])
	})
	return results
}

// RunEach executes jobs concurrently, invoking consume(i, result) on
// the worker's goroutine as cell i completes, and retains nothing: once
// consume returns, the shard's runtime is recycled into the engine's
// pool for the next cell of the same arena size (so consume must not
// let the Result's RT or Col escape). Peak memory is bounded by the
// worker count instead of the matrix size — the sequential-loop
// footprint at -workers 1. Like Do's fn, consume must confine its
// writes to state owned by index i.
func (e *Engine) RunEach(jobs []Job, consume func(i int, r Result)) {
	e.Do(len(jobs), func(i int) {
		e.ExecRelease(jobs[i], func(r Result) { consume(i, r) })
	})
}
