// Package engine is the sharded execution engine: a worker-pool job
// scheduler that runs (workload, size, collector) cells of the
// experiment matrix on independent vm.Runtime shards.
//
// Each vm.Runtime owns its heap, threads, statics and collector, and
// every workload analog draws from its own deterministic RNG, so a cell
// shares no mutable state with any other cell — the matrix is
// embarrassingly parallel. The engine exploits that: it fans jobs out
// to a fixed pool of workers and writes each result into the slot of
// its job index, so callers always observe results in submission order
// no matter which worker finished first. Merging is therefore
// deterministic and order-independent by construction: a -workers 32
// run renders byte-identical tables to a -workers 1 run (for the
// demographics experiments; wall-clock measurements naturally vary).
//
// Layering: engine sits between the experiment harness above and the
// runtime/collector substrate below. It resolves workloads from the
// internal/workload registry and collectors from the internal/collectors
// registry, so adding a benchmark or collector variant requires no
// engine change.
package engine

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/collectors"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/tape"
	"repro/internal/vm"
	"repro/internal/workload"
)

// DemographicsArena is the big-heap shard configuration used for object
// accounting ("asynchronous GC disabled as well as giving it plenty of
// storage", §4.5): the traditional collector never runs, so every
// object is classified purely by CG.
const DemographicsArena = 512 << 20

// TightHeap, as a Job.HeapBytes value, selects the workload's own tight
// arena budget (workload.Spec.HeapBytes) so the traditional collector
// actually has to work — the §4.5 timing configuration.
const TightHeap = -1

// Job is one cell of the experiment matrix.
type Job struct {
	// Workload names a registered benchmark analog.
	Workload string
	// Size is the SPEC problem size (1, 10 or 100).
	Size int
	// Collector is a collector spec resolved by internal/collectors
	// (e.g. "cg", "msa", "cg+recycle+reset").
	Collector string
	// HeapBytes is the shard's arena budget: a positive byte count,
	// 0 for DemographicsArena, or TightHeap for the workload's own
	// pressure-inducing budget.
	HeapBytes int
	// GCEvery, when non-zero, forces a full collection every GCEvery
	// runtime operations (the §4.7 resetting instrumentation).
	GCEvery uint64
	// Repeats re-runs the cell on fresh shards (minimum 1). Result
	// captures the last shard and the mean wall time per repeat; small
	// cells finish in well under a millisecond, so timing experiments
	// repeat them to keep scheduler jitter out of the comparison.
	Repeats int
	// Client tags the job with the sweep-server client it was admitted
	// for, feeding the per-client fairness lanes on /progress. It is
	// scheduling metadata, never cell identity: excluded from the
	// results key and from every serialised form, so a tagged cell
	// stores and streams byte-identically to an untagged one.
	Client string `json:"-"`
}

// Result is the outcome of one Job.
type Result struct {
	// Job echoes the submitted cell.
	Job Job
	// RT is the runtime shard of the last repeat. It is quiescent: no
	// engine goroutine touches it once the job completes.
	RT *vm.Runtime
	// Col is the concrete collector of the last repeat (the event
	// table's Collector field); callers type-assert it (e.g. to
	// *core.CG) to extract statistics. Nil under the "none" table.
	Col any
	// Elapsed is the mean wall time per repeat.
	Elapsed time.Duration
	// Err is non-nil if the spec failed to resolve or the run panicked
	// (workloads panic on hard OOM; the engine converts that to an
	// error so one exhausted shard cannot take down the matrix).
	Err error
}

// ArenaBytes resolves the arena budget a job's shard will allocate: an
// explicit positive HeapBytes, the plenty-of-storage demographics
// default, or the workload's own tight budget. The memory-cap admission
// throttle charges jobs by this value before they run.
func ArenaBytes(job Job) (int, error) {
	switch {
	case job.HeapBytes > 0:
		return job.HeapBytes, nil
	case job.HeapBytes == 0:
		return DemographicsArena, nil
	case job.HeapBytes == TightHeap:
		spec, err := workload.ByName(job.Workload)
		if err != nil {
			return 0, err
		}
		return spec.HeapBytes(job.Size), nil
	default:
		return 0, fmt.Errorf("engine: bad heap budget %d", job.HeapBytes)
	}
}

// Exec runs one job synchronously in the caller's goroutine. It is the
// unit of work Engine.Run distributes; callers with their own
// per-benchmark control flow (probe runs, budget retry loops) may call
// it directly. Package-level Exec ignores any engine memory cap, trace
// configuration and tape cache; use Engine.Exec for throttled,
// configured admission.
func Exec(job Job) Result { return exec(job, nil, nil, nil, nil) }

// traceConfigurer is what a collector must implement for the engine to
// hand it the per-engine trace configuration; *msa.System does.
type traceConfigurer interface {
	SetTraceConfig(msa.TraceConfig)
}

// exec is the shared job body. With a non-nil rt it starts from that
// Reset pooled shard (whose arena size must match the job's budget); it
// never returns shards to the pool itself — the caller does, once the
// Result can no longer escape (see ExecRelease). A non-nil trace is
// applied to collectors that accept one before the shard attaches.
//
// A non-nil tc consults the event-tape cache: a hit replays the row's
// recorded operation stream through the runtime instead of re-running
// driver logic (bit-identical results, no driver overhead); a miss may
// claim the row's recording slot and capture the tape as a side effect
// of the first repeat. p counts those outcomes on the debug surface.
func exec(job Job, rt *vm.Runtime, trace *msa.TraceConfig, tc *tapeCache, p *obs.Progress) (res Result) {
	res.Job = job
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("engine: %s/%d under %s panicked: %v",
				job.Workload, job.Size, job.Collector, r)
		}
	}()

	spec, err := workload.ByName(job.Workload)
	if err != nil {
		res.Err = err
		return res
	}
	factory, err := collectors.Parse(job.Collector)
	if err != nil {
		res.Err = err
		return res
	}
	bytes, err := ArenaBytes(job)
	if err != nil {
		res.Err = err
		return res
	}
	reps := job.Repeats
	if reps < 1 {
		reps = 1
	}

	key := tapeKey{workload: job.Workload, size: job.Size}
	var rp *tape.Replayer
	recording := false
	if tc != nil {
		if t, ok := tc.lookup(key); ok {
			rp = tape.NewReplayer(t)
		} else if tc.beginRecord(key) {
			recording = true
			// The claim must not leak if this run dies before publish
			// (workload panic, OOM): the recover above eats the panic,
			// so release here, where publish has already flipped the
			// flag on the success path.
			defer func() {
				if recording {
					tc.abortRecord(key)
				}
			}()
		}
	}

	start := time.Now()
	for i := 0; i < reps; i++ {
		// The forced-collection instrumentation is a declarative field
		// of the event table: decorating the descriptor replaces the
		// old post-construction SetGCEvery call.
		ev := factory()
		ev.GCEvery = job.GCEvery
		if trace != nil {
			if c, ok := ev.Collector.(traceConfigurer); ok {
				c.SetTraceConfig(*trace)
			}
		}
		if rt == nil {
			rt = vm.New(heap.New(bytes), ev)
		} else {
			rt.Reset(ev)
		}
		if rp != nil {
			if err := rp.Run(rt); err != nil {
				res.Err = err
				return res
			}
			p.TapeReplayed()
		} else {
			var rec *tape.Recorder
			if recording && i == 0 {
				rec = tape.NewRecorder(rt, tape.Meta{
					Workload:  job.Workload,
					Size:      job.Size,
					Threads:   spec.Threads(job.Size),
					HeapBytes: spec.HeapBytes(job.Size),
				})
			}
			spec.Run(rt, job.Size)
			if rec != nil {
				// The run completed without error, so the tape is a
				// full recording: publish now and replay the remaining
				// repeats from it — they share the one tape.
				t := rec.Finish()
				tc.publish(key, t)
				recording = false
				p.TapeRecorded()
				if i+1 < reps {
					rp = tape.NewReplayer(t)
				}
			}
		}
		// An overlapped cycle may still be tracing when the workload
		// returns; finish it so extraction reads quiescent state.
		rt.Quiesce()
		res.RT, res.Col = rt, ev.Collector
	}
	res.Elapsed = time.Since(start) / time.Duration(reps)
	return res
}

// Engine is a fixed-size worker pool with an optional aggregate memory
// cap and a shard pool that recycles runtimes between cells of equal
// arena size. The zero value is not usable; construct with New. An
// Engine holds no per-run state beyond the shard pool and is safe for
// concurrent use.
type Engine struct {
	workers  int
	trace    msa.TraceConfig // per-engine collector trace settings
	reserve  *heap.Reserve   // nil when uncapped
	pool     *shardPool
	tapes    *tapeCache    // nil when the tape cache is disabled
	progress *obs.Progress // nil unless a debug surface is watching
}

// occupancyOnce gates the one-time saturation notice New prints when
// sweep workers already cover every CPU.
var occupancyOnce sync.Once

// New returns an engine with the given worker count; workers <= 0
// selects GOMAXPROCS (saturate the hardware). When the chosen worker
// count saturates GOMAXPROCS, the engine's trace configuration marks
// occupancy as saturated so msa-style collectors stop defaulting to
// parallel tracing inside each shard — every CPU is already running a
// sweep worker, so intra-shard trace goroutines would only contend —
// and New logs the downgrade once. An explicit -trace-workers setting
// (SetTrace with Workers > 0) still wins. The saturation decision is
// per-engine state, not the deprecated process global: two engines
// with different worker counts in one process get independent
// defaults.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, pool: newShardPool(workers), tapes: newTapeCache()}
	if workers >= runtime.GOMAXPROCS(0) {
		e.trace.OccupancySaturated = true
		occupancyOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "engine: %d sweep workers saturate GOMAXPROCS=%d; msa trace-workers default to 1 per shard\n",
				workers, runtime.GOMAXPROCS(0))
		})
	}
	return e
}

// Workers reports the pool size.
func (e *Engine) Workers() int { return e.workers }

// SetTrace sets the trace configuration handed to every collector this
// engine constructs (workers, min-live gate, overlapped collection)
// and returns e for chaining. The engine's own occupancy-saturation
// decision from New is preserved unless cfg asserts its own.
func (e *Engine) SetTrace(cfg msa.TraceConfig) *Engine {
	cfg.OccupancySaturated = cfg.OccupancySaturated || e.trace.OccupancySaturated
	e.trace = cfg
	return e
}

// Trace reports the engine's current trace configuration.
func (e *Engine) Trace() msa.TraceConfig { return e.trace }

// SetProgress attaches live per-worker utilization reporting (nil
// detaches it) and returns e for chaining. Updates happen only at job
// boundaries inside Do, so an attached Progress costs nothing on any
// per-event or per-cycle path.
func (e *Engine) SetProgress(p *obs.Progress) *Engine {
	e.progress = p
	return e
}

// SetMaxHeapBytes caps the aggregate arena bytes of concurrently
// resident shards (n <= 0 removes the cap) and returns e for chaining.
// The cap is an exact admission check against a process-wide byte
// reserve: every shard's full arena is acquired from the reserve before
// its job runs, and a shard — running or pooled — keeps its reservation
// until it is dropped. Resident arena bytes therefore never exceed the
// cap, pooled idle shards included; under pressure the reserve evicts
// pooled shards (largest arena first) before blocking admission. A
// single job larger than the cap is admitted alone rather than
// deadlocking: the cap throttles aggregate pressure, it is not a
// per-job limit. Set before submitting work (changing the cap drains
// the shard pool, since pooled shards carry the old regime's
// reservations); the cap does not apply to the generic Do, which has no
// job to charge.
func (e *Engine) SetMaxHeapBytes(n int64) *Engine {
	e.pool.drain()
	if n <= 0 {
		e.reserve = nil
		if e.tapes != nil {
			e.tapes.setReserve(nil)
		}
		return e
	}
	r := heap.NewReserve(n)
	pool := e.pool
	r.SetEvict(func() bool {
		if bytes, ok := pool.evictOne(); ok {
			r.Release(int64(bytes))
			return true
		}
		return false
	})
	e.reserve = r
	if e.tapes != nil {
		// Cached tapes carry charges against the old regime's reserve;
		// rebinding clears them.
		e.tapes.setReserve(r)
	}
	return e
}

// MaxHeapBytes reports the aggregate cap (0 = uncapped).
func (e *Engine) MaxHeapBytes() int64 {
	if e.reserve == nil {
		return 0
	}
	return e.reserve.Max()
}

// ReservedBytes reports the arena bytes currently drawn from the cap's
// reserve by running and pooled shards (0 when uncapped).
func (e *Engine) ReservedBytes() int64 {
	if e.reserve == nil {
		return 0
	}
	return e.reserve.Reserved()
}

// Exec runs one job in the caller's goroutine, first acquiring the
// job's arena bytes from the engine's reserve (blocking, after evicting
// pooled shards, while admission would push aggregate arena bytes over
// the cap). This is the admission-controlled entry the distribution
// worker uses for jobs that arrive one at a time rather than as a
// batch.
func (e *Engine) Exec(job Job) Result {
	reserve := e.reserve
	if reserve == nil {
		r := exec(job, nil, &e.trace, e.tapes, e.progress)
		e.laneDone(job)
		return r
	}
	bytes, err := ArenaBytes(job)
	if err != nil {
		return Result{Job: job, Err: err}
	}
	reserve.Acquire(int64(bytes))
	defer reserve.Release(int64(bytes))
	r := exec(job, nil, &e.trace, e.tapes, e.progress)
	e.laneDone(job)
	return r
}

// laneDone credits a completed execution to the job's client lane (a
// no-op for untagged jobs and unobserved engines) — the engine-side
// half of the sweep server's fairness accounting: lanes count what the
// engine actually executed per client, not what was merely requested.
func (e *Engine) laneDone(job Job) {
	if job.Client != "" {
		e.progress.LaneComputed(job.Client)
	}
}

// ExecRelease runs one job with admission control, hands the result to
// consume, and then recycles the job's runtime shard into the engine's
// pool — so a sweep of equal-arena cells stops paying per-cell heap and
// runtime construction. The Result, its RT and its Col are only valid
// until consume returns: extract what the merge needs, drop the rest.
// A shard that panicked mid-run is discarded, never recycled.
//
// Under a memory cap, reservations travel with shards: a fresh shard
// acquires its arena bytes before construction, a pooled shard arrives
// already holding them, and whichever shard is retained in the pool
// afterwards keeps them (the reserve's evict hook reclaims pooled
// reservations when admission stalls). Dropped shards release theirs
// immediately.
func (e *Engine) ExecRelease(job Job, consume func(Result)) {
	bytes, err := ArenaBytes(job)
	if err != nil {
		consume(Result{Job: job, Err: err})
		return
	}
	reserve := e.reserve
	rt := e.pool.get(bytes)
	if rt == nil && reserve != nil {
		reserve.Acquire(int64(bytes))
	}
	r := exec(job, rt, &e.trace, e.tapes, e.progress)
	e.laneDone(job)
	consume(r)
	if r.Err == nil && r.RT != nil && e.pool.put(bytes, r.RT) {
		return // the pooled shard keeps its reservation
	}
	if reserve != nil {
		reserve.Release(int64(bytes))
	}
}

// Do runs fn(i) for every i in [0, n) on the pool and returns when all
// calls have completed. Each fn call must confine its writes to state
// owned by shard i (typically a per-index result slot); distinct
// indices never alias, which is what makes merges order-independent.
func (e *Engine) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	p := e.progress
	p.EnsureWorkers(workers)
	if workers == 1 {
		for i := 0; i < n; i++ {
			p.SetWorkerBusy(0, 1)
			fn(i)
			p.SetWorkerBusy(0, 0)
			p.AddWorkerDone(0)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				p.SetWorkerBusy(w, 1)
				fn(i)
				p.SetWorkerBusy(w, 0)
				p.AddWorkerDone(w)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Run executes jobs concurrently and returns their results in
// submission order: results[i] is the outcome of jobs[i] regardless of
// completion order. Every Result retains its shard's full runtime until
// the caller drops it, so the peak footprint is all cells at once; for
// matrices of big-heap shards prefer RunEach and extract only what the
// merge needs.
func (e *Engine) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	e.Do(len(jobs), func(i int) {
		results[i] = e.Exec(jobs[i])
	})
	return results
}

// RunEach executes jobs concurrently, invoking consume(i, result) on
// the worker's goroutine as cell i completes, and retains nothing: once
// consume returns, the shard's runtime is recycled into the engine's
// pool for the next cell of the same arena size (so consume must not
// let the Result's RT or Col escape). Peak memory is bounded by the
// worker count instead of the matrix size — the sequential-loop
// footprint at -workers 1. Like Do's fn, consume must confine its
// writes to state owned by index i.
func (e *Engine) RunEach(jobs []Job, consume func(i int, r Result)) {
	e.Do(len(jobs), func(i int) {
		e.ExecRelease(jobs[i], func(r Result) { consume(i, r) })
	})
}
