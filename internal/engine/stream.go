package engine

// Stream executes jobs concurrently and delivers their results on the
// returned channel in submission order: the i-th receive is the outcome
// of jobs[i] no matter which worker finished first. Rows of a long
// sweep can therefore render as the completed prefix grows instead of
// after the whole matrix barriers — the channel-based variant of Run.
//
// The channel is closed after the last result. Workers never block on a
// slow consumer (completions buffer internally), so the caller may
// receive at any pace; the flip side is that an out-of-order completed
// shard is pinned until the prefix before it drains. For big-heap
// matrices where that footprint matters, extract-and-drop with RunEach
// instead (the results package's Local backend does exactly that).
func (e *Engine) Stream(jobs []Job) <-chan Result {
	out := make(chan Result)
	type finished struct {
		i int
		r Result
	}
	// Buffered to the matrix size: a worker's send never blocks, so a
	// stalled consumer cannot wedge the pool (or, transitively, a dist
	// coordinator draining this stream).
	// Results escape to the consumer for an unbounded time, so Stream
	// runs cells unpooled (Engine.Exec): a streamed Result.RT is never
	// recycled out from under the receiver.
	fin := make(chan finished, len(jobs))
	go func() {
		e.Do(len(jobs), func(i int) { fin <- finished{i, e.Exec(jobs[i])} })
		close(fin)
	}()
	go func() {
		defer close(out)
		pending := make(map[int]Result)
		next := 0
		for f := range fin {
			pending[f.i] = f.r
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				out <- r
				next++
			}
		}
	}()
	return out
}
