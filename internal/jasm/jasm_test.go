package jasm

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/vm"
)

func runUnderCG(t *testing.T, src string) (*core.CG, *vm.Runtime, heap.HandleID) {
	t.Helper()
	prog, err := AssembleSource(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cg := core.New(core.Config{StaticOpt: true, Checked: true})
	rt := vm.New(heap.New(1<<20), cg)
	ret, err := prog.Bind(rt).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cg, rt, ret
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("new Node ; comment\nstore 3\nintern Str \"a b\\n\"")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{TokIdent, TokIdent, TokNewline, TokIdent, TokInt, TokNewline,
		TokIdent, TokIdent, TokStr, TokNewline, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("token stream %v", toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v (%v)", i, kinds[i], want[i], toks)
		}
	}
	if toks[8].Text != "a b\n" {
		t.Fatalf("string literal = %q", toks[8].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "ok\n\"also\nbad\"", "what?"} {
		if _, err := Lex(src); err == nil {
			t.Fatalf("Lex(%q) succeeded", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing end":     "method main\nnew X",
		"unknown instr":   "method main\nfrobnicate\nend",
		"unknown decl":    "wibble",
		"class attr":      "class C wobble",
		"label dup":       "method main\nL:\nL:\nend",
		"trailing tokens": "method main locals 1\nload 0 0\nend",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseSource(src); err == nil {
				// label dup is caught at assembly, not parse
				if _, err2 := AssembleSource(src); err2 == nil {
					t.Fatalf("accepted bad source %q", src)
				}
			}
		})
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          "class C\nmethod helper\nend",
		"undefined class":  "method main\nnew Missing\npop\nend",
		"undefined method": "method main\ncall nope 0\nend",
		"undefined label":  "method main\ngoto nowhere\nend",
		"bad local":        "method main locals 1\nload 3\nend",
		"new on array":     "class A array\nmethod main\nnew A\npop\nend",
		"newarray plain":   "class C\nmethod main\nnewarray C 3\npop\nend",
		"dup class":        "class C\nclass C\nmethod main\nend",
		"dup method":       "method main\nend\nmethod main\nend",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := AssembleSource(src); err == nil {
				t.Fatalf("assembled bad source %q", src)
			}
		})
	}
}

// TestWorkedExampleInJasm encodes the Figure 2.1/2.2 program in assembly
// and checks the final CG classification: E is static and, because
// contamination cannot be undone, A-D are static too.
func TestWorkedExampleInJasm(t *testing.T) {
	src := `
class Object refs 2 data 8
static E

; frame 1 holds C, frame 2 B, frame 3 A, frame 4 D; frame 5 executes
; the mutation sequence of Figure 2.2.
method main locals 1
  new Object        ; C
  store 0
  load 0
  call f2 1
  ret
end

method f2 locals 2   ; local 0 = C
  new Object        ; B
  store 1
  load 0
  load 1
  call f3 2
  ret
end

method f3 locals 3   ; locals: C B
  new Object        ; A
  store 2
  load 0
  load 1
  load 2
  call f4 3
  ret
end

method f4 locals 4   ; locals: C B A
  new Object        ; D
  store 3
  load 0
  load 1
  load 2
  load 3
  call f5 4
  ret
end

method f5 locals 5   ; locals: C B A D
  new Object        ; E
  store 4
  load 4
  putstatic E
  load 1            ; (1) B.f = A
  load 2
  putfield 0
  load 0            ; (2) C.f = B
  load 1
  putfield 0
  load 3            ; (3) D.f = C
  load 0
  putfield 0
  load 4            ; (4) E.f = D
  load 3
  putfield 0
  load 4            ; (5) E.f = null
  null
  putfield 0
  ret
end
`
	cg, _, _ := runUnderCG(t, src)
	b := cg.Snapshot()
	if b.Created != 5 {
		t.Fatalf("created %d objects, want 5", b.Created)
	}
	// All five end up static: contamination cannot be undone (§2.1).
	if b.Static != 5 || b.Popped != 0 {
		t.Fatalf("breakdown %+v, want all static", b)
	}
}

// TestFrameLocalGarbageIsCollected: per-call temporaries die when their
// frame pops, visible through CG's popped counter.
func TestFrameLocalGarbageIsCollected(t *testing.T) {
	src := `
class Node refs 1 data 8
static keep

method main locals 1
  call work 0
  putstatic keep    ; the returned node survives the whole program
  ret
end

method work locals 2
  new Node          ; temp, dies when this frame pops
  store 0
  new Node          ; returned, promoted to main's frame
  store 1
  load 1
  areturn
end
`
	cg, rt, _ := runUnderCG(t, src)
	st := cg.Stats()
	if st.Created != 2 || st.Popped != 1 {
		t.Fatalf("stats %+v, want 1 of 2 popped", st)
	}
	kept := rt.Statics()[rt.StaticSlot("keep")]
	if kept == heap.Nil || !rt.Heap.Live(kept) {
		t.Fatal("areturn value lost")
	}
}

// TestControlFlow: a loop that builds a linked list of n nodes using
// labels and conditional branches.
func TestControlFlow(t *testing.T) {
	src := `
class Node refs 1 data 8
static head

method main locals 1
  call mkchain 0    ; a 3-node counter chain
  store 0
  load 0
  call build 1      ; one list node per chain link
  putstatic head
  ret
end

method mkchain locals 2
  new Node
  store 0
  new Node
  dup
  load 0
  putfield 0
  store 1
  new Node
  dup
  load 1
  putfield 0
  areturn
end

method build locals 3  ; local 0 = counter chain
  null
  store 1              ; list = null
  load 0
  store 2              ; cur = chain
loop:
  load 2
  ifnull done
  new Node
  dup
  load 1
  putfield 0           ; node.next = list
  store 1              ; list = node
  load 2
  getfield 0
  store 2              ; cur = cur.next
  goto loop
done:
  load 1
  areturn
end
`
	_, rt, _ := runUnderCG(t, src)
	h := rt.Statics()[rt.StaticSlot("head")]
	if h == heap.Nil {
		t.Fatal("head not set")
	}
	n := 0
	for cur := h; cur != heap.Nil && n <= 10; cur = rt.Heap.GetRef(cur, 0) {
		n++
	}
	if n != 3 {
		t.Fatalf("list length %d, want 3 (one per chain link)", n)
	}
}

// TestInternCanonical: intern returns the same object for equal content
// and pins it static.
func TestInternCanonical(t *testing.T) {
	src := `
class Str data 16
static a
static b

method main
  intern Str "hello"
  putstatic a
  intern Str "hello"
  putstatic b
  ret
end
`
	cg, rt, _ := runUnderCG(t, src)
	sa := rt.Statics()[rt.StaticSlot("a")]
	sb := rt.Statics()[rt.StaticSlot("b")]
	if sa == heap.Nil || sa != sb {
		t.Fatalf("intern not canonical: %d vs %d", sa, sb)
	}
	if cg.DependentFrame(sa).ID != 0 {
		t.Fatal("interned object not static")
	}
}

// TestStepBudget: runaway loops are caught, not spun forever.
func TestStepBudget(t *testing.T) {
	src := `
method main
  loop:
  goto loop
end
`
	prog, err := AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	rt := vm.New(heap.New(1<<16), core.New(core.DefaultConfig()))
	ex := prog.Bind(rt)
	ex.MaxSteps = 1000
	if _, err := ex.Run(); err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("expected step-budget error, got %v", err)
	}
}

// TestRuntimeErrors: null dereference and stack underflow are reported
// with line numbers, not panics.
func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"null putfield": "class C refs 1\nmethod main\nnull\nnull\nputfield 0\nend",
		"underflow":     "method main\npop\nend",
		"null getfield": "class C refs 1\nmethod main\nnull\ngetfield 0\npop\nend",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			prog, err := AssembleSource(src)
			if err != nil {
				t.Fatal(err)
			}
			rt := vm.New(heap.New(1<<16), core.New(core.DefaultConfig()))
			if _, err := prog.Bind(rt).Run(); err == nil {
				t.Fatal("expected a runtime error")
			}
		})
	}
}

// TestDisassembleRoundTrip: disassembly of an assembled program parses
// mnemonics consistently (spot checks).
func TestDisassembleRoundTrip(t *testing.T) {
	src := `
class Node refs 2 data 8
class Node[] array
static s

method main locals 2
  newarray Node[] 4
  store 0
  new Node
  store 1
  load 0
  load 1
  putfield 2
  load 1
  putstatic s
  call aux 0
  pop
  ret
end

method aux
  intern Node "x"
  areturn
end
`
	prog, err := AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	for _, want := range []string{
		"method main locals 2", "newarray Node[] 4", "putfield 2",
		"putstatic s", "call aux 0", `intern Node "x"`, "areturn",
	} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

// TestArgumentsBecomeLocals: the calling convention loads arguments into
// the callee's low locals.
func TestArgumentsBecomeLocals(t *testing.T) {
	src := `
class Node refs 1 data 8
static out

method main locals 2
  new Node
  store 0
  new Node
  store 1
  load 0
  load 1
  call pair 2
  putstatic out
  ret
end

method pair locals 2   ; a b -> a.f = b; return a
  load 0
  load 1
  putfield 0
  load 0
  areturn
end
`
	_, rt, _ := runUnderCG(t, src)
	out := rt.Statics()[rt.StaticSlot("out")]
	if out == heap.Nil {
		t.Fatal("no result")
	}
	if rt.Heap.GetRef(out, 0) == heap.Nil {
		t.Fatal("callee did not see both arguments")
	}
}
