package jasm

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode.
type Op int

// The instruction set: the §3.1.3 vocabulary plus the stack/locals
// plumbing and structured control flow a usable assembly needs.
const (
	OpNew       Op = iota // new <class>            push fresh object
	OpNewArray            // newarray <class> <n>   push fresh array of n refs
	OpLoad                // load <i>               push locals[i]
	OpStore               // store <i>              locals[i] = pop
	OpDup                 // dup                    duplicate top of stack
	OpPop                 // pop                    discard top of stack
	OpNull                // null                   push the null reference
	OpPutField            // putfield <slot>        v=pop, o=pop, o.slot=v
	OpGetField            // getfield <slot>        o=pop, push o.slot
	OpPutStatic           // putstatic <name>       static <name> = pop
	OpGetStatic           // getstatic <name>       push static <name>
	OpIntern              // intern <class> "s"     push canonical object for s
	OpCall                // call <method> <nargs>  pop args, invoke, push result if any
	OpARet                // areturn                return pop to the caller
	OpRet                 // ret                    return void
	OpGoto                // goto <label>
	OpIfNull              // ifnull <label>         branch if pop == null
	OpIfNonNull           // ifnonnull <label>      branch if pop != null
	OpLoopDec             // internal: decrement loop counter, branch if > 0
)

var opNames = map[Op]string{
	OpNew: "new", OpNewArray: "newarray", OpLoad: "load", OpStore: "store",
	OpDup: "dup", OpPop: "pop", OpNull: "null", OpPutField: "putfield",
	OpGetField: "getfield", OpPutStatic: "putstatic", OpGetStatic: "getstatic",
	OpIntern: "intern", OpCall: "call", OpARet: "areturn", OpRet: "ret",
	OpGoto: "goto", OpIfNull: "ifnull", OpIfNonNull: "ifnonnull",
}

// Instr is one assembled instruction. Meaning of A/B/S depends on Op:
// class indexes, local slots, static slots, call targets, branch PCs.
type Instr struct {
	Op   Op
	A, B int
	S    string
	Line int
}

func (in Instr) String() string {
	name := opNames[in.Op]
	switch in.Op {
	case OpNew:
		return fmt.Sprintf("%s %s", name, in.S)
	case OpNewArray:
		return fmt.Sprintf("%s %s %d", name, in.S, in.B)
	case OpLoad, OpStore, OpPutField, OpGetField:
		return fmt.Sprintf("%s %d", name, in.A)
	case OpPutStatic, OpGetStatic:
		return fmt.Sprintf("%s %s", name, in.S)
	case OpIntern:
		cls, content, _ := strings.Cut(in.S, "\x00")
		return fmt.Sprintf("%s %s %q", name, cls, content)
	case OpCall:
		return fmt.Sprintf("%s %s %d", name, in.S, in.B)
	case OpGoto, OpIfNull, OpIfNonNull:
		return fmt.Sprintf("%s @%d", name, in.A)
	default:
		return name
	}
}

// ClassDecl is a `class` directive.
type ClassDecl struct {
	Name    string
	Refs    int
	Data    int
	IsArray bool
	Line    int
}

// MethodDecl is a `method ... end` block before label resolution.
type MethodDecl struct {
	Name   string
	Locals int
	Body   []rawInstr
	Line   int
}

// rawInstr is a parsed-but-unresolved instruction (labels and class
// names still symbolic).
type rawInstr struct {
	op    Op
	num   int // numeric operand (slot, local, array length, argc)
	num2  int
	name  string // class / static / method / label name
	str   string // string literal (intern)
	label string // branch target
	line  int
}

// Unit is a parsed source file.
type Unit struct {
	Classes []ClassDecl
	Statics []string
	Methods []MethodDecl
}
