// Package jasm implements a small textual assembly language for the
// runtime in internal/vm, covering exactly the instruction vocabulary
// the contaminated collector instruments (§3.1.3): object creation,
// putfield/getfield, putstatic/getstatic, areturn, method call/return,
// interning and thread-share triggers. Programs can therefore be written
// as .jasm files and executed under any collector — the cmd/cgrun tool
// and the examples/interp example do exactly that.
//
// The pipeline is conventional: Lex -> Parse -> Assemble (resolve names
// and labels) -> Run (a stack-machine interpreter driving vm.Thread).
package jasm

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokIdent   TokKind = iota // identifiers, keywords, class names
	TokInt                    // integer literals
	TokStr                    // quoted string literals
	TokColon                  // ':' (label definitions)
	TokNewline                // statement separator
	TokEOF
)

// Token is one lexical token with its source line for diagnostics.
type Token struct {
	Kind TokKind
	Text string
	Int  int
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return t.Text
	case TokInt:
		return fmt.Sprint(t.Int)
	case TokStr:
		return fmt.Sprintf("%q", t.Text)
	case TokColon:
		return ":"
	case TokNewline:
		return "\\n"
	default:
		return "EOF"
	}
}

// Lex tokenises source. Comments run from ';' to end of line. Newlines
// are significant (one instruction per line).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	emitNL := func() {
		// Collapse consecutive newlines.
		if n := len(toks); n > 0 && toks[n-1].Kind != TokNewline {
			toks = append(toks, Token{Kind: TokNewline, Line: line})
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emitNL()
			line++
			i++
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ':':
			toks = append(toks, Token{Kind: TokColon, Line: line})
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("jasm:%d: unterminated string", line)
				}
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[j])
					}
				} else {
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("jasm:%d: unterminated string", line)
			}
			toks = append(toks, Token{Kind: TokStr, Text: sb.String(), Line: line})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			if c == '-' {
				j++
			}
			n := 0
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				n = n*10 + int(src[j]-'0')
				j++
			}
			if c == '-' {
				n = -n
			}
			toks = append(toks, Token{Kind: TokInt, Int: n, Line: line})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i:j], Line: line})
			i = j
		default:
			return nil, fmt.Errorf("jasm:%d: unexpected character %q", line, c)
		}
	}
	emitNL()
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_' || c == '.' || c == '$'
}

func isIdentPart(c rune) bool {
	return isIdentStart(c) || unicode.IsDigit(c) || c == '[' || c == ']'
}
