package jasm

import (
	"fmt"
	"strings"

	"repro/internal/heap"
	"repro/internal/vm"
)

// Method is an assembled method: labels resolved to PCs, classes and
// call targets resolved to indexes.
type Method struct {
	Name   string
	Locals int
	Code   []Instr
}

// Program is an assembled unit, ready to run on a runtime.
type Program struct {
	unit    *Unit
	classes map[string]ClassDecl
	methods map[string]*Method
	order   []string
}

// Assemble resolves a parsed unit: checks class references, method
// references, label targets and stack/local sanity that is decidable
// statically.
func Assemble(u *Unit) (*Program, error) {
	p := &Program{
		unit:    u,
		classes: make(map[string]ClassDecl),
		methods: make(map[string]*Method),
	}
	for _, c := range u.Classes {
		if _, dup := p.classes[c.Name]; dup {
			return nil, fmt.Errorf("jasm:%d: duplicate class %q", c.Line, c.Name)
		}
		p.classes[c.Name] = c
	}
	declared := make(map[string]bool)
	for _, m := range u.Methods {
		if declared[m.Name] {
			return nil, fmt.Errorf("jasm:%d: duplicate method %q", m.Line, m.Name)
		}
		declared[m.Name] = true
	}
	for _, m := range u.Methods {
		asm, err := p.assembleMethod(m, declared)
		if err != nil {
			return nil, err
		}
		p.methods[m.Name] = asm
		p.order = append(p.order, m.Name)
	}
	if _, ok := p.methods["main"]; !ok {
		return nil, fmt.Errorf("jasm: no main method")
	}
	return p, nil
}

// AssembleSource is the Lex+Parse+Assemble convenience.
func AssembleSource(src string) (*Program, error) {
	u, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	return Assemble(u)
}

func (p *Program) assembleMethod(m MethodDecl, methods map[string]bool) (*Method, error) {
	// Pass 1: assign PCs to labels.
	labels := make(map[string]int)
	pc := 0
	for _, r := range m.Body {
		if r.op == -1 {
			if _, dup := labels[r.label]; dup {
				return nil, fmt.Errorf("jasm:%d: duplicate label %q", r.line, r.label)
			}
			labels[r.label] = pc
			continue
		}
		pc++
	}
	// Pass 2: resolve operands.
	out := &Method{Name: m.Name, Locals: m.Locals}
	for _, r := range m.Body {
		if r.op == -1 {
			continue
		}
		in := Instr{Op: r.op, Line: r.line}
		switch r.op {
		case OpNew, OpNewArray, OpIntern:
			c, ok := p.classes[r.name]
			if !ok {
				return nil, fmt.Errorf("jasm:%d: undefined class %q", r.line, r.name)
			}
			if r.op == OpNewArray && !c.IsArray {
				return nil, fmt.Errorf("jasm:%d: class %q is not an array class", r.line, r.name)
			}
			if r.op == OpNew && c.IsArray {
				return nil, fmt.Errorf("jasm:%d: use newarray for array class %q", r.line, r.name)
			}
			in.S = r.name
			in.B = r.num
			if r.op == OpIntern {
				// Keep both the class name and the content, separated
				// by a byte that cannot occur in either.
				in.S = r.name + "\x00" + r.str
			}
		case OpLoad, OpStore:
			if r.num < 0 || r.num >= m.Locals {
				return nil, fmt.Errorf("jasm:%d: local %d out of range (method has %d)", r.line, r.num, m.Locals)
			}
			in.A = r.num
		case OpPutField, OpGetField:
			in.A = r.num
		case OpPutStatic, OpGetStatic:
			in.S = r.name
		case OpCall:
			if !methods[r.name] {
				return nil, fmt.Errorf("jasm:%d: undefined method %q", r.line, r.name)
			}
			in.S = r.name
			in.B = r.num
		case OpGoto, OpIfNull, OpIfNonNull:
			target, ok := labels[r.label]
			if !ok {
				return nil, fmt.Errorf("jasm:%d: undefined label %q", r.line, r.label)
			}
			in.A = target
		}
		out.Code = append(out.Code, in)
	}
	return out, nil
}

// Disassemble renders the assembled program back to readable text (PCs
// and resolved operands), for the cmd/cgrun -dis flag and tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, name := range p.order {
		m := p.methods[name]
		fmt.Fprintf(&b, "method %s locals %d\n", m.Name, m.Locals)
		for pc, in := range m.Code {
			fmt.Fprintf(&b, "  %3d: %s\n", pc, in)
		}
		fmt.Fprintln(&b, "end")
	}
	return b.String()
}

// Exec is a running program bound to a runtime.
type Exec struct {
	prog    *Program
	rt      *vm.Runtime
	classes map[string]heap.ClassID
	statics map[string]int
	// Steps counts executed instructions (safety valve against
	// accidental infinite loops in user programs).
	Steps    int
	MaxSteps int
}

// Bind registers the program's classes and statics on a runtime.
func (p *Program) Bind(rt *vm.Runtime) *Exec {
	e := &Exec{
		prog:     p,
		rt:       rt,
		classes:  make(map[string]heap.ClassID),
		statics:  make(map[string]int),
		MaxSteps: 100_000_000,
	}
	for name, c := range p.classes {
		e.classes[name] = rt.Heap.DefineClass(heap.Class{
			Name: c.Name, Refs: c.Refs, Data: c.Data, IsArray: c.IsArray,
		})
	}
	for _, s := range p.unit.Statics {
		e.statics[s] = rt.StaticSlot(s)
	}
	return e
}

// Run executes main on a fresh thread and returns its result (heap.Nil
// for void mains).
func (e *Exec) Run() (heap.HandleID, error) {
	th := e.rt.NewThread(0)
	return e.invoke(th, e.prog.methods["main"], nil)
}

// invoke runs one method body in a fresh frame. args become the low
// locals, as the JVM calling convention does.
func (e *Exec) invoke(th *vm.Thread, m *Method, args []heap.HandleID) (ret heap.HandleID, err error) {
	locals := m.Locals
	if len(args) > locals {
		locals = len(args)
	}
	ret = th.Call(locals, func(f *vm.Frame) heap.HandleID {
		for i, a := range args {
			if a != heap.Nil {
				f.SetLocal(i, a)
			}
		}
		r, e2 := e.run(th, f, m)
		if e2 != nil {
			err = e2
			return heap.Nil
		}
		return r
	})
	return ret, err
}

// run is the interpreter loop: a classic fetch-dispatch over the
// assembled code with an operand stack of handles.
func (e *Exec) run(th *vm.Thread, f *vm.Frame, m *Method) (heap.HandleID, error) {
	var stack []heap.HandleID
	push := func(h heap.HandleID) { stack = append(stack, h) }
	pop := func() (heap.HandleID, error) {
		if len(stack) == 0 {
			return heap.Nil, fmt.Errorf("jasm: operand stack underflow in %s", m.Name)
		}
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return h, nil
	}
	pc := 0
	for pc < len(m.Code) {
		if e.Steps++; e.Steps > e.MaxSteps {
			return heap.Nil, fmt.Errorf("jasm: step budget exhausted (%d) in %s", e.MaxSteps, m.Name)
		}
		in := m.Code[pc]
		pc++
		switch in.Op {
		case OpNew:
			id, err := f.New(e.classes[in.S])
			if err != nil {
				return heap.Nil, fmt.Errorf("jasm:%d: %w", in.Line, err)
			}
			push(id)
		case OpNewArray:
			id, err := f.NewArray(e.classes[in.S], in.B)
			if err != nil {
				return heap.Nil, fmt.Errorf("jasm:%d: %w", in.Line, err)
			}
			push(id)
		case OpLoad:
			push(f.Local(in.A))
		case OpStore:
			v, err := pop()
			if err != nil {
				return heap.Nil, err
			}
			f.SetLocal(in.A, v)
		case OpDup:
			if len(stack) == 0 {
				return heap.Nil, fmt.Errorf("jasm:%d: dup on empty stack", in.Line)
			}
			push(stack[len(stack)-1])
		case OpPop:
			if _, err := pop(); err != nil {
				return heap.Nil, err
			}
		case OpNull:
			push(heap.Nil)
		case OpPutField:
			v, err := pop()
			if err != nil {
				return heap.Nil, err
			}
			o, err := pop()
			if err != nil {
				return heap.Nil, err
			}
			if o == heap.Nil {
				return heap.Nil, fmt.Errorf("jasm:%d: putfield on null", in.Line)
			}
			f.PutField(o, in.A, v)
		case OpGetField:
			o, err := pop()
			if err != nil {
				return heap.Nil, err
			}
			if o == heap.Nil {
				return heap.Nil, fmt.Errorf("jasm:%d: getfield on null", in.Line)
			}
			push(f.GetField(o, in.A))
		case OpPutStatic:
			v, err := pop()
			if err != nil {
				return heap.Nil, err
			}
			f.PutStatic(e.statics[in.S], v)
		case OpGetStatic:
			push(f.GetStatic(e.statics[in.S]))
		case OpIntern:
			cls, content, _ := strings.Cut(in.S, "\x00")
			id, err := f.Intern(content, e.classes[cls])
			if err != nil {
				return heap.Nil, fmt.Errorf("jasm:%d: %w", in.Line, err)
			}
			push(id)
		case OpCall:
			args := make([]heap.HandleID, in.B)
			for i := in.B - 1; i >= 0; i-- {
				a, err := pop()
				if err != nil {
					return heap.Nil, err
				}
				args[i] = a
			}
			r, err := e.invoke(th, e.prog.methods[in.S], args)
			if err != nil {
				return heap.Nil, err
			}
			push(r)
		case OpARet:
			return pop()
		case OpRet:
			return heap.Nil, nil
		case OpGoto:
			pc = in.A
		case OpIfNull, OpIfNonNull:
			v, err := pop()
			if err != nil {
				return heap.Nil, err
			}
			if (v == heap.Nil) == (in.Op == OpIfNull) {
				pc = in.A
			}
		default:
			return heap.Nil, fmt.Errorf("jasm:%d: bad opcode %d", in.Line, in.Op)
		}
	}
	return heap.Nil, nil
}
