package jasm

import "fmt"

// Parse turns a token stream into a Unit. Grammar (newline-separated):
//
//	unit    := { classDecl | staticDecl | method }
//	class   := "class" name ["array"] ["refs" INT] ["data" INT]
//	static  := "static" name
//	method  := "method" name ["locals" INT] NL { stmt NL } "end"
//	stmt    := label ":" | instruction
type Parse struct {
	toks []Token
	pos  int
}

// ParseSource lexes and parses in one step.
func ParseSource(src string) (*Unit, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return (&Parse{toks: toks}).unit()
}

func (p *Parse) peek() Token { return p.toks[p.pos] }
func (p *Parse) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parse) skipNL() {
	for p.peek().Kind == TokNewline {
		p.pos++
	}
}

func (p *Parse) errf(line int, format string, args ...any) error {
	return fmt.Errorf("jasm:%d: %s", line, fmt.Sprintf(format, args...))
}

func (p *Parse) expectIdent(what string) (Token, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return t, p.errf(t.Line, "expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *Parse) expectInt(what string) (int, error) {
	t := p.next()
	if t.Kind != TokInt {
		return 0, p.errf(t.Line, "expected %s, got %s", what, t)
	}
	return t.Int, nil
}

func (p *Parse) endOfStmt() error {
	t := p.next()
	if t.Kind != TokNewline && t.Kind != TokEOF {
		return p.errf(t.Line, "trailing tokens: %s", t)
	}
	return nil
}

func (p *Parse) unit() (*Unit, error) {
	u := &Unit{}
	for {
		p.skipNL()
		t := p.peek()
		if t.Kind == TokEOF {
			return u, nil
		}
		if t.Kind != TokIdent {
			return nil, p.errf(t.Line, "expected declaration, got %s", t)
		}
		switch t.Text {
		case "class":
			c, err := p.classDecl()
			if err != nil {
				return nil, err
			}
			u.Classes = append(u.Classes, c)
		case "static":
			p.next()
			name, err := p.expectIdent("static name")
			if err != nil {
				return nil, err
			}
			u.Statics = append(u.Statics, name.Text)
			if err := p.endOfStmt(); err != nil {
				return nil, err
			}
		case "method":
			m, err := p.method()
			if err != nil {
				return nil, err
			}
			u.Methods = append(u.Methods, m)
		default:
			return nil, p.errf(t.Line, "unknown declaration %q", t.Text)
		}
	}
}

func (p *Parse) classDecl() (ClassDecl, error) {
	kw := p.next() // "class"
	name, err := p.expectIdent("class name")
	if err != nil {
		return ClassDecl{}, err
	}
	c := ClassDecl{Name: name.Text, Line: kw.Line}
	for p.peek().Kind == TokIdent {
		attr := p.next()
		switch attr.Text {
		case "array":
			c.IsArray = true
		case "refs":
			if c.Refs, err = p.expectInt("ref count"); err != nil {
				return c, err
			}
		case "data":
			if c.Data, err = p.expectInt("data size"); err != nil {
				return c, err
			}
		default:
			return c, p.errf(attr.Line, "unknown class attribute %q", attr.Text)
		}
	}
	return c, p.endOfStmt()
}

func (p *Parse) method() (MethodDecl, error) {
	kw := p.next() // "method"
	name, err := p.expectIdent("method name")
	if err != nil {
		return MethodDecl{}, err
	}
	m := MethodDecl{Name: name.Text, Line: kw.Line}
	if p.peek().Kind == TokIdent && p.peek().Text == "locals" {
		p.next()
		if m.Locals, err = p.expectInt("locals count"); err != nil {
			return m, err
		}
	}
	if err := p.endOfStmt(); err != nil {
		return m, err
	}
	for {
		p.skipNL()
		t := p.peek()
		if t.Kind == TokEOF {
			return m, p.errf(kw.Line, "method %q missing end", m.Name)
		}
		if t.Kind != TokIdent {
			return m, p.errf(t.Line, "expected instruction, got %s", t)
		}
		if t.Text == "end" {
			p.next()
			return m, p.endOfStmt()
		}
		// Label definition: ident ':'
		if p.toks[p.pos+1].Kind == TokColon {
			p.next()
			p.next()
			m.Body = append(m.Body, rawInstr{op: -1, label: t.Text, line: t.Line})
			continue
		}
		in, err := p.instruction()
		if err != nil {
			return m, err
		}
		m.Body = append(m.Body, in)
	}
}

// instruction parses one mnemonic line into a rawInstr.
func (p *Parse) instruction() (rawInstr, error) {
	t := p.next()
	in := rawInstr{line: t.Line}
	var err error
	switch t.Text {
	case "new":
		in.op = OpNew
		var c Token
		if c, err = p.expectIdent("class name"); err == nil {
			in.name = c.Text
		}
	case "newarray":
		in.op = OpNewArray
		var c Token
		if c, err = p.expectIdent("class name"); err == nil {
			in.name = c.Text
			in.num, err = p.expectInt("array length")
		}
	case "load", "store":
		in.op = map[string]Op{"load": OpLoad, "store": OpStore}[t.Text]
		in.num, err = p.expectInt("local index")
	case "dup":
		in.op = OpDup
	case "pop":
		in.op = OpPop
	case "null":
		in.op = OpNull
	case "putfield", "getfield":
		in.op = map[string]Op{"putfield": OpPutField, "getfield": OpGetField}[t.Text]
		in.num, err = p.expectInt("field slot")
	case "putstatic", "getstatic":
		in.op = map[string]Op{"putstatic": OpPutStatic, "getstatic": OpGetStatic}[t.Text]
		var n Token
		if n, err = p.expectIdent("static name"); err == nil {
			in.name = n.Text
		}
	case "intern":
		in.op = OpIntern
		var c Token
		if c, err = p.expectIdent("class name"); err == nil {
			in.name = c.Text
			s := p.next()
			if s.Kind != TokStr {
				err = p.errf(s.Line, "expected string literal, got %s", s)
			} else {
				in.str = s.Text
			}
		}
	case "call":
		in.op = OpCall
		var n Token
		if n, err = p.expectIdent("method name"); err == nil {
			in.name = n.Text
			in.num, err = p.expectInt("argument count")
		}
	case "areturn":
		in.op = OpARet
	case "ret":
		in.op = OpRet
	case "goto", "ifnull", "ifnonnull":
		in.op = map[string]Op{"goto": OpGoto, "ifnull": OpIfNull, "ifnonnull": OpIfNonNull}[t.Text]
		var l Token
		if l, err = p.expectIdent("label"); err == nil {
			in.label = l.Text
		}
	default:
		return in, p.errf(t.Line, "unknown instruction %q", t.Text)
	}
	if err != nil {
		return in, err
	}
	return in, p.endOfStmt()
}
