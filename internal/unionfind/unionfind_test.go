package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// forests returns one fresh instance of every Forest implementation so
// each test exercises both representations.
func forests(n int) map[string]Forest {
	return map[string]Forest{
		"DSU":    NewDSU(n),
		"Packed": NewPacked(n),
	}
}

func TestSingletonFind(t *testing.T) {
	for name, f := range forests(8) {
		for i := 0; i < 8; i++ {
			if got := f.Find(i); got != i {
				t.Errorf("%s: Find(%d) = %d before any union, want %d", name, i, got, i)
			}
		}
	}
}

func TestUnionMergesAndFindAgrees(t *testing.T) {
	for name, f := range forests(10) {
		f.Union(1, 2)
		f.Union(3, 4)
		if f.Find(1) != f.Find(2) {
			t.Errorf("%s: 1 and 2 should share a representative", name)
		}
		if f.Find(3) != f.Find(4) {
			t.Errorf("%s: 3 and 4 should share a representative", name)
		}
		if f.Find(1) == f.Find(3) {
			t.Errorf("%s: {1,2} and {3,4} must remain distinct", name)
		}
		f.Union(2, 3)
		for _, x := range []int{1, 2, 3, 4} {
			if f.Find(x) != f.Find(1) {
				t.Errorf("%s: element %d not merged into the big set", name, x)
			}
		}
		if f.Find(5) == f.Find(1) {
			t.Errorf("%s: untouched element joined a set", name)
		}
	}
}

func TestUnionReturnsRepresentative(t *testing.T) {
	for name, f := range forests(6) {
		r := f.Union(0, 5)
		if r != f.Find(0) || r != f.Find(5) {
			t.Errorf("%s: Union returned %d, Find says %d/%d", name, r, f.Find(0), f.Find(5))
		}
		// Self-union and repeated union are no-ops.
		if got := f.Union(0, 0); got != r {
			t.Errorf("%s: self-union changed representative: %d != %d", name, got, r)
		}
		if got := f.Union(5, 0); got != r {
			t.Errorf("%s: repeated union changed representative: %d != %d", name, got, r)
		}
	}
}

func TestMakeSetGrowsIdempotently(t *testing.T) {
	for name, f := range forests(0) {
		f.MakeSet(4)
		if f.Len() != 5 {
			t.Errorf("%s: Len = %d after MakeSet(4), want 5", name, f.Len())
		}
		f.MakeSet(2) // smaller: no shrink
		if f.Len() != 5 {
			t.Errorf("%s: Len changed on idempotent MakeSet: %d", name, f.Len())
		}
		if f.Find(4) != 4 {
			t.Errorf("%s: grown element not a singleton", name)
		}
	}
}

func TestReset(t *testing.T) {
	for name, f := range forests(4) {
		f.Union(0, 1)
		f.Union(1, 2)
		// Reset a leaf (non-representative with no children after the
		// unions above collapse paths via Find).
		f.Find(0)
		f.Find(1)
		f.Find(2)
		root := f.Find(2)
		var leaf int
		for _, c := range []int{0, 1, 2} {
			if c != root {
				leaf = c
				break
			}
		}
		f.Reset(leaf)
		if f.Find(leaf) != leaf {
			t.Errorf("%s: Reset(%d) did not detach it", name, leaf)
		}
	}
}

// TestEquivalenceRelation checks reflexivity, symmetry and transitivity of
// the "same representative" relation after a random union workload — the
// three properties §2.2 demands of equilive.
func TestEquivalenceRelation(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	for name, f := range forests(n) {
		for i := 0; i < 100; i++ {
			f.Union(rng.Intn(n), rng.Intn(n))
		}
		same := func(a, b int) bool { return f.Find(a) == f.Find(b) }
		for a := 0; a < n; a++ {
			if !same(a, a) {
				t.Fatalf("%s: reflexivity violated at %d", name, a)
			}
		}
		for i := 0; i < 200; i++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if same(a, b) != same(b, a) {
				t.Fatalf("%s: symmetry violated at (%d,%d)", name, a, b)
			}
			if same(a, b) && same(b, c) && !same(a, c) {
				t.Fatalf("%s: transitivity violated at (%d,%d,%d)", name, a, b, c)
			}
		}
	}
}

// TestPackedMatchesWide drives both representations with an identical
// random operation stream and demands identical partitions throughout —
// the §3.5 claim that packing is a pure representation change.
func TestPackedMatchesWide(t *testing.T) {
	type ops struct {
		Pairs []struct{ A, B uint8 }
	}
	check := func(o ops) bool {
		const n = 256
		d, p := NewDSU(n), NewPacked(n)
		for _, pr := range o.Pairs {
			d.Union(int(pr.A), int(pr.B))
			p.Union(int(pr.A), int(pr.B))
		}
		// Partitions are equal iff the "same set" relation agrees on a
		// spanning sample; check every consecutive pair and every pair
		// from the op stream.
		for i := 0; i+1 < n; i++ {
			if (d.Find(i) == d.Find(i+1)) != (p.Find(i) == p.Find(i+1)) {
				return false
			}
		}
		for _, pr := range o.Pairs {
			if (d.Find(int(pr.A)) == d.Find(int(pr.B))) != (p.Find(int(pr.A)) == p.Find(int(pr.B))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRankDepthBound property-checks the classic union-by-rank guarantee:
// the find path length never exceeds the representative's rank, and rank
// is at most log2(n) — the "(nearly) constant work per storage reference"
// claim of §2.2 rests on this.
func TestRankDepthBound(t *testing.T) {
	check := func(pairs []struct{ A, B uint8 }) bool {
		const n = 256
		d := NewDSU(n)
		for _, pr := range pairs {
			d.Union(int(pr.A), int(pr.B))
		}
		for i := 0; i < n; i++ {
			if d.RankOf(d.Find(i)) > 8 { // log2(256)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedRankSaturates verifies that the packed form caps the rank at
// its 4-bit ceiling without corrupting the partition.
func TestPackedRankSaturates(t *testing.T) {
	// Force rank growth: repeatedly union equal-rank trees.
	n := 1 << 17
	p := NewPacked(n)
	for span := 1; span < n; span *= 2 {
		for i := 0; i+span < n; i += 2 * span {
			p.Union(i, i+span)
		}
	}
	for i := 0; i < n; i++ {
		if p.Find(i) != p.Find(0) {
			t.Fatalf("element %d escaped the single merged set", i)
		}
		if r := p.RankOf(i); r > maxPackedRank {
			t.Fatalf("rank %d exceeds packed ceiling %d", r, maxPackedRank)
		}
	}
}

// TestFindIdempotent: Find(Find(x)) == Find(x) and Find never changes the
// partition (quick property).
func TestFindIdempotent(t *testing.T) {
	check := func(pairs []struct{ A, B uint8 }, probe uint8) bool {
		const n = 256
		for _, f := range forests(n) {
			for _, pr := range pairs {
				f.Union(int(pr.A), int(pr.B))
			}
			r1 := f.Find(int(probe))
			r2 := f.Find(r1)
			if r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionFindWide(b *testing.B) {
	benchForest(b, func(n int) Forest { return NewDSU(n) })
}

func BenchmarkUnionFindPacked(b *testing.B) {
	benchForest(b, func(n int) Forest { return NewPacked(n) })
}

// benchForest measures the §3.5 ablation: wide vs packed metadata under a
// union-heavy load resembling contamination traffic.
func benchForest(b *testing.B, mk func(int) Forest) {
	const n = 1 << 14
	rng := rand.New(rand.NewSource(42))
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := mk(n)
		for _, p := range pairs {
			f.Union(p[0], p[1])
		}
		for j := 0; j < n; j++ {
			f.Find(j)
		}
	}
}
