package unionfind

import (
	"math/rand"
	"testing"
)

// TestQuickSameSoundness drives random union/find/reset traffic and
// checks the fast path's one-sided contract on both representations:
// QuickSame may answer false for equilive elements (the caller then
// pays two Finds), but a true must always agree with Find — a false
// positive would silently drop contaminations.
func TestQuickSameSoundness(t *testing.T) {
	type forest interface {
		Forest
		QuickSame(x, y int) bool
	}
	for _, tc := range []struct {
		name string
		f    forest
	}{
		{"dsu", NewDSU(0)},
		{"packed", NewPacked(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const n = 500
			tc.f.MakeSet(n - 1)
			for step := 0; step < 20000; step++ {
				x, y := rng.Intn(n), rng.Intn(n)
				switch rng.Intn(10) {
				case 0:
					tc.f.Find(x)
				case 1:
					// Reset only an element no one names as ancestor: a
					// root with no children, i.e. a singleton. (Mirrors
					// the CG rebuild invariant.)
					if tc.f.Find(x) == x {
						continue
					}
				default:
					tc.f.Union(x, y)
				}
				a, b := rng.Intn(n), rng.Intn(n)
				if tc.f.QuickSame(a, b) && tc.f.Find(a) != tc.f.Find(b) {
					t.Fatalf("step %d: QuickSame(%d,%d) true but roots differ", step, a, b)
				}
				// And after compression the fast path must actually hit
				// for freshly-united pairs — the property the putfield
				// fast path relies on for its speedup.
				if tc.f.Find(a) == tc.f.Find(b) {
					tc.f.Find(a)
					tc.f.Find(b)
					if !tc.f.QuickSame(a, b) {
						t.Fatalf("step %d: compressed equilive pair (%d,%d) missed the fast path", step, a, b)
					}
				}
			}
		})
	}
}
