// Package unionfind implements Tarjan's disjoint-set forests with union by
// rank and path compression, the data structure the contaminated garbage
// collector uses to maintain its equilive equivalence relation (thesis
// §2.2, §3.1.1).
//
// Two representations are provided:
//
//   - DSU: the straightforward one, a parent word plus a rank word per
//     element ("one 'ancestor' field and one integer field", §3.1.1).
//   - Packed: the shrunken form of §3.5, which stores the rank in the low
//     bits of the parent word. The thesis observes that ranks never exceed
//     ten in practice and that handles are aligned, freeing the low four
//     bits; we reproduce exactly that layout.
//
// Both satisfy the Forest interface and are observationally equivalent
// (property-tested); the packed form halves the per-element metadata.
package unionfind

// Forest is the operations CG needs from a disjoint-set structure.
// Elements are dense non-negative integers (handle indices).
type Forest interface {
	// MakeSet ensures element x exists as a singleton set. Growing the
	// forest to include x is idempotent.
	MakeSet(x int)
	// Find returns the canonical representative of x's set, applying
	// path compression.
	Find(x int) int
	// Union merges the sets containing x and y and returns the
	// representative of the merged set. Union of an element with itself
	// (or two elements already in one set) is a no-op returning the
	// existing representative.
	Union(x, y int) int
	// Reset makes x a singleton set again regardless of prior state.
	// Callers must guarantee no other element names x as an ancestor;
	// the CG resetting pass (§3.6) re-resets every live object, which
	// re-establishes that invariant globally.
	Reset(x int)
	// Len reports the number of elements in the forest.
	Len() int
}

// DSU is the wide representation: separate parent and rank slices.
// The zero value is an empty, ready-to-use forest.
type DSU struct {
	parent []int32
	rank   []int8
}

// NewDSU returns a forest pre-grown to n singleton elements.
func NewDSU(n int) *DSU {
	d := &DSU{}
	if n > 0 {
		d.MakeSet(n - 1)
	}
	return d
}

// MakeSet implements Forest. Existing elements are one compare (the
// per-allocation hot case: handle IDs recycle, so the forest is
// usually already grown); extension is the cold path.
func (d *DSU) MakeSet(x int) {
	if x >= len(d.parent) {
		d.grow(x)
	}
}

//go:noinline
func (d *DSU) grow(x int) {
	for len(d.parent) <= x {
		d.parent = append(d.parent, int32(len(d.parent)))
		d.rank = append(d.rank, 0)
	}
}

// Len implements Forest.
func (d *DSU) Len() int { return len(d.parent) }

// Find implements Forest. It uses the two-pass path-compression variant:
// one pass to the root, one pass rewriting every traversed parent link to
// point at the root, exactly as described in §3.1.1 ("Every object that
// find is called on has its parent updated to be the root").
func (d *DSU) Find(x int) int {
	root := x
	for int(d.parent[root]) != root {
		root = int(d.parent[root])
	}
	for int(d.parent[x]) != root {
		d.parent[x], x = int32(root), int(d.parent[x])
	}
	return root
}

// Union implements Forest using union by rank: the higher-rank root
// becomes the parent; on a tie one is chosen and its rank increments.
func (d *DSU) Union(x, y int) int {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return rx
	}
	switch {
	case d.rank[rx] < d.rank[ry]:
		rx, ry = ry, rx
	case d.rank[rx] == d.rank[ry]:
		d.rank[rx]++
	}
	d.parent[ry] = int32(rx)
	return rx
}

// Reset implements Forest.
func (d *DSU) Reset(x int) {
	d.MakeSet(x)
	d.parent[x] = int32(x)
	d.rank[x] = 0
}

// RankOf exposes x's rank for tests and for the §4.4 block statistics.
func (d *DSU) RankOf(x int) int { return int(d.rank[x]) }

// Truncate empties the forest while keeping its capacity: MakeSet
// re-derives every element from its index, so a truncated forest is
// observably a fresh one. Pooled collectors reuse forests through it.
func (d *DSU) Truncate() {
	d.parent = d.parent[:0]
	d.rank = d.rank[:0]
}

// QuickSame is a one-pass, compression-free check that x and y are
// already in one set. It answers true only when that is certain from a
// single parent load per element (identical elements, or identical
// immediate parents — the common case after path compression); false
// means "unknown", and the caller falls back to two full Finds. This is
// the cheap first stage of the putfield fast path: after the first
// contamination of a hot object pair, every subsequent store between
// them resolves here without touching rank words or rewriting parents.
func (d *DSU) QuickSame(x, y int) bool {
	if x == y {
		return true
	}
	px, py := d.parent[x], d.parent[y]
	// Roots have parent == self, so px == py already implies x and y
	// share a tree; a root's parent can never equal another element's.
	return px == py || int(px) == y || int(py) == x
}

// rankBits is the number of low bits of the packed parent word reserved
// for the rank. The thesis (§3.5) reserves four bits after observing that
// ranks stay below ten on SPECjvm98; four bits bound the rank at 15, which
// by the union-by-rank size bound (2^rank ≤ n) accommodates forests of up
// to 2^15 elements per tree before saturation. Above that we simply stop
// incrementing the rank — unions remain correct, merely less balanced,
// matching the thesis's "maintained so that the rank never exceeds a
// predetermined threshold".
const rankBits = 4

// rankMask extracts the rank from a packed word.
const rankMask = 1<<rankBits - 1

// maxPackedRank is the saturation ceiling for packed ranks.
const maxPackedRank = rankMask

// Packed is the §3.5 representation: a single word per element whose low
// rankBits hold the rank and whose high bits hold the parent index (the
// "address", which is rankBits-aligned by construction). The zero value is
// an empty, ready-to-use forest.
type Packed struct {
	word []uint32
}

// NewPacked returns a packed forest pre-grown to n singleton elements.
func NewPacked(n int) *Packed {
	p := &Packed{}
	if n > 0 {
		p.MakeSet(n - 1)
	}
	return p
}

func pack(parent, rank int) uint32 { return uint32(parent)<<rankBits | uint32(rank) }

func (p *Packed) parentOf(x int) int { return int(p.word[x] >> rankBits) }

func (p *Packed) rankOf(x int) int { return int(p.word[x] & rankMask) }

func (p *Packed) setParent(x, parent int) {
	p.word[x] = pack(parent, p.rankOf(x))
}

// MakeSet implements Forest; see DSU.MakeSet.
func (p *Packed) MakeSet(x int) {
	if x >= len(p.word) {
		p.grow(x)
	}
}

//go:noinline
func (p *Packed) grow(x int) {
	for len(p.word) <= x {
		p.word = append(p.word, pack(len(p.word), 0))
	}
}

// Len implements Forest.
func (p *Packed) Len() int { return len(p.word) }

// Find implements Forest with the same two-pass compression as DSU.
func (p *Packed) Find(x int) int {
	root := x
	for p.parentOf(root) != root {
		root = p.parentOf(root)
	}
	for p.parentOf(x) != root {
		next := p.parentOf(x)
		p.setParent(x, root)
		x = next
	}
	return root
}

// Union implements Forest with saturating union by rank.
func (p *Packed) Union(x, y int) int {
	rx, ry := p.Find(x), p.Find(y)
	if rx == ry {
		return rx
	}
	switch {
	case p.rankOf(rx) < p.rankOf(ry):
		rx, ry = ry, rx
	case p.rankOf(rx) == p.rankOf(ry):
		if r := p.rankOf(rx); r < maxPackedRank {
			p.word[rx] = pack(p.parentOf(rx), r+1)
		}
	}
	p.setParent(ry, rx)
	return rx
}

// Reset implements Forest.
func (p *Packed) Reset(x int) {
	p.MakeSet(x)
	p.word[x] = pack(x, 0)
}

// RankOf exposes x's (saturating) rank for tests and statistics.
func (p *Packed) RankOf(x int) int { return p.rankOf(x) }

// Truncate empties the forest while keeping its capacity; see
// DSU.Truncate.
func (p *Packed) Truncate() {
	p.word = p.word[:0]
}

// QuickSame is the one-pass same-set check; see DSU.QuickSame.
func (p *Packed) QuickSame(x, y int) bool {
	if x == y {
		return true
	}
	px, py := p.parentOf(x), p.parentOf(y)
	return px == py || px == y || py == x
}

// Compile-time interface checks.
var (
	_ Forest = (*DSU)(nil)
	_ Forest = (*Packed)(nil)
)
