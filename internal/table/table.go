// Package table renders the experiment harness's plain-text tables with
// aligned columns — each experiment prints the same rows the thesis's
// figures report, so output is diffable against EXPERIMENTS.md.
package table

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// New creates a table with a title line and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends one row; cells beyond the header count are kept and simply
// widen the table.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row of formatted values: strings pass through, integers
// and floats get default formatting.
func (t *Table) Rowf(cells ...any) {
	t.Row(Format(cells...)...)
}

// Format renders Rowf-style values to cell strings: strings pass
// through, floats get two decimals, everything else default formatting.
// The streaming results sink shares it so streamed rows and batch tables
// print identical cell text.
func Format(cells ...any) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	return row
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}
