package table

import (
	"strings"
	"testing"
)

func TestAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Row("a", "1")
	tb.Row("longer", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("title missing: %q", lines[0])
	}
	// The value column must start at the same offset in both rows.
	if strings.Index(lines[3], "1") != strings.Index(lines[4], "22") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestRowfFormatting(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Rowf("x", 42, 0.5)
	out := tb.String()
	for _, want := range []string{"x", "42", "0.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestNotes(t *testing.T) {
	tb := New("T", "h")
	tb.Row("r")
	tb.Note("footnote %d", 7)
	if !strings.Contains(tb.String(), "footnote 7") {
		t.Fatal("note not rendered")
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "a")
	tb.Row("1", "2", "3") // wider than the header
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}
