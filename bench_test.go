package repro

import (
	"strconv"
	"testing"

	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchEng saturates the host, as cgbench does by default; per-run
// collector costs are isolated in the Workload/... benches below.
var benchEng = engine.New(0)

// This file holds one benchmark per table and figure of the thesis's
// evaluation, plus the ablation benches DESIGN.md calls out. Regenerate
// everything (tables included) with:
//
//	go run ./cmd/cgbench
//
// The Fig* benchmarks time the full regeneration of each figure; the
// Workload/... benchmarks time one run of each SPEC analog under each
// collector, which is the raw comparison behind Figures 4.7-4.10.

func BenchmarkFig41CollectableNoOptVsOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig41(benchEng)
	}
}

func BenchmarkFig42StaticAndThreadSize1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig42_44(benchEng, 1)
	}
}

func BenchmarkFig43StaticAndThreadSize10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig42_44(benchEng, 10)
	}
}

func BenchmarkFig44StaticAndThreadSize100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig42_44(benchEng, 100)
	}
}

func BenchmarkFig45BlockSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig45(benchEng)
	}
}

func BenchmarkFig46AgeAtDeath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig46(benchEng)
	}
}

func BenchmarkFig47TimingSize1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig47_48(benchEng, 1)
	}
}

func BenchmarkFig48TimingSize10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig47_48(benchEng, 10)
	}
}

func BenchmarkFig49LargeRuns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig49(benchEng)
	}
}

func BenchmarkFig410SpeedupSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig410(benchEng, []int{1, 10})
	}
}

func BenchmarkFig411Resetting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig411(benchEng)
	}
}

func BenchmarkFig412RecycleTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig412(benchEng)
	}
}

func BenchmarkFig413RecycleCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig413(benchEng)
	}
}

func BenchmarkFigA1ThreadStatics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FigA1(benchEng)
	}
}

func BenchmarkFigA2BreakdownSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FigA2_4(benchEng, 1)
	}
}

func BenchmarkFigA3BreakdownMedium(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FigA2_4(benchEng, 10)
	}
}

func BenchmarkFigA5RawTimingsSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FigA5_7(benchEng, 1)
	}
}

// BenchmarkWorkload is the raw material of the timing figures: each SPEC
// analog under each collector at size 1 and 10 (100 is exercised by the
// Fig 4.9/4.4 benches).
func BenchmarkWorkload(b *testing.B) {
	for _, spec := range workload.All() {
		for _, name := range []string{"cg", "cg+recycle", "msa", "gen"} {
			mk, err := collectors.Parse(name)
			if err != nil {
				b.Fatal(err)
			}
			for _, size := range []int{1, 10} {
				b.Run(spec.Name+"/"+name+"/size"+strconv.Itoa(size), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						rt := NewRuntime(NewHeap(spec.HeapBytes(size)), mk())
						spec.Run(rt, size)
					}
				})
			}
		}
	}
}

// BenchmarkWorkloadPooled is the pooled-path counterpart of
// BenchmarkWorkload: each iteration drives the cell through a
// persistent single-worker engine's ExecRelease, so after the warmup
// run every iteration starts from Runtime.Reset on a pooled shard —
// the steady state a store-backed sweep pays per cell, as opposed to
// the cold heap/collector construction the Workload family times.
// `cgbench -bench -pooled` emits the same cells as Workload-pooled/...
// JSON; BENCH_seed_pooled.json is the committed baseline.
func BenchmarkWorkloadPooled(b *testing.B) {
	eng := engine.New(1)
	for _, spec := range workload.All() {
		for _, name := range []string{"cg", "cg+recycle", "msa", "gen"} {
			if _, err := collectors.Parse(name); err != nil {
				b.Fatal(err)
			}
			for _, size := range []int{1, 10} {
				job := engine.Job{
					Workload:  spec.Name,
					Size:      size,
					Collector: name,
					HeapBytes: engine.TightHeap,
				}
				b.Run(spec.Name+"/"+name+"/size"+strconv.Itoa(size), func(b *testing.B) {
					b.ReportAllocs()
					check := func(r engine.Result) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
					eng.ExecRelease(job, check) // warm the shard pool
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						eng.ExecRelease(job, check)
					}
				})
			}
		}
	}
}

// BenchmarkStaticOptAblation measures the §3.4 optimization's runtime
// cost/benefit on the benchmark it affects most (jess).
func BenchmarkStaticOptAblation(b *testing.B) {
	spec, err := workload.ByName("jess")
	if err != nil {
		b.Fatal(err)
	}
	for _, opt := range []bool{true, false} {
		name := "opt"
		if !opt {
			name = "noopt"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A big heap isolates collector bookkeeping from
				// collection pressure: no-opt keeps far more live.
				rt := NewRuntime(NewHeap(64<<20), core.New(core.Config{StaticOpt: opt}))
				spec.Run(rt, 1)
			}
		})
	}
}

// BenchmarkPackedHandleAblation compares the §3.5 packed union-find
// representation against the wide one under a real workload.
func BenchmarkPackedHandleAblation(b *testing.B) {
	spec, err := workload.ByName("jack")
	if err != nil {
		b.Fatal(err)
	}
	for _, packed := range []bool{false, true} {
		name := "wide"
		if packed {
			name = "packed"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(NewHeap(spec.HeapBytes(1)), core.New(core.Config{StaticOpt: true, Packed: packed}))
				spec.Run(rt, 1)
			}
		})
	}
}

// BenchmarkTypedRecycleAblation compares §3.7 first-fit recycling with
// the Chapter 6 by-type extension on the token-storm workload, where
// same-class churn dominates.
func BenchmarkTypedRecycleAblation(b *testing.B) {
	spec, err := workload.ByName("jack")
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"first-fit", core.Config{StaticOpt: true, Recycle: true}},
		{"by-type", core.Config{StaticOpt: true, TypedRecycle: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(NewHeap(spec.HeapBytes(1)), core.New(m.cfg))
				spec.Run(rt, 1)
			}
		})
	}
}

// BenchmarkResettingAblation measures the §3.6 resetting pass's overhead
// when traditional collections are forced frequently.
func BenchmarkResettingAblation(b *testing.B) {
	spec, err := workload.ByName("jess")
	if err != nil {
		b.Fatal(err)
	}
	for _, reset := range []bool{false, true} {
		name := "rebuild-only"
		if reset {
			name = "reset"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := NewRuntime(NewHeap(64<<20), core.New(core.Config{StaticOpt: true, ResetOnGC: reset}))
				rt.SetGCEvery(5000)
				spec.Run(rt, 1)
			}
		})
	}
}

// TestFacadeQuickstart exercises the package-level API end to end (the
// doc-comment example).
func TestFacadeQuickstart(t *testing.T) {
	h := NewHeap(1 << 20)
	cls := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
	cg := NewCG(DefaultConfig())
	rt := NewRuntime(h, cg)
	th := rt.NewThread(0)
	th.CallVoid(1, func(f *Frame) {
		f.SetLocal(0, f.MustNew(cls))
	})
	if cg.Stats().Popped != 1 {
		t.Fatalf("Popped = %d, want 1", cg.Stats().Popped)
	}
	// The baselines construct and attach cleanly too.
	for _, c := range []Collector{NewMarkSweep(), NewGenerational()} {
		h2 := NewHeap(1 << 16)
		cls2 := h2.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
		rt2 := NewRuntime(h2, c)
		th2 := rt2.NewThread(0)
		th2.CallVoid(1, func(f *Frame) { f.SetLocal(0, f.MustNew(cls2)) })
	}
}
