package repro

import (
	"testing"

	"repro/internal/collectors"
)

// The alloc gate runs under collectors.AllSpecs() — the registry-
// grammar enumeration shared with the elision equivalence gate — so a
// newly registered family or modifier is gated automatically. The
// hot-path budget (§3.5: collector bookkeeping costs a few machine ops
// per event) implies zero Go-heap traffic per event once tables are
// warm; a new collector variant that allocates per PutField shows up
// here, not in a profile weeks later.

// TestSteadyStateEventAllocs pins PutField / GetField / Call (and the
// operand-rooting they imply) at zero allocations per op in steady
// state, under every registered collector — the events route through
// the event-table slots the collector declared, so the gate also
// proves the descriptor dispatch itself is allocation-free.
func TestSteadyStateEventAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful unraced")
	}
	for _, spec := range collectors.AllSpecs() {
		t.Run(spec, func(t *testing.T) {
			col, err := collectors.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			h := NewHeap(1 << 20)
			cls := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
			rt := NewRuntime(h, col)
			th := rt.NewThread(2)
			f := th.Top()
			a, b := f.MustNew(cls), f.MustNew(cls)
			f.SetLocal(0, a)
			f.SetLocal(1, b)
			callee := func(inner *Frame) { inner.SetLocal(0, a) }
			step := func() {
				f.PutField(a, 0, b)
				_ = f.GetField(a, 0)
				th.CallVoid(1, callee)
			}
			step() // warm: first contamination, frame pool, operand ring
			if n := testing.AllocsPerRun(200, step); n != 0 {
				t.Fatalf("steady-state PutField/GetField/Call allocates %v objects/op under %s", n, spec)
			}
		})
	}
}

// TestSteadyStateArenaOpAllocs pins the slab arena's own operation
// surface — Alloc, Free and the O(1) Info read — at zero Go-heap
// allocations per op in steady state, for the shard arena of every
// registered collector spec. Once the first pass has grown the slab
// metadata and page-heap slices to their high-water capacity, churning
// small classes, a page-sized class and a multi-page large block
// touches only the arena's free masks and counters.
func TestSteadyStateArenaOpAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful unraced")
	}
	for _, spec := range collectors.AllSpecs() {
		t.Run(spec, func(t *testing.T) {
			col, err := collectors.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			h := NewHeap(1 << 20)
			NewRuntime(h, col)
			a := h.Arena()
			sizes := []int{8, 16, 48, 256, 4096, 12288}
			addrs := make([]int, len(sizes))
			step := func() {
				for i, s := range sizes {
					p, err := a.Alloc(s)
					if err != nil {
						t.Fatal(err)
					}
					addrs[i] = p
				}
				if info := a.Info(); info.AllocBytes <= 0 {
					t.Fatal("Info reports no allocated bytes mid-step")
				}
				for i, s := range sizes {
					a.Free(addrs[i], s)
				}
			}
			for i := 0; i < 4; i++ { // warm slab records, partial lists, page heap
				step()
			}
			if n := testing.AllocsPerRun(200, step); n != 0 {
				t.Fatalf("steady-state Arena.Alloc/Free/Info allocates %v objects/op under %s", n, spec)
			}
		})
	}
}

// TestSteadyStateCycleAllocs pins the full collection cycle — mark,
// sweep, and the cycle-timeline recording vm.ForceCollect now wraps
// around it — at zero allocations per cycle in steady state, for every
// registered collector spec. The timeline's buffers are fixed-size
// arrays embedded in the runtime and its default clock is a shared
// func value, so instrumented cycles must cost no Go-heap traffic
// beyond the collector's own (warmed) work lists. A spec with no
// Collect capability still exercises the instrumentation's
// nothing-to-collect path.
func TestSteadyStateCycleAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful unraced")
	}
	for _, spec := range collectors.AllSpecs() {
		t.Run(spec, func(t *testing.T) {
			col, err := collectors.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			h := NewHeap(1 << 20)
			cls := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
			rt := NewRuntime(h, col)
			th := rt.NewThread(2)
			f := th.Top()
			// A little live graph plus churn so mark and sweep both do work.
			a, b := f.MustNew(cls), f.MustNew(cls)
			f.SetLocal(0, a)
			f.SetLocal(1, b)
			f.PutField(a, 0, b)
			churn := func(inner *Frame) { inner.SetLocal(0, inner.MustNew(cls)) }
			step := func() {
				th.CallVoid(1, churn)
				rt.ForceCollect()
			}
			for i := 0; i < 8; i++ { // warm mark bitsets, work lists, the timeline clock
				step()
			}
			if n := testing.AllocsPerRun(100, step); n != 0 {
				t.Fatalf("steady-state collection cycle allocates %v objects/op under %s", n, spec)
			}
		})
	}
}

// TestSteadyStateChurnAllocs pins the allocate-and-die loop — the §3.7
// recycling path and the slab heap's extent reuse — at zero Go
// allocations per op: a dead handle's slab extent and ID are recycled,
// so object churn in a warm runtime never touches the Go allocator.
func TestSteadyStateChurnAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful unraced")
	}
	for _, spec := range []string{"cg", "cg+recycle", "cg+typed"} {
		t.Run(spec, func(t *testing.T) {
			col, err := collectors.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			h := NewHeap(1 << 20)
			cls := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
			rt := NewRuntime(h, col)
			th := rt.NewThread(0)
			churn := func(inner *Frame) { inner.SetLocal(0, inner.MustNew(cls)) }
			for i := 0; i < 64; i++ { // warm handle table, free lists, recycle lists
				th.CallVoid(1, churn)
			}
			if n := testing.AllocsPerRun(200, func() { th.CallVoid(1, churn) }); n != 0 {
				t.Fatalf("steady-state alloc/free churn allocates %v objects/op under %s", n, spec)
			}
		})
	}
}
