//go:build race

package repro

// raceEnabled reports that the race detector is instrumenting this
// build; exact allocation-count assertions are skipped under it (the
// instrumentation itself allocates).
const raceEnabled = true
