package repro

import (
	"testing"

	"repro/internal/collectors"
	"repro/internal/tape"
)

// The tape replay gate extends the steady-state alloc discipline to the
// engine's cache-hit path: a Replayer's inner loop is decode-op →
// switch → direct Runtime call, and once tables are at high-water
// capacity, it must cost zero Go-heap allocations per op. A replay run
// does carry a handful of fixed allocations — the replayed opNewThread
// builds a thread and its first frames, exactly as the driven run did —
// so the gate is scale invariance: replaying a tape with twice the ops
// must not add allocations proportional to the extra ops. Fixed
// per-run costs cancel outright; each run's fresh collector warms its
// own tables by doubling, which can add a few log-scale appends, so
// the threshold sits three orders of magnitude below linear.

// churnTape records iters rounds of call/alloc/mutate/read churn under
// "none" (the tape is collector-independent) and returns the sealed
// tape: ~6 ops per round.
func churnTape(t *testing.T, iters int) *tape.Tape {
	t.Helper()
	mk, err := collectors.Parse("none")
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeap(1 << 22)
	rt := NewRuntime(h, mk())
	rec := tape.NewRecorder(rt, tape.Meta{Workload: "churn-gate", Size: iters})
	cls := h.DefineClass(Class{Name: "Node", Refs: 2, Data: 8})
	th := rt.NewThread(2)
	body := func(f *Frame) {
		o := f.MustNew(cls)
		f.PutField(o, 0, o)
		f.SetLocal(0, o)
		_ = f.GetField(o, 0)
	}
	for i := 0; i < iters; i++ {
		th.CallVoid(1, body)
	}
	rt.Quiesce()
	return rec.Finish()
}

// TestReplayInnerLoopAllocs pins the replay decode loop at zero
// allocations per op under every registered collector spec.
func TestReplayInnerLoopAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful unraced")
	}
	small := churnTape(t, 2000)
	big := churnTape(t, 4000)
	if small.Ops() < 10000 || big.Ops() <= small.Ops() {
		t.Fatalf("churn tapes too small to gate on: %d and %d ops", small.Ops(), big.Ops())
	}

	for _, spec := range collectors.AllSpecs() {
		t.Run(spec, func(t *testing.T) {
			mk, err := collectors.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			rrt := NewRuntime(NewHeap(1<<22), mk())
			measure := func(tp *tape.Tape) float64 {
				rp := tape.NewReplayer(tp)
				replay := func() {
					rrt.Reset(mk())
					if err := rp.Run(rrt); err != nil {
						t.Fatal(err)
					}
				}
				// Warm: grow the handle table, collector work lists,
				// and runtime pools to their high-water capacities.
				for i := 0; i < 3; i++ {
					replay()
				}
				return testing.AllocsPerRun(10, replay)
			}
			// Measure the big tape first so every table is already at
			// the capacity both measurements run under.
			allocsBig := measure(big)
			allocsSmall := measure(small)
			extraOps := big.Ops() - small.Ops()
			if added := allocsBig - allocsSmall; added > float64(extraOps)/1000 {
				t.Fatalf("replay allocations scale with op count: %v objects for %d extra ops (%v vs %v) under %s",
					added, extraOps, allocsBig, allocsSmall, spec)
			}
			// Sanity bound on the fixed per-run cost itself (thread and
			// frame construction the tape legitimately performs).
			if allocsSmall > float64(small.Ops())/100 {
				t.Fatalf("fixed replay cost suspiciously high: %v allocations for %d ops under %s",
					allocsSmall, small.Ops(), spec)
			}
		})
	}
}
