// Recycler: the §3.7 extension in action. A tight heap forces allocation
// pressure; with recycling on, popped equilive sets feed later
// allocations and the traditional collector never runs; with recycling
// off, the same program must fall back to mark-sweep.
//
// Run with: go run ./examples/recycler
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/vm"
)

// churn allocates rounds of frame-local objects under a 16 KiB arena —
// far more total storage than the arena holds, so every round beyond the
// first few must reuse memory somehow.
func churn(cfg core.Config) (*core.CG, *vm.Runtime) {
	h := heap.New(16 << 10)
	node := h.DefineClass(heap.Class{Name: "Node", Refs: 1, Data: 24})
	cg := core.New(cfg)
	rt := vm.New(h, cg)
	th := rt.NewThread(0)
	for round := 0; round < 200; round++ {
		th.CallVoid(1, func(f *vm.Frame) {
			var prev heap.HandleID
			for i := 0; i < 40; i++ {
				o := f.MustNew(node)
				if prev != heap.Nil {
					f.PutField(o, 0, prev)
				}
				prev = o
				f.SetLocal(0, o)
			}
		})
	}
	return cg, rt
}

func main() {
	withR, rtR := churn(core.Config{StaticOpt: true, Recycle: true})
	without, rtN := churn(core.Config{StaticOpt: true})

	fmt.Println("200 rounds x 40 objects through a 16 KiB arena (holds ~400):")
	fmt.Printf("%-28s %12s %12s\n", "", "recycling on", "recycling off")
	sr, sn := withR.Stats(), without.Stats()
	fmt.Printf("%-28s %12d %12d\n", "objects created", sr.Created, sn.Created)
	fmt.Printf("%-28s %12d %12d\n", "collected at frame pops", sr.Popped, sn.Popped)
	fmt.Printf("%-28s %12d %12d\n", "recycled reuses (§3.7)", sr.Reused, sn.Reused)
	fmt.Printf("%-28s %12d %12d\n", "traditional GC cycles", rtR.GCCycles(), rtN.GCCycles())
	fmt.Printf("%-28s %12d %12d\n", "arena allocator calls", rtRHeapAllocs(rtR), rtRHeapAllocs(rtN))
	fmt.Println("\nWith recycling, dead sets satisfy allocation directly (\"instead of")
	fmt.Println("having to free each object ... we only update a pointer\", §3.7).")
}

func rtRHeapAllocs(rt *vm.Runtime) uint64 { return rt.Heap.Stats().Allocs }
