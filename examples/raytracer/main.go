// Raytracer: the paper's best-case workload (SPEC _205_raytrace analog)
// run under the contaminated collector and under the traditional
// mark-sweep baseline, comparing what each system does — the Figure
// 4.1/4.7 story in one program.
//
// Run with: go run ./examples/raytracer [-size N]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	size := flag.Int("size", 10, "SPEC problem size (1, 10, 100)")
	flag.Parse()

	spec, err := workload.ByName("raytrace")
	if err != nil {
		panic(err)
	}

	// Contaminated collection: incremental, no marking.
	cg := core.New(core.DefaultConfig())
	rtCG := vm.New(heap.New(spec.HeapBytes(*size)), cg)
	t0 := time.Now()
	spec.Run(rtCG, *size)
	cgTime := time.Since(t0)
	b := cg.Snapshot()

	fmt.Printf("contaminated collection (size %d):\n", *size)
	fmt.Printf("  objects created:        %d\n", b.Created)
	fmt.Printf("  collected at frame pops: %d (%s)\n", b.Popped, stats.Pct(b.Popped, b.Created))
	fmt.Printf("  static for the program: %d\n", b.Static)
	fmt.Printf("  traditional GC cycles:  %d\n", rtCG.GCCycles())
	fmt.Printf("  wall time:              %v\n", cgTime)

	// The baseline: mark-sweep only, same heap budget.
	sys := msa.NewSystem()
	rtMSA := vm.New(heap.New(spec.HeapBytes(*size)), sys)
	t0 = time.Now()
	spec.Run(rtMSA, *size)
	msaTime := time.Since(t0)

	st := sys.Engine().Stats()
	fmt.Printf("traditional collector (same heap):\n")
	fmt.Printf("  GC cycles:              %d\n", st.Cycles)
	fmt.Printf("  objects marked (total): %d\n", st.Marked)
	fmt.Printf("  objects swept (total):  %d\n", st.Freed)
	fmt.Printf("  wall time:              %v\n", msaTime)
	fmt.Printf("speedup of CG over the base system: %.2f\n",
		stats.Speedup(msaTime.Seconds(), cgTime.Seconds()))
}
