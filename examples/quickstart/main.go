// Quickstart: the paper's worked example (Figures 2.1 and 2.2) on the
// public API. Five stack frames hold objects A-E; five putfield
// instructions contaminate them; the trace shows each object's dependent
// frame after every step, ending with the §2.1 punchline that
// contamination cannot be undone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/heap"
	"repro/internal/vm"
)

func main() {
	// The canned trace used by the experiment suite...
	fmt.Print(experiments.Example21())
	fmt.Println()

	// ...and the same machinery by hand, to show the API surface: build
	// a collector, a heap and a runtime, then run code in frames.
	h := heap.New(1 << 16)
	node := h.DefineClass(heap.Class{Name: "Object", Refs: 1, Data: 8})
	cg := core.New(core.DefaultConfig())
	rt := vm.New(h, cg)
	th := rt.NewThread(1)

	fmt.Println("By hand: an object that never escapes its frame is collected at the pop.")
	var temp heap.HandleID
	th.CallVoid(1, func(f *vm.Frame) {
		temp = f.MustNew(node)
		f.SetLocal(0, temp)
		fmt.Printf("  inside the frame:  live=%v, dependent frame ID %d\n",
			rt.Heap.Live(temp), cg.DependentFrame(temp).ID)
	})
	fmt.Printf("  after the pop:     live=%v, CG collected %d object(s)\n",
		rt.Heap.Live(temp), cg.Stats().Popped)
}
