// Interp: a program written in the jasm assembly language (the runtime's
// textual instruction set, internal/jasm) executed under the
// contaminated collector. The program builds a static registry, churns
// through per-request scratch objects, and the report shows CG
// collecting the scratch at every frame pop without a single traditional
// collection.
//
// Run with: go run ./examples/interp
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/jasm"
	"repro/internal/stats"
	"repro/internal/vm"
)

const program = `
; A tiny request-processing service: the registry lives forever, the
; per-request scratch dies with each handler frame.
class Registry[] array
class Entry   refs 1 data 16
class Request refs 2 data 24
class Scratch refs 1 data 32

static registry

method main locals 2
  newarray Registry[] 8
  store 0
  load 0
  putstatic registry

  ; register four interned service names
  load 0
  intern Entry "svc.alpha"
  putfield 0
  load 0
  intern Entry "svc.beta"
  putfield 1

  ; serve requests: a chain of 5 handler calls
  call handle 0
  pop
  call handle 0
  pop
  call handle 0
  pop
  call handle 0
  pop
  call handle 0
  pop
  ret
end

; handle builds a request with scratch space, consults the registry,
; and returns only the request; the scratch dies here.
method handle locals 3
  new Request
  store 0
  new Scratch
  store 1
  new Scratch
  store 2
  load 1
  load 2
  putfield 0          ; scratch chain
  load 0
  getstatic registry
  getfield 0          ; read an interned entry (no contamination: §3.4)
  putfield 1
  load 0
  areturn
end
`

func main() {
	prog, err := jasm.AssembleSource(program)
	if err != nil {
		panic(err)
	}
	fmt.Println("Disassembly:")
	fmt.Print(prog.Disassemble())

	cg := core.New(core.DefaultConfig())
	rt := vm.New(heap.New(64<<10), cg)
	if _, err := prog.Bind(rt).Run(); err != nil {
		panic(err)
	}
	b := cg.Snapshot()
	fmt.Println("\nUnder contaminated collection:")
	fmt.Printf("  objects created:           %d\n", b.Created)
	fmt.Printf("  collected at frame pops:   %d (%s)\n", b.Popped, stats.Pct(b.Popped, b.Created))
	fmt.Printf("  static (registry+interns): %d\n", b.Static)
	fmt.Printf("  traditional GC cycles:     %d\n", rt.GCCycles())
}
