// Command t100 is the large-run throughput harness: it executes the
// benchmark analogs at SPEC size 100 (or any -size) under two or more
// collectors resolved from the registry, head to head, and reports wall
// time, GC cycles and the speedup of the first collector over the last.
// It replaces the old underscore-hidden cmd/_t100_main.go scratch tool,
// now wired to the sharded execution engine: the whole
// (benchmark × collector) matrix runs concurrently under -workers.
//
// Absolute times under -workers N > 1 include scheduling contention —
// every collector pays it equally, so the speedup column stays
// meaningful — but for paper-grade absolute numbers use -workers 1.
//
// Usage:
//
//	t100 [-size N] [-collectors cg,msa] [-bench a,b,...] [-repeats N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collectors"
	"repro/internal/engine"
	"repro/internal/msa"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	size := flag.Int("size", 100, "SPEC problem size")
	specList := flag.String("collectors", "cg,msa",
		fmt.Sprintf("comma-separated collector specs to race (bases: %s)", strings.Join(collectors.Names(), ", ")))
	benchList := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	repeats := flag.Int("repeats", 1, "averaging repeats per cell")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = min(GOMAXPROCS, 8), 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, pooled included (e.g. 2GiB; 0 = unlimited)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing); output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}

	if *specList == "" {
		fatal(fmt.Errorf("need at least one collector"))
	}
	cols := strings.Split(*specList, ",")
	for _, c := range cols {
		if _, err := collectors.Parse(c); err != nil {
			fatal(err)
		}
	}

	specs := workload.All()
	if *benchList != "" {
		specs = specs[:0]
		for _, name := range strings.Split(*benchList, ",") {
			s, err := workload.ByName(name)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, s)
		}
	}

	// The full matrix in one submission: jobs[i*len(cols)+j] is
	// benchmark i under collector j, each on its own tight-heap shard.
	jobs := make([]engine.Job, 0, len(specs)*len(cols))
	for _, s := range specs {
		for _, c := range cols {
			jobs = append(jobs, engine.Job{Workload: s.Name, Size: *size,
				Collector: c, HeapBytes: engine.TightHeap, Repeats: *repeats})
		}
	}
	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "t100:", err)
		os.Exit(2)
	}
	eng := engine.New(*workers).SetMaxHeapBytes(heapCap).SetTrace(traceCfg)
	// Extract per-cell wall time and cycle counts as shards complete;
	// size-100 tight heaps are modest, but there is no reason to hold
	// every runtime until render.
	type cell struct {
		secs float64
		gc   int
		err  error
	}
	cells := make([]cell, len(jobs))
	eng.RunEach(jobs, func(i int, r engine.Result) {
		if r.Err != nil {
			cells[i] = cell{err: r.Err}
			return
		}
		cells[i] = cell{secs: r.Elapsed.Seconds(), gc: r.RT.GCCycles()}
	})

	headers := []string{"benchmark"}
	for _, c := range cols {
		headers = append(headers, c+" (s)", "gc")
	}
	if len(cols) > 1 {
		headers = append(headers, fmt.Sprintf("speedup %s/%s", cols[len(cols)-1], cols[0]))
	}
	t := table.New(fmt.Sprintf("Head-to-head, size %d (%d repeat(s) per cell, %d worker(s))",
		*size, *repeats, eng.Workers()), headers...)
	perCol := make([]stats.Summary, len(cols))
	for i, s := range specs {
		row := []any{s.Name}
		var first, last float64
		for j := range cols {
			c := cells[i*len(cols)+j]
			if c.err != nil {
				fatal(fmt.Errorf("%s under %s: %w", s.Name, cols[j], c.err))
			}
			perCol[j] = perCol[j].Merge(stats.Summarize([]float64{c.secs}))
			row = append(row, fmt.Sprintf("%.3f", c.secs), c.gc)
			if j == 0 {
				first = c.secs
			}
			last = c.secs
		}
		if len(cols) > 1 {
			row = append(row, fmt.Sprintf("%.2f", stats.Speedup(last, first)))
		}
		t.Rowf(row...)
	}
	if len(specs) > 1 {
		row := []any{"mean"}
		for j := range cols {
			row = append(row, fmt.Sprintf("%.3f", perCol[j].Mean), "")
		}
		if len(cols) > 1 {
			row = append(row, fmt.Sprintf("%.2f", stats.Speedup(perCol[len(cols)-1].Mean, perCol[0].Mean)))
		}
		t.Rowf(row...)
	}
	fmt.Print(t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "t100:", err)
	os.Exit(1)
}
