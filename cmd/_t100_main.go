package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	for _, name := range []string{"jess", "javac", "jack", "raytrace", "db", "mpegaudio"} {
		s, _ := workload.ByName(name)
		t0 := time.Now()
		rtc := vm.New(heap.New(s.HeapBytes(100)), core.New(core.DefaultConfig()))
		s.Run(rtc, 100)
		cg := time.Since(t0)
		t0 = time.Now()
		rtm := vm.New(heap.New(s.HeapBytes(100)), msa.NewSystem())
		s.Run(rtm, 100)
		base := time.Since(t0)
		fmt.Printf("%-10s cg=%8.3fs (gc=%d)  base=%8.3fs (gc=%d)  speedup=%.2f\n",
			name, cg.Seconds(), rtc.GCCycles(), base.Seconds(), rtm.GCCycles(), base.Seconds()/cg.Seconds())
	}
}
