// Command cgsweep runs the demographics figures as a resumable,
// optionally multi-process sweep. Rows stream to stdout in figure
// order the moment their cells complete, and the rendered bytes are
// identical for every backend configuration: -procs 4 against worker
// processes, -workers 8 in-process, or a resume over a half-filled
// store all print the same tables.
//
// Usage:
//
//	cgsweep                               # all demographic figures, in-process
//	cgsweep -figs 4.1,4.5,4.11            # a subset
//	cgsweep -procs 4                      # fan cells out to 4 cgworker processes
//	cgsweep -store cells/                 # persist cells; a rerun skips completed ones
//	cgsweep -max-heap-bytes 2GiB          # bound aggregate arena bytes per process
//
// With -store, a killed sweep (power cut, OOM kill, ^C) is restarted
// with the same command line and completes from where it died: cells
// already on disk are served from the store (the stderr summary counts
// them) and only the missing ones recompute.
//
// With -procs N the coordinator spawns N cgworker children — found via
// -worker, next to the cgsweep binary, or on $PATH — each hosting its
// own engine pool of -workers shards. Cells in flight on a worker that
// dies are retried on the survivors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/msa"
	"repro/internal/results"
)

func main() {
	figsFlag := flag.String("figs", "", "comma-separated figure ids (default: all demographic figures)")
	procs := flag.Int("procs", 0, "worker processes to fan cells out to (0 = run in-process)")
	workers := flag.Int("workers", 0, "engine workers per process (0 = GOMAXPROCS; with -procs, per child)")
	storeDir := flag.String("store", "", "results store directory; completed cells are persisted and resumed")
	workerCmd := flag.String("worker", "", "cgworker binary for -procs (default: beside cgsweep, then $PATH)")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles, forwarded to -procs children (0 = min(GOMAXPROCS, 8), 1 = sequential; pass 1 when the sweep already saturates the cores); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, per process, pooled included (e.g. 2GiB; 0 = unlimited)")
	flag.Parse()
	msa.SetDefaultTrace(*traceWorkers, *traceMinLive)

	var ids []string
	if *figsFlag != "" {
		ids = strings.Split(*figsFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	figs, err := experiments.DemographicFigs(ids...)
	if err != nil {
		fatal(err)
	}
	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fatal(err)
	}

	var backend results.Backend
	if *procs > 0 {
		bin, err := workerBinary(*workerCmd)
		if err != nil {
			fatal(err)
		}
		perChild := *workers
		if perChild <= 0 {
			// Split the host across children rather than oversubscribing
			// it procs-fold.
			perChild = (engine.New(0).Workers() + *procs - 1) / *procs
		}
		argv := []string{bin, "-workers", strconv.Itoa(perChild), "-max-heap-bytes", strconv.FormatInt(heapCap, 10),
			"-trace-workers", strconv.Itoa(*traceWorkers), "-trace-min-live", strconv.Itoa(*traceMinLive)}
		backend = &dist.Coordinator{Spawn: dist.Command(argv, os.Stderr), Procs: *procs}
	} else {
		backend = results.Local{Eng: engine.New(*workers).SetMaxHeapBytes(heapCap)}
	}

	var resuming *results.Resuming
	if *storeDir != "" {
		store, err := results.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		resuming = &results.Resuming{Store: store, Next: backend}
		backend = resuming
	}

	if err := experiments.Sweep(backend, figs, os.Stdout); err != nil {
		fatal(err)
	}
	if resuming != nil {
		stored, computed := resuming.Stats()
		fmt.Fprintf(os.Stderr, "cgsweep: %d cells from store, %d computed\n", stored, computed)
	}
}

// workerBinary resolves the cgworker executable: an explicit -worker
// path wins, then a cgworker beside our own binary (the `go build -o
// bin/ ./cmd/...` layout), then $PATH.
func workerBinary(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "cgworker")
		if info, err := os.Stat(sibling); err == nil && !info.IsDir() {
			return sibling, nil
		}
	}
	if bin, err := exec.LookPath("cgworker"); err == nil {
		return bin, nil
	}
	return "", fmt.Errorf("cgsweep: cgworker binary not found beside cgsweep or on $PATH; build it (go build ./cmd/cgworker) or pass -worker")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgsweep:", err)
	os.Exit(1)
}
