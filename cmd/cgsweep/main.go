// Command cgsweep runs the demographics figures as a resumable,
// optionally multi-process sweep. Rows stream to stdout in figure
// order the moment their cells complete, and the rendered bytes are
// identical for every backend configuration: -procs 4 against worker
// processes, -workers 8 in-process, or a resume over a half-filled
// store all print the same tables.
//
// Usage:
//
//	cgsweep                               # all demographic figures, in-process
//	cgsweep -figs 4.1,4.5,4.11            # a subset
//	cgsweep -procs 4                      # fan cells out to 4 cgworker processes
//	cgsweep -store cells/                 # persist cells; a rerun skips completed ones
//	cgsweep -max-heap-bytes 2GiB          # bound aggregate arena bytes per process
//	cgsweep -debug-addr localhost:6060    # live pprof + JSON progress while it runs
//	cgsweep -server http://host:8080      # run the sweep on a cgserve instead
//
// With -server the sweep is not run locally at all: the spec is POSTed
// to a cgserve and the streamed rows are written to stdout as they
// arrive. The output is byte-identical to a local run of the same
// figures — the server renders with the same code path — but cells are
// served from the server's shared cache, deduplicated against other
// clients' concurrent sweeps, and admitted under the server's heap
// budget. -client names this client in the server's fairness lanes.
//
// -debug-addr serves net/http/pprof and a JSON snapshot (/progress) of
// the sweep's live state — cells stored/computed/in-flight, queue
// depth, per-worker utilization, heap-reservation occupancy — without
// touching the deterministic stdout stream. Each completed figure also
// prints an elapsed-time and cells-per-second line to stderr.
//
// With -store, a killed sweep (power cut, OOM kill, ^C) is restarted
// with the same command line and completes from where it died: cells
// already on disk are served from the store (the stderr summary counts
// them) and only the missing ones recompute.
//
// With -procs N the coordinator spawns N cgworker children — found via
// -worker, next to the cgsweep binary, or on $PATH — each hosting its
// own engine pool of -workers shards. Cells in flight on a worker that
// dies are retried on the survivors.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/serve"
)

func main() {
	figsFlag := flag.String("figs", "", "comma-separated figure ids (default: all demographic figures)")
	procs := flag.Int("procs", 0, "worker processes to fan cells out to (0 = run in-process)")
	workers := flag.Int("workers", 0, "engine workers per process (0 = GOMAXPROCS; with -procs, per child)")
	storeDir := flag.String("store", "", "results store directory; completed cells are persisted and resumed")
	workerCmd := flag.String("worker", "", "cgworker binary for -procs (default: beside cgsweep, then $PATH)")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles, forwarded to -procs children (0 = min(GOMAXPROCS, 8), 1 = sequential; pass 1 when the sweep already saturates the cores); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, per process, pooled included (e.g. 2GiB; 0 = unlimited)")
	debugAddr := flag.String("debug-addr", "",
		"serve pprof and a JSON progress snapshot on this address (e.g. localhost:6060; empty = off)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing), forwarded to -procs children; output is identical either way")
	server := flag.String("server", "",
		"run the sweep on a cgserve at this URL (e.g. http://localhost:8080) instead of locally; output is byte-identical")
	client := flag.String("client", "",
		"client name reported to -server for its fairness lanes (default: host:pid)")
	tapeOn := flag.Bool("tape", true,
		"cache each (workload, size) row's event tape and replay it for the row's other cells, forwarded to -procs children; output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}

	var ids []string
	if *figsFlag != "" {
		ids = strings.Split(*figsFlag, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	figs, err := experiments.DemographicFigs(ids...)
	if err != nil {
		fatal(err)
	}

	if *server != "" {
		// Server mode: the sweep runs remotely; execution flags that
		// configure a local run are contradictions, not no-ops.
		if *procs > 0 || *storeDir != "" || *workers != 0 {
			fatal(fmt.Errorf("-server runs the sweep remotely; -procs, -workers and -store configure a local run and cannot be combined with it"))
		}
		name := *client
		if name == "" {
			host, _ := os.Hostname()
			name = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		spec := serve.Spec{Client: name, Figs: ids}
		if traceCfg != (msa.TraceConfig{}) {
			spec.Trace = &traceCfg
		}
		start := time.Now()
		stats, err := (&serve.Client{Base: *server}).Sweep(spec, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cgsweep: %d cells from %s in %v (%d computed, %d from store, %d deduped in flight)\n",
			stats.Cells, *server, time.Since(start).Round(time.Millisecond), stats.Computed, stats.Stored, stats.Deduped)
		return
	}
	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fatal(err)
	}

	// The progress counters exist regardless of -debug-addr: they feed
	// the per-figure stderr line too, and cost nothing on hot paths
	// (every update is at a cell boundary).
	prog := &obs.Progress{}

	var backend results.Backend
	var eng *engine.Engine
	if *procs > 0 {
		bin, err := workerBinary(*workerCmd)
		if err != nil {
			fatal(err)
		}
		perChild := *workers
		if perChild <= 0 {
			// Split the host across children rather than oversubscribing
			// it procs-fold.
			perChild = (engine.New(0).Workers() + *procs - 1) / *procs
		}
		argv := []string{bin, "-workers", strconv.Itoa(perChild), "-max-heap-bytes", strconv.FormatInt(heapCap, 10),
			"-trace-workers", strconv.Itoa(*traceWorkers), "-trace-min-live", strconv.Itoa(*traceMinLive),
			"-tape=" + strconv.FormatBool(*tapeOn)}
		if *overlap {
			argv = append(argv, "-overlap")
		}
		backend = &dist.Coordinator{Spawn: dist.Command(argv, os.Stderr), Procs: *procs, Obs: prog}
	} else {
		eng = engine.New(*workers).SetMaxHeapBytes(heapCap).SetProgress(prog).SetTrace(traceCfg).SetTapeCache(*tapeOn)
		backend = results.Local{Eng: eng, Obs: prog}
	}

	var resuming *results.Resuming
	if *storeDir != "" {
		store, err := results.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		resuming = &results.Resuming{Store: store, Next: backend, Obs: prog}
		backend = resuming
	}
	backend = results.Observed{Next: backend, Obs: prog}

	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, func() obs.Snapshot {
			ps := prog.Snapshot()
			snap := obs.Snapshot{Provenance: obs.Capture(obs.Nanotime()), Progress: &ps}
			if eng != nil {
				snap.Gauges = map[string]int64{
					"heap_reserved_bytes": eng.ReservedBytes(),
					"heap_max_bytes":      eng.MaxHeapBytes(),
				}
			}
			return snap
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cgsweep: debug endpoint on http://%s\n", srv.Addr())
	}

	figStart := time.Now()
	var cellsDone int64
	report := func(f experiments.SweepFig) {
		elapsed := time.Since(figStart)
		s := prog.Snapshot()
		cells := s.CellsStored + s.CellsComputed - cellsDone
		rate := float64(cells) / elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "cgsweep: fig %s: %d cells in %v (%.1f cells/s)\n",
			f.ID, cells, elapsed.Round(time.Millisecond), rate)
		figStart = time.Now()
		cellsDone += cells
	}
	if err := experiments.SweepProgress(backend, figs, os.Stdout, report); err != nil {
		fatal(err)
	}
	if resuming != nil {
		stored, computed := resuming.Stats()
		fmt.Fprintf(os.Stderr, "cgsweep: %d cells from store, %d computed\n", stored, computed)
	}
}

// workerBinary resolves the cgworker executable: an explicit -worker
// path wins, then a cgworker beside our own binary (the `go build -o
// bin/ ./cmd/...` layout), then $PATH.
func workerBinary(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "cgworker")
		if info, err := os.Stat(sibling); err == nil && !info.IsDir() {
			return sibling, nil
		}
	}
	if bin, err := exec.LookPath("cgworker"); err == nil {
		return bin, nil
	}
	return "", fmt.Errorf("cgsweep: cgworker binary not found beside cgsweep or on $PATH; build it (go build ./cmd/cgworker) or pass -worker")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgsweep:", err)
	os.Exit(1)
}
