// Command cgworker is one worker process of a distributed sweep: it
// speaks internal/dist's NDJSON protocol on stdin/stdout, runs each
// received cell on its own engine pool, and streams serialised
// outcomes back. cgsweep -procs N spawns N of these; there is no
// reason to run one by hand except to poke the protocol:
//
//	echo '{"type":"job","id":0,"job":{"Workload":"compress","Size":1,"Collector":"cg"}}' | cgworker
//
// Usage:
//
//	cgworker [-workers N] [-max-heap-bytes SIZE] [-debug-addr ADDR]
//
// -workers sets the in-process pool (and the advertised capacity the
// coordinator's flow-control window uses); -max-heap-bytes caps the
// aggregate arena bytes of concurrently admitted cells, so a host
// running several workers can bound each one's footprint. -debug-addr
// serves net/http/pprof and a JSON progress snapshot (/progress) for
// the lifetime of the process — the way to watch or profile a worker
// mid-sweep without touching its stdout protocol stream.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/msa"
	"repro/internal/obs"
)

func main() {
	workers := flag.Int("workers", 1, "engine worker count for this process (0 = GOMAXPROCS)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, pooled included (e.g. 2GiB; 0 = unlimited)")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = min(GOMAXPROCS, 8), 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	debugAddr := flag.String("debug-addr", "",
		"serve pprof and a JSON progress snapshot on this address (e.g. localhost:6061; empty = off)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing); output is identical either way")
	tapeOn := flag.Bool("tape", true,
		"cache each (workload, size) row's event tape and replay it for the row's other cells; output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}

	cap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgworker:", err)
		os.Exit(2)
	}
	eng := engine.New(*workers).SetMaxHeapBytes(cap).SetTrace(traceCfg).SetTapeCache(*tapeOn)

	var prog *obs.Progress
	if *debugAddr != "" {
		prog = &obs.Progress{}
		srv, err := obs.Serve(*debugAddr, func() obs.Snapshot {
			return obs.Snapshot{
				Provenance: obs.Capture(obs.Nanotime()),
				Progress:   progSnapshot(prog),
				Gauges: map[string]int64{
					"heap_reserved_bytes": eng.ReservedBytes(),
					"heap_max_bytes":      eng.MaxHeapBytes(),
				},
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cgworker:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "cgworker: debug endpoint on http://%s\n", srv.Addr())
	}

	if err := dist.Serve(os.Stdin, os.Stdout, eng, prog); err != nil {
		fmt.Fprintln(os.Stderr, "cgworker:", err)
		os.Exit(1)
	}
}

func progSnapshot(p *obs.Progress) *obs.ProgressSnapshot {
	s := p.Snapshot()
	return &s
}
