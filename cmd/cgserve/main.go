// Command cgserve is the long-running sweep server: cgsweep promoted
// from a batch CLI to a service. Clients POST sweep specs and rows
// stream back as NDJSON while cells complete — byte-identical to a
// local batch run — with one shared engine and one shared
// content-addressed cell store behind every client:
//
//   - cells any client ever computed are disk hits for all later
//     clients (and are served directly at GET /cell/{key}, where the
//     cell key doubles as an immutable ETag);
//   - cells requested concurrently by several clients compute exactly
//     once (in-flight dedup), with every requesting stream receiving
//     the outcome;
//   - admission is bounded by -max-heap-bytes byte reservations plus a
//     -max-inflight execution cap, and a per-client round-robin
//     scheduler keeps one huge sweep from starving small ones.
//
// Usage:
//
//	cgserve -addr localhost:8080 -store cells/
//	cgsweep -server http://localhost:8080 -figs 4.1,4.5   # a client
//	curl -s localhost:8080/progress                        # live counters + fairness lanes
//	curl -s localhost:8080/healthz                         # liveness + drain state
//
// The listener also serves /progress (live JSON counters with
// per-client lanes), /healthz and net/http/pprof. On SIGTERM (or ^C)
// the server drains gracefully: admission stops (healthz turns 503,
// new sweeps are refused), accepted streams run to completion, then
// the process exits 0 — no client stream is ever truncated by a
// deploy.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/engine"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address for the sweep API, /progress, /healthz and pprof")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "shared cell store directory (empty = a temporary directory, discarded on exit)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, pooled included (e.g. 2GiB; 0 = unlimited)")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent cell executions (0 = engine worker count)")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = automatic, 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator; output is identical either way")
	tapeOn := flag.Bool("tape", true,
		"cache each (workload, size) row's event tape and replay it for the row's other cells; output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}

	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fatal(err)
	}
	prog := &obs.Progress{}
	eng := engine.New(*workers).SetMaxHeapBytes(heapCap).SetProgress(prog).SetTrace(traceCfg).SetTapeCache(*tapeOn)

	dir, tempStore := *storeDir, false
	if dir == "" {
		if dir, err = os.MkdirTemp("", "cgserve-cells-*"); err != nil {
			fatal(err)
		}
		tempStore = true
	}
	store, err := results.Open(dir)
	if err != nil {
		fatal(err)
	}

	srv := serve.New(serve.Config{Engine: eng, Store: store, Progress: prog, MaxInFlight: *maxInFlight})
	obsSrv, err := obs.Serve(*addr, func() obs.Snapshot {
		ps := prog.Snapshot()
		return obs.Snapshot{
			Provenance: obs.Capture(obs.Nanotime()),
			Progress:   &ps,
			Gauges: map[string]int64{
				"heap_reserved_bytes": eng.ReservedBytes(),
				"heap_max_bytes":      eng.MaxHeapBytes(),
			},
		}
	})
	if err != nil {
		fatal(err)
	}
	srv.Register(obsSrv.Mux())
	obsSrv.SetHealth(srv.Health)
	fmt.Fprintf(os.Stderr, "cgserve: serving on http://%s (store %s)\n", obsSrv.Addr(), dir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	fmt.Fprintln(os.Stderr, "cgserve: draining (in-flight sweeps run to completion; repeat to force exit)")
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "cgserve: forced exit")
		os.Exit(1)
	}()
	srv.Drain() // healthz flips to 503; new sweeps are refused
	srv.Wait()  // accepted streams finish and flush
	obsSrv.Close()
	if tempStore {
		os.RemoveAll(dir)
	}
	fmt.Fprintln(os.Stderr, "cgserve: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgserve:", err)
	os.Exit(1)
}
