package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/collectors"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/tape"
	"repro/internal/vm"
	"repro/internal/workload"
)

// runTapeBenchMode times the three ways a (workload, size) cell can be
// driven — the per-cell win the engine's tape cache banks on:
//
//	Tape/<wl>/<col>/sizeN/drive    the workload analog's driver logic
//	Tape/<wl>/<col>/sizeN/record   the same, with a Recorder attached
//	                               (what a cache miss pays over drive)
//	Tape/<wl>/<col>/sizeN/replay   the recorded tape through a Replayer
//	                               (what every cache hit pays instead)
//
// All three variants run on one persistent runtime via Reset — the
// pooled steady state — so the spread between drive and replay is pure
// driver overhead: RNG draws, workload bookkeeping, closure dispatch.
// The replayed runtime state is bit-identical to the driven one (the
// equivalence tests pin that), so replay is a legitimate stand-in, not
// an approximation. Workloads default to the driver-heavy trio the
// tape cache targets first (compress, jack, db); -bench-workloads and
// -bench-collectors reshape the grid, with the first collector spec
// taken (one collector — the variants compare against each other).
// BENCH_seed_tape.json is the committed capture.
func runTapeBenchMode(cfg benchConfig) error {
	if err := setBenchTime(cfg.benchTime); err != nil {
		return err
	}
	var sizes []int
	for _, s := range strings.Split(cfg.sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -bench-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	wlsCSV := cfg.wlsCSV
	if wlsCSV == "" {
		wlsCSV = "compress,jack,db"
	}
	var wls []workload.Spec
	for _, name := range strings.Split(wlsCSV, ",") {
		spec, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		wls = append(wls, spec)
	}
	col := strings.TrimSpace(strings.Split(cfg.colsCSV, ",")[0])
	mk, err := collectors.Parse(col)
	if err != nil {
		return err
	}

	report := benchfmt.NewReport(cfg.benchTime)
	add := func(name string, r testing.BenchmarkResult) {
		report.Add(benchfmt.Entry{
			Name:        name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-52s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, report.Benchmarks[len(report.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	for _, spec := range wls {
		for _, size := range sizes {
			spec, size := spec, size
			hb := spec.HeapBytes(size)
			rt := vm.New(heap.New(hb), mk())
			reset := func() {
				ev := mk()
				if c, ok := ev.Collector.(interface{ SetTraceConfig(msa.TraceConfig) }); ok {
					c.SetTraceConfig(cfg.trace)
				}
				rt.Reset(ev)
			}

			// Record the cell's tape once, outside any timing window;
			// the replay variant re-drives it every iteration.
			reset()
			meta := tape.Meta{Workload: spec.Name, Size: size,
				Threads: spec.Threads(size), HeapBytes: hb}
			rec := tape.NewRecorder(rt, meta)
			spec.Run(rt, size)
			rt.Quiesce()
			t := rec.Finish()
			rp := tape.NewReplayer(t)

			prefix := fmt.Sprintf("Tape/%s/%s/size%d", spec.Name, col, size)
			add(prefix+"/drive", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					reset()
					spec.Run(rt, size)
					rt.Quiesce()
				}
			}))
			add(prefix+"/record", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					reset()
					r := tape.NewRecorder(rt, meta)
					spec.Run(rt, size)
					rt.Quiesce()
					r.Finish()
				}
			}))
			add(prefix+"/replay", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					reset()
					if err := rp.Run(rt); err != nil {
						b.Fatal(err)
					}
					rt.Quiesce()
				}
			}))
		}
	}
	if err := report.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cgbench: wrote %d benchmarks to %s\n", len(report.Benchmarks), cfg.out)
	return warnAgainstBaseline(cfg, report)
}
