package main

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/heap"
)

// -bench-arena: the allocator micro-benchmark family. Where the
// Workload family times whole benchmark analogs end to end, this one
// isolates the arena hot path the slab redesign targets: steady-state
// alloc/free per size class, FIFO churn (the recycle-index pattern:
// free the oldest live block, allocate a fresh one), a mixed-
// demographics cell whose size sequence mimics the object demographics
// the thesis reports (small-heavy with an occasional page-crossing
// block), the large-object page path, and the O(1) Info() read. Every
// cell also runs against the retired first-fit SpanArena — the
// committed reference model — so a report quantifies the redesign
// directly: Arena/... vs SpanArena/... under identical scripts.
// BENCH_seed_arena.json is the committed capture CI warns against.

// benchArenaOps is the operation surface shared by the slab arena and
// the first-fit reference model.
type benchArenaOps interface {
	Alloc(size int) (int, error)
	Free(addr, size int)
	Reset()
}

// arenaBenchCapacity keeps both allocators on the 4096-byte page
// geometry the demographics shards use, while staying small enough
// that the churn windows exercise free-list reuse rather than virgin
// pages.
const arenaBenchCapacity = 1 << 20

// mixedSizes is the deterministic mixed-demographics request sequence:
// dominated by small blocks (the thesis's object populations are), with
// mid-sized records and an occasional page-crossing block to keep the
// large path in the loop.
var mixedSizes = []int{
	16, 24, 16, 32, 48, 16, 24, 64, 16, 40,
	96, 16, 24, 32, 256, 16, 48, 24, 640, 16,
	32, 24, 128, 16, 8192,
}

func benchAllocFree(mk func() benchArenaOps, size int) func(*testing.B) {
	return func(b *testing.B) {
		a := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := a.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			a.Free(p, size)
		}
	}
}

func benchChurn(mk func() benchArenaOps, size, window int) func(*testing.B) {
	return func(b *testing.B) {
		a := mk()
		addrs := make([]int, window)
		for i := range addrs {
			p, err := a.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			addrs[i] = p
		}
		idx := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Free(addrs[idx], size)
			p, err := a.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			addrs[idx] = p
			idx++
			if idx == window {
				idx = 0
			}
		}
	}
}

// benchFragmented is the populated-heap pattern collection cycles
// produce: churn slots of one class interleaved with 8-byte pin
// objects that stay live for the whole benchmark, half the slots freed.
// The pins make the fragmentation structural — a freed slot can never
// coalesce with its neighbours — so a first-fit span list holds
// thousands of entries for the entire timed loop and every Free pays an
// ordered insert into it, while the slab arena's per-class free masks
// stay O(1) regardless of hole count.
func benchFragmented(mk func() benchArenaOps, size int) func(*testing.B) {
	return func(b *testing.B) {
		a := mk()
		slots := arenaBenchCapacity / (2 * (size + 8))
		addrs := make([]int, slots)
		for i := range addrs {
			p, err := a.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			addrs[i] = p
			if _, err := a.Alloc(8); err != nil { // the pin, never freed
				b.Fatal(err)
			}
		}
		live := make([]int, 0, slots/2)
		for i, p := range addrs {
			if i%2 == 0 {
				a.Free(p, size)
			} else {
				live = append(live, p)
			}
		}
		idx := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := a.Alloc(size)
			if err != nil {
				b.Fatal(err)
			}
			a.Free(live[idx], size)
			live[idx] = p
			idx = (idx + 7919) % len(live)
		}
	}
}

func benchMixed(mk func() benchArenaOps, window int) func(*testing.B) {
	return func(b *testing.B) {
		a := mk()
		type ext struct{ addr, size int }
		live := make([]ext, window)
		next := 0
		take := func() int {
			s := mixedSizes[next%len(mixedSizes)]
			next++
			return s
		}
		for i := range live {
			s := take()
			p, err := a.Alloc(s)
			if err != nil {
				b.Fatal(err)
			}
			live[i] = ext{p, s}
		}
		idx := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Free(live[idx].addr, live[idx].size)
			s := take()
			p, err := a.Alloc(s)
			if err != nil {
				b.Fatal(err)
			}
			live[idx] = ext{p, s}
			idx++
			if idx == window {
				idx = 0
			}
		}
	}
}

// benchInfoSink keeps Info() calls observable so the loop cannot be
// dead-code eliminated.
var benchInfoSink heap.Info

func benchInfo() func(*testing.B) {
	return func(b *testing.B) {
		a := heap.NewArena(arenaBenchCapacity)
		for _, s := range mixedSizes {
			if _, err := a.Alloc(s); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchInfoSink = a.Info()
		}
	}
}

// runArenaBenchMode times the arena family and writes the same benchfmt
// report (and optional baseline diff) as the Workload family.
func runArenaBenchMode(cfg benchConfig) error {
	if err := setBenchTime(cfg.benchTime); err != nil {
		return err
	}
	subjects := []struct {
		family string
		mk     func() benchArenaOps
	}{
		{"Arena", func() benchArenaOps { return heap.NewArena(arenaBenchCapacity) }},
		{"SpanArena", func() benchArenaOps { return heap.NewSpanArena(arenaBenchCapacity) }},
	}
	report := benchfmt.NewReport(cfg.benchTime)
	add := func(name string, body func(*testing.B)) {
		r := testing.Benchmark(body)
		report.Add(benchfmt.Entry{
			Name:        name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-52s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, report.Benchmarks[len(report.Benchmarks)-1].NsPerOp,
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	for _, sub := range subjects {
		for _, size := range []int{8, 16, 32, 64, 256, 1024, 4096} {
			add(fmt.Sprintf("%s/alloc-free/c%d", sub.family, size), benchAllocFree(sub.mk, size))
		}
		add(fmt.Sprintf("%s/alloc-free/large%d", sub.family, 4*4096), benchAllocFree(sub.mk, 4*4096))
		for _, size := range []int{16, 64, 256} {
			add(fmt.Sprintf("%s/churn/c%d", sub.family, size), benchChurn(sub.mk, size, 256))
		}
		for _, size := range []int{16, 64, 256} {
			add(fmt.Sprintf("%s/frag/c%d", sub.family, size), benchFragmented(sub.mk, size))
		}
		add(sub.family+"/mixed", benchMixed(sub.mk, 192))
	}
	add("Arena/info", benchInfo())
	if err := report.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cgbench: wrote %d benchmarks to %s\n", len(report.Benchmarks), cfg.out)
	return warnAgainstBaseline(cfg, report)
}
