// Command cgbench regenerates every table and figure of the thesis's
// evaluation (Chapter 4 and Appendix A) and prints them in order. The
// (workload × size × collector) matrix runs on the sharded execution
// engine; -workers controls the pool size.
//
// Usage:
//
//	cgbench                 # everything, saturating the host
//	cgbench -workers 1      # sequential (paper-grade absolute timings)
//	cgbench -fig 4.1        # a single figure
//	cgbench -skip-timing    # demographics only (fast, deterministic)
//	cgbench -skip-large     # omit the size-100 sweeps
//
// Demographics tables are byte-identical for any -workers value; only
// the wall-clock figures (4.7, 4.8, 4.10, 4.12, A.5-A.7) vary.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "regenerate a single figure (e.g. 4.1, 4.5, A.2)")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	skipTiming := flag.Bool("skip-timing", false, "skip the wall-clock experiments (4.7, 4.8, 4.10, 4.12, A.5-A.7)")
	skipLarge := flag.Bool("skip-large", false, "skip the size-100 sweeps (4.4, 4.9, 4.10 large column, A.4, A.7)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"aggregate arena cap for concurrently admitted cells (e.g. 2GiB; 0 = unlimited)")
	flag.Parse()

	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgbench:", err)
		os.Exit(2)
	}
	eng := engine.New(*workers).SetMaxHeapBytes(heapCap)

	type gen struct {
		id     string
		timing bool
		large  bool
		render func() string
	}
	gens := []gen{
		{"2.1", false, false, experiments.Example21},
		{"3.1", false, false, experiments.Example31},
		{"4.1", false, false, func() string { return experiments.Fig41(eng).String() }},
		{"4.2", false, false, func() string { return experiments.Fig42_44(eng, 1).String() }},
		{"4.3", false, false, func() string { return experiments.Fig42_44(eng, 10).String() }},
		{"4.4", false, true, func() string { return experiments.Fig42_44(eng, 100).String() }},
		{"4.5", false, false, func() string { return experiments.Fig45(eng).String() }},
		{"4.6", false, false, func() string { return experiments.Fig46(eng).String() }},
		{"4.7", true, false, func() string { return experiments.Fig47_48(eng, 1).String() }},
		{"4.8", true, false, func() string { return experiments.Fig47_48(eng, 10).String() }},
		{"4.9", false, true, func() string { return experiments.Fig49(eng).String() }},
		{"4.10", true, true, func() string { return experiments.Fig410(eng, []int{1, 10, 100}).String() }},
		{"4.11", false, false, func() string { return experiments.Fig411(eng).String() }},
		{"4.12", true, false, func() string { return experiments.Fig412(eng).String() }},
		{"4.13", false, false, func() string { return experiments.Fig413(eng).String() }},
		{"A.1", false, false, func() string { return experiments.FigA1(eng).String() }},
		{"A.2", false, false, func() string { return experiments.FigA2_4(eng, 1).String() }},
		{"A.3", false, false, func() string { return experiments.FigA2_4(eng, 10).String() }},
		{"A.4", false, true, func() string { return experiments.FigA2_4(eng, 100).String() }},
		{"A.5", true, false, func() string { return experiments.FigA5_7(eng, 1).String() }},
		{"A.6", true, false, func() string { return experiments.FigA5_7(eng, 10).String() }},
		{"A.7", true, true, func() string { return experiments.FigA5_7(eng, 100).String() }},
	}

	matched := false
	for _, g := range gens {
		if *fig != "" && g.id != *fig {
			continue
		}
		if *fig == "" && ((*skipTiming && g.timing) || (*skipLarge && g.large)) {
			continue
		}
		matched = true
		fmt.Println(g.render())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "cgbench: unknown figure %q\n", *fig)
		os.Exit(1)
	}
}
