// Command cgbench regenerates every table and figure of the thesis's
// evaluation (Chapter 4 and Appendix A) and prints them in order. The
// (workload × size × collector) matrix runs on the sharded execution
// engine; -workers controls the pool size.
//
// Usage:
//
//	cgbench                 # everything, saturating the host
//	cgbench -workers 1      # sequential (paper-grade absolute timings)
//	cgbench -fig 4.1        # a single figure
//	cgbench -skip-timing    # demographics only (fast, deterministic)
//	cgbench -skip-large     # omit the size-100 sweeps
//
// Demographics tables are byte-identical for any -workers value; only
// the wall-clock figures (4.7, 4.8, 4.10, 4.12, A.5-A.7) vary.
//
// -bench switches cgbench into micro-benchmark mode: it times one run
// of every workload analog under every collector with
// testing.Benchmark and writes a machine-readable JSON report
// (internal/benchfmt) instead of rendering figures. BENCH_seed.json at
// the repo root is such a report, recorded from the pre-slab hot path;
// -baseline diffs a fresh run against it and warns — never fails — on
// regressions past -warn-pct:
//
//	cgbench -bench BENCH.json                          # record
//	cgbench -bench /tmp/b.json -baseline BENCH_seed.json
//	cgbench -bench /tmp/b.json -bench-sizes 1 -bench-time 100ms
//
// -pooled switches the cells to the engine's pooled execution path
// (Runtime.Reset via ExecRelease) — what sweeps actually pay in steady
// state, as opposed to the default cold per-iteration construction.
// BENCH_seed_pooled.json is the committed pooled-path baseline.
// -bench-gc-every G adds a cycle-heavy variant of every cell (a full
// collection forced every G runtime operations, name suffix /gcG), and
// -bench-workloads narrows the matrix:
//
//	cgbench -bench /tmp/b.json -pooled -baseline BENCH_seed_pooled.json
//	cgbench -bench /tmp/b.json -pooled -bench-gc-every 2000 -bench-workloads jess
//
// -bench-arena switches -bench to the allocator micro-benchmark family
// (per-size-class alloc/free, churn, pinned fragmentation and mixed
// demographics, slab arena vs the first-fit SpanArena reference model;
// DESIGN.md §8). BENCH_seed_arena.json is the committed capture:
//
//	cgbench -bench /tmp/a.json -bench-arena -baseline BENCH_seed_arena.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/collectors"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "regenerate a single figure (e.g. 4.1, 4.5, A.2)")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	skipTiming := flag.Bool("skip-timing", false, "skip the wall-clock experiments (4.7, 4.8, 4.10, 4.12, A.5-A.7)")
	skipLarge := flag.Bool("skip-large", false, "skip the size-100 sweeps (4.4, 4.9, 4.10 large column, A.4, A.7)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, pooled included (e.g. 2GiB; 0 = unlimited)")
	benchOut := flag.String("bench", "", "run the Workload micro-benchmarks and write a JSON report to this path (skips figure rendering)")
	benchTime := flag.Duration("bench-time", 300*time.Millisecond, "per-benchmark measurement budget for -bench")
	benchSizes := flag.String("bench-sizes", "1,10", "comma-separated workload sizes for -bench")
	benchCols := flag.String("bench-collectors", "cg,cg+recycle,msa,gen", "comma-separated collector specs for -bench")
	benchWLs := flag.String("bench-workloads", "", "comma-separated workload names for -bench (empty = all)")
	benchGCEvery := flag.Uint64("bench-gc-every", 0,
		"also time a cycle-heavy /gcN variant of every -bench cell (full collection every N runtime ops; 0 = off)")
	pooled := flag.Bool("pooled", false,
		"time the engine's pooled execution path (Runtime.Reset steady state) instead of cold per-iteration construction; cells are named Workload-pooled/...")
	benchArena := flag.Bool("bench-arena", false,
		"with -bench, time the arena alloc/free/churn micro-benchmark family (slab arena vs the first-fit reference model) instead of the Workload family")
	benchTape := flag.Bool("bench-tape", false,
		"with -bench, time the event-tape family instead: each cell driven normally, driven while recording, and replayed from its tape (drive/record/replay variants; DESIGN.md §12)")
	benchOverlap := flag.Bool("bench-overlap", false,
		"with -bench, time the pause-focused family instead: the cycle-heavy -bench-gc-every cells through the pooled engine, reporting p95/max stop-the-world pause from the cycle timelines alongside ns/op (pair with -overlap to measure the overlapped schedule)")
	baseline := flag.String("baseline", "", "baseline report to compare the -bench run against")
	warnPct := flag.Float64("warn-pct", 15, "ns/op regression percentage that triggers a warning under -baseline")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = min(GOMAXPROCS, 8), 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing); output is identical either way")
	testing.Init()
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}

	if *benchOut != "" {
		cfg := benchConfig{
			out:       *benchOut,
			benchTime: *benchTime,
			sizesCSV:  *benchSizes,
			colsCSV:   *benchCols,
			wlsCSV:    *benchWLs,
			gcEvery:   *benchGCEvery,
			pooled:    *pooled,
			baseline:  *baseline,
			warnPct:   *warnPct,
			trace:     traceCfg,
		}
		run := runBenchMode
		if *benchArena {
			run = runArenaBenchMode
		}
		if *benchOverlap {
			run = runOverlapBenchMode
		}
		if *benchTape {
			run = runTapeBenchMode
		}
		if err := run(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "cgbench:", err)
			os.Exit(2)
		}
		return
	}

	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgbench:", err)
		os.Exit(2)
	}
	eng := engine.New(*workers).SetMaxHeapBytes(heapCap).SetTrace(traceCfg)

	type gen struct {
		id     string
		timing bool
		large  bool
		render func() string
	}
	gens := []gen{
		{"2.1", false, false, experiments.Example21},
		{"3.1", false, false, experiments.Example31},
		{"4.1", false, false, func() string { return experiments.Fig41(eng).String() }},
		{"4.2", false, false, func() string { return experiments.Fig42_44(eng, 1).String() }},
		{"4.3", false, false, func() string { return experiments.Fig42_44(eng, 10).String() }},
		{"4.4", false, true, func() string { return experiments.Fig42_44(eng, 100).String() }},
		{"4.5", false, false, func() string { return experiments.Fig45(eng).String() }},
		{"4.6", false, false, func() string { return experiments.Fig46(eng).String() }},
		{"4.7", true, false, func() string { return experiments.Fig47_48(eng, 1).String() }},
		{"4.8", true, false, func() string { return experiments.Fig47_48(eng, 10).String() }},
		{"4.9", false, true, func() string { return experiments.Fig49(eng).String() }},
		{"4.10", true, true, func() string { return experiments.Fig410(eng, []int{1, 10, 100}).String() }},
		{"4.11", false, false, func() string { return experiments.Fig411(eng).String() }},
		{"4.12", true, false, func() string { return experiments.Fig412(eng).String() }},
		{"4.13", false, false, func() string { return experiments.Fig413(eng).String() }},
		{"A.1", false, false, func() string { return experiments.FigA1(eng).String() }},
		{"A.2", false, false, func() string { return experiments.FigA2_4(eng, 1).String() }},
		{"A.3", false, false, func() string { return experiments.FigA2_4(eng, 10).String() }},
		{"A.4", false, true, func() string { return experiments.FigA2_4(eng, 100).String() }},
		{"A.5", true, false, func() string { return experiments.FigA5_7(eng, 1).String() }},
		{"A.6", true, false, func() string { return experiments.FigA5_7(eng, 10).String() }},
		{"A.7", true, true, func() string { return experiments.FigA5_7(eng, 100).String() }},
	}

	matched := false
	for _, g := range gens {
		if *fig != "" && g.id != *fig {
			continue
		}
		if *fig == "" && ((*skipTiming && g.timing) || (*skipLarge && g.large)) {
			continue
		}
		matched = true
		fmt.Println(g.render())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "cgbench: unknown figure %q\n", *fig)
		os.Exit(1)
	}
}

// benchConfig collects the -bench mode knobs.
type benchConfig struct {
	out       string
	benchTime time.Duration
	sizesCSV  string
	colsCSV   string
	wlsCSV    string
	gcEvery   uint64
	pooled    bool
	baseline  string
	warnPct   float64
	trace     msa.TraceConfig
}

// runBenchMode times one run of every (workload, collector, size) cell
// with testing.Benchmark — the same loop body as bench_test.go's
// BenchmarkWorkload / BenchmarkWorkloadPooled, so the JSON report and
// `go test -bench Workload` measure the identical thing — writes the
// report to out, and optionally warns against a baseline. Regressions
// never fail the run: benchmark noise on shared CI hosts would make a
// hard gate flaky, so the job surfaces WARN lines and humans (or the
// PR diff) decide.
//
// The default family constructs a fresh heap and runtime per iteration
// (the cold path a standalone run pays); -pooled instead drives the
// cell through a persistent engine's ExecRelease, so after the first
// iteration every run starts from Runtime.Reset on a pooled shard —
// the steady state a store-backed sweep pays per cell. -bench-gc-every
// appends a /gcN variant of each cell with a full collection forced
// every N runtime operations: those cells spend their time in the
// collection cycle itself rather than the mutator event path.
// setBenchTime points testing.Benchmark's measurement budget at the
// -bench-time value; both benchmark families go through it.
func setBenchTime(d time.Duration) error {
	return flag.Set("test.benchtime", d.String())
}

// warnAgainstBaseline diffs report against cfg.baseline (when set) and
// prints WARN lines for regressions past cfg.warnPct. Regressions never
// fail the run: benchmark noise on shared CI hosts would make a hard
// gate flaky, so the job surfaces WARN lines and humans (or the PR
// diff) decide.
func warnAgainstBaseline(cfg benchConfig, report *benchfmt.Report) error {
	if cfg.baseline == "" {
		return nil
	}
	base, err := benchfmt.ReadFile(cfg.baseline)
	if err != nil {
		return err
	}
	deltas := benchfmt.Compare(base, report)
	regs := benchfmt.Regressions(deltas, cfg.warnPct)
	for _, d := range regs {
		fmt.Fprintf(os.Stderr, "WARN: %s regressed %.1f%% (%.0f -> %.0f ns/op)\n",
			d.Name, d.Pct, d.Base, d.Cur)
	}
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "cgbench: no benchmark regressed more than %.0f%% vs %s (%d compared)\n",
			cfg.warnPct, cfg.baseline, len(deltas))
	}
	return nil
}

func runBenchMode(cfg benchConfig) error {
	if err := setBenchTime(cfg.benchTime); err != nil {
		return err
	}
	var sizes []int
	for _, s := range strings.Split(cfg.sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -bench-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	wls := workload.All()
	if cfg.wlsCSV != "" {
		var picked []workload.Spec
		for _, name := range strings.Split(cfg.wlsCSV, ",") {
			spec, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			picked = append(picked, spec)
		}
		wls = picked
	}
	gcVariants := []uint64{0}
	if cfg.gcEvery > 0 {
		gcVariants = append(gcVariants, cfg.gcEvery)
	}
	family := "Workload"
	if cfg.pooled {
		family = "Workload-pooled"
	}
	// One single-worker engine for the whole pooled family: its shard
	// pool is what turns per-iteration construction into Reset.
	eng := engine.New(1).SetTrace(cfg.trace)
	report := benchfmt.NewReport(cfg.benchTime)
	for _, spec := range wls {
		for _, col := range strings.Split(cfg.colsCSV, ",") {
			col = strings.TrimSpace(col)
			mk, err := collectors.Parse(col)
			if err != nil {
				return err
			}
			for _, size := range sizes {
				for _, gc := range gcVariants {
					spec, size, gc := spec, size, gc
					var r testing.BenchmarkResult
					if cfg.pooled {
						job := engine.Job{
							Workload:  spec.Name,
							Size:      size,
							Collector: col,
							HeapBytes: engine.TightHeap,
							GCEvery:   gc,
						}
						r = testing.Benchmark(func(b *testing.B) {
							b.ReportAllocs()
							check := func(r engine.Result) {
								if r.Err != nil {
									b.Fatal(r.Err)
								}
							}
							// Warm the shard pool so iteration 1 is not
							// the one cold construction of the family.
							eng.ExecRelease(job, check)
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								eng.ExecRelease(job, check)
							}
						})
					} else {
						r = testing.Benchmark(func(b *testing.B) {
							b.ReportAllocs()
							for i := 0; i < b.N; i++ {
								ev := mk()
								ev.GCEvery = gc
								if c, ok := ev.Collector.(interface{ SetTraceConfig(msa.TraceConfig) }); ok {
									c.SetTraceConfig(cfg.trace)
								}
								rt := vm.New(heap.New(spec.HeapBytes(size)), ev)
								spec.Run(rt, size)
								rt.Quiesce()
							}
						})
					}
					name := fmt.Sprintf("%s/%s/%s/size%d", family, spec.Name, col, size)
					if gc > 0 {
						name = fmt.Sprintf("%s/gc%d", name, gc)
					}
					report.Add(benchfmt.Entry{
						Name:        name,
						Iters:       r.N,
						NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
						BytesPerOp:  r.AllocedBytesPerOp(),
						AllocsPerOp: r.AllocsPerOp(),
					})
					fmt.Fprintf(os.Stderr, "%-52s %12.0f ns/op %10d B/op %8d allocs/op\n",
						name, report.Benchmarks[len(report.Benchmarks)-1].NsPerOp,
						r.AllocedBytesPerOp(), r.AllocsPerOp())
				}
			}
		}
	}
	if err := report.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cgbench: wrote %d benchmarks to %s\n", len(report.Benchmarks), cfg.out)
	return warnAgainstBaseline(cfg, report)
}

// runOverlapBenchMode times the cycle-heavy /gcN cells (the
// -bench-gc-every grid) through the pooled engine and reports the
// stop-the-world pause distribution of the cycle timelines alongside
// ns/op: p95 and max pause per cell, merged over every timed
// iteration. Recorded with overlap off this is the stop-the-world
// baseline committed as BENCH_seed_overlap.json; with -overlap the
// same cells run the snapshot-at-the-beginning schedule, so the
// baseline comparison's pause lines are the measured overlap win (or
// loss). Pause durations are wall-clock and vary run to run; like
// every other cgbench gate, the baseline step warns and never fails.
func runOverlapBenchMode(cfg benchConfig) error {
	if err := setBenchTime(cfg.benchTime); err != nil {
		return err
	}
	gc := cfg.gcEvery
	if gc == 0 {
		// The family exists to measure collection cycles; without an
		// explicit -bench-gc-every, force one every 2000 ops so cells
		// spend their time in the cycle path rather than the mutator.
		gc = 2000
	}
	var sizes []int
	for _, s := range strings.Split(cfg.sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -bench-sizes entry %q", s)
		}
		sizes = append(sizes, n)
	}
	wls := workload.All()
	if cfg.wlsCSV != "" {
		var picked []workload.Spec
		for _, name := range strings.Split(cfg.wlsCSV, ",") {
			spec, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			picked = append(picked, spec)
		}
		wls = picked
	}
	// One single-worker engine: the pooled Reset steady state, with the
	// run's trace configuration (including -overlap) applied per job.
	eng := engine.New(1).SetTrace(cfg.trace)
	report := benchfmt.NewReport(cfg.benchTime)
	for _, spec := range wls {
		for _, col := range strings.Split(cfg.colsCSV, ",") {
			col = strings.TrimSpace(col)
			if _, err := collectors.Parse(col); err != nil {
				return err
			}
			for _, size := range sizes {
				job := engine.Job{
					Workload:  spec.Name,
					Size:      size,
					Collector: col,
					HeapBytes: engine.TightHeap,
					GCEvery:   gc,
				}
				var cycles obs.CycleStats
				var runErr error
				collect := func(r engine.Result) {
					if r.Err != nil {
						runErr = r.Err
						return
					}
					cs := r.RT.Timeline().Stats()
					cycles.Merge(&cs)
				}
				// Warm the shard pool; the warmup's cycles are not
				// part of the measured distribution.
				eng.ExecRelease(job, func(r engine.Result) {
					if r.Err != nil {
						runErr = r.Err
					}
				})
				if runErr != nil {
					return runErr
				}
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						eng.ExecRelease(job, collect)
					}
				})
				if runErr != nil {
					return runErr
				}
				name := fmt.Sprintf("Pause/%s/%s/size%d/gc%d", spec.Name, col, size, gc)
				p95 := cycles.Pause.Quantile(0.95)
				entry := benchfmt.Entry{
					Name:        name,
					Iters:       r.N,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
					P95PauseNS:  int64(p95),
					MaxPauseNS:  cycles.MaxPauseNS,
				}
				report.Add(entry)
				fmt.Fprintf(os.Stderr, "%-52s %12.0f ns/op  p95 pause %v  max %v  (%d cycles, overlap %v)\n",
					name, entry.NsPerOp, p95, time.Duration(cycles.MaxPauseNS),
					cycles.Cycles, time.Duration(cycles.OverlapNS))
			}
		}
	}
	if err := report.WriteFile(cfg.out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cgbench: wrote %d benchmarks to %s\n", len(report.Benchmarks), cfg.out)
	return warnAgainstPauseBaseline(cfg, report)
}

// warnAgainstPauseBaseline is the pause family's baseline step: ns/op
// regressions warn exactly like warnAgainstBaseline, and every
// p95-pause delta is printed (improvements included) so the overlap
// schedule's pause effect is visible in the CI log.
func warnAgainstPauseBaseline(cfg benchConfig, report *benchfmt.Report) error {
	if cfg.baseline == "" {
		return nil
	}
	base, err := benchfmt.ReadFile(cfg.baseline)
	if err != nil {
		return err
	}
	for _, d := range benchfmt.Regressions(benchfmt.Compare(base, report), cfg.warnPct) {
		fmt.Fprintf(os.Stderr, "WARN: %s regressed %.1f%% (%.0f -> %.0f ns/op)\n",
			d.Name, d.Pct, d.Base, d.Cur)
	}
	for _, d := range benchfmt.ComparePauses(base, report) {
		fmt.Fprintf(os.Stderr, "pause: %-52s p95 %v -> %v (%+.1f%%)\n",
			d.Name, time.Duration(int64(d.Base)), time.Duration(int64(d.Cur)), d.Pct)
	}
	return nil
}
