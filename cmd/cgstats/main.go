// Command cgstats runs the SPECjvm98 workload analogs under the
// contaminated collector and dumps per-benchmark object demographics:
// created / popped / static / thread-shared counts, block-size and
// age-at-death histograms — the raw material of the thesis's Figures
// 4.1–4.6 and A.1–A.4 — plus a merged total row aggregated across all
// shards.
//
// The benchmark matrix runs on the sharded execution engine; -workers
// controls the pool. Output is byte-identical for any worker count.
//
// Usage:
//
//	cgstats [-size N] [-collector spec] [-noopt] [-bench name] [-workers N] [-arena-stats]
//	cgstats -pauses -gc-every 100000      # pause-time distributions under forced MSA cycles
//
// -pauses appends a per-benchmark pause-time table — cycle counts,
// p50/p95/max stop-the-world pause, cumulative mark and sweep time, and
// the log-scale pause histogram's non-empty buckets. Demographics cells
// run with the traditional collector idle, so pair -pauses with
// -gc-every N (force a full collection every N runtime operations) or a
// collector variant that actually cycles; otherwise the table reports
// zero cycles. Pause durations are wall-clock measurements and vary run
// to run — everything else in cgstats's output stays deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/msa"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	size := flag.Int("size", 1, "SPEC problem size (1, 10 or 100)")
	collector := flag.String("collector", "cg",
		fmt.Sprintf("collector spec; must resolve to the contaminated collector (bases: %s)",
			strings.Join(collectors.Names(), ", ")))
	noopt := flag.Bool("noopt", false, "disable the §3.4 static optimization (alias for -collector cg+noopt)")
	bench := flag.String("bench", "", "run a single benchmark (default: all)")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = min(GOMAXPROCS, 8), 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	maxHeap := flag.String("max-heap-bytes", "0",
		"exact arena-byte cap for concurrently resident shards, pooled included (e.g. 2GiB; 0 = unlimited)")
	arenaStats := flag.Bool("arena-stats", false,
		"append a per-benchmark arena occupancy table (capacity / heap / alloc / overhead from the slab arena's O(1) counters)")
	pauses := flag.Bool("pauses", false,
		"append a per-benchmark pause-time distribution table (pair with -gc-every so cycles actually run)")
	gcEvery := flag.Uint64("gc-every", 0,
		"force a full traditional collection every N runtime operations (0 = off; the §4.7 resetting instrumentation)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing); output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}

	heapCap, err := engine.ParseByteSize(*maxHeap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgstats:", err)
		os.Exit(2)
	}

	spec := *collector
	if *noopt {
		spec += "+noopt"
	}
	probe, err := collectors.New(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgstats:", err)
		os.Exit(1)
	}
	// Reject non-CG specs before the matrix runs, not after: the tool
	// reports CG-specific demographics.
	if _, ok := probe.Collector.(*core.CG); !ok {
		fmt.Fprintf(os.Stderr, "cgstats: collector %q is not the contaminated collector\n", spec)
		os.Exit(1)
	}

	specs := workload.All()
	if *bench != "" {
		s, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []workload.Spec{s}
	}

	// One plenty-of-storage shard per benchmark: demographics are
	// measured with the traditional collector idle ("asynchronous GC
	// disabled … plenty of storage", §4.5).
	jobs := make([]engine.Job, len(specs))
	for i, s := range specs {
		jobs[i] = engine.Job{Workload: s.Name, Size: *size, Collector: spec, GCEvery: *gcEvery}
	}
	// RunDemographics releases each shard's runtime as soon as its
	// counters are extracted; a size-100 sweep would otherwise keep
	// every shard's live set in memory until render.
	cells, err := experiments.RunDemographics(engine.New(*workers).SetMaxHeapBytes(heapCap).SetTrace(traceCfg), jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cgstats:", err)
		os.Exit(1)
	}

	tb := table.New(
		fmt.Sprintf("Object demographics, size %d (collector %s)", *size, spec),
		"benchmark", "created", "popped", "static", "thread", "live", "collectable", "exact",
	)
	hists := table.New("Block sizes and age at death",
		"benchmark", "blocks(1,2,3,4,5,6-10,>10)", "age(0..5,>5)")
	var totalB core.Breakdown
	var totalS core.Stats
	for i, s := range specs {
		b := cells[i].B
		st := cells[i].St
		totalB.Merge(b)
		totalS.Merge(st)
		tb.Rowf(s.Name, b.Created, b.Popped, b.Static, b.Thread, b.Live,
			stats.Pct(b.Popped, b.Created), stats.Pct(st.Singleton, b.Created))
		hists.Rowf(s.Name, fmt.Sprint(st.BlockSize), fmt.Sprint(st.AgeAtDeath))
	}
	if len(specs) > 1 {
		tb.Rowf("total", totalB.Created, totalB.Popped, totalB.Static, totalB.Thread, totalB.Live,
			stats.Pct(totalB.Popped, totalB.Created), stats.Pct(totalS.Singleton, totalB.Created))
		hists.Rowf("total", fmt.Sprint(totalS.BlockSize), fmt.Sprint(totalS.AgeAtDeath))
	}
	fmt.Print(tb)
	fmt.Println()
	fmt.Print(hists)
	if *arenaStats {
		// End-of-run occupancy of each shard's slab arena, straight from
		// the O(1) Info counters: heap = pages drawn from the arena,
		// alloc = live object bytes, overhead = size-class slack and
		// free-list bookkeeping inside those pages.
		at := table.New("Arena occupancy at end of run",
			"benchmark", "capacity", "heap", "alloc", "overhead", "heap/cap", "alloc/heap")
		for i, s := range specs {
			in := cells[i].Info
			at.Rowf(s.Name, in.Capacity, in.HeapBytes, in.AllocBytes, in.Overhead,
				stats.Pct(uint64(in.HeapBytes), uint64(in.Capacity)),
				stats.Pct(uint64(in.AllocBytes), uint64(in.HeapBytes)))
		}
		fmt.Println()
		fmt.Print(at)
	}
	if *pauses {
		// Per-cell pause-time distributions from the cycle timelines. The
		// merged total row demonstrates the order-independent histogram
		// merge the stored outcomes rely on.
		pt := table.New("Collection pause times",
			"benchmark", "cycles", "p50", "p95", "max", "mark", "sweep", "overlap", "pause buckets")
		var total obs.CycleStats
		for i, s := range specs {
			cs := cells[i].Obs
			total.Merge(&cs)
			pt.Rowf(s.Name, cs.Cycles, cs.Pause.Quantile(0.50), cs.Pause.Quantile(0.95),
				cs.Pause.Max(), time.Duration(cs.MarkNS), time.Duration(cs.SweepNS),
				overlapShare(&cs), bucketSummary(&cs.Pause))
		}
		if len(specs) > 1 {
			pt.Rowf("total", total.Cycles, total.Pause.Quantile(0.50), total.Pause.Quantile(0.95),
				total.Pause.Max(), time.Duration(total.MarkNS), time.Duration(total.SweepNS),
				overlapShare(&total), bucketSummary(&total.Pause))
		}
		fmt.Println()
		fmt.Print(pt)
	}
}

// overlapShare renders the fraction of total collection nanoseconds
// that ran concurrently with the mutator (the -overlap schedule's
// detached trace time). A stop-the-world run shows "-": every cycle
// nanosecond was a pause.
func overlapShare(cs *obs.CycleStats) string {
	tot := cs.OverlapNS + cs.PauseNS
	if cs.OverlapNS == 0 || tot == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(cs.OverlapNS)/float64(tot))
}

// bucketSummary renders a histogram's non-empty buckets as
// "≤bound:count" pairs — the full distribution, without 40 columns of
// mostly zeros.
func bucketSummary(h *obs.Histogram) string {
	if h.Count == 0 {
		return "-"
	}
	var b strings.Builder
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "≤%v:%d", time.Duration(obs.BucketBound(i)), n)
	}
	return b.String()
}
