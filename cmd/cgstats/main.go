// Command cgstats runs the SPECjvm98 workload analogs under the
// contaminated collector and dumps per-benchmark object demographics:
// created / popped / static / thread-shared counts, block-size and
// age-at-death histograms — the raw material of the thesis's Figures
// 4.1–4.6 and A.1–A.4.
//
// Usage:
//
//	cgstats [-size N] [-noopt] [-bench name]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	size := flag.Int("size", 1, "SPEC problem size (1, 10 or 100)")
	noopt := flag.Bool("noopt", false, "disable the §3.4 static optimization")
	bench := flag.String("bench", "", "run a single benchmark (default: all)")
	flag.Parse()

	specs := workload.All()
	if *bench != "" {
		s, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []workload.Spec{s}
	}

	tb := table.New(
		fmt.Sprintf("Object demographics, size %d (opt=%v)", *size, !*noopt),
		"benchmark", "created", "popped", "static", "thread", "live", "collectable", "exact",
	)
	hists := table.New("Block sizes and age at death",
		"benchmark", "blocks(1,2,3,4,5,6-10,>10)", "age(0..5,>5)")
	for _, s := range specs {
		cg := core.New(core.Config{StaticOpt: !*noopt})
		// A large arena: demographics are measured with the traditional
		// collector idle ("asynchronous GC disabled … plenty of
		// storage", §4.5).
		rt := vm.New(heap.New(512<<20), cg)
		s.Run(rt, *size)
		b := cg.Snapshot()
		st := cg.Stats()
		tb.Rowf(s.Name, b.Created, b.Popped, b.Static, b.Thread, b.Live,
			stats.Pct(b.Popped, b.Created), stats.Pct(st.Singleton, b.Created))
		hists.Rowf(s.Name, fmt.Sprint(st.BlockSize), fmt.Sprint(st.AgeAtDeath))
	}
	fmt.Print(tb)
	fmt.Println()
	fmt.Print(hists)
}
