// Command cgrun assembles and executes a .jasm program (see
// internal/jasm for the language) under one or more collectors resolved
// from the registry, then reports what was collected and how. With
// several collectors the runs execute concurrently on independent
// runtime shards and the reports print in flag order — a side-by-side
// ablation in one invocation.
//
// Usage:
//
//	cgrun [-collector spec[,spec...]] [-heap bytes] [-gc-every N] [-workers N] [-dis] prog.jasm
//	cgrun [flags] -workload name [-size N]
//	cgrun [flags] -replay tape.cgt
//	cgrun [flags] -record tape.cgt {prog.jasm | -workload name}
//	cgrun -list
//
// The program source is a .jasm file, a registered workload analog
// (-workload/-size), or a recorded event tape (-replay). -record
// captures the run's driver-facing operation stream to a tape file —
// one collector only, since a tape is a single recording — which
// -replay later re-drives bit-identically under any collector.
//
// Collector specs are the registry's grammar: cg, cg+noopt, cg+recycle,
// cg+recycle+reset, msa, gen, gen+promote=N, none, ... ; -list prints
// every registered base with its description and modifier grammar (see
// internal/collectors).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/jasm"
	"repro/internal/msa"
	"repro/internal/tape"
	"repro/internal/vm"
	"repro/internal/workload"
)

// report is one shard's outcome, rendered after all shards finish.
type report struct {
	text string
	err  error
}

// source is the program being run, however it was loaded: a closure
// that drives a fresh runtime to completion, plus the arena budget a
// bare -heap 0 resolves to and the Meta a -record run stamps on its
// tape.
type source struct {
	drive func(rt *vm.Runtime) error
	heap  int
	meta  tape.Meta
}

func main() {
	collector := flag.String("collector", "cg",
		fmt.Sprintf("comma-separated collector specs (bases: %s)", strings.Join(collectors.Names(), ", ")))
	heapBytes := flag.Int("heap", 0,
		"arena size in bytes, per shard (0 = the source's own default: 1 MiB for .jasm, the spec/tape budget otherwise)")
	gcEvery := flag.Uint64("gc-every", 0,
		"force a full collection every N runtime operations (0 = only on exhaustion; the §4.7 instrumentation)")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	dis := flag.Bool("dis", false, "print the disassembly instead of running")
	list := flag.Bool("list", false, "list the registered collectors and exit")
	wlName := flag.String("workload", "", "run a registered workload analog instead of a .jasm file")
	wlSize := flag.Int("size", 1, "workload problem size (with -workload)")
	record := flag.String("record", "", "record the run's event tape to this file (exactly one collector)")
	replay := flag.String("replay", "", "replay a recorded event tape instead of driving a program")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = min(GOMAXPROCS, 8), 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing); output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}
	if *list {
		printCollectors()
		return
	}

	src, err := loadSource(*wlName, *wlSize, *replay, *dis)
	if err != nil {
		fatal(err)
	}
	if src == nil {
		return // -dis printed the disassembly
	}
	hb := *heapBytes
	if hb == 0 {
		hb = src.heap
	}

	specs := strings.Split(*collector, ",")
	factories := make([]collectors.Factory, len(specs))
	for i, spec := range specs {
		f, err := collectors.Parse(spec)
		if err != nil {
			fatal(err)
		}
		factories[i] = f
	}
	if *record != "" && len(specs) != 1 {
		fatal(fmt.Errorf("-record captures one run: got %d collectors", len(specs)))
	}

	// Each collector gets its own runtime shard; the source is shared
	// read-only (jasm's Bind and the tape Replayer both build per-shard
	// state).
	reports := make([]report, len(specs))
	eng := engine.New(*workers)
	// Shards are built directly (not via engine.Exec), so the trace
	// configuration — including the engine's occupancy-saturation
	// decision — is applied here for collectors that take one.
	traceCfg.OccupancySaturated = eng.Trace().OccupancySaturated
	eng.Do(len(specs), func(i int) {
		ev := factories[i]()
		ev.GCEvery = *gcEvery
		if c, ok := ev.Collector.(interface{ SetTraceConfig(msa.TraceConfig) }); ok {
			c.SetTraceConfig(traceCfg)
		}
		reports[i] = runOne(src, ev, hb, *record)
	})
	for i, r := range reports {
		if r.err != nil {
			fatal(fmt.Errorf("%s: %w", specs[i], r.err))
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.text)
	}
}

// loadSource resolves the program from the mutually exclusive source
// flags. A nil source with nil error means -dis handled the request.
func loadSource(wlName string, wlSize int, replay string, dis bool) (*source, error) {
	switch {
	case replay != "":
		if wlName != "" || flag.NArg() != 0 {
			return nil, fmt.Errorf("-replay takes no other program source")
		}
		t, err := tape.ReadFile(replay)
		if err != nil {
			return nil, err
		}
		hb := t.Meta.HeapBytes
		if hb <= 0 {
			hb = 1 << 20
		}
		return &source{
			drive: func(rt *vm.Runtime) error {
				// Each shard replays through its own cursor state; the
				// tape itself is immutable and shared.
				return tape.NewReplayer(t).Run(rt)
			},
			heap: hb,
			meta: t.Meta,
		}, nil
	case wlName != "":
		if flag.NArg() != 0 {
			return nil, fmt.Errorf("-workload takes no .jasm argument")
		}
		spec, err := workload.ByName(wlName)
		if err != nil {
			return nil, err
		}
		return &source{
			drive: func(rt *vm.Runtime) error {
				spec.Run(rt, wlSize)
				return nil
			},
			heap: spec.HeapBytes(wlSize),
			meta: tape.Meta{
				Workload:  wlName,
				Size:      wlSize,
				Threads:   spec.Threads(wlSize),
				HeapBytes: spec.HeapBytes(wlSize),
			},
		}, nil
	default:
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: cgrun [flags] {prog.jasm | -workload name | -replay tape}")
			os.Exit(2)
		}
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return nil, err
		}
		prog, err := jasm.AssembleSource(string(b))
		if err != nil {
			return nil, err
		}
		if dis {
			fmt.Print(prog.Disassemble())
			return nil, nil
		}
		return &source{
			drive: func(rt *vm.Runtime) error {
				_, err := prog.Bind(rt).Run()
				return err
			},
			heap: 1 << 20,
			meta: tape.Meta{Workload: "jasm:" + flag.Arg(0), HeapBytes: 1 << 20},
		}, nil
	}
}

func runOne(src *source, ev vm.Events, heapBytes int, recordPath string) (rep report) {
	// jasm surfaces OOM as an error, but a collector-internal invariant
	// panic on a worker goroutine would otherwise kill the process and
	// discard every other shard's report.
	defer func() {
		if r := recover(); r != nil {
			rep = report{err: fmt.Errorf("shard panicked: %v", r)}
		}
	}()
	rt := vm.New(heap.New(heapBytes), ev)
	var rec *tape.Recorder
	if recordPath != "" {
		rec = tape.NewRecorder(rt, src.meta)
	}
	if err := src.drive(rt); err != nil {
		return report{err: err}
	}
	rt.Quiesce()
	if rec != nil {
		// Only a completed run writes a tape: an errored or panicked
		// drive falls out above and leaves no truncated file behind.
		t := rec.Finish()
		if err := tape.WriteFile(recordPath, t); err != nil {
			return report{err: err}
		}
		fmt.Fprintf(os.Stderr, "cgrun: recorded %d ops (%d allocs) to %s [%s]\n",
			t.Ops(), t.Allocs(), recordPath, tape.Hash(t)[:12])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "collector:     %s\n", ev.Name)
	fmt.Fprintf(&b, "instructions:  %d\n", rt.Instr())
	fmt.Fprintf(&b, "gc cycles:     %d\n", rt.GCCycles())
	hs := rt.Heap.Stats()
	fmt.Fprintf(&b, "allocations:   %d (%d bytes)\n", hs.Allocs, hs.BytesAlloc)
	fmt.Fprintf(&b, "frees:         %d\n", hs.Frees)
	fmt.Fprintf(&b, "live at exit:  %d objects, %d bytes\n", rt.Heap.NumLive(), rt.Heap.Arena().InUse())
	if cg, ok := ev.Collector.(*core.CG); ok {
		s := cg.Snapshot()
		fmt.Fprintf(&b, "cg popped:     %d  static: %d  thread: %d  msa: %d\n",
			s.Popped, s.Static, s.Thread, s.MSA)
	}
	return report{text: b.String()}
}

// printCollectors renders the registry: every base name with its doc
// line, plus the modifier grammar it accepts.
func printCollectors() {
	for _, name := range collectors.Names() {
		fmt.Printf("%-6s %s\n", name, collectors.Doc(name))
		if mods := collectors.Modifiers(name); len(mods) > 0 {
			// Parameterised modifiers are shown by a representative
			// instance (promote=4 stands for promote=N; see the doc
			// line for the accepted range).
			fmt.Printf("       modifiers (e.g.): +%s\n", strings.Join(mods, ", +"))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgrun:", err)
	os.Exit(1)
}
