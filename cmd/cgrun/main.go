// Command cgrun assembles and executes a .jasm program (see
// internal/jasm for the language) under a selectable collector, then
// reports what was collected and how.
//
// Usage:
//
//	cgrun [-collector cg|cg-noopt|cg-recycle|msa|gen] [-heap bytes] [-dis] prog.jasm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gengc"
	"repro/internal/heap"
	"repro/internal/jasm"
	"repro/internal/msa"
	"repro/internal/vm"
)

func main() {
	collector := flag.String("collector", "cg", "collector: cg, cg-noopt, cg-recycle, msa or gen")
	heapBytes := flag.Int("heap", 1<<20, "arena size in bytes")
	dis := flag.Bool("dis", false, "print the disassembly instead of running")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cgrun [flags] prog.jasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := jasm.AssembleSource(string(src))
	if err != nil {
		fatal(err)
	}
	if *dis {
		fmt.Print(prog.Disassemble())
		return
	}

	var col vm.Collector
	switch *collector {
	case "cg":
		col = core.New(core.DefaultConfig())
	case "cg-noopt":
		col = core.New(core.Config{})
	case "cg-recycle":
		col = core.New(core.Config{StaticOpt: true, Recycle: true})
	case "msa":
		col = msa.NewSystem()
	case "gen":
		col = gengc.New()
	default:
		fatal(fmt.Errorf("unknown collector %q", *collector))
	}

	rt := vm.New(heap.New(*heapBytes), col)
	if _, err := prog.Bind(rt).Run(); err != nil {
		fatal(err)
	}

	fmt.Printf("collector:     %s\n", col.Name())
	fmt.Printf("instructions:  %d\n", rt.Instr())
	fmt.Printf("gc cycles:     %d\n", rt.GCCycles())
	hs := rt.Heap.Stats()
	fmt.Printf("allocations:   %d (%d bytes)\n", hs.Allocs, hs.BytesAlloc)
	fmt.Printf("frees:         %d\n", hs.Frees)
	fmt.Printf("live at exit:  %d objects, %d bytes\n", rt.Heap.NumLive(), rt.Heap.Arena().InUse())
	if cg, ok := col.(*core.CG); ok {
		b := cg.Snapshot()
		fmt.Printf("cg popped:     %d  static: %d  thread: %d  msa: %d\n",
			b.Popped, b.Static, b.Thread, b.MSA)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgrun:", err)
	os.Exit(1)
}
