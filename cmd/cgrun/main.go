// Command cgrun assembles and executes a .jasm program (see
// internal/jasm for the language) under one or more collectors resolved
// from the registry, then reports what was collected and how. With
// several collectors the runs execute concurrently on independent
// runtime shards and the reports print in flag order — a side-by-side
// ablation in one invocation.
//
// Usage:
//
//	cgrun [-collector spec[,spec...]] [-heap bytes] [-gc-every N] [-workers N] [-dis] prog.jasm
//	cgrun -list
//
// Collector specs are the registry's grammar: cg, cg+noopt, cg+recycle,
// cg+recycle+reset, msa, gen, gen+promote=N, none, ... ; -list prints
// every registered base with its description and modifier grammar (see
// internal/collectors).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/heap"
	"repro/internal/jasm"
	"repro/internal/msa"
	"repro/internal/vm"
)

// report is one shard's outcome, rendered after all shards finish.
type report struct {
	text string
	err  error
}

func main() {
	collector := flag.String("collector", "cg",
		fmt.Sprintf("comma-separated collector specs (bases: %s)", strings.Join(collectors.Names(), ", ")))
	heapBytes := flag.Int("heap", 1<<20, "arena size in bytes, per shard")
	gcEvery := flag.Uint64("gc-every", 0,
		"force a full collection every N runtime operations (0 = only on exhaustion; the §4.7 instrumentation)")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	dis := flag.Bool("dis", false, "print the disassembly instead of running")
	list := flag.Bool("list", false, "list the registered collectors and exit")
	traceWorkers := flag.Int("trace-workers", 0,
		"parallel-trace worker count for hook-free collection cycles (0 = min(GOMAXPROCS, 8), 1 = sequential); output is identical for every value")
	traceMinLive := flag.Int("trace-min-live", 0,
		"live-object threshold below which a cycle is traced sequentially (0 = default)")
	overlap := flag.Bool("overlap", false,
		"overlap hook-free collection cycles with the mutator (snapshot-at-the-beginning tracing); output is identical either way")
	flag.Parse()
	traceCfg := msa.TraceConfig{Workers: *traceWorkers, MinLive: *traceMinLive, Overlap: *overlap}
	if *list {
		printCollectors()
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cgrun [flags] prog.jasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := jasm.AssembleSource(string(src))
	if err != nil {
		fatal(err)
	}
	if *dis {
		fmt.Print(prog.Disassemble())
		return
	}

	specs := strings.Split(*collector, ",")
	factories := make([]collectors.Factory, len(specs))
	for i, spec := range specs {
		f, err := collectors.Parse(spec)
		if err != nil {
			fatal(err)
		}
		factories[i] = f
	}

	// Each collector gets its own runtime shard; the assembled program
	// is shared read-only (Bind builds per-shard state).
	reports := make([]report, len(specs))
	eng := engine.New(*workers)
	// Shards are built directly (not via engine.Exec), so the trace
	// configuration — including the engine's occupancy-saturation
	// decision — is applied here for collectors that take one.
	traceCfg.OccupancySaturated = eng.Trace().OccupancySaturated
	eng.Do(len(specs), func(i int) {
		ev := factories[i]()
		ev.GCEvery = *gcEvery
		if c, ok := ev.Collector.(interface{ SetTraceConfig(msa.TraceConfig) }); ok {
			c.SetTraceConfig(traceCfg)
		}
		reports[i] = runOne(prog, ev, *heapBytes)
	})
	for i, r := range reports {
		if r.err != nil {
			fatal(fmt.Errorf("%s: %w", specs[i], r.err))
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.text)
	}
}

func runOne(prog *jasm.Program, ev vm.Events, heapBytes int) (rep report) {
	// jasm surfaces OOM as an error, but a collector-internal invariant
	// panic on a worker goroutine would otherwise kill the process and
	// discard every other shard's report.
	defer func() {
		if r := recover(); r != nil {
			rep = report{err: fmt.Errorf("shard panicked: %v", r)}
		}
	}()
	rt := vm.New(heap.New(heapBytes), ev)
	if _, err := prog.Bind(rt).Run(); err != nil {
		return report{err: err}
	}
	rt.Quiesce()
	var b strings.Builder
	fmt.Fprintf(&b, "collector:     %s\n", ev.Name)
	fmt.Fprintf(&b, "instructions:  %d\n", rt.Instr())
	fmt.Fprintf(&b, "gc cycles:     %d\n", rt.GCCycles())
	hs := rt.Heap.Stats()
	fmt.Fprintf(&b, "allocations:   %d (%d bytes)\n", hs.Allocs, hs.BytesAlloc)
	fmt.Fprintf(&b, "frees:         %d\n", hs.Frees)
	fmt.Fprintf(&b, "live at exit:  %d objects, %d bytes\n", rt.Heap.NumLive(), rt.Heap.Arena().InUse())
	if cg, ok := ev.Collector.(*core.CG); ok {
		s := cg.Snapshot()
		fmt.Fprintf(&b, "cg popped:     %d  static: %d  thread: %d  msa: %d\n",
			s.Popped, s.Static, s.Thread, s.MSA)
	}
	return report{text: b.String()}
}

// printCollectors renders the registry: every base name with its doc
// line, plus the modifier grammar it accepts.
func printCollectors() {
	for _, name := range collectors.Names() {
		fmt.Printf("%-6s %s\n", name, collectors.Doc(name))
		if mods := collectors.Modifiers(name); len(mods) > 0 {
			// Parameterised modifiers are shown by a representative
			// instance (promote=4 stands for promote=N; see the doc
			// line for the accepted range).
			fmt.Printf("       modifiers (e.g.): +%s\n", strings.Join(mods, ", +"))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgrun:", err)
	os.Exit(1)
}
