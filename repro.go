// Package repro is a from-scratch Go reproduction of "Contaminated
// Garbage Collection" (Cannarozzi, Plezbert & Cytron, PLDI 2000; thesis
// WUCSE-2003-40): an incremental, mark-free garbage collector that
// associates every heap object with the stack frame whose pop proves it
// dead, maintaining equilive sets with union-find and collecting whole
// sets in O(1) at frame pops.
//
// The package is a facade over the implementation:
//
//   - internal/core — the contaminated collector (the paper's contribution)
//   - internal/heap — the managed-heap substrate (handles, first-fit arena)
//   - internal/vm — the runtime (frames, threads, statics, interning)
//   - internal/msa — the traditional mark–sweep baseline
//   - internal/gengc — a generational baseline for ablations
//   - internal/workload — SPECjvm98 benchmark analogs (a registry)
//   - internal/collectors — the collector registry (name → factory)
//   - internal/engine — the sharded execution engine (worker pool)
//   - internal/experiments — regenerators for every table/figure
//   - internal/jasm — a textual assembly for the runtime
//
// Quick start:
//
//	h := repro.NewHeap(1 << 20)
//	cls := h.DefineClass(repro.Class{Name: "Node", Refs: 2, Data: 8})
//	cg := repro.NewCG(repro.DefaultConfig())
//	rt := repro.NewRuntime(h, cg)
//	th := rt.NewThread(0)
//	th.CallVoid(1, func(f *repro.Frame) {
//	    f.SetLocal(0, f.MustNew(cls)) // dies when this frame pops
//	})
//	fmt.Println(cg.Stats().Popped) // 1
package repro

import (
	"repro/internal/collectors"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gengc"
	"repro/internal/heap"
	"repro/internal/msa"
	"repro/internal/vm"
)

// Re-exported core types; see the internal packages for full
// documentation.
type (
	// Config selects contaminated-collector variants (§3.4–§3.7).
	Config = core.Config
	// CG is the contaminated collector.
	CG = core.CG
	// Heap is the managed-heap substrate.
	Heap = heap.Heap
	// Class describes an object layout.
	Class = heap.Class
	// HandleID names a heap object; 0 is null.
	HandleID = heap.HandleID
	// Runtime is the managed runtime CG instruments.
	Runtime = vm.Runtime
	// Frame is one method activation.
	Frame = vm.Frame
	// Thread is a green thread (a stack of frames).
	Thread = vm.Thread
	// Events is the event-table collector ABI: function-valued slots
	// plus capability fields, bound into the runtime's hot path by
	// Runtime.Attach (unsubscribed events cost nothing).
	Events = vm.Events
	// Collector is anything that can describe its event subscriptions
	// as an Events table — every collector implementation, and Events
	// itself. The single method runs once at attach, never per event.
	Collector = vm.Collector
	// Engine is the sharded execution engine (worker-pool scheduler).
	Engine = engine.Engine
	// Job is one (workload, size, collector) cell of the matrix.
	Job = engine.Job
	// Result is the outcome of one Job.
	Result = engine.Result
)

// Nil is the null reference.
const Nil = heap.Nil

// DefaultConfig is the paper's preferred configuration: the §3.4 static
// optimization enabled, everything else off.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCG returns a contaminated collector; pass it to NewRuntime.
func NewCG(cfg Config) *CG { return core.New(cfg) }

// NewHeap returns a managed heap with an arena of the given byte size.
func NewHeap(arenaBytes int) *Heap { return heap.New(arenaBytes) }

// NewRuntime binds a heap and a collector into a runnable runtime.
func NewRuntime(h *Heap, c Collector) *Runtime { return vm.New(h, c) }

// NewMarkSweep returns the traditional-collector-only baseline system
// (the "JDK 1.1.8" configuration of §4.5).
func NewMarkSweep() Collector { return msa.NewSystem() }

// NewGenerational returns the two-generation baseline used by the
// related-work ablations (§1.1, §5).
func NewGenerational() Collector { return gengc.New() }

// NewCollector resolves a collector spec from the registry to its
// event table, e.g. "cg", "cg+recycle+reset", "msa", "gen",
// "gen+promote=4".
func NewCollector(spec string) (Events, error) { return collectors.New(spec) }

// NewEngine returns a sharded execution engine; workers <= 0 selects
// GOMAXPROCS.
func NewEngine(workers int) *Engine { return engine.New(workers) }
